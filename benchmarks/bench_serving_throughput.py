#!/usr/bin/env python3
"""Serving throughput: cold vs warm vs coalesced requests per second.

Drives the async scheduling service (no HTTP overhead; add ``--http`` to
measure the full JSON-over-HTTP path) with the workload registry:

* **cold**      — first schedule of every registry benchmark (A variants),
* **warm**      — normalized-equivalent B variants plus A repeats, all
  served from the content-addressed cache,
* **coalesced** — bursts of identical concurrent requests that collapse
  onto single in-flight schedules.

``--mix fuzz`` swaps the registry for the ``fuzz:`` namespace: a pool of
generated programs first scheduled cold, then hammered with a heavy-tailed
(Zipf-like) request stream where a few hot programs dominate — the cache
behavior long-running compiler services actually see.  ``--mix mixed``
interleaves both populations.  Results are persisted to
``BENCH_serving.json`` (``--json`` overrides, empty disables).

Run: ``PYTHONPATH=src python benchmarks/bench_serving_throughput.py``
(set ``REPRO_BENCH_SMOKE=1`` for a seconds-long CI-sized run).
"""

import argparse
import json
import os
import random
import time

from repro.api import ScheduleRequest, SearchConfig, Session
from repro.serving import ServiceConfig, ServiceRunner
from repro.workloads.registry import benchmark_names

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))


def measure(runner, requests):
    started = time.perf_counter()
    responses = runner.schedule_many(list(requests))
    elapsed = time.perf_counter() - started
    cached = sum(1 for response in responses if response.from_cache)
    return len(responses) / elapsed, cached, elapsed


def measure_http(server, names, workers):
    from concurrent.futures import ThreadPoolExecutor

    from repro.serving import ServingClient

    client = ServingClient(server.address)
    started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=workers) as pool:
        responses = list(pool.map(client.schedule, names))
    elapsed = time.perf_counter() - started
    cached = sum(1 for response in responses if response.from_cache)
    return len(responses) / elapsed, cached, elapsed


def fuzz_request_names(pool, count, size_class, rng):
    """A heavy-tailed request stream over the fuzz pool.

    Seed ``s`` is drawn with weight ``1/(s+1)`` (Zipf with exponent 1), so
    seed 0 is requested roughly ``log(pool)`` times more often than the tail
    — most requests hit a handful of hot programs while the tail keeps
    producing cold misses.
    """
    weights = [1.0 / (rank + 1) for rank in range(pool)]
    seeds = rng.choices(range(pool), weights=weights, k=count)
    return [f"fuzz:{size_class}-{seed}" for seed in seeds]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--threads", type=int, default=8,
                        help="threads the schedules are optimized for")
    parser.add_argument("--burst", type=int, default=32,
                        help="duplicate requests per coalescing burst")
    parser.add_argument("--mix", choices=("registry", "fuzz", "mixed"),
                        default="registry",
                        help="request population (default: registry)")
    parser.add_argument("--fuzz-pool", type=int, default=8 if SMOKE else 32,
                        help="distinct fuzz programs in the pool")
    parser.add_argument("--fuzz-requests", type=int,
                        default=24 if SMOKE else 200,
                        help="heavy-tail requests drawn from the pool")
    parser.add_argument("--size-class", default="tiny" if SMOKE else "small",
                        help="fuzz generator size class")
    parser.add_argument("--json", default="BENCH_serving.json",
                        help="write results here ('' disables)")
    parser.add_argument("--cache", default=None,
                        help="SQLite cache path (persistent backend)")
    parser.add_argument("--shards", type=int, default=0,
                        help="shard the tuning database N ways")
    parser.add_argument("--http", action="store_true",
                        help="measure through the HTTP endpoint as well")
    args = parser.parse_args()

    database = None
    if args.shards:
        from repro.api import ShardedTuningDatabase
        database = ShardedTuningDatabase(args.shards)
    session = Session(
        threads=args.threads, cache_path=args.cache, database=database,
        search=SearchConfig(population_size=8, epochs=1,
                            generations_per_epoch=2))
    names = sorted(benchmark_names())
    results = {"mix": args.mix, "smoke": SMOKE, "threads": args.threads,
               "phases": {}}

    def record(phase, rate, requests, cached, elapsed):
        print(f"{phase + ':':11s}{rate:8.1f} req/s  "
              f"({requests} requests, {cached} cached, {elapsed:.3f}s)")
        results["phases"][phase] = {"rate_req_s": round(rate, 1),
                                    "requests": requests, "cached": cached,
                                    "elapsed_s": round(elapsed, 3)}

    config = ServiceConfig(batch_window_s=0.005, max_batch_size=32)
    with ServiceRunner(session, config) as runner:
        if args.mix in ("registry", "mixed"):
            print(f"{len(names)} registry benchmarks: {', '.join(names)}")
            cold = [ScheduleRequest(program=f"{name}:a") for name in names]
            rate, cached, elapsed = measure(runner, cold)
            record("cold", rate, len(cold), cached, elapsed)

            warm = [ScheduleRequest(program=f"{name}:b") for name in names] \
                + [ScheduleRequest(program=f"{name}:a") for name in names]
            rate, cached, elapsed = measure(runner, warm)
            record("warm", rate, len(warm), cached, elapsed)

            burst = [ScheduleRequest(program=f"{names[0]}:a")
                     for _ in range(args.burst)]
            rate, cached, elapsed = measure(runner, burst)
            record("coalesced", rate, len(burst), cached, elapsed)

        if args.mix in ("fuzz", "mixed"):
            print(f"fuzz pool: {args.fuzz_pool} {args.size_class} programs, "
                  f"{args.fuzz_requests} heavy-tail requests")
            pool = [f"fuzz:{args.size_class}-{seed}"
                    for seed in range(args.fuzz_pool)]
            cold = [ScheduleRequest(program=name) for name in pool]
            rate, cached, elapsed = measure(runner, cold)
            record("fuzz-cold", rate, len(cold), cached, elapsed)

            tail_names = fuzz_request_names(args.fuzz_pool,
                                            args.fuzz_requests,
                                            args.size_class,
                                            random.Random(0))
            tail = [ScheduleRequest(program=name) for name in tail_names]
            rate, cached, elapsed = measure(runner, tail)
            record("fuzz-tail", rate, len(tail), cached, elapsed)

        report = session.report()
        print(f"\n{report.summary()}")
        print(f"service: {runner.stats.to_dict()}")
        results["session"] = report.summary()

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")

    if args.http:
        from repro.serving import ServingServer

        http_session = Session(
            threads=args.threads,
            search=SearchConfig(population_size=8, epochs=1,
                                generations_per_epoch=2))
        with ServingServer(http_session, config=config) as server:
            rate, _, elapsed = measure_http(
                server, [f"{name}:a" for name in names], workers=8)
            print(f"\nhttp cold: {rate:8.1f} req/s ({elapsed:.3f}s)")
            rate, cached, elapsed = measure_http(
                server, [f"{name}:b" for name in names], workers=8)
            print(f"http warm: {rate:8.1f} req/s "
                  f"({cached} cached, {elapsed:.3f}s)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Serving throughput: cold vs warm vs coalesced requests per second.

Drives the async scheduling service (no HTTP overhead; add ``--http`` to
measure the full JSON-over-HTTP path) with the workload registry:

* **cold**      — first schedule of every registry benchmark (A variants),
* **warm**      — normalized-equivalent B variants plus A repeats, all
  served from the content-addressed cache,
* **coalesced** — bursts of identical concurrent requests that collapse
  onto single in-flight schedules.

Run: ``PYTHONPATH=src python benchmarks/bench_serving_throughput.py``
"""

import argparse
import time

from repro.api import ScheduleRequest, SearchConfig, Session
from repro.serving import ServiceConfig, ServiceRunner
from repro.workloads.registry import benchmark_names


def measure(runner, requests):
    started = time.perf_counter()
    responses = runner.schedule_many(list(requests))
    elapsed = time.perf_counter() - started
    cached = sum(1 for response in responses if response.from_cache)
    return len(responses) / elapsed, cached, elapsed


def measure_http(server, names, workers):
    from concurrent.futures import ThreadPoolExecutor

    from repro.serving import ServingClient

    client = ServingClient(server.address)
    started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=workers) as pool:
        responses = list(pool.map(client.schedule, names))
    elapsed = time.perf_counter() - started
    cached = sum(1 for response in responses if response.from_cache)
    return len(responses) / elapsed, cached, elapsed


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--threads", type=int, default=8,
                        help="threads the schedules are optimized for")
    parser.add_argument("--burst", type=int, default=32,
                        help="duplicate requests per coalescing burst")
    parser.add_argument("--cache", default=None,
                        help="SQLite cache path (persistent backend)")
    parser.add_argument("--shards", type=int, default=0,
                        help="shard the tuning database N ways")
    parser.add_argument("--http", action="store_true",
                        help="measure through the HTTP endpoint as well")
    args = parser.parse_args()

    database = None
    if args.shards:
        from repro.api import ShardedTuningDatabase
        database = ShardedTuningDatabase(args.shards)
    session = Session(
        threads=args.threads, cache_path=args.cache, database=database,
        search=SearchConfig(population_size=8, epochs=1,
                            generations_per_epoch=2))
    names = sorted(benchmark_names())
    print(f"{len(names)} registry benchmarks: {', '.join(names)}")

    config = ServiceConfig(batch_window_s=0.005, max_batch_size=32)
    with ServiceRunner(session, config) as runner:
        cold = [ScheduleRequest(program=f"{name}:a") for name in names]
        rate, cached, elapsed = measure(runner, cold)
        print(f"cold:      {rate:8.1f} req/s  "
              f"({len(cold)} requests, {cached} cached, {elapsed:.3f}s)")

        warm = [ScheduleRequest(program=f"{name}:b") for name in names] \
            + [ScheduleRequest(program=f"{name}:a") for name in names]
        rate, cached, elapsed = measure(runner, warm)
        print(f"warm:      {rate:8.1f} req/s  "
              f"({len(warm)} requests, {cached} cached, {elapsed:.3f}s)")

        burst = [ScheduleRequest(program=f"{names[0]}:a")
                 for _ in range(args.burst)]
        rate, cached, elapsed = measure(runner, burst)
        print(f"coalesced: {rate:8.1f} req/s  "
              f"({len(burst)} identical requests, {elapsed:.3f}s)")

        report = session.report()
        print(f"\n{report.summary()}")
        print(f"service: {runner.stats.to_dict()}")

    if args.http:
        from repro.serving import ServingServer

        http_session = Session(
            threads=args.threads,
            search=SearchConfig(population_size=8, epochs=1,
                                generations_per_epoch=2))
        with ServingServer(http_session, config=config) as server:
            rate, _, elapsed = measure_http(
                server, [f"{name}:a" for name in names], workers=8)
            print(f"\nhttp cold: {rate:8.1f} req/s ({elapsed:.3f}s)")
            rate, cached, elapsed = measure_http(
                server, [f"{name}:b" for name in names], workers=8)
            print(f"http warm: {rate:8.1f} req/s "
                  f"({cached} cached, {elapsed:.3f}s)")


if __name__ == "__main__":
    main()

"""Headline geometric-mean speedups (abstract): daisy vs the C compiler,
Polly, Tiramisu, NumPy, Numba, and DaCe."""

from bench_helpers import attach_rows
from repro.experiments import summary


def test_summary_geomean_speedups(benchmark, settings):
    rows = benchmark.pedantic(summary.run, args=(settings,), rounds=1, iterations=1)
    attach_rows(benchmark, rows)

    by_comparison = {row["comparison"]: row["geo_mean_speedup"] for row in rows}
    # The paper's ordering of wins must hold: daisy beats every baseline.
    assert by_comparison["daisy vs baseline C compiler"] > 2.0
    assert by_comparison["daisy vs polly"] > 1.0
    assert by_comparison["daisy vs tiramisu"] > 1.0
    assert by_comparison["daisy vs numpy"] > 1.5
    assert by_comparison["daisy vs numba"] > 1.0
    assert by_comparison["daisy vs dace"] > 0.9

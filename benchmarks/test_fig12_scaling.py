"""Figure 12: CLOUDSC strong and weak scaling."""

from bench_helpers import attach_rows
from repro.experiments import figure12


def test_figure12a_strong_scaling(benchmark, settings):
    rows = benchmark.pedantic(figure12.run_strong_scaling, args=(settings,),
                              rounds=1, iterations=1)
    attach_rows(benchmark, rows)

    daisy = {row["threads"]: row["runtime_s"] for row in rows
             if row["version"] == "daisy"}
    fortran = {row["threads"]: row["runtime_s"] for row in rows
               if row["version"] == "fortran"}
    # Both versions scale; daisy stays at least as fast as Fortran at every
    # thread count (paper: 2.7%-9.1% faster).
    assert daisy[12] < daisy[1]
    assert fortran[12] < fortran[1]
    for threads in daisy:
        assert daisy[threads] <= fortran[threads] * 1.02


def test_figure12b_weak_scaling(benchmark, settings):
    rows = benchmark.pedantic(figure12.run_weak_scaling, args=(settings,),
                              rounds=1, iterations=1)
    attach_rows(benchmark, rows)

    daisy_rows = [row for row in rows if row["version"] == "daisy"]
    # daisy is at least as fast as Fortran at every weak-scaling point
    # (paper: 4.3%-10.1% faster).
    assert all(row["daisy_speedup_over_fortran"] >= 0.98 for row in daisy_rows)

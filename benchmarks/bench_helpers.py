"""Helpers shared by the benchmark targets (importable without conftest).

Kept out of ``conftest.py`` so that benchmark modules never rely on the
ambiguous ``import conftest`` (which resolves differently depending on which
directories pytest collected).
"""


def attach_rows(benchmark, rows, limit=200):
    """Store experiment rows on the benchmark report (JSON-serializable)."""
    serializable = []
    for row in rows[:limit]:
        serializable.append({key: (float(value) if isinstance(value, float) else value)
                             for key, value in row.items()
                             if isinstance(value, (int, float, str, bool, type(None)))})
    benchmark.extra_info["rows"] = serializable

#!/usr/bin/env python3
"""Warm-path fast lane: where the time goes on a repeat request.

Four isolations, each a cost the warm-path PR attacks, plus the end-to-end
number they add up to:

* **hash** — ``program_content_hash`` on an already-hashed program.  IR
  nodes memoize their canonical JSON fragments, so a repeat hash joins
  cached strings instead of re-canonicalizing the tree;
  ``program_content_hash_reference`` (the unmemoized implementation, kept
  as the executable spec) shows what that saves.
* **copy** — ``Program.snapshot()`` (the copy-on-write view the cache
  serves) against ``Program.copy()`` (the deep defensive copy it
  replaced).
* **encode** — assembling a response from pre-encoded cache bytes
  (``Session.assemble_response``: splice the request echo between stored
  ``before``/``after`` text) against a full ``json.dumps(to_dict())``.
* **end-to-end** — warm req/s through the async service with the response
  fast lane on (traced / trace-sampled / untraced) and off
  (``ServiceConfig(fast_lane=False)`` — the pre-PR serving path, measured
  live on the same machine).

``BASELINE`` embeds the same measurements taken on the pre-PR tree (same
machine, same request mix), so the committed ``BENCH_warm_path.json``
carries both sides of the comparison.  Acceptance: warm-hit throughput
(traced) at least **5x** the pre-PR baseline, and a non-zero fast-lane hit
rate (every measured request after warmup should be a fast-lane hit).

Run: ``PYTHONPATH=src python benchmarks/bench_warm_path.py``
(``--smoke`` or ``REPRO_BENCH_SMOKE=1`` for a seconds-long CI-sized run
that reports but does not assert the 5x bar — CI runners are too noisy
for absolute throughput bars).
"""

import argparse
import json
import os
import sys
import tempfile
import time

from repro.api import ScheduleRequest, SearchConfig, Session
from repro.api.hashing import (program_content_hash,
                               program_content_hash_reference)
from repro.observability import Tracer
from repro.serving import ServiceConfig, ServiceRunner
from repro.workloads.registry import benchmark_names

#: Pre-PR numbers, measured on the tree this PR branched from with this
#: file's own methodology (6 registry benchmarks x a/b variants, same
#: service config).  Embedded so the committed artifact is self-contained.
BASELINE = {
    "hash_per_s": 5339.2,
    "copy_per_s": 53246.2,
    "encode_per_s": 4335.2,
    "warm_req_per_s_traced": 683.6,
    "warm_req_per_s_untraced": 794.5,
}

#: Search small enough that the cold populate phase does not dominate.
FAST_SEARCH = SearchConfig(population_size=4, epochs=1,
                           generations_per_epoch=1)

SERVICE_CONFIG = dict(batch_window_s=0.002, max_batch_size=64)


def bench(fn, min_time):
    """Calls per second of ``fn``, timed over at least ``min_time``."""
    fn()  # warm
    n = 1
    while True:
        t0 = time.perf_counter()
        for _ in range(n):
            fn()
        dt = time.perf_counter() - t0
        if dt >= min_time:
            return n / dt
        n = max(n + 1, int(n * (min_time / max(dt, 1e-9)) * 1.2))


def micro_costs(name, min_time):
    """The hash / copy / encode isolations, on one registry program."""
    out = {}
    session = Session(threads=4, search=FAST_SEARCH)
    try:
        program, _ = session._resolve(f"{name}:a")
        out["hash_per_s"] = bench(
            lambda: program_content_hash(program), min_time)
        out["hash_reference_per_s"] = bench(
            lambda: program_content_hash_reference(program), min_time)
        out["copy_per_s"] = bench(lambda: program.copy(), min_time)
        out["snapshot_per_s"] = bench(lambda: program.snapshot(), min_time)

        request = ScheduleRequest(program=f"{name}:a")
        response = session.schedule(request)
        out["encode_per_s"] = bench(
            lambda: json.dumps(response.to_dict()), min_time)
        # Populate the response cache, then time the fast-lane assembly
        # (echo splice over stored bytes) against the full encode above.
        session.store_response(request, session.schedule(request))
        entry = session.probe_response(request)
        assert entry is not None, "response cache did not populate"
        out["fast_encode_per_s"] = bench(
            lambda: session.assemble_response(entry, request).to_json(),
            min_time)
    finally:
        session.close()
    return out


def measure_warm(requests, cache_path, measure_s, tracer=None,
                 fast_lane=True):
    """End-to-end warm req/s through the service; also returns the
    fast-lane hit count over the measured requests."""
    session = Session(threads=4, search=FAST_SEARCH, cache_path=cache_path,
                      tracer=tracer)
    config = ServiceConfig(fast_lane=fast_lane, **SERVICE_CONFIG)
    try:
        with ServiceRunner(session, config) as runner:
            # Two unmeasured waves: populate the schedule cache, then let
            # the second (fully cache-served) wave feed the response cache.
            runner.schedule_many(list(requests))
            runner.schedule_many(list(requests))
            before_fast = runner.stats.fast_lane
            total = 0
            t0 = time.perf_counter()
            while time.perf_counter() - t0 < measure_s:
                total += len(runner.schedule_many(list(requests)))
            rate = total / (time.perf_counter() - t0)
            fast_hits = runner.stats.fast_lane - before_fast
        return rate, total, fast_hits
    finally:
        session.close()


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        default=bool(os.environ.get("REPRO_BENCH_SMOKE")),
                        help="seconds-long run: short timing windows, no "
                             "absolute 5x assertion (hit-rate is still "
                             "asserted)")
    parser.add_argument("--benchmarks", type=int, default=6,
                        help="registry benchmarks in the warm mix "
                             "(default 6, matching the baseline run)")
    parser.add_argument("--require-speedup", type=float, default=None,
                        help="fail when traced warm throughput is below "
                             "this multiple of the embedded baseline "
                             "(default: 5.0, or 0 in smoke mode)")
    parser.add_argument("--json", default="BENCH_warm_path.json",
                        help="persist the measured numbers to this JSON "
                             "file (empty string: print only)")
    args = parser.parse_args(argv)
    if args.require_speedup is None:
        args.require_speedup = 0.0 if args.smoke else 5.0
    min_time = 0.05 if args.smoke else 0.4
    measure_s = 0.5 if args.smoke else 2.0

    names = sorted(benchmark_names())[:args.benchmarks]
    requests = [ScheduleRequest(program=f"{name}:{variant}")
                for name in names for variant in ("a", "b")]
    print(f"{len(names)} benchmarks x 2 variants = {len(requests)} distinct "
          f"warm requests per wave")

    results = {
        "benchmark": "warm_path",
        "smoke": args.smoke,
        "benchmarks": len(names),
        "requests_per_wave": len(requests),
        "require_speedup": args.require_speedup,
        "baseline": dict(BASELINE),
    }

    micro = micro_costs(names[0], min_time)
    results.update(micro)
    print(f"hash:        {micro['hash_per_s']:10.1f}/s memoized vs "
          f"{micro['hash_reference_per_s']:10.1f}/s reference "
          f"({micro['hash_per_s'] / micro['hash_reference_per_s']:.1f}x)")
    print(f"copy:        {micro['snapshot_per_s']:10.1f}/s snapshot vs "
          f"{micro['copy_per_s']:10.1f}/s deep copy "
          f"({micro['snapshot_per_s'] / micro['copy_per_s']:.1f}x)")
    print(f"encode:      {micro['fast_encode_per_s']:10.1f}/s fast lane vs "
          f"{micro['encode_per_s']:10.1f}/s full encode "
          f"({micro['fast_encode_per_s'] / micro['encode_per_s']:.1f}x)")

    with tempfile.TemporaryDirectory() as tmp:
        modes = [
            # (key, tracer factory, fast lane)
            ("warm_req_per_s_traced", lambda: None, True),
            ("warm_req_per_s_sampled",
             lambda: Tracer(sample_rate=0.01), True),
            ("warm_req_per_s_untraced",
             lambda: Tracer(enabled=False), True),
            ("warm_req_per_s_slow_lane", lambda: None, False),
        ]
        hit_rate = 0.0
        for index, (key, make_tracer, fast_lane) in enumerate(modes):
            rate, total, fast_hits = measure_warm(
                requests, os.path.join(tmp, f"cache{index}.sqlite"),
                measure_s, tracer=make_tracer(), fast_lane=fast_lane)
            results[key] = rate
            if key == "warm_req_per_s_traced":
                hit_rate = fast_hits / max(1, total)
                results["fast_lane_hits"] = fast_hits
                results["fast_lane_requests"] = total
                results["fast_lane_hit_rate"] = hit_rate
            print(f"{key:26s} {rate:10.1f} req/s"
                  + (f"  (hit rate {hit_rate:.3f})"
                     if key == "warm_req_per_s_traced" else ""))

    traced = results["warm_req_per_s_traced"]
    untraced = results["warm_req_per_s_untraced"]
    sampled = results["warm_req_per_s_sampled"]
    results["tracing_overhead_pct"] = (1.0 - traced / untraced) * 100.0
    results["sampled_overhead_pct"] = (1.0 - sampled / untraced) * 100.0
    results["speedup_vs_baseline"] = \
        traced / BASELINE["warm_req_per_s_traced"]
    results["speedup_vs_slow_lane"] = \
        traced / results["warm_req_per_s_slow_lane"]
    print(f"tracing overhead:   {results['tracing_overhead_pct']:+.1f}% "
          f"full, {results['sampled_overhead_pct']:+.1f}% at 1% sampling")
    print(f"speedup: {results['speedup_vs_baseline']:.2f}x vs pre-PR "
          f"baseline, {results['speedup_vs_slow_lane']:.2f}x vs fast lane "
          f"off (live)")

    status = 0
    if results["fast_lane_hit_rate"] <= 0.0:
        print("FAILED: no measured request hit the fast lane",
              file=sys.stderr)
        status = 1
    if args.require_speedup and \
            results["speedup_vs_baseline"] < args.require_speedup:
        print(f"FAILED: speedup {results['speedup_vs_baseline']:.2f}x "
              f"below the required {args.require_speedup:.2f}x",
              file=sys.stderr)
        status = 1
    results["passed"] = status == 0
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    return status


if __name__ == "__main__":
    sys.exit(main())

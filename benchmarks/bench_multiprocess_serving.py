#!/usr/bin/env python3
"""Multi-process serving: warm-traffic throughput and priority scheduling.

Two measurements back the worker-pool design:

* **warm throughput** — the same warm request mix (every registry benchmark,
  A and B variants, repeated in distinct waves so nothing coalesces) driven
  through (a) the single-process async service and (b) the service scattered
  over a :class:`~repro.serving.workers.WorkerPool`.  Warm requests are pure
  cache hits — hashing, lookups, IR copies — i.e. GIL-bound Python, which is
  exactly what the process pool parallelizes.  The acceptance bar is **>= 2x
  at 4 workers**.
* **priority under saturation** — the queue is flooded with priority-9
  requests (distinct parameterizations, so each is real work), then
  priority-0 requests arrive late.  With the service's priority queue the
  late urgent requests drain first: every priority-0 request must complete
  before the queued priority-9 tail.

The throughput measurement needs real cores: a process pool parallelizes
GIL-bound Python, so on a box with fewer than ~4 usable CPUs the workers
time-slice one core and the pool can only add IPC overhead.  The benchmark
prints the usable-core count, asserts the 2x bar only where it is
physically meaningful (>= 4 cores), and reports the measured numbers
everywhere.

Results are persisted to ``BENCH_multiprocess.json`` (``--json`` overrides
the path, ``--json ''`` disables) so the perf trajectory is tracked across
PRs like the other benchmark outputs.

Run: ``PYTHONPATH=src python benchmarks/bench_multiprocess_serving.py``
(set ``REPRO_BENCH_SMOKE=1`` for a seconds-long CI-sized run).
"""

import argparse
import json
import os
import platform
import sys
import tempfile
import time

from repro.api import ScheduleRequest, SearchConfig, Session
from repro.serving import (ServiceConfig, ServiceRunner, WorkerConfig,
                           WorkerPool)
from repro.workloads.registry import benchmark_names

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

#: Search small enough that cold misses do not dominate the warm phases.
FAST_SEARCH = SearchConfig(population_size=4, epochs=1,
                           generations_per_epoch=1)


def warm_requests(names, variants=("a", "b")):
    return [ScheduleRequest(program=f"{name}:{variant}")
            for name in names for variant in variants]


#: Unmeasured waves that populate the cache and reach steady state (hot
#: layers on every worker; interpreter warm paths) before timing starts.
WARMUP_WAVES = 1 if SMOKE else 3


def drive_waves(runner, requests, waves):
    """Submit ``waves`` concurrent waves of distinct requests, sequentially.

    Each wave holds no duplicates, so nothing coalesces and every request
    does real cache work — the waves model distinct user bursts over one
    warm cache.
    """
    for _ in range(WARMUP_WAVES):
        runner.schedule_many(list(requests))
    total = 0
    started = time.perf_counter()
    for _ in range(waves):
        responses = runner.schedule_many(list(requests))
        total += len(responses)
    elapsed = time.perf_counter() - started
    return total / elapsed, elapsed, total


def measure_single_process(names, waves, threads, cache_path, trace=True):
    session = Session(threads=threads, cache_path=cache_path,
                      search=FAST_SEARCH)
    session.tracer.enabled = trace
    requests = warm_requests(names)
    config = ServiceConfig(batch_window_s=0.002, max_batch_size=64)
    try:
        with ServiceRunner(session, config) as runner:
            runner.schedule_many(list(requests))  # populate the cache
            return drive_waves(runner, requests, waves)
    finally:
        session.close()


def measure_pool(names, waves, threads, workers, cache_path, trace=True):
    config = WorkerConfig(threads=threads, cache_path=cache_path,
                          search=FAST_SEARCH)
    requests = warm_requests(names)
    service_config = ServiceConfig(batch_window_s=0.002, max_batch_size=64)
    session = Session(threads=threads)  # coordinator bookkeeping only
    session.tracer.enabled = trace
    try:
        with WorkerPool(workers, config) as pool:
            with ServiceRunner(session, service_config, pool=pool) as runner:
                runner.schedule_many(list(requests))  # populate the cache
                return drive_waves(runner, requests, waves)
    finally:
        session.close()


def measure_priority(names, threads, workers, cache_path, bulk=24, urgent=6):
    """Flood with priority-9 work, then submit priority-0 work late; return
    the completion ranks of both classes."""
    import threading

    config = WorkerConfig(threads=threads, cache_path=cache_path,
                          search=FAST_SEARCH)
    # Small batches keep the queue deep (only one batch is ever in flight,
    # everything else stays queued and reorderable), so priorities matter.
    service_config = ServiceConfig(batch_window_s=0.001, max_batch_size=2)
    session = Session(threads=threads)
    completions = []
    lock = threading.Lock()

    def submit(runner, request, tag):
        runner.schedule(request)
        with lock:
            completions.append(tag)

    def distinct(name, index, priority):
        # Distinct parameters -> distinct cache keys -> real queued work.
        from repro.workloads.registry import benchmark
        sizes = dict(benchmark(name.split(":")[0]).sizes("small"))
        key = sorted(sizes)[0]
        sizes[key] = sizes[key] + index + 1
        return ScheduleRequest(program=name, parameters=sizes,
                               priority=priority)

    try:
        with WorkerPool(workers, config) as pool:
            with ServiceRunner(session, service_config, pool=pool) as runner:
                name = f"{sorted(names)[0]}:a"
                threads_list = []
                for index in range(bulk):
                    thread = threading.Thread(
                        target=submit, args=(
                            runner, distinct(name, index, 9), "p9"))
                    thread.start()
                    threads_list.append(thread)
                # Submit the urgent requests mid-flood: wait until the first
                # batch completed (the batcher is live) while most of the
                # bulk work is still queued.
                deadline = time.time() + 60
                while time.time() < deadline:
                    with lock:
                        done = len(completions)
                    if done >= max(1, bulk // 8):
                        break
                    time.sleep(0.005)
                for index in range(urgent):
                    thread = threading.Thread(
                        target=submit, args=(
                            runner, distinct(name, bulk + index, 0), "p0"))
                    thread.start()
                    threads_list.append(thread)
                for thread in threads_list:
                    thread.join()
    finally:
        session.close()
    ranks = {"p0": [], "p9": []}
    for rank, tag in enumerate(completions):
        ranks[tag].append(rank)
    return ranks


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--threads", type=int, default=4)
    parser.add_argument("--waves", type=int, default=2 if SMOKE else 8,
                        help="measured warm waves over the full request mix")
    parser.add_argument("--benchmarks", type=int, default=0,
                        help="limit the registry benchmarks used (0: all)")
    parser.add_argument("--skip-priority", action="store_true")
    parser.add_argument("--no-trace", dest="trace", action="store_false",
                        default=True,
                        help="disable request tracing for every phase and "
                             "skip the tracing-overhead A/B measurement")
    parser.add_argument("--require-speedup", type=float, default=-1.0,
                        help="exit non-zero when the pool speedup is below "
                             "this bar (default: 2.0 when >= 4 usable "
                             "cores, otherwise report-only)")
    parser.add_argument("--json", default="BENCH_multiprocess.json",
                        help="persist the measured numbers to this JSON "
                             "file (empty string: print only)")
    args = parser.parse_args(argv)

    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        cores = os.cpu_count() or 1
    if args.require_speedup < 0:
        # The 2x bar is the acceptance criterion for 4 workers on >= 4
        # cores; smaller pools (or boxes) can only report.
        args.require_speedup = 2.0 if (cores >= 4 and args.workers >= 4) \
            else 0.0

    names = sorted(benchmark_names())
    if SMOKE and not args.benchmarks:
        args.benchmarks = 6
    if args.benchmarks:
        names = names[:args.benchmarks]
    mix = len(names) * 2
    print(f"{len(names)} benchmarks x 2 variants = {mix} distinct warm "
          f"requests per wave, {args.waves} waves, "
          f"{cores} usable cores for {args.workers} workers")
    if cores < 4:
        print(f"NOTE: only {cores} usable core(s) — the pool time-slices "
              f"instead of parallelizing here, so the 2x bar is not "
              f"asserted (it needs >= 4 cores)")

    # No timestamp field: the artifact is committed, so a wall-clock stamp
    # would make every regeneration a spurious diff even when the measured
    # numbers are unchanged.
    results = {
        "benchmark": "multiprocess_serving",
        "platform": platform.platform(),
        "smoke": SMOKE,
        "usable_cores": cores,
        "workers": args.workers,
        "threads": args.threads,
        "waves": args.waves,
        "benchmarks": len(names),
        "requests_per_wave": mix,
        "require_speedup": args.require_speedup,
    }
    results["tracing_enabled"] = args.trace
    with tempfile.TemporaryDirectory() as tmp:
        single_rate, single_s, total = measure_single_process(
            names, args.waves, args.threads,
            os.path.join(tmp, "single.sqlite"), trace=args.trace)
        print(f"single-process: {single_rate:8.1f} warm req/s "
              f"({total} requests, {single_s:.3f}s)")

        pool_rate, pool_s, total = measure_pool(
            names, args.waves, args.threads, args.workers,
            os.path.join(tmp, "pool.sqlite"), trace=args.trace)
        print(f"pool x{args.workers}:       {pool_rate:8.1f} warm req/s "
              f"({total} requests, {pool_s:.3f}s)")
        speedup = pool_rate / single_rate
        print(f"speedup:        {speedup:8.2f}x "
              f"({args.workers} workers vs in-process service)")
        results.update({
            "single_process_req_per_s": single_rate,
            "single_process_elapsed_s": single_s,
            "pool_req_per_s": pool_rate,
            "pool_elapsed_s": pool_s,
            "requests_measured": total,
            "speedup": speedup,
        })

        if args.trace:
            # Tracing-overhead A/B: the traced rate above vs the same
            # single-process measurement with the tracer disabled.
            untraced_rate, untraced_s, _ = measure_single_process(
                names, args.waves, args.threads,
                os.path.join(tmp, "untraced.sqlite"), trace=False)
            overhead_pct = (1.0 - single_rate / untraced_rate) * 100.0
            print(f"tracing:        {single_rate:8.1f} traced vs "
                  f"{untraced_rate:8.1f} untraced warm req/s "
                  f"({overhead_pct:+.1f}% overhead)")
            results["tracing"] = {
                "traced_req_per_s": single_rate,
                "untraced_req_per_s": untraced_rate,
                "untraced_elapsed_s": untraced_s,
                "overhead_pct": overhead_pct,
            }

        if not args.skip_priority:
            ranks = measure_priority(
                names, args.threads, args.workers,
                os.path.join(tmp, "priority.sqlite"),
                bulk=8 if SMOKE else 24, urgent=3 if SMOKE else 6)
            last_p0 = max(ranks["p0"])
            last_p9 = max(ranks["p9"])
            overtaken = sum(1 for rank in ranks["p9"] if rank > last_p0)
            print(f"priority: {len(ranks['p0'])} late priority-0 requests "
                  f"finished by completion #{last_p0} "
                  f"(last priority-9: #{last_p9}; "
                  f"{overtaken} queued p9 requests overtaken)")
            results["priority"] = {
                "urgent_requests": len(ranks["p0"]),
                "bulk_requests": len(ranks["p9"]),
                "last_urgent_rank": last_p0,
                "last_bulk_rank": last_p9,
                "bulk_overtaken": overtaken,
                "urgent_overtook_bulk": last_p0 < last_p9,
            }
            if last_p0 >= last_p9:
                results["passed"] = False
                _persist(args.json, results)
                print("priority FAILED: priority-0 did not overtake the "
                      "queued priority-9 tail", file=sys.stderr)
                return 1

    status = 0
    if args.require_speedup and speedup < args.require_speedup:
        print(f"speedup {speedup:.2f}x below the required "
              f"{args.require_speedup:.2f}x", file=sys.stderr)
        status = 1
    results["passed"] = status == 0
    _persist(args.json, results)
    return status


def _persist(path, results):
    """Write the measured numbers next to the other BENCH_*.json outputs."""
    if not path:
        return
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
    print(f"wrote {path}")


if __name__ == "__main__":
    sys.exit(main())

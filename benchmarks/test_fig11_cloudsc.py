"""Figure 11: CLOUDSC full-model sequential runtime (Fortran, C, DaCe, daisy)."""

from bench_helpers import attach_rows
from repro.experiments import figure11


def test_figure11_cloudsc_sequential(benchmark, settings):
    rows = benchmark.pedantic(figure11.run, args=(settings,), rounds=1, iterations=1)
    attach_rows(benchmark, rows)

    runtimes = {row["version"]: row["normalized_runtime"] for row in rows
                if row.get("version") in figure11.VERSIONS}
    # Paper: daisy is ~10% faster than the hand-tuned Fortran; C and DaCe are
    # slower than Fortran.
    assert runtimes["daisy"] < 1.0
    assert runtimes["c"] >= 1.0
    assert runtimes["dace"] >= runtimes["c"]

"""Figure 9: NPBench-style Python implementations under daisy, daisy without
normalization, NumPy, Numba, and DaCe."""

from bench_helpers import attach_rows
from repro.experiments import figure9


def test_figure9_python_frameworks(benchmark, settings):
    rows = benchmark.pedantic(figure9.run, args=(settings,), rounds=1, iterations=1)
    attach_rows(benchmark, rows)

    summary = {row["framework"]: row["geo_mean_vs_daisy"]
               for row in figure9.framework_summary(rows)}
    # daisy outperforms NumPy and Numba clearly and is competitive with DaCe
    # (paper: 9.04x, 3.92x, 1.47x).
    assert summary["numpy"] > 1.5
    assert summary["numba"] > 1.0
    assert summary["dace"] > 0.9
    # Without normalization the same database helps much less.
    assert summary["daisy_no_norm"] >= 1.0
    benchmark.extra_info["summary"] = {k: float(v) for k, v in summary.items()}

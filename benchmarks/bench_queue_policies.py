#!/usr/bin/env python3
"""Queue-policy comparison on a starvation-prone heavy-tail request mix.

Drives the async scheduling service once per registered policy with the
same open-loop workload: a backlog of priority-9 bulk requests queued up
front, then a sustained stream whose priorities are Zipf-distributed
(weight ``1/(p+1)^2`` — urgent classes dominate) arriving faster than the
service drains.  The service executor is a synthetic session with a fixed
per-request cost, so the measured per-class latencies reflect the queue
discipline alone, not scheduler noise.

The question each policy answers differently is what happens to the rare
low classes while the urgent stream saturates the queue:

* ``strict-priority`` parks them until the stream ends (worst-class p99
  ~= the whole run: starvation, by design),
* ``weighted-fair`` and ``aging`` bound the worst-class p99 well below
  the run length (the starvation-proof disciplines),
* ``edf`` follows the deadlines the mix assigns (tight for urgent
  classes), which again sacrifices the most patient class.

A second section demonstrates the online feedback loop on a real session:
a transferred recipe is predicted-best for a GEMM nest, its executed
schedule measures far worse than predicted, and after
``record_measurement`` the database ranks a rival entry first —
predicted-best and measured-best disagree, and the query now follows the
measurement.

Results are persisted to ``BENCH_policies.json`` (``--json`` overrides,
empty disables).  ``--assert-fair`` exits non-zero if a starvation-proof
policy starved its worst class (the CI guard).

Run: ``PYTHONPATH=src python benchmarks/bench_queue_policies.py``
(``--smoke`` or ``REPRO_BENCH_SMOKE=1`` for a seconds-long CI-sized run).
"""

import argparse
import asyncio
import json
import math
import os
import random
import sys
import time
import types
from collections import defaultdict

from repro.api import ScheduleRequest, SearchConfig, Session
from repro.observability import MetricsRegistry
from repro.scheduler.database import TuningDatabase, apply_feedback_record
from repro.scheduler.embedding import PerformanceEmbedding
from repro.serving import SchedulingService, ServiceConfig, policy_names
from repro.transforms.recipe import Recipe

#: Worst-class p99 at or beyond this fraction of the run length counts as
#: starvation: the class effectively waited for the whole experiment.
STARVATION_FRACTION = 0.8


def _stub_response(request):
    result = types.SimpleNamespace(
        program=types.SimpleNamespace(name=str(request.program)))
    result.copy = lambda: result
    return types.SimpleNamespace(
        result=result, scheduler="synthetic", program=result.program,
        runtime_s=0.0, normalized=False, input_hash=None,
        canonical_hash=None, from_cache=False,
        normalization_cache_hit=False)


class SyntheticSession:
    """Session stand-in with a deterministic per-request cost.

    Scheduling a registry benchmark takes whatever the search takes; here
    every request costs exactly ``service_time_s``, so per-class latency
    differences between two runs are the queue discipline's doing.
    """

    def __init__(self, service_time_s):
        self.service_time_s = service_time_s
        self.metrics = MetricsRegistry()

    def schedule_batch(self, requests, max_workers=None,
                       return_exceptions=False):
        responses = []
        for request in requests:
            time.sleep(self.service_time_s)
            responses.append(_stub_response(request))
        return responses

    def record_coalesced(self, count=1):
        pass


def build_mix(stream_count, bulk_count, service_time_s, rng):
    """The starvation-prone mix: a bulk backlog plus a Zipf-heavy stream.

    Stream priorities are drawn with weight ``1/(p+1)^2``: class 0 carries
    most of the traffic, class 9 is rare.  Every request gets a
    priority-proportional deadline (tight for urgent classes) so ``edf``
    has something to order by; the other policies ignore it.
    """
    deadline_unit = 30.0 * service_time_s
    bulk = [ScheduleRequest(program=f"bulk-{index}", priority=9,
                            deadline_s=10 * deadline_unit)
            for index in range(bulk_count)]
    weights = [1.0 / (priority + 1) ** 2 for priority in range(10)]
    priorities = rng.choices(range(10), weights=weights, k=stream_count)
    stream = [ScheduleRequest(program=f"stream-{index}", priority=priority,
                              deadline_s=(priority + 1) * deadline_unit)
              for index, priority in enumerate(priorities)]
    return bulk, stream


async def drive(policy, bulk, stream, service_time_s, arrival_s):
    """One open-loop run: queue the backlog, then stream arrivals faster
    than service; returns per-class latencies and the makespan."""
    session = SyntheticSession(service_time_s)
    config = ServiceConfig(max_batch_size=1, batch_window_s=0.0,
                           fast_lane=False, policy=policy,
                           aging_interval_s=2.0 * service_time_s)
    service = SchedulingService(session, config)
    await service.start()
    loop = asyncio.get_running_loop()
    latencies = defaultdict(list)

    async def submit(request):
        _, timing = await service.schedule_timed(request)
        latencies[request.priority].append(timing.total_s)

    try:
        started = loop.time()
        tasks = [asyncio.ensure_future(submit(request)) for request in bulk]
        await asyncio.sleep(0)  # the backlog is queued before the stream
        for request in stream:
            tasks.append(asyncio.ensure_future(submit(request)))
            await asyncio.sleep(arrival_s)
        await asyncio.gather(*tasks)
        makespan = loop.time() - started
    finally:
        await service.stop()
    return latencies, makespan


def percentile(samples, q):
    ordered = sorted(samples)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


def summarize(latencies, makespan):
    classes = {}
    worst_p99 = 0.0
    for priority in sorted(latencies):
        samples = latencies[priority]
        p99 = percentile(samples, 0.99)
        worst_p99 = max(worst_p99, p99)
        classes[str(priority)] = {
            "count": len(samples),
            "p50_s": round(percentile(samples, 0.5), 4),
            "p99_s": round(p99, 4),
            "max_s": round(max(samples), 4),
        }
    return {
        "classes": classes,
        "worst_class_p99_s": round(worst_p99, 4),
        "makespan_s": round(makespan, 4),
        "starved": worst_p99 >= STARVATION_FRACTION * makespan,
    }


def feedback_flip_demo():
    """Predicted-best vs measured-best on a real GEMM schedule.

    The session schedules GEMM and reports the executed recipe as having
    measured 100x worse than its prediction; a database holding that recipe
    (the transferred, predicted-best entry) and a farther rival must flip
    its ranking once the measurement is applied.
    """
    session = Session(threads=4,
                      search=SearchConfig(population_size=4, epochs=1,
                                          generations_per_epoch=1))
    try:
        response = session.schedule("gemm:a")
        records = [record for record
                   in session.measurement_feedback(
                       response, float(response.runtime_s) * 100.0)
                   if record.get("embedding")]
    finally:
        session.close()
    record = records[0]
    base = list(record["embedding"])
    rival_vector = list(base)
    rival_vector[0] += 1.5  # farther from the probe than the transfer
    probe = PerformanceEmbedding("probe",
                                 tuple(value + (0.5 if index == 0 else 0.0)
                                       for index, value in enumerate(base)))
    database = TuningDatabase()
    transferred = database.add(
        PerformanceEmbedding("transferred", tuple(base)),
        Recipe.from_dict(record["recipe"]), runtime=float(response.runtime_s))
    database.add(PerformanceEmbedding("rival", tuple(rival_vector)),
                 Recipe(name="rival"), runtime=float(response.runtime_s))
    predicted_best = database.best_match(probe).label
    outcome = apply_feedback_record(dict(record), database)
    measured_best = database.best_match(probe).label
    return {
        "predicted_best": predicted_best,
        "measured_best": measured_best,
        "flipped": predicted_best != measured_best,
        "outcome": outcome,
        "bias": round(transferred.bias(), 4),
        "program_runtime_s": float(response.runtime_s),
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="seconds-long CI-sized run")
    parser.add_argument("--requests", type=int, default=None,
                        help="stream length (default 400, smoke 60)")
    parser.add_argument("--bulk", type=int, default=None,
                        help="priority-9 backlog queued before the stream "
                             "(default: stream length / 40)")
    parser.add_argument("--service-time", type=float, default=None,
                        help="synthetic per-request cost in seconds "
                             "(default 0.005, smoke 0.003)")
    parser.add_argument("--seed", type=int, default=0,
                        help="mix generator seed")
    parser.add_argument("--json", default="BENCH_policies.json",
                        help="write results here ('' disables)")
    parser.add_argument("--assert-fair", action="store_true",
                        help="exit 1 if weighted-fair or aging starved")
    args = parser.parse_args()
    smoke = args.smoke or bool(os.environ.get("REPRO_BENCH_SMOKE"))
    stream_count = args.requests or (60 if smoke else 400)
    service_time = args.service_time or (0.003 if smoke else 0.005)
    arrival_s = service_time / 2.0  # open loop: arrivals outpace service
    # The backlog scales with the stream: class 9 holds ~1/15 of the
    # weighted-fair share, so a backlog deeper than its share of the run
    # would finish late under *any* work-conserving fair discipline.
    bulk_count = (args.bulk if args.bulk is not None
                  else max(2, stream_count // 40))

    bulk, stream = build_mix(stream_count, bulk_count, service_time,
                             random.Random(args.seed))
    results = {
        "smoke": smoke,
        "requests": stream_count,
        "bulk": bulk_count,
        "service_time_s": service_time,
        "arrival_interval_s": arrival_s,
        "starvation_fraction": STARVATION_FRACTION,
        "policies": {},
    }
    print(f"{stream_count} stream requests + {bulk_count} bulk backlog, "
          f"service {service_time * 1000:.1f}ms, "
          f"arrival every {arrival_s * 1000:.1f}ms")
    for policy in policy_names():
        latencies, makespan = asyncio.run(
            drive(policy, bulk, stream, service_time, arrival_s))
        summary = summarize(latencies, makespan)
        results["policies"][policy] = summary
        print(f"{policy + ':':17s} worst-class p99 "
              f"{summary['worst_class_p99_s'] * 1000:8.1f}ms of "
              f"{summary['makespan_s'] * 1000:8.1f}ms makespan"
              f"{'  ** starved **' if summary['starved'] else ''}")

    demo = feedback_flip_demo()
    results["feedback_demo"] = demo
    print(f"feedback demo: predicted-best {demo['predicted_best']!r} -> "
          f"measured-best {demo['measured_best']!r} "
          f"(bias {demo['bias']}, {'flipped' if demo['flipped'] else 'held'})")

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")

    if args.assert_fair:
        starved = [policy for policy in ("weighted-fair", "aging")
                   if results["policies"][policy]["starved"]]
        if starved:
            print(f"FAIL: starvation-proof policies starved: {starved}")
            return 1
        if not demo["flipped"]:
            print("FAIL: feedback demo did not flip the ranking")
            return 1
        print("OK: weighted-fair and aging bound the worst-class p99; "
              "feedback flipped the ranking")
    return 0


if __name__ == "__main__":
    sys.exit(main())

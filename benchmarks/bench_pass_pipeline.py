"""Pass-pipeline benchmark: cold vs. warm-analysis normalization.

The pass framework's :class:`~repro.passes.AnalysisManager` memoizes per-nest
analyses (dependence edges for fission, minimal-permutation searches for
stride minimization) keyed by nest content.  This benchmark normalizes a
stream of equivalent loop nests — every GEMM loop order, repeated — twice:

* **cold**: a fresh ``AnalysisManager`` per program, i.e. every analysis is
  recomputed (the pre-PR-3 behavior);
* **warm**: one shared manager, i.e. repeated/equivalent nests are served
  from the memo the way the normalization cache serves batch traffic.

Warm must beat cold by a clear margin, and the per-pass timing breakdown of
both runs is attached to the benchmark report.  Set ``REPRO_BENCH_SMOKE=1``
for the reduced CI configuration.
"""

import itertools
import os
import time

from bench_helpers import attach_rows
from repro.ir import ProgramBuilder
from repro.normalization import normalize
from repro.passes import AnalysisManager


def _build_gemm(order):
    """GEMM (scaling + contraction) with a configurable contraction order."""
    bounds = {"i": "NI", "j": "NJ", "k": "NK"}
    b = ProgramBuilder(f"gemm_{''.join(order)}", parameters=["NI", "NJ", "NK"])
    b.add_array("C", ("NI", "NJ"))
    b.add_array("A", ("NI", "NK"))
    b.add_array("B", ("NK", "NJ"))
    b.add_scalar("alpha")
    b.add_scalar("beta")
    with b.loop("i", 0, "NI"):
        with b.loop("j", 0, "NJ"):
            b.assign(("C", "i", "j"), b.read("C", "i", "j") * b.read("beta"))
    with b.loop(order[0], 0, bounds[order[0]]):
        with b.loop(order[1], 0, bounds[order[1]]):
            with b.loop(order[2], 0, bounds[order[2]]):
                b.assign(("C", "i", "j"),
                         b.read("C", "i", "j") + b.read("alpha")
                         * b.read("A", "i", "k") * b.read("B", "k", "j"))
    return b.finish()


def _program_stream(repeats):
    """``repeats`` copies of GEMM in each of its six loop orders."""
    programs = []
    for _ in range(repeats):
        for order in itertools.permutations(("i", "j", "k")):
            programs.append(_build_gemm(order))
    return programs


def _timed_run(programs, shared_manager):
    manager = AnalysisManager()
    timings = {}
    started = time.perf_counter()
    for program in programs:
        _, report = normalize(
            program,
            analysis=manager if shared_manager else AnalysisManager())
        for name, wall in report.pass_timings().items():
            timings[name] = timings.get(name, 0.0) + wall
    elapsed = time.perf_counter() - started
    return elapsed, timings, manager.stats()


def test_warm_analysis_beats_cold_normalization(benchmark):
    repeats = 2 if os.environ.get("REPRO_BENCH_SMOKE") else 8
    programs = _program_stream(repeats)

    cold_s, cold_timings, _ = _timed_run(programs, shared_manager=False)

    def warm():
        return _timed_run(programs, shared_manager=True)

    warm_s, warm_timings, warm_stats = benchmark.pedantic(
        warm, rounds=1, iterations=1)

    rows = [{"run": "cold", "wall_time_s": cold_s, **cold_timings},
            {"run": "warm", "wall_time_s": warm_s, **warm_timings}]
    attach_rows(benchmark, rows)
    benchmark.extra_info["speedup"] = cold_s / warm_s
    benchmark.extra_info["analysis"] = warm_stats

    # The shared manager actually served repeat analyses ...
    assert warm_stats["hits"] > warm_stats["misses"]
    # ... and memoized normalization is measurably faster than cold runs
    # (observed ~3-4x; assert a conservative margin to stay robust on noisy
    # CI machines).
    assert warm_s < cold_s * 0.75, \
        f"warm {warm_s:.4f}s not faster than cold {cold_s:.4f}s"
    # Stride minimization dominates the cold runs and is where the memo wins.
    assert warm_timings["stride-minimization"] < \
        cold_timings["stride-minimization"]

"""Figure 1: GEMM loop-order sensitivity of auto-schedulers."""

from bench_helpers import attach_rows
from repro.experiments import figure1


def test_figure1_gemm_loop_orders(benchmark, settings):
    rows = benchmark.pedantic(figure1.run, args=(settings,), rounds=1, iterations=1)
    attach_rows(benchmark, rows)

    daisy = [row["relative_to_best_order"] for row in rows if row["scheduler"] == "daisy"]
    baselines = [row["relative_to_best_order"] for row in rows
                 if row["scheduler"] in ("polly", "icc")]
    # daisy is insensitive to the loop order; the baselines are not.
    assert max(daisy) < 1.2
    assert max(baselines) > 1.2

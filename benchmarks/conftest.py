"""Shared configuration for the benchmark harness.

Every benchmark target regenerates one table or figure of the paper.  The
pytest-benchmark timings measure the harness itself (normalization,
scheduling, cost-model evaluation); the *content* of each figure — the rows
the paper reports — is attached to the benchmark's ``extra_info`` so that
``pytest benchmarks/ --benchmark-only`` doubles as the reproduction run.
"""

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(__file__), "..", "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, os.path.abspath(_SRC))

from repro.experiments import ExperimentSettings  # noqa: E402


@pytest.fixture(scope="session")
def settings():
    """Experiment settings used by the benchmark harness.

    The full 15-benchmark suite is used with a reduced evolutionary-search
    budget so that one benchmark session finishes in minutes; pass
    ``REPRO_FULL_SEARCH=1`` to use the paper's search configuration.
    """
    if os.environ.get("REPRO_FULL_SEARCH"):
        return ExperimentSettings()
    return ExperimentSettings.fast()

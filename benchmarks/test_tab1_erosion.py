"""Table 1: the CLOUDSC cloud-erosion loop nest before and after
normalization (runtime and L1 cache behavior)."""

from bench_helpers import attach_rows
from repro.experiments import table1


def test_table1_erosion_kernel(benchmark, settings):
    rows = benchmark.pedantic(table1.run, args=(settings,), rounds=1, iterations=1)
    attach_rows(benchmark, rows)

    by_version = {row["version"]: row for row in rows
                  if row.get("version") in ("original", "optimized")}
    original = by_version["original"]
    optimized = by_version["optimized"]

    # Paper: 0.040 ms -> 0.006 ms per iteration, 2632 -> 1281 L1 loads,
    # 963 -> 178 evictions.  The shape must hold: faster, fewer loads/evicts.
    assert optimized["single_iteration_ms"] < original["single_iteration_ms"]
    assert optimized["klev_iterations_ms"] < original["klev_iterations_ms"]
    assert optimized["l1_loads"] < original["l1_loads"]
    assert optimized["l1_evicts"] <= original["l1_evicts"]

"""Figure 7: ablation — clang, transfer tuning only, normalization only, and
the full normalization+transfer-tuning pipeline."""

from bench_helpers import attach_rows
from repro.experiments import figure7, geometric_mean


def test_figure7_ablation(benchmark, settings):
    rows = benchmark.pedantic(figure7.run, args=(settings,), rounds=1, iterations=1)
    attach_rows(benchmark, rows)

    def geo(configuration):
        return geometric_mean([row["normalized_runtime"] for row in rows
                               if row["configuration"] == configuration])

    full = geo("norm+opt")
    # The full pipeline is the best configuration on (geometric) average and
    # beats the plain compiler by a large factor (paper: 21.13x).
    assert full <= geo("opt") + 1e-9
    assert full <= geo("norm") + 1e-9
    assert geo("clang") / full > 2.0

"""Ablation of the two normalization criteria in isolation.

DESIGN.md calls out maximal loop fission and stride minimization as the two
normalization criteria.  This bench drops each one in turn — by selecting
the corresponding registry-named pipeline, no ad-hoc option flags — inside
the full daisy pipeline and reports the geometric-mean runtime across the B
variants (the structurally "unfriendly" implementations), showing that both
criteria contribute and that the combination is the strongest configuration.
"""

from bench_helpers import attach_rows
from repro.experiments.common import (ExperimentSettings, geometric_mean,
                                      make_session)

#: Configuration label -> registry-named normalization pipeline.
CONFIGURATIONS = {
    "full": "a-priori",
    "no_fission": "no-fission",
    "no_stride_min": "no-stride",
    "none": "identity",
}


def _run(settings: ExperimentSettings):
    specs = settings.selected_benchmarks()
    rows = []
    for label, pipeline in CONFIGURATIONS.items():
        session = make_session(settings, seed_specs=specs, pipeline=pipeline)
        for spec in specs:
            parameters = spec.sizes(settings.size)
            runtime = session.estimate(spec.variant("b"), parameters)
            rows.append({"configuration": label, "benchmark": spec.name,
                         "runtime_s": runtime})
    return rows


def test_normalization_criteria_ablation(benchmark, settings):
    # A representative subset keeps this ablation quick while covering the
    # three benchmark families (BLAS-3, BLAS-2, stencil).
    subset = ExperimentSettings.fast(
        benchmarks=["gemm", "2mm", "atax", "mvt", "jacobi-2d", "syrk"])
    rows = benchmark.pedantic(_run, args=(subset,), rounds=1, iterations=1)
    attach_rows(benchmark, rows)

    def geo(label):
        return geometric_mean([row["runtime_s"] for row in rows
                               if row["configuration"] == label])

    full = geo("full")
    # Dropping both criteria is the worst configuration, and the full pipeline
    # is clearly better than no normalization.  Dropping a single criterion
    # lands in between (within the noise of the randomized recipe search).
    assert geo("none") >= full
    assert geo("none") >= geo("no_fission") * 0.95
    assert geo("none") >= geo("no_stride_min") * 0.95
    assert full <= min(geo("no_fission"), geo("no_stride_min")) * 1.3
    benchmark.extra_info["geo_means"] = {label: float(geo(label))
                                         for label in CONFIGURATIONS}

"""Figure 6: A/B robustness of daisy vs Polly, icc, and Tiramisu on the 15
PolyBench benchmarks (LARGE datasets)."""

from bench_helpers import attach_rows
from repro.experiments import figure6


def test_figure6_ab_robustness(benchmark, settings):
    rows = benchmark.pedantic(figure6.run, args=(settings,), rounds=1, iterations=1)
    attach_rows(benchmark, rows)

    summary = figure6.robustness_summary(rows)
    by_scheduler = {row["scheduler"]: row for row in summary}

    # daisy: A and B variants perform the same on essentially all benchmarks
    # (paper: mean difference 5%, with correlation/covariance as the noted
    # exception where a loop nest fails to lift).
    assert by_scheduler["daisy"]["median_ab_ratio"] < 1.1
    assert by_scheduler["daisy"]["robust_benchmarks"] >= 12
    # daisy outperforms every baseline in the geometric mean (paper: 2.31x
    # over Polly, 1.58x over icc, 2.89x over Tiramisu).
    for name in ("polly", "icc", "tiramisu"):
        assert by_scheduler[name]["geo_speedup_of_daisy_A"] > 1.0
        assert by_scheduler[name]["geo_speedup_of_daisy_B"] > 1.0
    benchmark.extra_info["summary"] = [
        {k: (float(v) if isinstance(v, float) else v) for k, v in row.items()}
        for row in summary]

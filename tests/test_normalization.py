"""Tests for the normalization passes: loop normal form, maximal fission,
stride minimization, scalar expansion, and the combined pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import build_gemm, build_stencil, build_vector_add
from repro.interp import programs_equivalent, run_program
from repro.ir import ProgramBuilder, to_pseudocode
from repro.normalization import (NormalizationOptions, PassManager,
                                 canonicalize_iterator_names, contract_arrays,
                                 expand_scalars, find_minimal_permutation,
                                 is_maximally_fissioned, maximal_loop_fission,
                                 normalize, normalize_loop_bounds,
                                 normalize_program, normalize_program_bounds)
from repro.workloads.polybench import build_gemm_a, build_gemm_b

PARAMS = {"NI": 8, "NJ": 9, "NK": 10}


class TestLoopNormalForm:
    def test_bounds_rewritten_to_zero_base(self):
        b = ProgramBuilder("p", parameters=["N"])
        b.add_array("x", ("N",))
        with b.loop("i", 2, "N", 3):
            b.assign(("x", "i"), 1.0)
        program = b.finish()
        reference = program.copy()
        normalize_program_bounds(program)
        loop = program.body[0]
        assert str(loop.start) == "0" and str(loop.step) == "1"
        assert programs_equivalent(reference, program, {"N": 20})

    def test_already_normal_loops_untouched(self, vector_add_program):
        before = to_pseudocode(vector_add_program)
        normalize_program_bounds(vector_add_program)
        assert to_pseudocode(vector_add_program) == before

    def test_canonical_iterator_names(self, gemm_program):
        canonicalize_iterator_names(gemm_program)
        iterators = [loop.iterator for loop in gemm_program.body[1].iter_loops()]
        assert iterators == ["i0", "i1", "i2"]

    def test_canonicalization_preserves_semantics(self):
        program = build_gemm()
        renamed = program.copy()
        canonicalize_iterator_names(renamed)
        assert programs_equivalent(program, renamed, PARAMS)


class TestMaximalFission:
    def test_independent_statements_split(self):
        b = ProgramBuilder("p", parameters=["N"])
        b.add_array("x", ("N",))
        b.add_array("y", ("N",))
        b.add_array("src", ("N",))
        with b.loop("i", 0, "N"):
            b.assign(("x", "i"), b.read("src", "i"))
            b.assign(("y", "i"), b.read("src", "i") * 2)
        program = b.finish()
        report = maximal_loop_fission(program)
        assert report.loops_split == 1
        assert len(program.body) == 2
        assert is_maximally_fissioned(program)

    def test_dependent_statements_stay_together(self):
        b = ProgramBuilder("p", parameters=["N"])
        b.add_array("x", ("N",))
        with b.loop("i", 1, "N"):
            b.assign(("x", "i"), b.read("x", b.sym("i") - 1) + 1.0)
            b.assign(("x", b.sym("i") - 1), b.read("x", "i") * 0.5)
        program = b.finish()
        maximal_loop_fission(program)
        assert len(program.body) == 1

    def test_gemm_scaling_split_from_contraction(self):
        program = build_gemm_a()
        maximal_loop_fission(program)
        assert len(program.body) == 2
        assert programs_equivalent(build_gemm_a(), program, PARAMS)

    def test_fission_preserves_semantics(self, stencil_program):
        original = stencil_program.copy()
        maximal_loop_fission(stencil_program)
        assert programs_equivalent(original, stencil_program, {"T": 3, "N": 12})


class TestStrideMinimization:
    def test_gemm_normalizes_to_ikj(self):
        program = build_gemm_b()
        normalized = normalize_program(program)
        contraction = normalized.body[-1]
        # After normalization the innermost loop walks the contiguous (j)
        # dimension of both C and B.
        comp = list(contraction.iter_computations())[0]
        innermost = contraction.perfectly_nested_band()[-1].iterator
        assert comp.target.indices[-1].free_symbols() == {innermost}

    def test_triangular_bounds_respected(self):
        b = ProgramBuilder("p", parameters=["N"])
        b.add_array("A", ("N", "N"))
        with b.loop("i", 0, "N"):
            with b.loop("j", 0, b.sym("i") + 1):
                b.assign(("A", "j", "i"), 1.0)
        program = b.finish()
        nest = program.body[0]
        order, _cost, _evaluated = find_minimal_permutation(nest, program.arrays)
        # j's bound references i, so i must stay outermost regardless of cost.
        assert order[0] == "i"

    def test_minimization_never_increases_cost(self, gemm_program, gemm_params):
        from repro.analysis import program_stride_cost
        before = program_stride_cost(gemm_program, gemm_params)
        normalized = normalize_program(gemm_program)
        after = program_stride_cost(normalized, gemm_params)
        assert after <= before + 1e-9


class TestScalarExpansion:
    def _program_with_scalar(self):
        b = ProgramBuilder("p", parameters=["N"])
        b.add_array("x", ("N",))
        b.add_array("y", ("N",))
        b.add_scalar("tmp", transient=True)
        with b.loop("i", 0, "N"):
            b.assign(("tmp",), b.read("x", "i") * 2)
            b.assign(("y", "i"), b.read("tmp") + 1)
        return b.finish()

    def test_expansion_creates_indexed_temporary(self):
        program = self._program_with_scalar()
        report = expand_scalars(program)
        assert report.count == 1
        expanded_name = report.expanded[0][0]
        assert any(name.startswith("tmp__x") for name in program.arrays)
        assert expanded_name == "tmp"

    def test_expansion_preserves_semantics(self):
        program = self._program_with_scalar()
        reference = self._program_with_scalar()
        expand_scalars(program)
        assert programs_equivalent(reference, program, {"N": 16})

    def test_non_transient_scalars_not_expanded(self):
        b = ProgramBuilder("p", parameters=["N"])
        b.add_array("y", ("N",))
        b.add_scalar("alpha")
        with b.loop("i", 0, "N"):
            b.assign(("y", "i"), b.read("alpha") * 2)
        program = b.finish()
        assert expand_scalars(program).count == 0

    def test_contraction_inverts_expansion(self):
        program = self._program_with_scalar()
        reference = self._program_with_scalar()
        expand_scalars(program)
        contracted = contract_arrays(program)
        assert contracted == 1
        assert programs_equivalent(reference, program, {"N": 16})


class TestPipeline:
    def test_gemm_variants_reach_same_canonical_form(self):
        normalized_a, _ = normalize(build_gemm_a())
        normalized_b, _ = normalize(build_gemm_b())
        # Identical canonical form, up to the program name in the header line.
        body_a = to_pseudocode(normalized_a).split("\n", 1)[1]
        body_b = to_pseudocode(normalized_b).split("\n", 1)[1]
        assert body_a == body_b

    def test_pipeline_is_semantics_preserving(self):
        for builder in (build_gemm_a, build_gemm_b, build_stencil, build_vector_add):
            program = builder()
            normalized, report = normalize(program)
            params = PARAMS if "gemm" in program.name else {"T": 3, "N": 12}
            assert programs_equivalent(program, normalized, params)
            assert report.validation_errors == ()

    def test_disabling_passes(self):
        options = NormalizationOptions(apply_fission=False,
                                       apply_stride_minimization=False,
                                       canonicalize_iterators=False)
        program = build_gemm_a()
        normalized, report = normalize(program, options)
        assert len(normalized.body) == len(program.body)
        assert not report.changed

    def test_report_summary_mentions_fission(self):
        _, report = normalize(build_gemm_a())
        assert "fission" in report.summary()

    def test_pipeline_idempotent(self):
        once, _ = normalize(build_gemm_b())
        twice, report = normalize(once)
        assert to_pseudocode(once) == to_pseudocode(twice)

    def test_pass_manager_fixed_point(self):
        calls = []

        def fake_pass(program):
            calls.append(1)
            return len(calls) < 3

        manager = PassManager([fake_pass])
        iterations = manager.run(build_vector_add())
        assert iterations >= 3


@given(st.permutations(["i", "j", "k"]))
@settings(max_examples=6, deadline=None)
def test_all_gemm_loop_orders_normalize_equivalently(order):
    """Property: every GEMM loop order normalizes to a semantically equivalent
    program (the normalization pipeline never changes observable results)."""
    program = build_gemm(order=order)
    normalized, _ = normalize(program)
    assert programs_equivalent(program, normalized, {"NI": 6, "NJ": 7, "NK": 5})

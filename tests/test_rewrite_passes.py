"""Property and regression tests of the expression-rewrite pass family.

Covers the tentpole's guarantees:

* every rewrite pipeline is idempotent (a projection — running it on its own
  output is a no-op),
* rewrites preserve semantics against the reference interpreter over a wide
  sample of expression-heavy fuzz programs (under the float tolerance the
  re-associating pipelines are registered for),
* each rewrite pipeline keys the normalization cache distinctly, on the
  memory and the SQLite backend,
* the fuzz oracle compares ``bit_exact=False`` pipelines under tolerance —
  and a deliberately re-associated program demonstrably fails a forced
  bit-exact comparison while passing the tolerance mode,
* the rewrite counters (hoisted/cse_hits/flops_saved) survive
  :class:`~repro.passes.PassStats` aggregation and surface end-to-end in
  ``/v1/report`` over HTTP, including the worker-merged ``?workers=1`` view.
"""

import numpy as np
import pytest
from helpers import fast_session

from repro.analysis import program_flops
from repro.api import (MemoryCacheBackend, NormalizationCache,
                       NormalizationOptions, ScheduleRequest,
                       SQLiteCacheBackend)
from repro.fuzz.generator import GeneratedProgram, generate_program
from repro.fuzz.oracle import Oracle, OracleConfig, _compare
from repro.interp import run_program
from repro.ir import ProgramBuilder
from repro.normalization import normalize
from repro.passes import (PassResult, PassStats, pipeline_bit_exact,
                          program_fingerprint)
from repro.serving import (ServiceConfig, ServingClient, ServingServer,
                           merge_worker_reports)
from repro.workloads import benchmark

REWRITE_PIPELINES = ("rewrite", "rewrite-licm-only", "rewrite-cse-only",
                     "rewrite-expand", "a-priori+rewrite")

FEM_WORKLOADS = ("fem-mass", "fem-stiffness", "fem-rhs")


def _fem_program(name):
    spec = benchmark(name)
    return spec.variant("a"), spec.sizes("mini"), dict(spec.scalars)


def _inputs_for(program, parameters, scalars=(), seed=5):
    rng = np.random.default_rng(seed)
    inputs = {}
    for name, arr in program.arrays.items():
        if arr.transient:
            continue
        if name in scalars:
            inputs[name] = np.array(scalars[name])
        else:
            inputs[name] = rng.uniform(0.5, 1.5,
                                       size=arr.concrete_shape(parameters))
    return inputs


def _observable_outputs(program):
    return [name for name, arr in program.arrays.items() if not arr.transient]


class TestIdempotence:
    """Every rewrite pipeline is a projection: a second run is a no-op."""

    @pytest.mark.parametrize("pipeline", REWRITE_PIPELINES)
    def test_fem_workloads(self, pipeline):
        for name in FEM_WORKLOADS:
            program, parameters, _ = _fem_program(name)
            options = NormalizationOptions(pipeline=pipeline,
                                           parameters=parameters)
            once, _ = normalize(program, options)
            twice, report = normalize(once, options)
            assert program_fingerprint(once) == program_fingerprint(twice), \
                f"{pipeline} not idempotent on {name}"
            assert not report.changed

    @pytest.mark.parametrize("pipeline", REWRITE_PIPELINES)
    def test_expression_heavy_fuzz_programs(self, pipeline):
        for seed in range(8):
            generated = generate_program(seed, "expression-heavy")
            options = NormalizationOptions(pipeline=pipeline,
                                           parameters=generated.parameters)
            once, _ = normalize(generated.program, options)
            twice, _ = normalize(once, options)
            assert program_fingerprint(once) == program_fingerprint(twice), \
                f"{pipeline} not idempotent on expression-heavy seed {seed}"


class TestSemanticPreservation:
    """Rewrites agree with the reference interpreter over >= 50 fuzz
    programs (tolerance mode: the pipelines reassociate by design)."""

    SEEDS = range(50)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_rewrite_preserves_outputs(self, seed):
        generated = generate_program(seed, "expression-heavy")
        program, parameters = generated.program, generated.parameters
        inputs = _inputs_for(program, parameters)
        reference = run_program(program, parameters, inputs)
        # Rotate through the family so every pipeline sees many programs
        # without interpreting 50 x 5 programs.
        pipeline = REWRITE_PIPELINES[seed % len(REWRITE_PIPELINES)]
        rewritten, _ = normalize(program, NormalizationOptions(
            pipeline=pipeline, parameters=parameters))
        result = run_program(rewritten, parameters, inputs)
        for output in _observable_outputs(program):
            assert np.allclose(reference[output], result[output],
                               rtol=1e-6, atol=1e-6, equal_nan=True), \
                f"{pipeline} diverges on {output} (seed {seed})"

    def test_rewrite_reduces_fem_flops(self):
        """The acceptance bar: LICM+CSE measurably reduce interpreter work."""
        program, parameters, _ = _fem_program("fem-mass")
        rewritten, _ = normalize(program, NormalizationOptions(
            pipeline="rewrite", parameters=parameters))
        before = program_flops(program, parameters)
        after = program_flops(rewritten, parameters)
        assert after < 0.75 * before, (before, after)


class TestCacheKeys:
    """Each rewrite pipeline keys the normalization cache distinctly."""

    def _distinct_entries(self, cache):
        program, _, _ = _fem_program("fem-rhs")
        pipelines = ("a-priori",) + REWRITE_PIPELINES
        hashes = {}
        for pipeline in pipelines:
            entry = cache.normalized(program,
                                     NormalizationOptions.named(pipeline))
            assert not entry.hit, f"{pipeline} served from a foreign entry"
            hashes[pipeline] = entry.input_hash
        assert len(set(hashes.values())) == len(pipelines), hashes
        # Repeats hit their own entries.
        for pipeline in pipelines:
            assert cache.normalized(
                program, NormalizationOptions.named(pipeline)).hit
        assert cache.stats.normalization_misses == len(pipelines)

    def test_memory_backend(self):
        self._distinct_entries(NormalizationCache(backend=MemoryCacheBackend()))

    def test_sqlite_backend(self, tmp_path):
        cache = NormalizationCache(
            backend=SQLiteCacheBackend(str(tmp_path / "cache.sqlite")))
        try:
            self._distinct_entries(cache)
        finally:
            cache.close()

    def test_sqlite_rewrite_entry_survives_restart(self, tmp_path):
        path = str(tmp_path / "cache.sqlite")
        program, _, _ = _fem_program("fem-rhs")
        cache = NormalizationCache(backend=SQLiteCacheBackend(path))
        cache.normalized(program, NormalizationOptions.named("rewrite"))
        cache.close()
        cache = NormalizationCache(backend=SQLiteCacheBackend(path))
        try:
            assert cache.normalized(
                program, NormalizationOptions.named("rewrite")).hit
            assert not cache.normalized(
                program, NormalizationOptions.named("rewrite-licm-only")).hit
        finally:
            cache.close()


def _reassociation_sensitive_program():
    """``y[i] = x[i]*u[i] + x[i]*v[i]``: factorization rewrites it to
    ``x[i]*(u[i]+v[i])``, which rounds differently."""
    b = ProgramBuilder("reassoc", parameters=["N"])
    b.add_array("x", ("N",))
    b.add_array("u", ("N",))
    b.add_array("v", ("N",))
    b.add_array("y", ("N",))
    with b.loop("i", 0, "N"):
        b.assign(("y", "i"),
                 b.read("x", "i") * b.read("u", "i")
                 + b.read("x", "i") * b.read("v", "i"))
    return b.finish()


class TestOracleToleranceMode:
    """Satellite: per-pipeline ``bit_exact`` drives the oracle comparison."""

    def test_bit_exact_flags(self):
        assert pipeline_bit_exact("a-priori")
        assert pipeline_bit_exact("no-fission")
        assert pipeline_bit_exact("rewrite-licm-only")
        assert pipeline_bit_exact("rewrite-cse-only")
        assert not pipeline_bit_exact("rewrite")
        assert not pipeline_bit_exact("rewrite-expand")
        assert not pipeline_bit_exact("a-priori+rewrite")

    def test_effective_tolerance_resolution(self):
        config = OracleConfig()
        assert config.effective_tolerance("a-priori") == 0.0
        assert config.effective_tolerance("rewrite") == \
            config.rewrite_tolerance
        # An explicit tolerance overrides the per-pipeline flag everywhere.
        forced = OracleConfig(tolerance=1e-3)
        assert forced.effective_tolerance("a-priori") == 1e-3
        assert forced.effective_tolerance("rewrite") == 1e-3

    def test_reassociated_program_rounds_differently(self):
        program = _reassociation_sensitive_program()
        parameters = {"N": 64}
        inputs = _inputs_for(program, parameters)
        reference = run_program(program, parameters, inputs)
        rewritten, _ = normalize(program, NormalizationOptions(
            pipeline="rewrite", parameters=parameters))
        result = run_program(rewritten, parameters, inputs)
        # Not bitwise equal -- but within the registered tolerance.
        assert not np.array_equal(reference["y"], result["y"])
        assert np.allclose(reference["y"], result["y"], rtol=1e-6, atol=1e-6)

    def test_oracle_passes_under_tolerance_fails_bit_exact(self):
        generated = GeneratedProgram(
            program=_reassociation_sensitive_program(),
            parameters={"N": 64}, seed=0, size_class="handmade")
        tolerant = Oracle(OracleConfig(pipelines=["rewrite"], schedulers=[]))
        verdict = tolerant.check(generated)
        assert verdict.outcome == "pass", verdict.divergences

        strict = Oracle(OracleConfig(pipelines=["rewrite"], schedulers=[],
                                     rewrite_tolerance=0.0))
        verdict = strict.check(generated)
        assert verdict.outcome == "divergence"
        assert any(d.spec.stage == "normalize" and d.spec.kind == "mismatch"
                   for d in verdict.divergences)

    def test_bit_exact_pipelines_still_compared_exactly(self):
        generated = GeneratedProgram(
            program=_reassociation_sensitive_program(),
            parameters={"N": 64}, seed=0, size_class="handmade")
        oracle = Oracle(OracleConfig(pipelines=["a-priori"], schedulers=[]))
        assert oracle.config.effective_tolerance("a-priori") == 0.0
        assert oracle.check(generated).outcome == "pass"

    def test_tolerance_mode_ignores_saturated_reference_entries(self):
        # An iterated polynomial that overflows can saturate differently
        # under re-association (nan via inf-inf vs a plain -inf).  Where
        # the reference itself is non-finite the value carries no
        # information, so tolerance mode skips it; bit-exact mode and
        # finite-position mismatches are still flagged.
        reference = {"A": np.array([1.0, np.nan, np.inf])}
        saturated = {"A": np.array([1.0, -np.inf, np.nan])}
        assert _compare(reference, saturated, ["A"], tolerance=1e-6) == []
        assert _compare(reference, saturated, ["A"], tolerance=0.0)

        # A non-finite value where the reference is finite is a real bug.
        broken = {"A": np.array([np.inf, np.nan, np.inf])}
        mismatches = _compare(reference, broken, ["A"], tolerance=1e-6)
        assert mismatches and mismatches[0]["first_index"] == [0]


class TestPassStatsCounters:
    """Satellite fix: pass counters survive aggregation and report merging."""

    def test_pass_stats_sums_counters(self):
        stats = PassStats()
        stats.add([PassResult("licm", changed=True,
                              counters={"hoisted": 2, "flops_saved": 12.0})])
        stats.add([PassResult("licm", changed=True,
                              counters={"hoisted": 1, "hoisted_uses": 4})])
        entry = stats.to_dict()["licm"]
        assert entry["runs"] == 2
        assert entry["counters"] == {"hoisted": 3, "flops_saved": 12.0,
                                     "hoisted_uses": 4}

    def test_to_dict_snapshot_is_isolated(self):
        stats = PassStats()
        stats.add([PassResult("cse", changed=True, counters={"cse_hits": 1})])
        snapshot = stats.to_dict()
        snapshot["cse"]["counters"]["cse_hits"] = 99
        assert stats.to_dict()["cse"]["counters"]["cse_hits"] == 1

    def test_merge_worker_reports_deep_merges_counters(self):
        left = {"schedule_calls": 1, "normalization_passes": {
            "licm": {"runs": 1, "counters": {"hoisted": 2,
                                             "flops_saved": 8.0}}}}
        right = {"schedule_calls": 2, "normalization_passes": {
            "licm": {"runs": 3, "counters": {"hoisted": 1, "cse_hits": 5}},
            "cse": {"runs": 1, "counters": {"cse_hits": 7}}}}
        merged = merge_worker_reports([left, right])
        passes = merged["normalization_passes"]
        assert passes["licm"]["runs"] == 4
        assert passes["licm"]["counters"] == {"hoisted": 3, "flops_saved": 8.0,
                                              "cse_hits": 5}
        assert passes["cse"]["counters"] == {"cse_hits": 7}

    def test_session_report_carries_rewrite_counters(self):
        session = fast_session(pipeline="rewrite")
        for name in ("fem-mass", "fem-rhs"):
            program, _, _ = _fem_program(name)
            session.normalize(program)
        passes = session.report().normalization_passes
        assert passes["licm"]["counters"]["hoisted"] >= 2
        assert passes["licm"]["counters"]["flops_saved"] > 0
        assert "pre-evaluate" in passes and "factorize" in passes


class TestHttpReportRewriteCounters:
    """Satellite fix: counters surface over HTTP, single- and multi-process."""

    def test_v1_report_exposes_rewrite_counters(self):
        session = fast_session()
        with ServingServer(session,
                           config=ServiceConfig(batch_window_s=0.02)) as server:
            client = ServingClient(server.address)
            status, _ = client.request(
                "POST", "/v1/schedule",
                ScheduleRequest(program="fem-rhs:a",
                                pipeline="rewrite").to_dict())
            assert status == 200
            payload = client.report()
            passes = payload["normalization_passes"]
            assert passes["licm"]["counters"]["hoisted"] >= 1
            assert passes["licm"]["counters"]["flops_saved"] > 0
            assert passes["cse"]["runs"] >= 1
        session.close()

    def test_workers_view_merges_rewrite_counters(self, tmp_path):
        from repro.api import SearchConfig
        from repro.serving import WorkerConfig, WorkerPool

        config = WorkerConfig(
            threads=2, cache_path=str(tmp_path / "cache.sqlite"),
            search=SearchConfig(population_size=4, epochs=1,
                                generations_per_epoch=1),
            pipeline="rewrite")
        session = fast_session()
        with WorkerPool(2, config) as pool:
            with ServingServer(session,
                               config=ServiceConfig(batch_window_s=0.005),
                               pool=pool) as server:
                client = ServingClient(server.address)
                client.schedule("fem-rhs:a")
                client.schedule("fem-mass:a")
                status, full = client.request("GET", "/v1/report?workers=1")
                assert status == 200
                assert full["pool"]["reports_collected"] == 2
                merged = full["pool"]["merged"]["normalization_passes"]
                assert merged["licm"]["counters"]["hoisted"] >= 1
                assert merged["licm"]["counters"]["flops_saved"] > 0
        session.close()

"""Execute every ``python`` code block of the documentation.

The docs promise runnable snippets; this test holds them to it.  Blocks of
one document run in order in one shared namespace (so a page can build on
its earlier snippets), with the working directory pointed at a temp dir so
snippets may write relative paths like ``cache.sqlite`` freely.

Fenced blocks tagged anything other than ``python`` (``bash``, ``text``,
diagrams) are ignored.
"""

import os
import re

import pytest

import helpers  # noqa: F401 - puts src/ on sys.path for the snippets

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))

#: Every document whose python snippets must execute (the acceptance list).
DOCUMENTS = [
    "README.md",
    "docs/architecture.md",
    "docs/api.md",
    "docs/pipelines.md",
    "docs/serving.md",
    "docs/observability.md",
    "docs/fuzzing.md",
    "docs/performance.md",
]

_FENCE = re.compile(r"^```(\w*)\s*$")


def extract_python_blocks(path):
    """Yield ``(first_line_number, source)`` for every python fence."""
    blocks = []
    language = None
    buffer = []
    start = 0
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            match = _FENCE.match(line.strip())
            if match and language is None:
                language = match.group(1) or "text"
                buffer = []
                start = number + 1
            elif line.strip() == "```" and language is not None:
                if language == "python":
                    blocks.append((start, "".join(buffer)))
                language = None
            elif language is not None:
                buffer.append(line)
    assert language is None, f"unterminated code fence in {path}"
    return blocks


def test_every_document_exists():
    for document in DOCUMENTS:
        assert os.path.isfile(os.path.join(REPO_ROOT, document)), document


def test_documents_are_cross_linked():
    with open(os.path.join(REPO_ROOT, "README.md"), encoding="utf-8") as handle:
        readme = handle.read()
    for document in DOCUMENTS[1:]:
        assert document.split("/", 1)[1] in readme, \
            f"README.md does not link {document}"


@pytest.mark.parametrize("document", DOCUMENTS)
def test_documentation_snippets_execute(document, tmp_path, monkeypatch):
    path = os.path.join(REPO_ROOT, document)
    blocks = extract_python_blocks(path)
    monkeypatch.chdir(tmp_path)  # snippets may write relative paths
    namespace = {"__name__": f"docs_{os.path.basename(document)}"}
    for line_number, source in blocks:
        code = compile(source, f"{document}:{line_number}", "exec")
        exec(code, namespace)  # noqa: S102 - the whole point of the test

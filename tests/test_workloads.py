"""Tests for the benchmark workloads: registry completeness and semantic
equivalence of the A, B, NPBench and normalized variants."""

import numpy as np
import pytest

from repro.interp import run_program
from repro.normalization import normalize
from repro.workloads import (all_benchmarks, benchmark, benchmark_names,
                             benchmark_sizes, polybench_benchmarks)

EXPECTED_POLYBENCH = {
    "gemm", "2mm", "3mm", "syrk", "syr2k", "atax", "bicg", "mvt", "gemver",
    "gesummv", "correlation", "covariance", "fdtd-2d", "jacobi-2d", "heat-3d",
}
EXPECTED_FEM = {"fem-mass", "fem-stiffness", "fem-rhs"}
EXPECTED_BENCHMARKS = EXPECTED_POLYBENCH | EXPECTED_FEM


def _inputs_for(spec, program, params, seed=7):
    """Shared, deterministic inputs for all variants of one benchmark."""
    rng = np.random.default_rng(seed)
    inputs = {}
    for name, arr in program.arrays.items():
        if arr.transient:
            continue
        if name in spec.scalars:
            value = spec.scalars[name]
            if name == "float_n":
                value = float(params["N"])
            inputs[name] = np.array(value)
        else:
            inputs[name] = rng.uniform(0.5, 1.5, size=arr.concrete_shape(params))
    return inputs


class TestRegistry:
    def test_benchmarks_registered(self):
        assert set(benchmark_names()) == EXPECTED_BENCHMARKS
        assert len(all_benchmarks()) == 18

    def test_polybench_subset_stays_at_fifteen(self):
        specs = polybench_benchmarks()
        assert {spec.name for spec in specs} == EXPECTED_POLYBENCH
        assert len(specs) == 15

    def test_fem_benchmarks_use_fem_category(self):
        for name in sorted(EXPECTED_FEM):
            assert benchmark(name).category == "fem"

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            benchmark("nosuch")

    def test_sizes_exist_for_all_classes(self):
        for spec in all_benchmarks():
            for size in ("mini", "small", "large"):
                bindings = spec.sizes(size)
                assert bindings and all(v > 0 for v in bindings.values())

    def test_large_sizes_match_paper_for_gemm(self):
        assert benchmark_sizes("gemm", "large") == {"NI": 1000, "NJ": 1100, "NK": 1200}

    def test_variants_build_and_validate(self):
        from repro.ir import validate_program
        for spec in all_benchmarks():
            for which in ("a", "b", "npbench"):
                program = spec.variant(which)
                assert validate_program(program) == []

    def test_unknown_variant_rejected(self):
        with pytest.raises(KeyError):
            benchmark("gemm").variant("c")


@pytest.mark.parametrize("name", sorted(EXPECTED_BENCHMARKS))
class TestVariantEquivalence:
    """A, B, NPBench and normalize(A) must compute the same outputs."""

    def test_all_variants_agree(self, name):
        spec = benchmark(name)
        params = spec.sizes("mini")
        reference_program = spec.variant("a")
        inputs = _inputs_for(spec, reference_program, params)
        reference = run_program(reference_program, params, inputs)

        for which in ("b", "npbench"):
            other = run_program(spec.variant(which), params, inputs)
            for output in spec.outputs:
                assert np.allclose(reference[output], other[output], rtol=1e-6), \
                    f"{name}: variant {which} diverges on {output}"

        normalized, report = normalize(spec.variant("a"))
        assert report.validation_errors == ()
        normalized_result = run_program(normalized, params, inputs)
        for output in spec.outputs:
            assert np.allclose(reference[output], normalized_result[output], rtol=1e-9), \
                f"{name}: normalization changes {output}"

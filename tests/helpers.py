"""Shared helpers for the test suite: program builders, stdlib-only
property-test generators, and a Prometheus text-format parser.

These used to live in ``tests/conftest.py``, but test modules importing them
via ``from conftest import ...`` collided with ``benchmarks/conftest.py``
when pytest collected both directories.  A plain helper module has a unique
import name and works from any rootdir.
"""

import os
import sys

# Allow running the tests without installing the package (e.g. straight from
# a source checkout) by putting ``src`` on the path.
_SRC = os.path.join(os.path.dirname(__file__), "..", "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, os.path.abspath(_SRC))

from repro.ir import ProgramBuilder  # noqa: E402


def build_gemm(order=("i", "j", "k"), name=None, with_scaling=True):
    """A GEMM program with a configurable loop order (helper for many tests)."""
    order = list(order)
    b = ProgramBuilder(name or f"gemm_{''.join(order)}", parameters=["NI", "NJ", "NK"])
    b.add_array("C", ("NI", "NJ"))
    b.add_array("A", ("NI", "NK"))
    b.add_array("B", ("NK", "NJ"))
    b.add_scalar("alpha")
    b.add_scalar("beta")
    if with_scaling:
        with b.loop("i", 0, "NI"):
            with b.loop("j", 0, "NJ"):
                b.assign(("C", "i", "j"), b.read("C", "i", "j") * b.read("beta"))
    bounds = {"i": "NI", "j": "NJ", "k": "NK"}
    with b.loop(order[0], 0, bounds[order[0]]):
        with b.loop(order[1], 0, bounds[order[1]]):
            with b.loop(order[2], 0, bounds[order[2]]):
                b.assign(("C", "i", "j"),
                         b.read("C", "i", "j")
                         + b.read("alpha") * b.read("A", "i", "k") * b.read("B", "k", "j"))
    return b.finish()


def build_vector_add(name="vecadd"):
    """z = x + y over one loop."""
    b = ProgramBuilder(name, parameters=["N"])
    b.add_array("x", ("N",))
    b.add_array("y", ("N",))
    b.add_array("z", ("N",))
    with b.loop("i", 0, "N"):
        b.assign(("z", "i"), b.read("x", "i") + b.read("y", "i"))
    return b.finish()


def build_stencil(name="stencil1d"):
    """Sequential-in-time 1-D stencil: carries a dependence on the time loop."""
    b = ProgramBuilder(name, parameters=["T", "N"])
    b.add_array("A", ("N",))
    b.add_array("B", ("N",))
    with b.loop("t", 0, "T"):
        with b.loop("i", 1, b.sym("N") - 1):
            b.assign(("B", "i"),
                     0.5 * (b.read("A", b.sym("i") - 1) + b.read("A", b.sym("i") + 1)))
        with b.loop("i", 1, b.sym("N") - 1):
            b.assign(("A", "i"), b.read("B", "i"))
    return b.finish()


# -- property-test generators (stdlib-only, Hypothesis-style) -------------------

def observation_streams(seed, count=40, max_length=400):
    """Yield ``count`` random observation streams for histogram properties.

    A deterministic, stdlib-only stand-in for Hypothesis: each stream draws
    its length, distribution shape (uniform, exponential-ish, clustered,
    constant, negative-heavy), and scale from a seeded ``random.Random``,
    so failures replay exactly from the seed.
    """
    import random

    rng = random.Random(seed)
    shapes = ("uniform", "exponential", "clustered", "constant", "negative")
    for index in range(count):
        length = rng.randint(1, max_length)
        shape = shapes[index % len(shapes)]
        scale = 10.0 ** rng.randint(-3, 3)
        if shape == "uniform":
            stream = [rng.uniform(0.0, scale) for _ in range(length)]
        elif shape == "exponential":
            stream = [rng.expovariate(1.0 / scale) for _ in range(length)]
        elif shape == "clustered":
            centers = [rng.uniform(0.0, scale) for _ in range(3)]
            stream = [rng.choice(centers) + rng.uniform(-scale, scale) * 0.01
                      for _ in range(length)]
        elif shape == "constant":
            value = rng.uniform(0.0, scale)
            stream = [value] * length
        else:  # negative-heavy: observations below every bucket bound
            stream = [rng.uniform(-scale, scale) for _ in range(length)]
        yield shape, stream


def uniform_buckets(stream, buckets=16):
    """Uniform bucket bounds covering ``stream`` (for quantile oracles).

    Returns ``(bounds, width)``: the last bound sits at the stream maximum,
    so nothing overflows into the +Inf bucket and histogram quantiles are
    within one ``width`` of the exact sorted-sample answer.
    """
    low, high = min(stream), max(stream)
    if high <= low:
        high = low + 1.0
    width = (high - low) / buckets
    # The last bound is pinned to the exact maximum: accumulated rounding in
    # ``low + width * buckets`` could land a hair below it, spilling the
    # largest observation into the +Inf bucket.
    bounds = tuple(low + width * (index + 1)
                   for index in range(buckets - 1)) + (high,)
    return bounds, width


# -- a minimal Prometheus text-format parser (for /metrics scrape tests) --------

def parse_prometheus_text(text):
    """Parse the Prometheus text exposition format into plain dicts.

    Returns ``{metric_name: {"type": str, "samples": {(sample_name,
    ((label, value), ...)): float}}}``; sample names keep their
    ``_bucket`` / ``_sum`` / ``_count`` suffixes and label pairs are sorted
    tuples, so tests can assert exact series values.
    """
    import re

    metrics = {}
    types = {}
    sample_re = re.compile(
        r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(\S+)$")
    label_re = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(None, 3)
            types[name] = kind
            metrics.setdefault(name, {"type": kind, "samples": {}})
            continue
        if line.startswith("#"):
            continue
        match = sample_re.match(line)
        assert match, f"unparseable sample line: {line!r}"
        sample_name, label_body, value_text = match.groups()

        def unescape(value):
            # One regex pass: sequential str.replace would corrupt values
            # like a literal backslash followed by 'n' ('\\' then 'n').
            return re.sub(r"\\(.)",
                          lambda m: {"n": "\n"}.get(m.group(1), m.group(1)),
                          value)

        labels = []
        if label_body:
            labels = [(name, unescape(value))
                      for name, value in label_re.findall(label_body)]
        base = sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            trimmed = sample_name[:-len(suffix)] \
                if sample_name.endswith(suffix) else None
            if trimmed and types.get(trimmed) == "histogram":
                base = trimmed
                break
        value = float("inf") if value_text == "+Inf" else float(value_text)
        entry = metrics.setdefault(
            base, {"type": types.get(base, "untyped"), "samples": {}})
        entry["samples"][(sample_name, tuple(sorted(labels)))] = value
    return metrics


def prometheus_sample(metrics, sample_name, **labels):
    """One sample value from :func:`parse_prometheus_text` output (the base
    metric is derived by stripping histogram suffixes)."""
    base = sample_name
    for suffix in ("_bucket", "_sum", "_count"):
        if base.endswith(suffix) and base[:-len(suffix)] in metrics:
            base = base[:-len(suffix)]
            break
    key = (sample_name, tuple(sorted(
        (name, str(value)) for name, value in labels.items())))
    return metrics[base]["samples"][key]


# -- shared fast-session preset ------------------------------------------------

#: GEMM parameter bindings many API/serving tests schedule with.
GEMM_PARAMS = {"NI": 64, "NJ": 48, "NK": 32}


def fast_session(**kwargs):
    """A Session with a minimal evolutionary search (fast enough for tests)."""
    from repro.api import SearchConfig, Session

    kwargs.setdefault("search", SearchConfig(population_size=4, epochs=1,
                                             generations_per_epoch=1))
    kwargs.setdefault("threads", 4)
    return Session(**kwargs)

"""Shared program builders for the test suite.

These used to live in ``tests/conftest.py``, but test modules importing them
via ``from conftest import ...`` collided with ``benchmarks/conftest.py``
when pytest collected both directories.  A plain helper module has a unique
import name and works from any rootdir.
"""

import os
import sys

# Allow running the tests without installing the package (e.g. straight from
# a source checkout) by putting ``src`` on the path.
_SRC = os.path.join(os.path.dirname(__file__), "..", "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, os.path.abspath(_SRC))

from repro.ir import ProgramBuilder  # noqa: E402


def build_gemm(order=("i", "j", "k"), name=None, with_scaling=True):
    """A GEMM program with a configurable loop order (helper for many tests)."""
    order = list(order)
    b = ProgramBuilder(name or f"gemm_{''.join(order)}", parameters=["NI", "NJ", "NK"])
    b.add_array("C", ("NI", "NJ"))
    b.add_array("A", ("NI", "NK"))
    b.add_array("B", ("NK", "NJ"))
    b.add_scalar("alpha")
    b.add_scalar("beta")
    if with_scaling:
        with b.loop("i", 0, "NI"):
            with b.loop("j", 0, "NJ"):
                b.assign(("C", "i", "j"), b.read("C", "i", "j") * b.read("beta"))
    bounds = {"i": "NI", "j": "NJ", "k": "NK"}
    with b.loop(order[0], 0, bounds[order[0]]):
        with b.loop(order[1], 0, bounds[order[1]]):
            with b.loop(order[2], 0, bounds[order[2]]):
                b.assign(("C", "i", "j"),
                         b.read("C", "i", "j")
                         + b.read("alpha") * b.read("A", "i", "k") * b.read("B", "k", "j"))
    return b.finish()


def build_vector_add(name="vecadd"):
    """z = x + y over one loop."""
    b = ProgramBuilder(name, parameters=["N"])
    b.add_array("x", ("N",))
    b.add_array("y", ("N",))
    b.add_array("z", ("N",))
    with b.loop("i", 0, "N"):
        b.assign(("z", "i"), b.read("x", "i") + b.read("y", "i"))
    return b.finish()


def build_stencil(name="stencil1d"):
    """Sequential-in-time 1-D stencil: carries a dependence on the time loop."""
    b = ProgramBuilder(name, parameters=["T", "N"])
    b.add_array("A", ("N",))
    b.add_array("B", ("N",))
    with b.loop("t", 0, "T"):
        with b.loop("i", 1, b.sym("N") - 1):
            b.assign(("B", "i"),
                     0.5 * (b.read("A", b.sym("i") - 1) + b.read("A", b.sym("i") + 1)))
        with b.loop("i", 1, b.sym("N") - 1):
            b.assign(("A", "i"), b.read("B", "i"))
    return b.finish()


# -- shared fast-session preset ------------------------------------------------

#: GEMM parameter bindings many API/serving tests schedule with.
GEMM_PARAMS = {"NI": 64, "NJ": 48, "NK": 32}


def fast_session(**kwargs):
    """A Session with a minimal evolutionary search (fast enough for tests)."""
    from repro.api import SearchConfig, Session

    kwargs.setdefault("search", SearchConfig(population_size=4, epochs=1,
                                             generations_per_epoch=1))
    kwargs.setdefault("threads", 4)
    return Session(**kwargs)

"""Property-based tests of cross-cutting invariants.

These complement the per-module unit tests with randomized checks of the
invariants the whole system relies on:

* normalization preserves the number of computations and the observable
  results for arbitrary (generated) parallel loop programs;
* the stride-minimization objective never increases under normalization;
* serialization round-trips arbitrary generated programs;
* the cost model is deterministic and positive.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interp import programs_equivalent
from repro.ir import ProgramBuilder, program_from_json, program_to_json, to_pseudocode
from repro.normalization import normalize
from repro.analysis import program_stride_cost
from repro.perf import CostModel

#: Small pool of array names used by the generated programs.
_ARRAYS = ["A", "B", "C"]


@st.composite
def elementwise_programs(draw):
    """Random two-level parallel loop programs over 2-D arrays.

    Each statement writes one array at (i, j) or (j, i) reading from one or
    two arrays with small constant offsets — the class of programs maximal
    fission and stride minimization are designed to canonicalize.
    """
    builder = ProgramBuilder("generated", parameters=["N"])
    for name in _ARRAYS:
        builder.add_array(name, ("N", "N"))
    num_statements = draw(st.integers(1, 3))
    statement_specs = draw(st.lists(
        st.tuples(
            st.sampled_from(_ARRAYS),                 # destination
            st.sampled_from(_ARRAYS),                 # source
            st.booleans(),                            # transpose destination
            st.booleans(),                            # transpose source
            st.floats(0.5, 2.0),                      # scale factor
        ),
        min_size=num_statements, max_size=num_statements))
    # Avoid read/write overlap on the same array within one nest so the
    # generated program is trivially race-free (and fission is legal in any
    # grouping): destination must differ from source.
    with builder.loop("i", 1, builder.sym("N") - 1):
        with builder.loop("j", 1, builder.sym("N") - 1):
            for dst, src, transpose_dst, transpose_src, scale in statement_specs:
                if dst == src:
                    src = _ARRAYS[(_ARRAYS.index(src) + 1) % len(_ARRAYS)]
                dst_idx = ("j", "i") if transpose_dst else ("i", "j")
                src_idx = ("j", "i") if transpose_src else ("i", "j")
                builder.assign((dst, *dst_idx),
                               builder.read(src, *src_idx) * scale)
    return builder.finish()


@given(elementwise_programs())
@settings(max_examples=25, deadline=None)
def test_normalization_preserves_semantics_and_statement_count(program):
    normalized, report = normalize(program)
    assert report.validation_errors == ()
    assert (len(list(normalized.iter_computations()))
            == len(list(program.iter_computations())))
    assert programs_equivalent(program, normalized, {"N": 7})


@given(elementwise_programs())
@settings(max_examples=25, deadline=None)
def test_normalization_never_increases_stride_cost(program):
    params = {"N": 64}
    normalized, _ = normalize(program)
    assert (program_stride_cost(normalized, params)
            <= program_stride_cost(program, params) + 1e-9)


@given(elementwise_programs())
@settings(max_examples=25, deadline=None)
def test_normalization_is_idempotent(program):
    once, _ = normalize(program)
    twice, _ = normalize(once)
    assert to_pseudocode(once).split("\n", 1)[1] == to_pseudocode(twice).split("\n", 1)[1]


@given(elementwise_programs())
@settings(max_examples=25, deadline=None)
def test_program_serialization_round_trip(program):
    restored = program_from_json(program_to_json(program))
    assert to_pseudocode(restored) == to_pseudocode(program)


@given(elementwise_programs(), st.integers(1, 12))
@settings(max_examples=20, deadline=None)
def test_cost_model_is_deterministic_and_positive(program, threads):
    model = CostModel(threads=threads)
    first = model.estimate_seconds(program, {"N": 256})
    second = model.estimate_seconds(program, {"N": 256})
    assert first == second
    assert first > 0

"""Tests for queue-scheduling policies, the adaptive batcher, and the
online measurement-feedback loop (session-, database-, and pool-level)."""

import asyncio
import json
import math
import threading
import types
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest
from helpers import fast_session

from repro.api import ScheduleRequest, SearchConfig
from repro.scheduler.database import (DatabaseEntry, TuningDatabase,
                                      apply_feedback_record, recipe_base_name,
                                      recipe_identity)
from repro.scheduler.embedding import EMBEDDING_SIZE, PerformanceEmbedding
from repro.observability import MetricsRegistry
from repro.serving import (PolicyError, SchedulingService, ServiceConfig,
                           ServingClient, ServingServer, WorkerConfig,
                           WorkerPool, create_policy, policy_names,
                           register_policy, request_fingerprint)
from repro.serving.policy import (POLICIES, AdaptiveBatcher, AgingPolicy,
                                  EarliestDeadlinePolicy, QueuePolicy,
                                  StrictPriorityPolicy, WeightedFairPolicy,
                                  quantile_from_counts)
from repro.transforms.recipe import Recipe

FAST_SEARCH = SearchConfig(population_size=4, epochs=1,
                           generations_per_epoch=1)


def run(coro):
    return asyncio.run(coro)


def _request(priority=0, deadline_s=None, program="p"):
    return ScheduleRequest(program=program, priority=priority,
                           deadline_s=deadline_s)


# -- the registry -------------------------------------------------------------------

class TestPolicyRegistry:
    def test_shipped_policies_are_registered(self):
        assert policy_names() == ["aging", "edf", "strict-priority",
                                  "weighted-fair"]

    def test_create_policy_returns_named_instances(self):
        for name, cls in (("strict-priority", StrictPriorityPolicy),
                          ("weighted-fair", WeightedFairPolicy),
                          ("edf", EarliestDeadlinePolicy),
                          ("aging", AgingPolicy)):
            policy = create_policy(name)
            assert isinstance(policy, cls)
            assert policy.name == name

    def test_unknown_policy_raises_with_the_known_names(self):
        with pytest.raises(PolicyError) as caught:
            create_policy("shortest-job-first")
        message = str(caught.value)
        assert "shortest-job-first" in message
        assert "strict-priority" in message

    def test_duplicate_registration_raises(self):
        with pytest.raises(PolicyError):
            register_policy("strict-priority")(StrictPriorityPolicy)

    def test_custom_policy_registers_and_serves(self):
        try:
            @register_policy("test-lifo")
            class LifoPolicy(QueuePolicy):
                def sort_key(self, request, now):
                    return (-now,)

            policy = create_policy("test-lifo")
            assert isinstance(policy, LifoPolicy)
            assert policy.sort_key(_request(), 3.0) == (-3.0,)
            assert "test-lifo" in policy_names()
        finally:
            POLICIES.pop("test-lifo", None)
        assert "test-lifo" not in policy_names()

    def test_unknown_policy_fails_at_service_construction(self):
        with pytest.raises(PolicyError):
            SchedulingService(_StubSession(),
                              ServiceConfig(policy="not-a-policy"))


# -- per-policy key semantics -------------------------------------------------------

class TestStrictPriorityKeys:
    def test_key_is_the_priority(self):
        policy = create_policy("strict-priority")
        assert policy.sort_key(_request(priority=7), 123.0) == (7.0,)
        assert policy.rider_key(_request(priority=2), 9.0) \
            < policy.sort_key(_request(priority=3), 0.0)


class TestWeightedFairKeys:
    def test_class_clocks_advance_inversely_to_weight(self):
        policy = WeightedFairPolicy(None)
        # Priority 0 weighs 10 (finish += 0.1); priority 9 weighs 1.
        assert policy.sort_key(_request(priority=0), 0.0) == (0.1,)
        assert policy.sort_key(_request(priority=0), 0.0) == (0.2,)
        assert policy.sort_key(_request(priority=9), 0.0) == (1.0,)
        assert policy.sort_key(_request(priority=9), 0.0) == (2.0,)

    def test_rider_key_peeks_without_advancing_the_clock(self):
        policy = WeightedFairPolicy(None)
        peeked = policy.rider_key(_request(priority=0), 0.0)
        assert peeked == (0.1,)
        # The peek committed nothing: the real enqueue gets the same key.
        assert policy.sort_key(_request(priority=0), 0.0) == peeked

    def test_dequeue_floors_idle_classes_at_the_virtual_time(self):
        policy = WeightedFairPolicy(None)
        for _ in range(5):
            key = policy.sort_key(_request(priority=9), 0.0)
        policy.on_dequeue(key)  # virtual time jumps to 5.0
        # A class that was idle all along starts at the floor, not at zero:
        # it earned no credit while absent.
        (finish,) = policy.sort_key(_request(priority=0), 0.0)
        assert finish == pytest.approx(5.1)

    def test_weight_overrides_apply_and_must_be_positive(self):
        config = types.SimpleNamespace(policy_weights={9: 5.0})
        policy = WeightedFairPolicy(config)
        assert policy.sort_key(_request(priority=9), 0.0) == (0.2,)
        for bad in (0.0, -1.0):
            with pytest.raises(PolicyError):
                WeightedFairPolicy(
                    types.SimpleNamespace(policy_weights={0: bad}))


class TestEarliestDeadlineKeys:
    def test_no_deadline_sorts_last(self):
        policy = create_policy("edf")
        assert policy.sort_key(_request(deadline_s=None), 10.0)[0] == math.inf
        assert policy.sort_key(_request(deadline_s=100.0), 10.0) \
            < policy.sort_key(_request(deadline_s=None), 10.0)

    def test_past_deadline_sorts_most_urgent(self):
        policy = create_policy("edf")
        late = policy.sort_key(_request(deadline_s=-1.0), 50.0)
        soon = policy.sort_key(_request(deadline_s=0.5), 50.0)
        assert late < soon
        assert late[0] == 49.0

    def test_priority_breaks_deadline_ties(self):
        policy = create_policy("edf")
        urgent = policy.sort_key(_request(priority=0, deadline_s=1.0), 5.0)
        bulk = policy.sort_key(_request(priority=9, deadline_s=1.0), 5.0)
        assert urgent < bulk


class TestAgingKeys:
    def test_interval_comes_from_the_config_and_must_be_positive(self):
        policy = AgingPolicy(types.SimpleNamespace(aging_interval_s=2.0))
        assert policy.age_interval_s == 2.0
        assert AgingPolicy(None).age_interval_s == 0.5
        with pytest.raises(PolicyError):
            AgingPolicy(types.SimpleNamespace(aging_interval_s=-1.0))

    def test_old_bulk_overtakes_fresh_urgent_after_nine_intervals(self):
        policy = AgingPolicy(types.SimpleNamespace(aging_interval_s=0.5))
        old_bulk = policy.sort_key(_request(priority=9), 0.0)   # key 4.5
        # A fresh priority-0 request still beats it before 9 intervals...
        assert policy.sort_key(_request(priority=0), 4.4) < old_bulk
        # ...and loses to it after.
        assert old_bulk < policy.sort_key(_request(priority=0), 4.6)


# -- drain order through the service ------------------------------------------------

def _stub_response(program):
    result = types.SimpleNamespace(
        program=types.SimpleNamespace(name=str(program)))
    result.copy = lambda: result
    return types.SimpleNamespace(
        result=result, scheduler="stub", program=result.program,
        runtime_s=0.0, normalized=False, input_hash=None,
        canonical_hash=None, from_cache=False,
        normalization_cache_hit=False)


class _StubSession:
    """Session stand-in recording the order requests reach the executor.

    The "gate" request blocks until released, pinning the batcher while a
    test stacks the queue; everything behind the gate then drains in the
    configured policy's order.
    """

    def __init__(self):
        self.order = []
        self.gate = threading.Event()

    def schedule_batch(self, requests, max_workers=None,
                       return_exceptions=False):
        responses = []
        for request in requests:
            if request.program == "gate":
                self.gate.wait(timeout=30)
            self.order.append(request.program)
            responses.append(_stub_response(request.program))
        return responses

    def record_coalesced(self, count=1):
        pass


async def _drain(service, submissions, stall_s=0.0):
    """Stack ``submissions`` behind a gate request and release the batcher.

    ``submissions`` are ``(request, stalled)`` pairs; after enqueueing the
    stalled prefix the driver sleeps ``stall_s`` so age-sensitive policies
    see real queue time before the rest arrives.
    """
    session = service.session
    await service.start()
    try:
        gate = asyncio.ensure_future(
            service.schedule(ScheduleRequest(program="gate")))
        await asyncio.sleep(0.05)  # the batcher is now blocked on the gate
        tasks, queued = [], 0
        stalled = True
        for request, early in submissions:
            if stalled and not early and stall_s:
                while service._queue.qsize() < queued:
                    await asyncio.sleep(0.005)
                await asyncio.sleep(stall_s)
                stalled = False
            tasks.append(asyncio.ensure_future(service.schedule(request)))
            queued += 1
        while service._queue.qsize() < queued:
            await asyncio.sleep(0.005)
        session.gate.set()
        await asyncio.gather(gate, *tasks)
    finally:
        await service.stop()


def _drive(config, submissions, stall_s=0.0):
    session = _StubSession()
    service = SchedulingService(session, config)
    run(_drain(service, submissions, stall_s=stall_s))
    assert session.order[0] == "gate"
    return session.order[1:], service


class TestEdfDrainOrder:
    def test_past_deadline_drains_first_and_deadline_free_last(self):
        order, _ = _drive(
            ServiceConfig(max_batch_size=1, batch_window_s=0.0,
                          policy="edf"),
            [(ScheduleRequest(program="never"), True),
             (ScheduleRequest(program="later", deadline_s=5.0), True),
             (ScheduleRequest(program="soon", deadline_s=0.5), True),
             (ScheduleRequest(program="late", deadline_s=-1.0), True)])
        assert order == ["late", "soon", "later", "never"]


class TestAgingDrainOrder:
    def test_starved_bulk_overtakes_a_fresh_urgent_burst(self):
        """A priority-9 request that waited longer than nine aging
        intervals must drain before priority-0 requests that just arrived —
        the exact starvation case strict-priority never resolves."""
        order, _ = _drive(
            ServiceConfig(max_batch_size=1, batch_window_s=0.0,
                          policy="aging", aging_interval_s=0.01),
            [(ScheduleRequest(program="old-bulk", priority=9), True),
             (ScheduleRequest(program="fresh-urgent", priority=0), False),
             (ScheduleRequest(program="fresh-bulk", priority=9), False)],
            stall_s=0.25)
        assert order == ["old-bulk", "fresh-urgent", "fresh-bulk"]

    def test_without_the_wait_strict_order_is_kept(self):
        order, _ = _drive(
            ServiceConfig(max_batch_size=1, batch_window_s=0.0,
                          policy="aging", aging_interval_s=10.0),
            [(ScheduleRequest(program="bulk", priority=9), True),
             (ScheduleRequest(program="urgent", priority=0), True)])
        assert order == ["urgent", "bulk"]


class TestWeightedFairDrainOrder:
    MIX = ([(ScheduleRequest(program=f"starved-{i}", priority=9), True)
            for i in range(1, 3)]
           + [(ScheduleRequest(program=f"bulk-{i}", priority=0), True)
              for i in range(1, 13)])

    def test_urgent_burst_does_not_starve_the_low_class(self):
        order, service = _drive(
            ServiceConfig(max_batch_size=1, batch_window_s=0.0,
                          policy="weighted-fair"), self.MIX)
        # The burst mostly goes first (it holds 10x the weight), but the
        # starved class is interleaved, not parked behind the whole burst.
        assert order.index("starved-1") < order.index("bulk-12")
        decisions = service.metrics.get("repro_queue_policy_decisions_total")
        assert decisions.labels("weighted-fair", "0").value == 12
        assert decisions.labels("weighted-fair", "9").value == 2
        latency = service.metrics.get("repro_policy_request_latency_seconds")
        assert latency is not None and latency.series_items()

    def test_strict_priority_parks_the_low_class_behind_the_burst(self):
        order, _ = _drive(
            ServiceConfig(max_batch_size=1, batch_window_s=0.0,
                          policy="strict-priority"), self.MIX)
        assert order[-2:] == ["starved-1", "starved-2"]


# -- the adaptive batcher -----------------------------------------------------------

class TestQuantileFromCounts:
    def test_empty_counts_are_nan(self):
        assert math.isnan(quantile_from_counts((0.1, 1.0), [0.0, 0.0, 0.0],
                                               0.95))

    def test_rank_walk_matches_the_bucket_bound(self):
        bounds = (0.1, 1.0)
        assert quantile_from_counts(bounds, [9.0, 1.0, 0.0], 0.5) == 0.1
        assert quantile_from_counts(bounds, [9.0, 1.0, 0.0], 0.95) == 1.0

    def test_overflow_bucket_is_infinite(self):
        assert quantile_from_counts((0.1,), [0.0, 5.0], 0.95) == math.inf


def _batcher(**overrides):
    settings = dict(max_batch_size=8, batch_window_s=0.01,
                    max_queue_depth=64, latency_slo_s=0.1,
                    adaptive_interval_s=0.0)
    settings.update(overrides)
    config = ServiceConfig(**settings)
    metrics = MetricsRegistry()
    histogram = metrics.histogram(
        "repro_request_latency_seconds", "test", ("priority",))
    return AdaptiveBatcher(config, metrics), config, metrics, histogram


class TestAdaptiveBatcher:
    def test_slo_misses_tighten_and_recovery_relaxes(self):
        batcher, config, metrics, histogram = _batcher()
        assert batcher.tick()["action"] == "hold"  # first tick: baseline
        for _ in range(20):
            histogram.labels("0").observe(0.2)  # p95 = 0.25 > slo 0.1
        decision = batcher.tick()
        assert decision["action"] == "tighten"
        assert config.batch_window_s == pytest.approx(0.005)
        assert config.max_batch_size == 16
        assert config.max_queue_depth == 48
        for _ in range(40):
            histogram.labels("0").observe(0.0004)  # p95 well under slo/2
        decision = batcher.tick()
        assert decision["action"] == "relax"
        assert config.batch_window_s == pytest.approx(0.01)
        assert config.max_batch_size == 8
        assert config.max_queue_depth == 64
        # A quiet interval holds (no traffic to adapt on).
        assert batcher.tick()["action"] == "hold"
        adjustments = metrics.get("repro_adaptive_adjustments_total")
        assert adjustments.labels("tighten").value == 1
        assert adjustments.labels("relax").value == 1

    def test_fast_traffic_without_prior_tightening_holds(self):
        batcher, config, _, histogram = _batcher()
        batcher.tick()
        for _ in range(10):
            histogram.labels("0").observe(0.0004)
        assert batcher.tick()["action"] == "hold"
        assert config.max_batch_size == 8

    def test_tightening_bottoms_out_at_the_floors(self):
        batcher, config, _, _ = _batcher()
        for _ in range(10):
            batcher._decide("tighten", 1.0)
        assert config.batch_window_s == pytest.approx(0.01 / 8.0)
        assert config.max_batch_size == 32          # 4x the configured 8
        assert config.max_queue_depth == 16         # 1/4 of the configured 64

    def test_unbounded_queue_depth_stays_unbounded(self):
        batcher, config, _, _ = _batcher(max_queue_depth=0)
        batcher._decide("tighten", 1.0)
        assert config.max_queue_depth == 0
        batcher._decide("relax", 0.0)
        assert config.max_queue_depth == 0

    def test_gauges_mirror_the_live_knobs(self):
        batcher, config, metrics, _ = _batcher()
        batcher._decide("tighten", 1.0)
        assert metrics.get("repro_adaptive_batch_window_seconds").value \
            == config.batch_window_s
        assert metrics.get("repro_adaptive_batch_size").value \
            == config.max_batch_size
        assert metrics.get("repro_adaptive_queue_depth").value \
            == config.max_queue_depth

    def test_maybe_tick_rate_limits(self):
        batcher, _, _, _ = _batcher(adaptive_interval_s=10.0)
        assert batcher.maybe_tick(0.0) is not None
        assert batcher.maybe_tick(5.0) is None
        assert batcher.maybe_tick(11.0) is not None


# -- the deadline field -------------------------------------------------------------

class TestDeadlineField:
    def test_round_trips_through_the_wire_format(self):
        request = ScheduleRequest(program="gemm:a", deadline_s=1.5)
        data = request.to_dict()
        assert data["deadline_s"] == 1.5
        assert ScheduleRequest.from_dict(data).deadline_s == 1.5

    def test_absent_when_unset(self):
        # Byte-compatibility: deadline-free requests serialize exactly as
        # they did before the field existed.
        assert "deadline_s" not in ScheduleRequest(program="gemm:a").to_dict()
        assert ScheduleRequest.from_dict({"program": "gemm:a"}).deadline_s \
            is None

    def test_fingerprint_ignores_the_deadline(self):
        # Deadlines shape queue order, not the scheduling outcome: they
        # must not split coalescing or cache keys.
        assert request_fingerprint(ScheduleRequest(program="gemm:a")) \
            == request_fingerprint(
                ScheduleRequest(program="gemm:a", deadline_s=0.5))


# -- Retry-After rounding (regression) ----------------------------------------------

class TestRetryAfterRounding:
    @pytest.mark.parametrize("hint,header", [(2.5, "3"), (0.05, "1")])
    def test_half_second_hints_round_up_not_to_even(self, hint, header):
        """round() uses banker's rounding (2.5 -> 2, 0.5 -> 0); the header
        must ceil so the hint never undercuts the configured backoff and
        never tells clients to retry immediately."""
        session = fast_session()
        config = ServiceConfig(max_batch_size=1, batch_window_s=0.01,
                               max_client_inflight=1, retry_after_s=hint)
        with ServingServer(session, config=config) as server:
            statuses = []

            def submit(size):
                body = json.dumps({"program": "correlation:a",
                                   "client": "alice",
                                   "parameters": {"M": size, "N": size}})
                request = urllib.request.Request(
                    server.address + "/v1/schedule", data=body.encode(),
                    method="POST",
                    headers={"Content-Type": "application/json"})
                try:
                    with urllib.request.urlopen(request, timeout=60) as reply:
                        statuses.append((reply.status, dict(reply.headers)))
                except urllib.error.HTTPError as error:
                    statuses.append((error.code, dict(error.headers)))

            with ThreadPoolExecutor(max_workers=6) as pool:
                list(pool.map(submit, [32 + index for index in range(6)]))
            rejected = [headers for status, headers in statuses
                        if status == 429]
            assert rejected
            assert rejected[0].get("Retry-After") == header
        session.close()


# -- the feedback loop: database level ----------------------------------------------

def _vector(*head):
    return tuple(list(head) + [0.0] * (EMBEDDING_SIZE - len(head)))


def _embedding(label, *head):
    return PerformanceEmbedding(label=label, vector=_vector(*head))


class TestDatabaseFeedback:
    def test_disappointing_measurement_flips_the_ranking(self):
        """The tentpole acceptance at database scale: the predicted-best
        entry stops winning once its executed schedule measures 100x worse
        than predicted."""
        database = TuningDatabase()
        near = database.add(_embedding("near", 1.0),
                            Recipe(name="near-recipe"), runtime=1.0)
        far = database.add(_embedding("far", 2.0),
                           Recipe(name="far-recipe"), runtime=1.0)
        probe = _embedding("probe")
        assert database.best_match(probe) is near
        before = database.version
        entry, created = database.record_measurement(
            _embedding("run", 1.0), Recipe(name="near-recipe"), 100.0)
        assert entry is near and not created
        # Bias saturates at 4x: score(near) = 1.0 * 4.0 > score(far) = 2.0.
        assert database.best_match(probe) is far
        assert database.version != before  # caches must revalidate

    def test_prediction_scale_projects_onto_the_entry_prediction(self):
        database = TuningDatabase()
        entry = database.add(_embedding("e", 1.0), Recipe(name="r"),
                             runtime=0.25)
        # A whole-program measurement at 2x its prediction credits the
        # entry at 2x the *entry's* prediction, not the raw wall time.
        database.record_measurement(_embedding("run", 1.0), Recipe(name="r"),
                                    10.0, prediction_scale=2.0)
        assert entry.measured_runtime == pytest.approx(0.5)
        assert entry.measurements == 1

    def test_unseen_recipe_becomes_a_measurement_born_entry(self):
        database = TuningDatabase()
        recipe = Recipe(name="searched@2")
        entry, created = database.record_measurement(
            _embedding("run", 3.0), recipe, 0.125)
        assert created
        assert len(database) == 1
        # Stored canonically: base name, retargeted to nest 0.
        assert entry.recipe.name == recipe_base_name(recipe.name) == "searched"
        assert recipe_identity(entry.recipe) == recipe_identity(recipe)
        assert entry.runtime is None and entry.bias() == 1.0

    def test_apply_feedback_record_outcomes(self):
        database = TuningDatabase()
        database.add(_embedding("seeded", 1.0), Recipe(name="seeded"),
                     runtime=1.0)
        applied = {"embedding": list(_vector(1.0)), "label": "run",
                   "recipe": Recipe(name="seeded").to_dict(),
                   "measured": 2.0, "scale": 2.0, "nest_index": 0}
        assert apply_feedback_record(applied, database) == "applied"
        assert apply_feedback_record(
            {"embedding": None, "nest_index": 1,
             "recipe": Recipe(name="gone").to_dict()}, database) == "skipped"
        novel = {"embedding": list(_vector(2.0)), "label": "run",
                 "recipe": Recipe(name="novel").to_dict(),
                 "measured": 0.5, "scale": None, "nest_index": 0}
        # A shard that does not own the entry must not create it...
        assert apply_feedback_record(novel, database,
                                     add_missing=False) == "skipped"
        assert len(database) == 1
        # ...the owner does.
        assert apply_feedback_record(novel, database) == "added"
        assert len(database) == 2


# -- the feedback loop: session level -----------------------------------------------

class TestSessionFeedback:
    def test_record_measurement_feeds_the_database_and_the_report(self):
        session = fast_session()
        try:
            response = session.schedule("gemm:a")
            records = session.measurement_feedback(response, 0.5)
            assert records and any(record.get("embedding")
                                   for record in records)
            before = session.database.version
            counts = session.record_measurement(response, 0.5)
            assert sum(counts.values()) == len(records)
            assert counts["applied"] + counts["added"] >= 1
            assert session.database.version != before
            report = session.report()
            assert report.feedback_applied == counts["applied"]
            assert report.feedback_added == counts["added"]
            assert report.feedback_skipped == counts["skipped"]
            assert report.to_dict()["feedback_applied"] == counts["applied"]
            counter = session.metrics.get(
                "repro_feedback_measurements_total")
            assert counter is not None
            assert counter.labels("applied").value == counts["applied"]
        finally:
            session.close()

    def test_measured_objects_with_a_median_are_accepted(self):
        session = fast_session()
        try:
            response = session.schedule("gemm:a")
            records = session.measurement_feedback(
                response, types.SimpleNamespace(median=0.25))
            assert all(record["measured"] == 0.25 for record in records
                       if record.get("embedding") is not None)
        finally:
            session.close()

    def test_non_positive_or_non_finite_measurements_are_rejected(self):
        session = fast_session()
        try:
            response = session.schedule("gemm:a")
            for bad in (0.0, -1.0, math.nan, math.inf):
                with pytest.raises(ValueError):
                    session.measurement_feedback(response, bad)
        finally:
            session.close()


# -- the feedback loop: pool level --------------------------------------------------

class TestPoolFeedback:
    def test_record_measurement_races_tune_redistribution(self, tmp_path):
        """Feedback application concurrent with a tune() redistribution
        round on a 2-worker pool: both must complete, and the feedback
        must land in the pool stats and the merged worker reports."""
        session = fast_session()
        try:
            response = session.schedule("gemm:a")
            records = session.measurement_feedback(response, 0.5)
        finally:
            session.close()
        assert records and any(record.get("embedding")
                               for record in records)
        embeddable = sum(1 for record in records
                         if record.get("embedding") is not None)
        config = WorkerConfig(threads=2,
                              cache_path=str(tmp_path / "cache.sqlite"),
                              search=FAST_SEARCH)
        with WorkerPool(2, config) as pool:
            with ThreadPoolExecutor(max_workers=2) as executor:
                tuned = executor.submit(
                    pool.tune, [ScheduleRequest(program="gemm:a", tune=True,
                                                label="gemm")])
                feedback = executor.submit(pool.record_measurement, records)
                tune_results = tuned.result(timeout=300)
                counts = feedback.result(timeout=300)
            assert not isinstance(tune_results[0], Exception)
            assert sum(counts.values()) == len(records)
            assert counts["applied"] + counts["added"] == embeddable
            stats = pool.stats.to_dict()
            assert stats["feedback_applied"] == counts["applied"]
            assert stats["feedback_added"] == counts["added"]
            assert stats["feedback_skipped"] == counts["skipped"]
            merged = pool.report()["merged"]
            # Every embeddable record was absorbed by exactly the worker
            # owning its shard (or applied on workers holding a match).
            assert merged.get("feedback_applied", 0) \
                + merged.get("feedback_added", 0) >= 1

"""Tests for the differential-testing subsystem (``repro.fuzz``)."""

import json
import os

import numpy as np
import pytest

from helpers import fast_session, parse_prometheus_text, prometheus_sample

from repro.fuzz import (Corpus, CorpusEntry, FailureSpec, GeneratedProgram,
                        Oracle, OracleConfig, SIZE_CLASSES, generate_program,
                        minimize_program)
from repro.fuzz.cli import main as fuzz_main
from repro.fuzz.oracle import reproduces_failure
from repro.interp import run_program
from repro.ir.serialization import program_to_dict
from repro.ir.validation import validate_program
from repro.passes.base import Pass
from repro.passes.pipeline import Pipeline
from repro.passes.registry import register_pipeline, unregister_pipeline
from repro.workloads.registry import (fuzz_names, fuzz_program,
                                      register_fuzz_program)


def small_oracle(**overrides):
    """An oracle over one pipeline/scheduler pair: cheap enough for tests."""
    config = OracleConfig(**{"pipelines": ["a-priori"],
                             "schedulers": ["daisy"], **overrides})
    return Oracle(config, session=fast_session())


class TestGenerator:
    @pytest.mark.parametrize("size_class", sorted(SIZE_CLASSES))
    def test_deterministic(self, size_class):
        first = generate_program(7, size_class)
        second = generate_program(7, size_class)
        assert program_to_dict(first.program) == program_to_dict(second.program)
        assert first.parameters == second.parameters

    def test_distinct_seeds_differ(self):
        a = generate_program(0, "small")
        b = generate_program(1, "small")
        assert program_to_dict(a.program) != program_to_dict(b.program)

    @pytest.mark.parametrize("seed", range(25))
    def test_generated_programs_validate_and_execute(self, seed):
        generated = generate_program(seed, "small")
        validate_program(generated.program, strict=True)
        # check_uninitialized=True: every read must be dominated by a write
        # (or target a non-transient input container).
        storage = run_program(generated.program, generated.parameters,
                              seed=0, check_uninitialized=True)
        assert any(not arr.transient
                   for arr in generated.program.arrays.values())
        for name, values in storage.items():
            assert np.all(np.isfinite(values) | np.isnan(values)) or True

    def test_roundtrip_dict(self):
        generated = generate_program(11, "tiny")
        clone = GeneratedProgram.from_dict(generated.to_dict())
        assert program_to_dict(clone.program) == program_to_dict(
            generated.program)
        assert clone.parameters == generated.parameters
        assert clone.seed == 11 and clone.size_class == "tiny"

    def test_unknown_size_class(self):
        with pytest.raises(KeyError):
            generate_program(0, "galactic")


class TestOracle:
    def test_clean_seeds_pass(self):
        oracle = small_oracle()
        report = oracle.run(range(3), "tiny")
        assert report.counts == {"pass": 3}
        assert report.checks > 0

    def test_metrics_counters(self):
        oracle = small_oracle()
        oracle.run(range(2), "tiny")
        metrics = parse_prometheus_text(oracle.session.metrics.render())
        assert prometheus_sample(metrics, "repro_fuzz_programs_total",
                                 outcome="pass") == 2

    def test_unknown_pipeline_rejected(self):
        with pytest.raises(KeyError):
            Oracle(OracleConfig(pipelines=["not-a-pipeline"]))

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(KeyError):
            Oracle(OracleConfig(schedulers=["not-a-scheduler"]))


class _ShortenFirstLoop(Pass):
    """Injected bug: silently drops the last iteration of the first loop."""

    name = "inject-shorten"

    def apply(self, program, context):
        for loop in program.iter_loops():
            loop.end = loop.end - 1
            return True
        return False


@pytest.fixture
def buggy_pipeline():
    name = "inject-shorten"
    register_pipeline(name, overwrite=True)(
        lambda: Pipeline(name, [_ShortenFirstLoop()]))
    yield name
    unregister_pipeline(name)


def _first_diverging_verdict(oracle, size_class="tiny", limit=10):
    for seed in range(limit):
        generated = generate_program(seed, size_class)
        verdict = oracle.check(generated)
        if verdict.outcome == "divergence":
            return generated, verdict
    raise AssertionError("injected bug was never caught")


class TestInjectedFailure:
    def test_caught_minimized_and_replayable(self, buggy_pipeline, tmp_path):
        # Schedulers are skipped (empty set): the injected bug lives in the
        # normalize stage and one stage keeps the shrink loop fast.
        oracle = Oracle(OracleConfig(pipelines=[buggy_pipeline],
                                     schedulers=[]),
                        session=fast_session())
        generated, verdict = _first_diverging_verdict(oracle)
        divergence = verdict.divergences[0]
        assert divergence.spec.stage == "normalize"
        assert divergence.spec.pipeline == buggy_pipeline

        result = minimize_program(generated, divergence.spec,
                                  session=oracle.session)
        assert result.statements <= 5
        assert result.statements <= result.original_statements
        validate_program(result.program, strict=True)
        # The minimized program still reproduces the exact failure ...
        assert reproduces_failure(oracle.session, result.program,
                                  result.parameters, divergence.spec)

        # ... and does so after a corpus round-trip (replayable repro).
        corpus = Corpus()
        corpus.add(GeneratedProgram(program=result.program,
                                    parameters=dict(result.parameters),
                                    seed=generated.seed,
                                    size_class=generated.size_class),
                   label="minimized divergence", spec=divergence.spec)
        path = tmp_path / "repro.json"
        corpus.save(str(path))
        replayed = Corpus.load(str(path))
        report = replayed.replay(oracle)
        assert [v.outcome for v in report.verdicts] == ["divergence"]

    def test_minimize_rejects_passing_program(self, buggy_pipeline):
        oracle = small_oracle()
        generated = generate_program(0, "tiny")
        spec = FailureSpec("normalize", "mismatch", "a-priori")
        with pytest.raises(ValueError):
            minimize_program(generated, spec, session=oracle.session)


class TestCorpus:
    def test_roundtrip(self, tmp_path):
        corpus = Corpus()
        for seed in range(3):
            corpus.add(generate_program(seed, "tiny"), label="generated")
        path = tmp_path / "corpus.json"
        corpus.save(str(path))
        loaded = Corpus.load(str(path))
        assert loaded.names() == corpus.names()
        for original, clone in zip(corpus, loaded):
            assert program_to_dict(original.generated.program) == \
                program_to_dict(clone.generated.program)
            assert original.label == clone.label

    def test_version_guard(self, tmp_path):
        path = tmp_path / "corpus.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ValueError):
            Corpus.load(str(path))

    def test_get_unknown(self):
        with pytest.raises(KeyError):
            Corpus().get("missing")


class TestFuzzWorkloadNamespace:
    def test_lazy_resolution(self):
        program, parameters = fuzz_program("tiny-4")
        expected = generate_program(4, "tiny")
        assert program_to_dict(program) == program_to_dict(expected.program)
        assert parameters == expected.parameters

    def test_registered_programs_shadow_generator(self):
        generated = generate_program(5, "tiny")
        generated.parameters = dict(generated.parameters)
        name = register_fuzz_program(generated)
        try:
            assert name == "fuzz:tiny-5"
            assert "tiny-5" in fuzz_names()
            program, parameters = fuzz_program("tiny-5")
            assert parameters == generated.parameters
            # A private copy: mutating it must not poison the registry.
            program.name = "mutated"
            fresh, _ = fuzz_program("tiny-5")
            assert fresh.name != "mutated"
        finally:
            from repro.workloads.registry import _FUZZ_PROGRAMS
            _FUZZ_PROGRAMS.pop("tiny-5", None)

    def test_unknown_key(self):
        with pytest.raises(KeyError):
            fuzz_program("nope")

    def test_session_resolves_fuzz_names(self):
        from repro.api import ScheduleRequest

        session = fast_session()
        response = session.schedule(ScheduleRequest(program="fuzz:tiny-2",
                                                    scheduler="daisy"))
        expected = generate_program(2, "tiny")
        run_program(response.program, expected.parameters, seed=0)


class TestCli:
    def test_run_writes_deterministic_jsonl(self, tmp_path, capsys):
        args = ["run", "--seeds", "3", "--size-class", "tiny",
                "--pipelines", "a-priori", "--schedulers", "daisy",
                "--divergence-corpus", str(tmp_path / "div.json")]
        first = tmp_path / "a.jsonl"
        second = tmp_path / "b.jsonl"
        assert fuzz_main(args + ["--jsonl", str(first)]) == 0
        assert fuzz_main(args + ["--jsonl", str(second)]) == 0
        assert first.read_bytes() == second.read_bytes()
        lines = [json.loads(line) for line in first.read_text().splitlines()]
        assert len(lines) == 4  # 3 verdicts + summary
        assert lines[-1]["summary"] == {"pass": 3}
        assert not (tmp_path / "div.json").exists()

    def test_export_and_replay(self, tmp_path):
        corpus_path = tmp_path / "corpus.json"
        assert fuzz_main(["export", "--seeds", "2", "--size-class", "tiny",
                          "--corpus", str(corpus_path)]) == 0
        assert fuzz_main(["replay", "--corpus", str(corpus_path),
                          "--pipelines", "a-priori",
                          "--schedulers", "daisy"]) == 0

    def test_minimize_clean_seed(self, capsys):
        assert fuzz_main(["minimize", "--seed", "0", "--size-class", "tiny",
                          "--pipelines", "a-priori",
                          "--schedulers", "daisy"]) == 0

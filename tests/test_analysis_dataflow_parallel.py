"""Tests for dataflow graphs, parallelism detection, strides and reuse."""

import pytest

from helpers import build_gemm, build_stencil, build_vector_add
from repro.analysis import (analyze_loop_parallelism, build_dataflow_graph,
                            estimate_reuse, is_fully_parallel_band,
                            nest_stride_cost, nest_stride_report,
                            node_reads_writes, out_of_order_count,
                            outermost_parallel_loop, parallel_loops,
                            producer_consumer_pairs, program_dataflow,
                            program_stride_cost, topological_order)
from repro.ir import ProgramBuilder
from repro.normalization import normalize_program
from repro.workloads.polybench import build_atax_b, build_gesummv_b


class TestDataflow:
    def test_reads_writes_summary(self, gemm_program):
        reads, writes = node_reads_writes(gemm_program.body[1])
        assert writes == {"C"}
        assert {"A", "B", "alpha"} <= reads

    def test_flow_edge_between_nests(self):
        program = build_atax_b()
        graph = program_dataflow(program)
        # tmp is produced by nest 2 and consumed by nest 3.
        assert graph.has_edge(2, 3)
        assert "flow" in graph[2][3]["kinds"]

    def test_topological_order_respects_program_order(self):
        program = build_gesummv_b()
        graph = program_dataflow(program)
        order = topological_order(graph)
        assert order.index(2) < order.index(4)

    def test_producer_consumer_pairs_exclusive(self):
        b = ProgramBuilder("p", parameters=["N"])
        b.add_array("x", ("N",))
        b.add_array("t", ("N",), transient=True)
        b.add_array("y", ("N",))
        with b.loop("i", 0, "N"):
            b.assign(("t", "i"), b.read("x", "i") * 2)
        with b.loop("i", 0, "N"):
            b.assign(("y", "i"), b.read("t", "i") + 1)
        pairs = producer_consumer_pairs(b.finish())
        assert pairs and pairs[0][:2] == (0, 1)


class TestParallelism:
    def test_vector_add_parallel(self, vector_add_program):
        info = analyze_loop_parallelism(vector_add_program.body[0])
        assert info.is_parallel and not info.is_reduction

    def test_reduction_loop_detected(self):
        b = ProgramBuilder("p", parameters=["N"])
        b.add_array("s", ())
        b.add_array("x", ("N",))
        with b.loop("i", 0, "N"):
            b.accumulate(("s",), b.read("x", "i"))
        info = analyze_loop_parallelism(b.finish().body[0])
        assert not info.is_parallel and info.is_reduction

    def test_sequential_recurrence(self):
        b = ProgramBuilder("p", parameters=["N"])
        b.add_array("x", ("N",))
        with b.loop("i", 1, "N"):
            b.assign(("x", "i"), b.read("x", b.sym("i") - 1) + 1.0)
        info = analyze_loop_parallelism(b.finish().body[0])
        assert not info.is_parallel and not info.is_reduction

    def test_privatizable_scalar_allows_parallelism(self):
        b = ProgramBuilder("p", parameters=["N"])
        b.add_array("x", ("N",))
        b.add_array("y", ("N",))
        b.add_scalar("tmp", transient=True)
        with b.loop("i", 0, "N"):
            b.assign(("tmp",), b.read("x", "i") * 2)
            b.assign(("y", "i"), b.read("tmp") + 1)
        program = b.finish()
        info = analyze_loop_parallelism(program.body[0], program.arrays)
        assert info.is_parallel and info.requires_privatization

    def test_gemm_parallel_loops(self, gemm_program):
        names = parallel_loops(gemm_program.body[1])
        assert "i" in names and "j" in names and "k" not in names
        assert outermost_parallel_loop(gemm_program.body[1]).iterator == "i"
        assert not is_fully_parallel_band(gemm_program.body[1])

    def test_stencil_time_loop_sequential(self, stencil_program):
        info = analyze_loop_parallelism(stencil_program.body[0])
        assert not info.is_parallel


class TestStridesAndReuse:
    def test_loop_order_changes_stride_cost(self, gemm_program, gemm_params):
        nest = gemm_program.body[1]
        cost_ijk = nest_stride_cost(nest, gemm_program.arrays, gemm_params,
                                    order=["i", "j", "k"])
        cost_ikj = nest_stride_cost(nest, gemm_program.arrays, gemm_params,
                                    order=["i", "k", "j"])
        assert cost_ikj < cost_ijk

    def test_report_per_level(self, gemm_program, gemm_params):
        nest = gemm_program.body[1]
        report = nest_stride_report(nest, gemm_program.arrays, gemm_params)
        assert report.level_cost("k") > report.level_cost("j")
        assert report.non_affine_accesses == 0

    def test_out_of_order_count_detects_transposed_traversal(self):
        b = ProgramBuilder("p", parameters=["N"])
        b.add_array("A", ("N", "N"))
        with b.loop("j", 0, "N"):
            with b.loop("i", 0, "N"):
                b.assign(("A", "i", "j"), 1.0)
        bad = b.finish()
        good = normalize_program(bad)
        assert out_of_order_count(bad.body[0], bad.arrays) > 0
        assert out_of_order_count(good.body[0], good.arrays) == 0

    def test_program_stride_cost_sums_nests(self, gemm_program, gemm_params):
        total = program_stride_cost(gemm_program, gemm_params)
        assert total > 0

    def test_reuse_estimate(self, gemm_program, gemm_params):
        nest = gemm_program.body[1]
        estimate = estimate_reuse(nest, gemm_program.arrays, gemm_params)
        assert estimate.innermost_footprint >= 4
        assert estimate.reuse_of("C") is not None

"""Tests for the Session facade: loading, scheduling, caching, batching."""

import numpy as np
import pytest
from helpers import GEMM_PARAMS as PARAMS
from helpers import build_gemm, build_vector_add, fast_session

from repro.api import (NormalizationOptions, RegistryError, ScheduleRequest,
                       ScheduleResponse)

VEC_SOURCE = """
double x[N];
double y[N];
double z[N];
for (i = 0; i < N; i++) { z[i] = x[i] + y[i]; }
"""


class TestLoad:
    def test_load_program_passthrough(self):
        session = fast_session()
        program = build_gemm()
        assert session.load(program) is program

    def test_load_workload_names(self):
        session = fast_session()
        a = session.load("gemm")
        b = session.load("gemm:b")
        npb = session.load("gemm", variant="npbench")
        assert a.name != b.name and npb.name != a.name

    def test_load_clike_source(self):
        session = fast_session()
        program = session.load(VEC_SOURCE, name="vec")
        assert program.name == "vec"
        assert set(program.arrays) == {"x", "y", "z"}

    def test_load_special_workloads(self):
        session = fast_session()
        assert session.load("erosion").body
        assert session.load("cloudsc").body

    def test_load_unknown_name_raises(self):
        session = fast_session()
        with pytest.raises(RegistryError):
            session.load("definitely-not-a-workload")

    def test_workload_names_carry_default_parameters(self):
        session = fast_session(size="small")
        response = session.schedule("gemm:a", scheduler="clang")
        assert response.runtime_s > 0

    def test_program_without_parameters_raises(self):
        session = fast_session()
        with pytest.raises(ValueError, match="no parameters"):
            session.schedule(build_gemm())


class TestScheduleAndCache:
    def test_normalized_equivalent_variant_served_from_cache(self):
        """The acceptance-criterion scenario: scheduling a normalized-
        equivalent B variant is a schedule-cache hit, visible in report()."""
        session = fast_session()
        first = session.schedule(build_gemm(("i", "j", "k")), PARAMS)
        second = session.schedule(build_gemm(("i", "k", "j")), PARAMS)

        assert not first.from_cache
        assert second.from_cache
        assert first.canonical_hash == second.canonical_hash
        assert second.runtime_s == first.runtime_s

        report = session.report()
        assert report.schedule_cache_hits == 1
        assert report.schedule_cache_misses == 1
        assert report.schedule_calls == 2

    def test_same_program_hits_normalization_cache(self):
        session = fast_session()
        session.schedule(build_gemm(), PARAMS)
        repeat = session.schedule(build_gemm(), PARAMS)
        assert repeat.from_cache and repeat.normalization_cache_hit
        assert session.report().normalization_hits == 1

    def test_normalization_cache_hit_keeps_callers_program_name(self):
        session = fast_session()
        session.normalize(build_gemm(name="first"))
        served = session.normalize(build_gemm(name="second"))
        assert served.cache_hit
        assert served.program.name == "second"
        # The same holds for the program a fresh schedule normalizes through.
        response = session.schedule(build_gemm(name="third"), PARAMS)
        assert response.program.name == "third"

    def test_tuning_schedulers_share_the_session_database(self):
        """Registry metadata (tunes=True), not a hard-coded name, wires the
        session database in: evolutionary tunes land there too."""
        session = fast_session()
        session.tune("gemm:a", label="gemm", scheduler="evolutionary")
        assert session.report().database_entries > 0

    def test_registry_variants_share_schedule_cache(self):
        session = fast_session()
        first = session.schedule("gemm:a")
        second = session.schedule("gemm:b")
        assert second.from_cache and not first.from_cache
        # The served copy keeps the caller's program name.
        assert second.program.name == session.load("gemm:b").name

    def test_cached_response_program_is_a_copy(self):
        session = fast_session()
        session.schedule(build_gemm(), PARAMS)
        served = session.schedule(build_gemm(), PARAMS)
        served.program.body.clear()
        again = session.schedule(build_gemm(), PARAMS)
        assert again.program.body

    def test_baselines_do_not_normalize_by_default(self):
        session = fast_session()
        response = session.schedule(build_gemm(), PARAMS, scheduler="clang")
        assert not response.normalized and response.canonical_hash is None
        forced = session.schedule(build_gemm(), PARAMS, scheduler="clang",
                                  normalize=True)
        assert forced.normalized and forced.canonical_hash is not None

    def test_baseline_schedules_also_content_cached(self):
        session = fast_session()
        first = session.schedule(build_gemm(), PARAMS, scheduler="polly")
        second = session.schedule(build_gemm(), PARAMS, scheduler="polly")
        assert second.from_cache and second.runtime_s == first.runtime_s

    def test_tune_populates_database_and_transfers(self):
        session = fast_session()
        session.tune("gemm:a", label="gemm")
        assert session.report().tune_calls == 1
        assert session.report().database_entries > 0
        response = session.schedule("gemm:b")
        statuses = {info.status for info in response.result.nests}
        assert statuses == {"optimized"}

    def test_tune_invalidates_cached_schedules(self):
        """A schedule cached before tune() must not shadow the transfer-tuned
        schedule available afterwards (the database version is in the key)."""
        session = fast_session()
        session.schedule("atax:b")  # cached against the empty database
        session.tune("atax:a", label="atax")
        after = session.schedule("atax:b")
        assert not after.from_cache
        details = [info.detail for info in after.result.nests]
        assert any("transfer from" in detail for detail in details), details

    def test_tune_on_non_tuning_scheduler_raises(self):
        session = fast_session()
        with pytest.raises(RegistryError, match="does not support tuning"):
            session.tune(build_gemm(), PARAMS, scheduler="clang")


class TestRoundTrips:
    def test_request_round_trip_with_program(self):
        request = ScheduleRequest(program=build_gemm(), parameters=PARAMS,
                                  scheduler="daisy", threads=4, label="x",
                                  normalize=True)
        restored = ScheduleRequest.from_dict(request.to_dict())
        assert restored.scheduler == "daisy" and restored.threads == 4
        assert restored.label == "x" and restored.normalize is True
        assert dict(restored.parameters) == PARAMS
        assert restored.program.name == request.program.name

    def test_request_round_trip_with_workload_name(self):
        request = ScheduleRequest(program="gemm:b")
        restored = ScheduleRequest.from_dict(request.to_dict())
        assert restored.program == "gemm:b"

    def test_explicit_empty_parameters_survive_round_trip(self):
        data = ScheduleRequest(program="gemm:a", parameters={}).to_dict()
        assert data["parameters"] == {}  # not collapsed to null

    def test_response_round_trip(self):
        import json

        session = fast_session()
        response = session.schedule(build_gemm(), PARAMS)
        payload = json.loads(json.dumps(response.to_dict()))
        restored = ScheduleResponse.from_dict(payload)
        assert restored.runtime_s == response.runtime_s
        assert restored.canonical_hash == response.canonical_hash
        assert len(restored.result.nests) == len(response.result.nests)
        assert [info.status for info in restored.result.nests] \
            == [info.status for info in response.result.nests]
        # The restored scheduled program estimates to the same runtime.
        assert session.evaluate(restored.program, PARAMS) \
            == pytest.approx(session.evaluate(response.program, PARAMS))


class TestBatch:
    def items(self):
        return [
            (build_gemm(("i", "j", "k")), PARAMS),
            (build_gemm(("i", "k", "j")), PARAMS),
            (build_vector_add(), {"N": 4096}),
            ("atax:a", None),
        ]

    @staticmethod
    def _signature(responses):
        return [(r.runtime_s, r.canonical_hash,
                 tuple(info.status for info in r.result.nests))
                for r in responses]

    def test_batch_matches_sequential(self):
        items = [(p, params) for p, params in self.items() if params is not None]
        sequential = [fast_session().schedule(p, params) for p, params in items]
        batched = fast_session().schedule_batch(items, max_workers=4)
        assert self._signature(batched) == self._signature(sequential)

    def test_batch_is_deterministic_across_runs(self):
        first = fast_session().schedule_batch(self.items(), max_workers=4)
        second = fast_session().schedule_batch(self.items(), max_workers=4)
        assert self._signature(first) == self._signature(second)

    def test_batch_shares_cache(self):
        session = fast_session()
        # Warm the cache sequentially first: concurrent equivalent items may
        # legitimately both miss (benign duplicate compute), but a warmed
        # canonical form must be served to every batch worker.
        session.schedule(build_gemm(("i", "j", "k")), PARAMS)
        responses = session.schedule_batch(self.items(), max_workers=4)
        assert responses[0].from_cache and responses[1].from_cache
        report = session.report()
        assert report.schedule_cache_hits >= 2
        assert report.batch_calls == 1

    def test_batch_accepts_requests_and_preserves_order(self):
        session = fast_session()
        requests = [ScheduleRequest(program="gemm:a", scheduler="clang"),
                    ScheduleRequest(program="atax:a", scheduler="clang")]
        responses = session.schedule_batch(requests)
        assert [r.request.program for r in responses] == ["gemm:a", "atax:a"]

    def test_batch_rejects_tune_requests(self):
        session = fast_session()
        with pytest.raises(ValueError, match="tune requests"):
            session.schedule_batch([ScheduleRequest(program="gemm:a", tune=True)])

    def test_batch_return_exceptions_isolates_failures(self):
        session = fast_session()
        responses = session.schedule_batch(
            [ScheduleRequest(program="gemm:a"),
             ScheduleRequest(program="not-a-workload"),
             ScheduleRequest(program="atax:a")],
            max_workers=3, return_exceptions=True)
        assert responses[0].runtime_s > 0
        assert isinstance(responses[1], Exception)
        assert responses[2].runtime_s > 0

    def test_batch_return_exceptions_rejects_tune_in_band(self):
        session = fast_session()
        responses = session.schedule_batch(
            [ScheduleRequest(program="gemm:a"),
             ScheduleRequest(program="gemm:a", tune=True)],
            max_workers=2, return_exceptions=True)
        assert responses[0].runtime_s > 0
        assert isinstance(responses[1], ValueError)
        assert session.report().tune_calls == 0  # the tune never ran

    def test_batch_without_return_exceptions_raises(self):
        session = fast_session()
        with pytest.raises(Exception):
            session.schedule_batch([ScheduleRequest(program="not-a-workload"),
                                    ScheduleRequest(program="gemm:a")],
                                   max_workers=2)


class TestConcurrentCacheLoad:
    """LRU eviction and hit/miss accounting under schedule_batch concurrency
    (previously only exercised single-threaded)."""

    ORDERS = [("i", "j", "k"), ("i", "k", "j"), ("k", "i", "j"),
              ("k", "j", "i"), ("j", "i", "k"), ("j", "k", "i")]

    def test_counters_do_not_lose_updates_under_concurrency(self):
        session = fast_session()
        items = [(build_gemm(order), PARAMS)
                 for order in self.ORDERS for _ in range(4)]
        responses = session.schedule_batch(items, max_workers=8)
        assert len(responses) == 24
        report = session.report()
        # Every request touches the normalization level exactly once, and
        # the schedule level exactly once: no update may be lost.
        assert report.normalization_hits + report.normalization_misses == 24
        assert report.schedule_cache_hits + report.schedule_cache_misses == 24
        assert report.schedule_calls == 24
        # All six orders share one canonical form: at most a few racing
        # misses, everything else served from the schedule cache.
        assert report.normalization_misses >= 6
        assert report.schedule_cache_hits >= 24 - 2 * len(self.ORDERS)
        assert len({response.runtime_s for response in responses}) == 1

    def test_lru_eviction_under_concurrent_batches(self):
        from repro.api import MemoryCacheBackend, NormalizationCache

        cache = NormalizationCache(backend=MemoryCacheBackend(max_entries=2))
        session = fast_session(cache=cache)
        items = [(build_gemm(order), PARAMS) for order in self.ORDERS] * 2
        session.schedule_batch(items, max_workers=6)
        report = session.report()
        # Six distinct normalization entries through a two-entry store must
        # evict, and the store must stay within its bound throughout.
        assert report.cache_evictions > 0
        sizes = cache.backend.sizes()
        assert all(size <= 2 for size in sizes.values()), sizes
        assert report.normalization_hits + report.normalization_misses == 12

    def test_eviction_then_recompute_is_consistent(self):
        from repro.api import MemoryCacheBackend, NormalizationCache

        cache = NormalizationCache(backend=MemoryCacheBackend(max_entries=1))
        session = fast_session(cache=cache)
        first = session.schedule_batch(
            [(build_gemm(order), PARAMS) for order in self.ORDERS],
            max_workers=4)
        second = session.schedule_batch(
            [(build_gemm(order), PARAMS) for order in self.ORDERS],
            max_workers=4)
        # Evicted entries are recomputed to identical results.
        assert [r.runtime_s for r in first] == [r.runtime_s for r in second]
        assert [r.canonical_hash for r in first] \
            == [r.canonical_hash for r in second]


class TestExecutionAndMeasurement:
    def test_execute_runs_interpreter(self):
        session = fast_session()
        x = np.arange(8, dtype=np.float64)
        y = np.ones(8)
        result = session.execute(VEC_SOURCE, {"N": 8}, inputs={"x": x, "y": y})
        np.testing.assert_allclose(result.output("z"), x + 1.0)
        assert session.report().execute_calls == 1

    def test_equivalence_of_scheduled_program(self):
        session = fast_session()
        program = build_gemm()
        response = session.schedule(program, PARAMS)
        small = {"NI": 6, "NJ": 5, "NK": 4}
        assert session.equivalent(program, response.program, small)

    def test_evaluate_does_not_schedule(self):
        session = fast_session()
        runtime = session.evaluate(build_gemm(), PARAMS)
        assert runtime > 0
        assert session.report().schedule_calls == 0

    def test_cache_report_counts_l1_traffic(self):
        session = fast_session()
        report = session.cache_report(build_vector_add(), {"N": 256})
        assert report.l1_loads > 0


class TestNormalizationOptionsPlumbing:
    def test_session_options_flow_into_normalize(self):
        session = fast_session(
            normalization=NormalizationOptions(apply_fission=False))
        program = build_gemm()
        response = session.normalize(program)
        assert response.report.fission.loops_split == 0

    def test_explicit_options_override(self):
        session = fast_session()
        response = session.normalize(build_gemm(),
                                     NormalizationOptions(apply_fission=False))
        assert response.report.fission.loops_split == 0
        full = session.normalize(build_gemm())
        assert full.report.fission.loops_split >= 0
        assert full.input_hash != response.input_hash

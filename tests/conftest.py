"""Shared fixtures for the test suite.

The program builders live in :mod:`helpers` (``tests/helpers.py``) so that
test modules can import them without shadowing ``benchmarks/conftest.py``.
"""

import numpy as np
import pytest

from helpers import build_gemm, build_stencil, build_vector_add  # noqa: F401


@pytest.fixture
def gemm_program():
    return build_gemm()


@pytest.fixture
def gemm_params():
    return {"NI": 10, "NJ": 12, "NK": 14}


@pytest.fixture
def vector_add_program():
    return build_vector_add()


@pytest.fixture
def stencil_program():
    return build_stencil()


@pytest.fixture
def rng():
    return np.random.default_rng(12345)

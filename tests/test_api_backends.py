"""Tests for the pluggable cache backends and persistent sessions."""

import threading

import pytest
from helpers import GEMM_PARAMS as PARAMS
from helpers import build_gemm, build_vector_add, fast_session

from repro.api import MemoryCacheBackend, SQLiteCacheBackend


class TestMemoryBackend:
    def test_namespaces_are_independent(self):
        backend = MemoryCacheBackend(max_entries=8)
        backend.put("a", "k", 1)
        backend.put("b", "k", 2)
        assert backend.get("a", "k") == 1
        assert backend.get("b", "k") == 2
        assert backend.sizes() == {"a": 1, "b": 1}
        assert len(backend) == 2

    def test_lru_eviction_per_namespace(self):
        backend = MemoryCacheBackend(max_entries=2)
        backend.put("ns", "one", 1)
        backend.put("ns", "two", 2)
        backend.get("ns", "one")  # refresh recency: "two" is now oldest
        backend.put("ns", "three", 3)
        assert backend.stats.evictions == 1
        assert backend.get("ns", "two") is None
        assert backend.get("ns", "one") == 1

    def test_hit_and_miss_counters(self):
        backend = MemoryCacheBackend()
        assert backend.get("ns", "absent") is None
        backend.put("ns", "k", 1)
        backend.get("ns", "k")
        assert backend.stats.misses == 1
        assert backend.stats.memory_hits == 1
        assert backend.stats.disk_hits == 0
        assert backend.stats.writes == 1


class TestSQLiteBackend:
    def _backend(self, tmp_path, **kwargs):
        backend = SQLiteCacheBackend(str(tmp_path / "cache.sqlite"), **kwargs)
        backend.bind("ns", lambda value: {"value": value},
                     lambda payload: payload["value"])
        return backend

    def test_put_get_roundtrip(self, tmp_path):
        backend = self._backend(tmp_path)
        backend.put("ns", "k", [1, 2, 3])
        assert backend.get("ns", "k") == [1, 2, 3]
        assert backend.stats.memory_hits == 1  # served by the hot layer
        backend.close()

    def test_entries_survive_reopen_as_disk_hits(self, tmp_path):
        first = self._backend(tmp_path)
        first.put("ns", "k", "payload")
        first.close()
        second = self._backend(tmp_path)
        assert second.get("ns", "k") == "payload"
        assert second.stats.disk_hits == 1
        # A repeat is now hot in memory.
        assert second.get("ns", "k") == "payload"
        assert second.stats.memory_hits == 1
        second.close()

    def test_lru_eviction_on_disk(self, tmp_path):
        backend = self._backend(tmp_path, max_entries=2)
        backend.put("ns", "one", 1)
        backend.put("ns", "two", 2)
        backend.get("ns", "one")
        backend.put("ns", "three", 3)
        assert backend.stats.evictions == 1
        assert backend.get("ns", "two") is None
        assert backend.get("ns", "one") == 1
        assert backend.sizes() == {"ns": 2}
        backend.close()

    def test_unreadable_payload_is_a_miss_not_a_crash(self, tmp_path):
        backend = self._backend(tmp_path)
        backend.put("ns", "k", "fine")
        backend._conn.execute(
            "UPDATE cache SET payload = '{\"bogus\": true}' WHERE key = 'k'")
        backend._conn.commit()
        backend._hot.clear()
        assert backend.get("ns", "k") is None
        # The poisoned row was dropped entirely.
        assert backend.sizes().get("ns", 0) == 0
        backend.close()

    def test_unbound_namespace_raises(self, tmp_path):
        backend = SQLiteCacheBackend(str(tmp_path / "cache.sqlite"))
        with pytest.raises(KeyError, match="no codec"):
            backend.put("never-bound", "k", 1)
        backend.close()

    def test_concurrent_writers_and_readers(self, tmp_path):
        backend = self._backend(tmp_path, max_entries=64)
        errors = []

        def worker(start):
            try:
                for i in range(start, start + 20):
                    backend.put("ns", f"k{i % 8}", i)
                    backend.get("ns", f"k{i % 8}")
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(n * 20,))
                   for n in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert backend.sizes()["ns"] == 8
        backend.close()


class TestPersistentSession:
    def test_sqlite_cache_survives_session_restart(self, tmp_path):
        """The acceptance-criterion scenario: schedule through a
        SQLite-backed session, recreate the session from the same path, and
        the identical request is a full cache hit — no re-normalization, no
        re-scheduling."""
        path = str(tmp_path / "cache.sqlite")

        first = fast_session(cache_path=path)
        cold = first.schedule(build_gemm(), PARAMS)
        assert not cold.from_cache
        assert first.report().cache_backend == "sqlite"
        assert first.report().cache_writes >= 2  # normalization + schedule
        first.cache.close()

        second = fast_session(cache_path=path)
        warm = second.schedule(build_gemm(), PARAMS)
        assert warm.from_cache                    # no re-scheduling
        assert warm.normalization_cache_hit       # no re-normalization
        assert warm.runtime_s == cold.runtime_s
        assert warm.canonical_hash == cold.canonical_hash
        report = second.report()
        assert report.cache_disk_hits == 2        # both levels came from disk
        assert report.schedule_cache_hits == 1
        assert report.normalization_misses == 0
        second.cache.close()

    def test_equivalent_variant_served_across_restart(self, tmp_path):
        path = str(tmp_path / "cache.sqlite")
        first = fast_session(cache_path=path)
        first.schedule(build_gemm(("i", "j", "k")), PARAMS)
        first.cache.close()

        second = fast_session(cache_path=path)
        # A different loop order normalizes onto the cached canonical form.
        variant = second.schedule(build_gemm(("k", "i", "j")), PARAMS)
        assert variant.from_cache
        assert not variant.normalization_cache_hit  # this order was never seen
        second.cache.close()

    def test_explicit_backend_wins_over_path(self, tmp_path):
        backend = MemoryCacheBackend()
        session = fast_session(cache_backend=backend,
                               cache_path=str(tmp_path / "ignored.sqlite"))
        assert session.cache.backend is backend
        assert session.report().cache_backend == "memory"

    def test_served_programs_are_copies_after_restart(self, tmp_path):
        path = str(tmp_path / "cache.sqlite")
        first = fast_session(cache_path=path)
        first.schedule(build_vector_add(), {"N": 4096})
        first.cache.close()
        second = fast_session(cache_path=path)
        served = second.schedule(build_vector_add(), {"N": 4096})
        served.program.body.clear()
        again = second.schedule(build_vector_add(), {"N": 4096})
        assert again.program.body
        second.cache.close()

    def test_different_database_does_not_reuse_persisted_schedules(self, tmp_path):
        """Schedule keys embed a content-derived database version: restarting
        on the same cache file with a *different* tuning database (even of
        equal size) must re-schedule, not serve the other database's
        schedules."""
        from repro.api import TuningDatabase
        from repro.scheduler.embedding import EMBEDDING_SIZE, PerformanceEmbedding
        from repro.transforms.recipe import Recipe

        def one_entry_db(seed):
            database = TuningDatabase()
            database.add(PerformanceEmbedding(
                label=f"n{seed}",
                vector=tuple(float(seed + i) for i in range(EMBEDDING_SIZE))),
                Recipe(f"r{seed}"))
            return database

        path = str(tmp_path / "cache.sqlite")
        first = fast_session(cache_path=path, database=one_entry_db(1))
        first.schedule(build_gemm(), PARAMS)
        first.cache.close()

        second = fast_session(cache_path=path, database=one_entry_db(2))
        served = second.schedule(build_gemm(), PARAMS)
        assert not served.from_cache  # different database content → re-schedule
        second.cache.close()

        third = fast_session(cache_path=path, database=one_entry_db(1))
        served = third.schedule(build_gemm(), PARAMS)
        assert served.from_cache      # same database content → cache hit
        third.cache.close()

    def test_sessions_share_one_sqlite_file_live(self, tmp_path):
        """Two concurrently-open sessions see each other's entries (one
        writes, the other reads — the single-file analogue of two serving
        replicas sharing a cache volume)."""
        path = str(tmp_path / "cache.sqlite")
        writer = fast_session(cache_path=path)
        reader = fast_session(cache_path=path)
        writer.schedule(build_gemm(), PARAMS)
        served = reader.schedule(build_gemm(), PARAMS)
        assert served.from_cache
        writer.cache.close()
        reader.cache.close()

"""Tests for the performance-model substrate: cache simulator, trace
generation, analytical cost model, and the measurement protocol."""

import numpy as np
import pytest

from helpers import build_gemm, build_vector_add
from repro.ir import ProgramBuilder
from repro.normalization import normalize_program
from repro.perf import (CacheHierarchy, CostModel, MachineModel,
                        MeasurementProtocol, TraceGenerator, build_layout,
                        count_accesses, count_flops, generate_trace,
                        measure_with_noise)
from repro.perf.machine import DEFAULT_MACHINE, CacheLevel
from repro.transforms import Parallelize, Recipe, ReplaceWithLibraryCall, Tile, Vectorize, apply_recipe

PARAMS = {"NI": 200, "NJ": 220, "NK": 240}


class TestCacheSimulator:
    def _tiny_machine(self):
        return MachineModel(cache_levels=(
            CacheLevel("L1", 4 * 64, 64, 2, 100e9, 4),
            CacheLevel("L2", 64 * 64, 64, 4, 50e9, 12),
        ))

    def test_repeated_access_hits(self):
        hierarchy = CacheHierarchy(self._tiny_machine())
        hierarchy.access(0)
        level = hierarchy.access(0)
        assert level == "L1"
        report = hierarchy.report()
        assert report.level("L1").hits == 1
        assert report.level("L1").misses == 1

    def test_eviction_on_capacity_conflict(self):
        machine = self._tiny_machine()
        hierarchy = CacheHierarchy(machine)
        sets = machine.cache_levels[0].num_sets
        # Access many lines mapping to the same set to force evictions.
        for line in range(4):
            hierarchy.access(line * sets * 64)
        report = hierarchy.report()
        assert report.level("L1").evictions >= 2

    def test_writeback_counted(self):
        machine = self._tiny_machine()
        hierarchy = CacheHierarchy(machine)
        sets = machine.cache_levels[0].num_sets
        hierarchy.access(0, is_write=True)
        for line in range(1, 4):
            hierarchy.access(line * sets * 64)
        assert hierarchy.report().level("L1").writebacks >= 1

    def test_dram_accesses_counted(self):
        hierarchy = CacheHierarchy(self._tiny_machine())
        hierarchy.access(0)
        assert hierarchy.report().dram_accesses == 1

    def test_streaming_trace_hit_rate(self):
        # Sequential 8-byte accesses: 7 of 8 hit within a 64-byte line.
        hierarchy = CacheHierarchy(DEFAULT_MACHINE)
        report = hierarchy.run_trace((address, False) for address in range(0, 8 * 512, 8))
        assert report.level("L1").hit_rate > 0.8


class TestTraceGeneration:
    def test_trace_length_matches_count(self, vector_add_program):
        params = {"N": 32}
        trace = generate_trace(vector_add_program, params)
        assert len(trace) == count_accesses(vector_add_program, params) == 32 * 3

    def test_layout_addresses_disjoint(self, gemm_program):
        layout = build_layout(gemm_program, {"NI": 4, "NJ": 4, "NK": 4})
        bases = sorted(layout.bases.values())
        assert len(set(bases)) == len(bases)

    def test_unit_stride_trace_is_sequential(self, vector_add_program):
        trace = generate_trace(vector_add_program, {"N": 8})
        x_addresses = [addr for addr, is_write in trace if not is_write][::2]
        deltas = np.diff(x_addresses)
        assert np.all(deltas == 8)

    def test_register_budget_hides_scalars(self):
        b = ProgramBuilder("p", parameters=["N"])
        b.add_array("x", ("N",))
        b.add_array("y", ("N",))
        b.add_scalar("t", transient=True)
        with b.loop("i", 0, "N"):
            b.assign(("t",), b.read("x", "i") * 2)
            b.assign(("y", "i"), b.read("t") + 1)
        program = b.finish()
        small_body = generate_trace(program, {"N": 4})
        spilled = list(TraceGenerator(program, {"N": 4}, register_budget=0).trace())
        assert len(spilled) > len(small_body)


class TestCostModel:
    def test_strided_order_costs_more(self):
        model = CostModel(threads=1)
        fast = build_gemm(order=("i", "k", "j"), with_scaling=False)
        slow = build_gemm(order=("j", "k", "i"), with_scaling=False)
        assert model.estimate_seconds(slow, PARAMS) > model.estimate_seconds(fast, PARAMS)

    def test_parallelization_reduces_time(self):
        program = normalize_program(build_gemm(with_scaling=False))
        Parallelize(0).apply(program)
        sequential = CostModel(threads=1).estimate_seconds(program, PARAMS)
        parallel = CostModel(threads=12).estimate_seconds(program, PARAMS)
        assert parallel < sequential

    def test_vectorization_reduces_compute_time(self):
        program = normalize_program(build_gemm(with_scaling=False))
        model = CostModel(threads=1)
        before = model.estimate(program, PARAMS)
        Vectorize(0, require_unit_stride=False).apply(program)
        after = model.estimate(program, PARAMS)
        assert after.nests[0].compute_time < before.nests[0].compute_time

    def test_blas_call_beats_generic_loops(self):
        program = normalize_program(build_gemm())
        model = CostModel(threads=1)
        generic = model.estimate_seconds(program, PARAMS)
        from repro.transforms import detect_blas3_nests
        index, _ = detect_blas3_nests(program)[0]
        ReplaceWithLibraryCall(index).apply(program)
        assert model.estimate_seconds(program, PARAMS) < generic

    def test_tiling_does_not_hurt_large_gemm(self):
        big = {"NI": 1000, "NJ": 1000, "NK": 1000}
        program = normalize_program(build_gemm(with_scaling=False))
        model = CostModel(threads=1)
        untiled = model.estimate_seconds(program, big)
        Tile(0, {"i0": 64, "i1": 64, "i2": 64}).apply(program)
        tiled = model.estimate_seconds(program, big)
        assert tiled <= untiled * 1.1

    def test_atomic_reduction_penalty(self):
        b = ProgramBuilder("p", parameters=["N"])
        b.add_array("s", ())
        b.add_array("x", ("N", "N"))
        with b.loop("i", 0, "N"):
            with b.loop("j", 0, "N"):
                b.accumulate(("s",), b.read("x", "i", "j"))
        program = b.finish()
        apply_recipe(program, Recipe("r", [Parallelize(0, allow_reductions=True)]))
        with_atomics = CostModel(threads=12).estimate(program, {"N": 300})
        assert with_atomics.nests[0].atomic_time > 0

    def test_warm_caches_reduce_runtime(self, vector_add_program):
        model = CostModel(threads=1)
        cold = model.estimate_seconds(vector_add_program, {"N": 4096})
        warm = model.estimate_seconds(vector_add_program, {"N": 4096},
                                      assume_warm_caches=True)
        assert warm <= cold

    def test_count_flops(self):
        from repro.ir.symbols import Read, Call
        expr = Read("a", ("i",)) * Read("b", ("i",)) + Call("sqrt", (Read("c", ("i",)),))
        assert count_flops(expr) >= 8

    def test_threads_validated(self):
        with pytest.raises(ValueError):
            CostModel(threads=0)


class TestMeasurementProtocol:
    def test_deterministic_measurement_converges_quickly(self):
        protocol = MeasurementProtocol()
        result = protocol.run(lambda: 1.0)
        assert result.converged
        assert result.repetitions == protocol.min_repetitions
        assert result.median == 1.0

    def test_noisy_measurement_converges_below_threshold(self):
        result = measure_with_noise(1.0, noise=0.02, seed=1)
        assert result.converged
        assert result.coefficient_of_variation <= 0.05
        assert 0.9 < result.median < 1.1

    def test_high_noise_hits_repetition_cap(self):
        protocol = MeasurementProtocol(max_relative_variation=1e-6, max_repetitions=10)
        result = measure_with_noise(1.0, noise=0.5, seed=2, protocol=protocol)
        assert result.repetitions == 10

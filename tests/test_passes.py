"""Tests for the unified pass framework (repro.passes) and its integration:
pipelines, fixed points, the pipeline registry, memoized analyses,
transformations as passes, pipeline-identity cache keys, and normalization
idempotence across every registered pipeline."""

import pytest
from helpers import build_gemm, build_vector_add

from repro.api import (MemoryCacheBackend, NormalizationCache,
                       NormalizationOptions, ScheduleRequest, Session,
                       SQLiteCacheBackend, program_content_hash)
from repro.interp import programs_equivalent
from repro.ir import ProgramBuilder
from repro.normalization import normalize
from repro.passes import (AnalysisManager, FixedPoint, FunctionPass, Pass,
                          PassContext, PassResult, PassStats, Pipeline,
                          PipelineRegistryError, build_normalization_pipeline,
                          get_pipeline, pipeline_names, program_ir_size,
                          register_pipeline, unregister_pipeline)
from repro.transforms import Interchange, Parallelize, Recipe, apply_recipe
from repro.workloads.polybench import build_gemm_a, build_gemm_b

PARAMS = {"NI": 8, "NJ": 9, "NK": 10}

#: The five shipped pipeline names of the paper's Figure 5 + Section 4.2.
NAMED_PIPELINES = ["a-priori", "identity", "no-fission",
                   "no-scalar-expansion", "no-stride"]


class _CountingPass(Pass):
    name = "counting"

    def __init__(self, changes=0):
        self.remaining = changes
        self.applications = 0

    def apply(self, program, context):
        self.applications += 1
        if self.remaining > 0:
            self.remaining -= 1
            return True, {"budget": self.remaining}
        return False, {}


class TestPassProtocol:
    def test_run_produces_instrumented_result(self):
        result = _CountingPass(changes=1).run(build_vector_add())
        assert isinstance(result, PassResult)
        assert result.pass_name == "counting"
        assert result.changed
        assert result.wall_time_s >= 0.0
        assert result.counters == {"budget": 0}

    def test_fingerprint_change_detection(self):
        class Renamer(Pass):
            name = "renamer"
            detects_change = False

            def apply(self, program, context):
                program.body[0].iterator = "renamed"

        program = build_vector_add()
        assert Renamer().run(program).changed
        # Second application leaves the (already renamed) program unchanged.
        assert not Renamer().run(program).changed

    def test_function_pass_wraps_callables(self):
        seen = []

        def touch(program):
            seen.append(program.name)
            return False

        result = FunctionPass(touch).run(build_vector_add())
        assert result.pass_name == "touch"
        assert not result.changed
        assert seen

    def test_ir_size_accounting(self):
        program = build_gemm_a()
        size = program_ir_size(program)
        assert size > 0
        result = _CountingPass().run(program)
        assert result.ir_size_before == result.ir_size_after == size
        assert result.ir_size_delta == 0

    def test_result_dict_round_trip(self):
        result = PassResult(pass_name="p", changed=True, wall_time_s=0.25,
                            counters={"k": 2}, ir_size_before=3,
                            ir_size_after=5)
        back = PassResult.from_dict(result.to_dict())
        assert back == result


class TestPipeline:
    def test_ordered_stages_and_totals(self):
        pipeline = Pipeline("two", [_CountingPass(changes=1), _CountingPass()])
        outcome = pipeline.run(build_vector_add())
        assert [r.pass_name for r in outcome.passes] == ["counting", "counting"]
        assert outcome.changed
        assert outcome.wall_time_s >= sum(r.wall_time_s for r in outcome.passes) * 0.5
        assert outcome.timings()["counting"] >= 0.0

    def test_fixed_point_iterates_until_stable(self):
        stage = _CountingPass(changes=2)
        group = FixedPoint([stage], name="fp", max_iterations=10)
        results, iterations = group.run(build_vector_add(), PassContext())
        # Two changing iterations plus the stabilizing one.
        assert iterations == 3
        assert stage.applications == 3
        assert [r.changed for r in results] == [True, True, False]

    def test_fixed_point_respects_iteration_bound(self):
        group = FixedPoint([_CountingPass(changes=100)], max_iterations=4)
        _results, iterations = group.run(build_vector_add(), PassContext())
        assert iterations == 4

    def test_identity_names_structure(self):
        pipeline = build_normalization_pipeline("a-priori")
        identity = pipeline.identity()
        assert identity.startswith("a-priori[")
        assert "fp(maximal-fission)" in identity
        assert "stride-minimization" in identity
        # Ablations have distinct identities.
        assert identity != build_normalization_pipeline("no-fission").identity()

    def test_pass_stats_aggregation(self):
        stats = PassStats()
        stats.add([PassResult("a", changed=True, wall_time_s=0.5),
                   PassResult("a", changed=False, wall_time_s=0.25),
                   PassResult("b", changed=False, wall_time_s=0.125)])
        data = stats.to_dict()
        assert data["a"]["runs"] == 2 and data["a"]["changed"] == 1
        assert data["a"]["wall_time_s"] == pytest.approx(0.75)
        assert data["b"]["runs"] == 1


class TestRegistry:
    def test_shipped_pipelines_registered(self):
        assert set(NAMED_PIPELINES) <= set(pipeline_names())
        for name in NAMED_PIPELINES:
            assert get_pipeline(name).name == name

    def test_unknown_name_raises(self):
        with pytest.raises(PipelineRegistryError):
            get_pipeline("definitely-not-registered")

    def test_registration_conflicts_and_custom_names(self):
        @register_pipeline("test-custom-pipeline")
        def factory():
            return Pipeline("test-custom-pipeline", [_CountingPass()])

        try:
            assert get_pipeline("test-custom-pipeline").name == \
                "test-custom-pipeline"
            with pytest.raises(PipelineRegistryError):
                register_pipeline("test-custom-pipeline")(factory)
            # A named options object resolves third-party names too.
            options = NormalizationOptions.named("test-custom-pipeline")
            assert options.to_pipeline().name == "test-custom-pipeline"
        finally:
            unregister_pipeline("test-custom-pipeline")

    def test_identity_pipeline_is_empty_noop(self):
        pipeline = get_pipeline("identity")
        assert len(pipeline) == 0
        program = build_gemm_a()
        before = program_content_hash(program)
        normalized, report = normalize(program,
                                       NormalizationOptions.named("identity"))
        assert program_content_hash(normalized) == before
        assert not report.changed and not report.passes


class TestAnalysisManager:
    def test_memoizes_by_content(self):
        manager = AnalysisManager()
        calls = []
        loop = build_gemm_a().body[0]

        def compute():
            calls.append(1)
            return ("result",)

        assert manager.cached_node("k", loop, compute) == ("result",)
        assert manager.cached_node("k", loop, compute) == ("result",)
        assert len(calls) == 1
        assert manager.stats() == {"hits": 1, "misses": 1, "entries": 1}

    def test_changed_content_recomputes(self):
        manager = AnalysisManager()
        program = build_vector_add()
        loop = program.body[0]
        manager.cached_node("k", loop, lambda: 1)
        loop.iterator = "other"  # a pass changed the nest
        assert manager.cached_node("k", loop, lambda: 2) == 2
        assert manager.misses == 2

    def test_lru_bound(self):
        manager = AnalysisManager(max_entries=2)
        for index in range(5):
            manager.get("k", str(index), lambda index=index: index)
        assert len(manager) == 2

    def test_shared_manager_warms_repeat_normalization(self):
        manager = AnalysisManager()
        first, _ = normalize(build_gemm_b(), analysis=manager)
        assert manager.misses > 0 and manager.hits == 0
        second, _ = normalize(build_gemm_b(), analysis=manager)
        assert manager.hits > 0
        assert program_content_hash(first) == program_content_hash(second)


class TestTransformationsArePasses:
    def test_transformation_run_reports_change(self):
        program = build_gemm_a()
        normalized, _ = normalize(program)
        result = Interchange(1, ("i1", "i0", "i2")).run(normalized)
        assert result.pass_name == "interchange"
        assert result.changed
        assert result.wall_time_s >= 0.0

    def test_noop_transformation_reports_unchanged(self):
        normalized, _ = normalize(build_gemm_a())
        band = normalized.body[1].perfectly_nested_band()
        current = tuple(loop.iterator for loop in band)
        assert not Interchange(1, current).run(normalized).changed

    def test_recipe_to_pipeline(self):
        recipe = Recipe("r", [Parallelize(0, "i0")])
        pipeline = recipe.to_pipeline()
        assert isinstance(pipeline, Pipeline)
        assert pipeline.pass_names() == ["parallelize"]
        normalized, _ = normalize(build_vector_add())
        outcome = pipeline.run(normalized)
        assert outcome.changed
        assert normalized.body[0].parallel

    def test_apply_recipe_instrumented(self):
        normalized, _ = normalize(build_gemm_a())
        recipe = Recipe("r", [Parallelize(1, "i0"),
                              Interchange(99, ("i0",))])  # second one fails
        application = apply_recipe(normalized, recipe, instrument=True)
        assert len(application.results) == 2
        assert application.results[0].changed
        assert application.results[1].error
        assert len(application.applied) == 1 and len(application.failed) == 1


class TestChangedFlag:
    """Satellite: ``NormalizationReport.changed`` must see every pass."""

    def test_scalar_expansion_alone_reports_changed(self):
        b = ProgramBuilder("p", parameters=["N"])
        b.add_array("x", ("N",))
        b.add_array("y", ("N",))
        b.add_scalar("tmp", transient=True)
        with b.loop("i", 0, "N"):
            b.assign(("tmp",), b.read("x", "i") * 2)
            b.assign(("y", "i"), b.read("tmp") + 1)
        program = b.finish()
        # Disable fission/strides so scalar expansion is the only rewrite.
        _, report = normalize(program, NormalizationOptions(
            apply_fission=False, apply_stride_minimization=False,
            canonicalize_iterators=False))
        assert report.scalar_expansion.count == 1
        assert report.fission.loops_split == 0
        assert report.strides.nests_permuted == 0
        assert report.changed

    def test_bound_normalization_alone_reports_changed(self):
        b = ProgramBuilder("p", parameters=["N"])
        b.add_array("x", ("N",))
        with b.loop("i", 2, "N", 3):
            b.assign(("x", "i"), 1.0)
        program = b.finish()
        _, report = normalize(program, NormalizationOptions(
            apply_scalar_expansion=False, apply_fission=False,
            apply_stride_minimization=False, canonicalize_iterators=False))
        assert report.fission.loops_split == 0
        assert report.strides.nests_permuted == 0
        assert report.changed

    def test_fully_normal_program_reports_unchanged(self):
        normalized, _ = normalize(build_gemm_a())
        _, report = normalize(normalized)
        assert not report.changed


class TestPipelineCacheKeys:
    """Satellite: pipeline identity is part of normalization-cache keys."""

    def _distinct_entries(self, cache):
        program = build_gemm_a()
        full = cache.normalized(program, NormalizationOptions.named("a-priori"))
        ablated = cache.normalized(program,
                                   NormalizationOptions.named("no-fission"))
        # Both were misses: the ablated request must not be served from the
        # full-pipeline entry.
        assert not full.hit and not ablated.hit
        assert full.input_hash != ablated.input_hash
        assert len(full.program.body) > len(ablated.program.body)  # fissioned
        # Repeats hit their own entries.
        assert cache.normalized(program,
                                NormalizationOptions.named("a-priori")).hit
        assert cache.normalized(program,
                                NormalizationOptions.named("no-fission")).hit
        assert cache.stats.normalization_misses == 2

    def test_memory_backend(self):
        self._distinct_entries(NormalizationCache(backend=MemoryCacheBackend()))

    def test_sqlite_backend(self, tmp_path):
        backend = SQLiteCacheBackend(str(tmp_path / "cache.sqlite"))
        cache = NormalizationCache(backend=backend)
        try:
            self._distinct_entries(cache)
        finally:
            cache.close()

    def test_sqlite_distinct_across_restart(self, tmp_path):
        path = str(tmp_path / "cache.sqlite")
        program = build_gemm_a()
        cache = NormalizationCache(backend=SQLiteCacheBackend(path))
        cache.normalized(program, NormalizationOptions.named("a-priori"))
        cache.close()
        # A fresh process-equivalent cache must hit the full entry but miss
        # for the ablated pipeline.
        cache = NormalizationCache(backend=SQLiteCacheBackend(path))
        try:
            assert cache.normalized(
                program, NormalizationOptions.named("a-priori")).hit
            assert not cache.normalized(
                program, NormalizationOptions.named("no-fission")).hit
        finally:
            cache.close()

    def test_flag_combo_shares_key_with_equivalent_name(self):
        # The same pass structure must key identically however it was spelled.
        cache = NormalizationCache()
        program = build_gemm_a()
        cache.normalized(program, NormalizationOptions(
            apply_fission=False, apply_scalar_expansion=False))
        assert cache.normalized(
            program, NormalizationOptions.named("no-fission")).hit


class TestSessionPipelines:
    def test_session_accepts_pipeline_name(self):
        session = Session(pipeline="no-fission")
        response = session.normalize(build_gemm_a())
        assert response.report.pipeline == "no-fission"
        assert response.report.fission.loops_split == 0

    def test_session_rejects_both_forms(self):
        with pytest.raises(ValueError):
            Session(pipeline="a-priori",
                    normalization=NormalizationOptions())

    def test_request_pipeline_round_trip_and_selection(self):
        request = ScheduleRequest(program="gemm:a", pipeline="no-stride")
        back = ScheduleRequest.from_dict(request.to_dict())
        assert back.pipeline == "no-stride"

        session = Session()
        response = session.normalize(build_gemm_b(), pipeline="no-stride")
        assert response.report.pipeline == "no-stride"
        assert response.report.strides.nests_considered == 0

    def test_report_exposes_pass_timings_and_analysis(self):
        session = Session()
        session.normalize(build_gemm_a())
        session.normalize(build_gemm_b())
        report = session.report()
        passes = report.normalization_passes
        assert "stride-minimization" in passes
        assert passes["stride-minimization"]["runs"] == 2
        assert passes["stride-minimization"]["wall_time_s"] > 0.0
        assert "maximal-fission" in passes
        # The b-variant run reuses analyses of nests the a-variant produced.
        assert report.analysis_misses > 0
        data = report.to_dict()
        assert data["normalization_passes"] == passes
        assert data["analysis_misses"] == report.analysis_misses


class TestIdempotence:
    """Satellite: normalization is a projection — normalizing twice is a no-op
    for every registered pipeline over a sample of registry workloads."""

    WORKLOADS = ["gemm:a", "gemm:b", "atax:a", "mvt:b", "jacobi-2d:a",
                 "syrk:b"]

    @pytest.mark.parametrize("pipeline", NAMED_PIPELINES)
    def test_normalize_twice_is_noop(self, pipeline):
        session = Session()
        options = NormalizationOptions.named(pipeline)
        for workload in self.WORKLOADS:
            program = session.load(workload)
            once, _ = normalize(program, options)
            twice, report = normalize(once, options)
            assert not report.changed, (pipeline, workload)
            assert program_content_hash(once) == program_content_hash(twice), \
                (pipeline, workload)

    def test_idempotent_runs_preserve_semantics(self):
        program = build_gemm(order=("k", "j", "i"))
        once, _ = normalize(program)
        twice, _ = normalize(once)
        assert programs_equivalent(program, twice, PARAMS)

"""Tests for multi-process serving: the worker pool, cross-process cache
correctness, priority ordering, and admission control (HTTP included)."""

import asyncio
import json
import multiprocessing
import threading
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest
from helpers import fast_session

from repro.api import (ScheduleRequest, SearchConfig, Session,
                       SQLiteCacheBackend)
from repro.serving import (AdmissionController, AdmissionError,
                           SchedulingService, ServiceConfig, ServingClient,
                           ServingServer, WorkerConfig, WorkerPool,
                           merge_worker_reports)
from repro.serving.workers import PortableScheduleResponse

FAST_SEARCH = SearchConfig(population_size=4, epochs=1,
                           generations_per_epoch=1)


def run(coro):
    return asyncio.run(coro)


# -- cross-process cache correctness ------------------------------------------------

def _identity_codec(backend):
    backend.bind("ns", lambda value: value, lambda payload: payload)
    return backend


def _hammer_cache(path, worker_id, writes, barrier):
    """Subprocess body: write distinct keys and re-read earlier ones while
    sibling processes do the same against the same SQLite file."""
    backend = _identity_codec(SQLiteCacheBackend(path, busy_timeout_s=10.0))
    barrier.wait(timeout=60)  # maximize write overlap across processes
    for index in range(writes):
        key = f"w{worker_id}-k{index}"
        backend.put("ns", key, {"worker": worker_id, "index": index})
        read_back = backend.get("ns", key)
        assert read_back == {"worker": worker_id, "index": index}
        # Re-read an earlier key of *some* worker (whatever is visible).
        other = backend.get("ns", f"w{worker_id}-k{max(0, index - 1)}")
        assert other is not None
    backend.close()


class TestCrossProcessCache:
    def test_wal_mode_and_busy_timeout_are_active(self, tmp_path):
        backend = SQLiteCacheBackend(str(tmp_path / "cache.sqlite"))
        journal = backend._conn.execute("PRAGMA journal_mode").fetchone()[0]
        timeout = backend._conn.execute("PRAGMA busy_timeout").fetchone()[0]
        assert journal == "wal"
        assert timeout == 5000
        assert backend.stats.to_dict()["busy_retries"] == 0
        backend.close()

    def test_two_processes_write_and_read_one_cache(self, tmp_path):
        """The acceptance scenario: concurrent writers on one SQLite file,
        no lost or corrupted entries."""
        path = str(tmp_path / "shared.sqlite")
        writes = 25
        context = multiprocessing.get_context("spawn")
        barrier = context.Barrier(2)
        processes = [
            context.Process(target=_hammer_cache,
                            args=(path, worker_id, writes, barrier))
            for worker_id in range(2)]
        for process in processes:
            process.start()
        for process in processes:
            process.join(timeout=120)
            assert process.exitcode == 0
        # Every entry both processes wrote is present and intact.
        backend = _identity_codec(SQLiteCacheBackend(path))
        assert backend.sizes() == {"ns": 2 * writes}
        for worker_id in range(2):
            for index in range(writes):
                value = backend.get("ns", f"w{worker_id}-k{index}")
                assert value == {"worker": worker_id, "index": index}
        backend.close()

    def test_entry_written_by_one_backend_is_served_to_another(self, tmp_path):
        path = str(tmp_path / "shared.sqlite")
        writer = _identity_codec(SQLiteCacheBackend(path))
        writer.put("ns", "key", {"payload": 42})
        reader = _identity_codec(SQLiteCacheBackend(path))
        assert reader.get("ns", "key") == {"payload": 42}
        # Served from disk on first access, from the hot layer afterwards.
        assert reader.stats.disk_hits == 1
        assert reader.get("ns", "key") == {"payload": 42}
        assert reader.stats.memory_hits == 1
        writer.close()
        reader.close()

    def test_recency_stamps_interleave_across_connections(self, tmp_path):
        """LRU eviction respects writes from *other* connections: the seq
        stamp is computed in SQL, not from a per-process counter."""
        path = str(tmp_path / "shared.sqlite")
        first = _identity_codec(SQLiteCacheBackend(path, max_entries=2))
        second = _identity_codec(SQLiteCacheBackend(path, max_entries=2))
        first.put("ns", "a", {"v": 1})
        second.put("ns", "b", {"v": 2})
        first.put("ns", "c", {"v": 3})  # evicts "a", the globally oldest
        assert first.get("ns", "a") is None
        assert second.get("ns", "b") == {"v": 2}
        assert second.get("ns", "c") == {"v": 3}
        first.close()
        second.close()


# -- the worker pool ---------------------------------------------------------------

@pytest.fixture(scope="module")
def shared_pool(tmp_path_factory):
    """One 2-worker pool over a shared SQLite cache, reused module-wide
    (spawning sessions in subprocesses is the expensive part)."""
    cache = str(tmp_path_factory.mktemp("pool") / "cache.sqlite")
    config = WorkerConfig(threads=4, cache_path=cache, search=FAST_SEARCH)
    with WorkerPool(2, config) as pool:
        yield pool, cache


class TestWorkerPool:
    def test_batch_returns_in_order_with_inband_errors(self, shared_pool):
        pool, _ = shared_pool
        requests = [ScheduleRequest(program="gemm:a"),
                    ScheduleRequest(program="definitely-not-a-workload"),
                    ScheduleRequest(program="mvt:a")]
        results = pool.schedule_batch(requests)
        assert len(results) == 3
        assert results[0].result.program.body
        assert isinstance(results[1], KeyError)  # RegistryError subclass
        assert results[2].result.program.body
        # Programs surface under the requested registry names.
        assert results[0].program.name.startswith("gemm")
        assert results[2].program.name.startswith("mvt")

    def test_workers_share_the_cache_file(self, shared_pool):
        pool, _ = shared_pool
        pool.schedule(ScheduleRequest(program="atax:a"))
        # The normalized-equivalent B variant is served from the shared
        # cache no matter which worker computed the A variant.
        response = pool.schedule(ScheduleRequest(program="atax:b"))
        assert response.from_cache

    def test_portable_response_json_dict_and_attrs_agree(self, shared_pool):
        pool, _ = shared_pool
        response = pool.schedule(ScheduleRequest(program="bicg:a"))
        assert isinstance(response, PortableScheduleResponse)
        payload = json.loads(response.to_json())
        assert payload == response.to_dict()
        assert response.runtime_s == payload["runtime_s"]
        assert response.scheduler == payload["scheduler"]

    def test_tune_gathers_and_merges_entries_at_the_coordinator(self, shared_pool):
        pool, _ = shared_pool
        before = len(pool.database)
        results = pool.tune([ScheduleRequest(program="gemm:a", tune=True,
                                             label="gemm")])
        assert not isinstance(results[0], Exception)
        assert len(pool.database) > before
        assert pool.stats.gathered_entries >= len(pool.database) - before
        # The merged entries landed in hash-routed shards.
        assert sum(pool.database.shard_sizes()) == len(pool.database)

    def test_tune_rejects_non_tune_requests(self, shared_pool):
        pool, _ = shared_pool
        with pytest.raises(ValueError):
            pool.tune([ScheduleRequest(program="gemm:a")])

    def test_report_gathers_every_worker(self, shared_pool):
        pool, _ = shared_pool
        report = pool.report()
        assert report["num_workers"] == 2
        assert report["reports_collected"] == 2
        merged = report["merged"]
        assert merged["schedule_calls"] >= 4
        assert merged["cache_backend"] == "sqlite"
        assert len(report["per_worker"]) == 2
        assert report["pool"]["scheduled"] >= 4

    def test_closed_pool_refuses_work(self):
        config = WorkerConfig(threads=1, search=FAST_SEARCH)
        pool = WorkerPool(1, config)
        pool.close()
        with pytest.raises(RuntimeError):
            pool.schedule_batch([ScheduleRequest(program="gemm:a")])
        pool.close()  # idempotent

    def test_cache_survives_pool_generations(self, tmp_path):
        cache = str(tmp_path / "generations.sqlite")
        config = WorkerConfig(threads=4, cache_path=cache, search=FAST_SEARCH)
        with WorkerPool(1, config) as pool:
            first = pool.schedule(ScheduleRequest(program="gemm:a"))
            assert not first.from_cache
        with WorkerPool(1, config) as pool:
            second = pool.schedule(ScheduleRequest(program="gemm:a"))
            assert second.from_cache
            assert second.runtime_s == first.runtime_s


class TestMergeWorkerReports:
    def test_counters_sum_and_shards_concatenate(self):
        merged = merge_worker_reports([
            {"schedule_calls": 2, "database_entries": 3,
             "schedulers": ["daisy"], "cache_backend": "sqlite",
             "normalization_passes": {"fission": {"runs": 1,
                                                  "wall_time_s": 0.5}}},
            {"schedule_calls": 5, "database_entries": 1,
             "schedulers": ["daisy", "clang"], "cache_backend": "sqlite",
             "normalization_passes": {"fission": {"runs": 2,
                                                  "wall_time_s": 0.25}}},
        ])
        assert merged["schedule_calls"] == 7
        assert merged["database_entries"] == 4
        assert merged["database_shards"] == [3, 1]
        assert merged["schedulers"] == ["clang", "daisy"]
        assert merged["cache_backend"] == "sqlite"
        assert merged["normalization_passes"]["fission"] == {
            "runs": 3, "wall_time_s": 0.75}


# -- priority ordering --------------------------------------------------------------

def _stub_response(program):
    """A ScheduleResponse-shaped object (enough for service bookkeeping and
    the coalescing ``_reissue`` path)."""
    import types
    result = types.SimpleNamespace(
        program=types.SimpleNamespace(name=str(program)))
    result.copy = lambda: result
    return types.SimpleNamespace(
        result=result, scheduler="stub", program=result.program,
        runtime_s=0.0, normalized=False, input_hash=None,
        canonical_hash=None, from_cache=False,
        normalization_cache_hit=False)


class _StubSession:
    """Session stand-in recording the order requests reach the executor.

    The first request (program "gate") blocks until released, which pins the
    batcher while the test stacks the queue — everything enqueued behind the
    gate must then drain in priority order.
    """

    def __init__(self):
        self.order = []
        self.coalesced = 0
        self.gate = threading.Event()

    def schedule_batch(self, requests, max_workers=None,
                       return_exceptions=False):
        responses = []
        for request in requests:
            if request.program == "gate":
                self.gate.wait(timeout=30)
            self.order.append(request.program)
            responses.append(_stub_response(request.program))
        return responses

    def record_coalesced(self, count=1):
        self.coalesced += count


class TestPriorityOrdering:
    def test_queue_drains_strictly_by_priority_under_load(self):
        session = _StubSession()

        async def drive():
            service = SchedulingService(
                session, ServiceConfig(max_batch_size=1, batch_window_s=0.0))
            await service.start()
            try:
                gate_task = asyncio.ensure_future(service.schedule(
                    ScheduleRequest(program="gate")))
                await asyncio.sleep(0.05)  # the batcher is now blocked
                submissions = [
                    ("bulk-1", 9), ("bulk-2", 9), ("mid", 5),
                    ("urgent-1", 0), ("bulk-3", 9), ("urgent-2", 0),
                ]
                tasks = [asyncio.ensure_future(service.schedule(
                    ScheduleRequest(program=program, priority=priority)))
                    for program, priority in submissions]
                while service._queue.qsize() < len(submissions):
                    await asyncio.sleep(0.005)
                session.gate.set()
                await asyncio.gather(gate_task, *tasks)
            finally:
                await service.stop()

        run(drive())
        assert session.order[0] == "gate"
        assert session.order[1:] == [
            # Priority first; FIFO within one priority class.
            "urgent-1", "urgent-2", "mid", "bulk-1", "bulk-2", "bulk-3"]

    def test_urgent_rider_reprioritizes_its_queued_leader(self):
        """A priority-0 request that coalesces onto a queued priority-9
        leader must pull the leader forward — it must not drain at the
        leader's priority behind less urgent work."""
        session = _StubSession()

        async def drive():
            service = SchedulingService(
                session, ServiceConfig(max_batch_size=1, batch_window_s=0.0))
            await service.start()
            try:
                gate_task = asyncio.ensure_future(service.schedule(
                    ScheduleRequest(program="gate")))
                await asyncio.sleep(0.05)
                leader = asyncio.ensure_future(service.schedule(
                    ScheduleRequest(program="shared", priority=9)))
                mid = asyncio.ensure_future(service.schedule(
                    ScheduleRequest(program="mid", priority=5)))
                while service._queue.qsize() < 2:
                    await asyncio.sleep(0.005)
                rider = asyncio.ensure_future(service.schedule(
                    ScheduleRequest(program="shared", priority=0)))
                await asyncio.sleep(0.05)   # rider coalesces + re-enqueues
                session.gate.set()
                await asyncio.gather(gate_task, leader, mid, rider)
            finally:
                await service.stop()

        run(drive())
        # Without re-prioritization the order would be gate, mid, shared.
        assert session.order == ["gate", "shared", "mid"]
        assert session.coalesced == 1

    def test_default_priorities_keep_fifo_order(self):
        session = _StubSession()

        async def drive():
            service = SchedulingService(
                session, ServiceConfig(max_batch_size=1, batch_window_s=0.0))
            await service.start()
            try:
                gate_task = asyncio.ensure_future(service.schedule(
                    ScheduleRequest(program="gate")))
                await asyncio.sleep(0.05)
                tasks = [asyncio.ensure_future(service.schedule(
                    ScheduleRequest(program=f"r{index}")))
                    for index in range(4)]
                while service._queue.qsize() < 4:
                    await asyncio.sleep(0.005)
                session.gate.set()
                await asyncio.gather(gate_task, *tasks)
            finally:
                await service.stop()

        run(drive())
        assert session.order == ["gate", "r0", "r1", "r2", "r3"]


# -- admission control --------------------------------------------------------------

class TestAdmissionController:
    def test_queue_depth_sheds_new_work_but_not_riders(self):
        controller = AdmissionController(ServiceConfig(max_queue_depth=2))
        controller.admit(ScheduleRequest(program="a"), queue_depth=1,
                         rider=False)
        with pytest.raises(AdmissionError) as caught:
            controller.admit(ScheduleRequest(program="b"), queue_depth=2,
                             rider=False)
        assert caught.value.reason == "queue-full"
        assert caught.value.retry_after_s > 0
        # A coalescing rider adds no queue work and is exempt.
        controller.admit(ScheduleRequest(program="a"), queue_depth=2,
                         rider=True)
        stats = controller.stats.to_dict()
        assert stats == {"admitted": 2, "rejected_queue_full": 1,
                         "rejected_client_limit": 0}

    def test_client_limit_counts_inflight_and_releases(self):
        controller = AdmissionController(
            ServiceConfig(max_client_inflight=2))
        alice = ScheduleRequest(program="a", client="alice")
        controller.admit(alice, queue_depth=0, rider=False)
        controller.admit(alice, queue_depth=0, rider=True)
        with pytest.raises(AdmissionError) as caught:
            controller.admit(alice, queue_depth=0, rider=False)
        assert caught.value.reason == "client-limit"
        # Other clients (and anonymous requests) are unaffected.
        controller.admit(ScheduleRequest(program="a", client="bob"),
                         queue_depth=0, rider=False)
        controller.admit(ScheduleRequest(program="a"), queue_depth=0,
                         rider=False)
        controller.release(alice)
        controller.admit(alice, queue_depth=0, rider=False)
        assert controller.client_inflight("alice") == 2
        assert controller.stats.rejected_client_limit == 1

    def test_service_counts_rejections(self):
        session = _StubSession()

        async def drive():
            service = SchedulingService(
                session, ServiceConfig(max_batch_size=1, batch_window_s=0.0,
                                       max_client_inflight=1))
            await service.start()
            try:
                # Alice's first request blocks in the executor (the gate);
                # her second arrives while it is in flight and must be shed.
                first = asyncio.ensure_future(service.schedule(
                    ScheduleRequest(program="gate", client="alice")))
                await asyncio.sleep(0.05)
                with pytest.raises(AdmissionError):
                    await service.schedule(
                        ScheduleRequest(program="other", client="alice"))
                session.gate.set()
                await first
                return (service.stats.rejected,
                        service.admission.stats.rejected_client_limit)
            finally:
                await service.stop()

        rejected, client_limited = run(drive())
        assert rejected == 1
        assert client_limited == 1
        assert session.order == ["gate"]


class TestAdmissionOverHttp:
    def test_queue_full_returns_429_with_retry_after(self):
        """Flood a 1-deep queue with distinct cold requests: some must be
        shed as HTTP 429 with Retry-After, the rest succeed."""
        session = fast_session()
        config = ServiceConfig(max_batch_size=1, batch_window_s=0.01,
                               max_queue_depth=1, retry_after_s=0.25)
        with ServingServer(session, config=config) as server:
            client = ServingClient(server.address)
            programs = [("gemm:a", {"NI": 32 + index, "NJ": 32, "NK": 32})
                        for index in range(8)]

            def submit(item):
                name, parameters = item
                return client.request("POST", "/v1/schedule",
                                      {"program": name,
                                       "parameters": parameters})

            with ThreadPoolExecutor(max_workers=8) as pool:
                outcomes = list(pool.map(submit, programs))
            statuses = [status for status, _ in outcomes]
            assert any(status == 429 for status in statuses)
            assert any(status == 200 for status in statuses)
            rejected = next(payload for status, payload in outcomes
                            if status == 429)
            assert rejected["reason"] == "queue-full"
            assert rejected["retry_after_s"] == 0.25
            report = client.report()
            assert report["admission"]["rejected_queue_full"] >= 1
            assert report["service"]["rejected"] >= 1
        session.close()

    def test_client_limit_returns_429_and_other_clients_pass(self):
        session = fast_session()
        config = ServiceConfig(max_batch_size=1, batch_window_s=0.01,
                               max_client_inflight=1)
        with ServingServer(session, config=config) as server:
            client = ServingClient(server.address)

            def submit(identity, size):
                return client.request(
                    "POST", "/v1/schedule",
                    {"program": "correlation:a", "client": identity,
                     "parameters": {"M": size, "N": size}})

            with ThreadPoolExecutor(max_workers=6) as pool:
                futures = [pool.submit(submit, "alice", 24 + index)
                           for index in range(6)]
                outcomes = [future.result() for future in futures]
            statuses = [status for status, _ in outcomes]
            assert any(status == 429 for status in statuses)
            assert any(status == 200 for status in statuses)
            rejected = next(payload for status, payload in outcomes
                            if status == 429)
            assert rejected["reason"] == "client-limit"
            # The limit is per-client: bob is admitted immediately.
            status, _ = submit("bob", 16)
            assert status == 200
        session.close()

    def test_retry_after_header_is_sent(self):
        session = fast_session()
        config = ServiceConfig(max_batch_size=1, batch_window_s=0.01,
                               max_client_inflight=1, retry_after_s=2.0)
        with ServingServer(session, config=config) as server:
            statuses = []

            def submit(size):
                body = json.dumps({"program": "correlation:a",
                                   "client": "alice",
                                   "parameters": {"M": size, "N": size}})
                request = urllib.request.Request(
                    server.address + "/v1/schedule", data=body.encode(),
                    method="POST",
                    headers={"Content-Type": "application/json"})
                try:
                    with urllib.request.urlopen(request, timeout=60) as reply:
                        statuses.append((reply.status, dict(reply.headers)))
                except urllib.error.HTTPError as error:
                    statuses.append((error.code, dict(error.headers)))

            with ThreadPoolExecutor(max_workers=6) as pool:
                list(pool.map(submit, [32 + index for index in range(6)]))
            rejected = [headers for status, headers in statuses
                        if status == 429]
            assert rejected
            assert rejected[0].get("Retry-After") == "2"
        session.close()


class TestClientOverrides:
    def test_priority_and_client_override_a_ready_request(self, monkeypatch):
        client = ServingClient("http://example.invalid")
        captured = {}

        class _Captured(Exception):
            pass

        def fake_checked(method, path, body=None):
            captured["body"] = body
            raise _Captured()

        monkeypatch.setattr(client, "_checked", fake_checked)
        original = ScheduleRequest(program="gemm:a")
        with pytest.raises(_Captured):
            client.schedule(original, priority=0, client="ops")
        assert captured["body"]["priority"] == 0
        assert captured["body"]["client"] == "ops"
        # The caller's request object is not mutated (override on a copy).
        assert original.priority == 5
        assert original.client is None


class TestPoolThroughService:
    def test_server_schedules_through_the_pool(self, shared_pool, tmp_path):
        pool, cache = shared_pool
        session = Session(threads=4)
        config = ServiceConfig(batch_window_s=0.005)
        with ServingServer(session, config=config, pool=pool) as server:
            client = ServingClient(server.address)
            response = client.schedule("gemver:a", priority=0,
                                       client="test-suite")
            assert response.runtime_s > 0
            assert response.program.body
            report = client.report()
            assert report["pool"]["num_workers"] == 2
            assert report["pool"]["scheduled"] >= 1
            status, full = client.request("GET", "/v1/report?workers=1")
            assert status == 200
            assert full["pool"]["reports_collected"] == 2
            assert full["pool"]["merged"]["schedule_calls"] >= 1
        session.close()

"""Tests for loop transformations, idiom detection, and recipes."""

import pytest

from helpers import build_gemm, build_stencil, build_vector_add
from repro.interp import programs_equivalent
from repro.ir import Loop, ProgramBuilder
from repro.normalization import normalize_program
from repro.transforms import (Fuse, Interchange, Parallelize, Recipe,
                              ReplaceWithLibraryCall, Tile, Transformation,
                              TransformationError, Unroll, Vectorize,
                              apply_recipe, can_fuse, detect_blas3_nests,
                              fuse_adjacent_loops, fuse_chains_in_body,
                              fuse_nests, match_blas3)

PARAMS = {"NI": 8, "NJ": 9, "NK": 10}


class TestInterchange:
    def test_legal_interchange_applies_and_preserves_semantics(self):
        program = build_gemm(with_scaling=False)
        reference = program.copy()
        Interchange(0, ["i", "k", "j"]).apply(program)
        band = program.body[0].perfectly_nested_band()
        assert [loop.iterator for loop in band] == ["i", "k", "j"]
        assert programs_equivalent(reference, program, PARAMS)

    def test_wrong_iterators_rejected(self):
        program = build_gemm(with_scaling=False)
        with pytest.raises(TransformationError):
            Interchange(0, ["i", "j", "z"]).apply(program)

    def test_illegal_interchange_rejected(self):
        b = ProgramBuilder("p", parameters=["T", "N"])
        b.add_array("A", ("T", "N"))
        with b.loop("t", 1, "T"):
            with b.loop("i", 1, b.sym("N") - 1):
                b.assign(("A", "t", "i"),
                         b.read("A", b.sym("t") - 1, b.sym("i") + 1))
        program = b.finish()
        with pytest.raises(TransformationError):
            Interchange(0, ["i", "t"]).apply(program)

    def test_identity_interchange_is_noop(self):
        program = build_gemm(with_scaling=False)
        Interchange(0, ["i", "j", "k"]).apply(program)
        assert [l.iterator for l in program.body[0].perfectly_nested_band()] == ["i", "j", "k"]


class TestTiling:
    def test_tiling_structure(self):
        program = build_gemm(with_scaling=False)
        Tile(0, {"i": 4, "j": 4}).apply(program)
        band = program.body[0].perfectly_nested_band()
        iterators = [loop.iterator for loop in band]
        assert iterators == ["i_t", "j_t", "i", "j", "k"]
        assert band[0].tile_of == "i"

    def test_tiling_preserves_semantics(self):
        program = build_gemm(with_scaling=False)
        reference = program.copy()
        Tile(0, {"i": 3, "j": 5, "k": 4}).apply(program)
        assert programs_equivalent(reference, program, PARAMS)

    def test_tiling_handles_non_divisible_sizes(self):
        program = build_vector_add()
        reference = program.copy()
        Tile(0, {"i": 7}).apply(program)
        assert programs_equivalent(reference, program, {"N": 20})

    def test_tile_size_one_is_noop(self):
        program = build_gemm(with_scaling=False)
        Tile(0, {"i": 1}).apply(program)
        assert [l.iterator for l in program.body[0].perfectly_nested_band()] == ["i", "j", "k"]

    def test_unknown_iterator_rejected(self):
        program = build_gemm(with_scaling=False)
        with pytest.raises(TransformationError):
            Tile(0, {"z": 8}).apply(program)


class TestParallelizeVectorizeUnroll:
    def test_parallelize_outer_gemm_loop(self):
        program = build_gemm(with_scaling=False)
        Parallelize(0).apply(program)
        assert program.body[0].parallel

    def test_parallelize_sequential_loop_rejected(self):
        program = build_stencil()
        with pytest.raises(TransformationError):
            Parallelize(0).apply(program)

    def test_parallelize_reduction_requires_flag(self):
        b = ProgramBuilder("p", parameters=["N"])
        b.add_array("s", ())
        b.add_array("x", ("N",))
        with b.loop("i", 0, "N"):
            b.accumulate(("s",), b.read("x", "i"))
        program = b.finish()
        with pytest.raises(TransformationError):
            Parallelize(0).apply(program.copy())
        Parallelize(0, allow_reductions=True).apply(program)
        assert program.body[0].parallel

    def test_vectorize_requires_unit_stride(self):
        b = ProgramBuilder("p", parameters=["N"])
        b.add_array("A", ("N", "N"))
        b.add_array("B", ("N", "N"))
        with b.loop("i", 0, "N"):
            with b.loop("j", 0, "N"):
                b.assign(("A", "j", "i"), b.read("B", "j", "i") + 1.0)
        program = b.finish()
        with pytest.raises(TransformationError):
            Vectorize(0).apply(program.copy())
        Vectorize(0, require_unit_stride=False).apply(program)
        assert program.body[0].perfectly_nested_band()[-1].vectorized

    def test_vectorize_unit_stride_accepts(self, vector_add_program):
        Vectorize(0).apply(vector_add_program)
        assert vector_add_program.body[0].vectorized

    def test_unroll_annotation(self, vector_add_program):
        Unroll(0, factor=8).apply(vector_add_program)
        assert vector_add_program.body[0].unroll == 8
        with pytest.raises(TransformationError):
            Unroll(0, factor=0).apply(vector_add_program)


class TestFusion:
    def _two_maps(self):
        b = ProgramBuilder("p", parameters=["N"])
        b.add_array("x", ("N",))
        b.add_array("t", ("N",), transient=True)
        b.add_array("y", ("N",))
        with b.loop("i", 0, "N"):
            b.assign(("t", "i"), b.read("x", "i") * 2)
        with b.loop("i", 0, "N"):
            b.assign(("y", "i"), b.read("t", "i") + 1)
        return b.finish()

    def test_can_fuse_producer_consumer(self):
        program = self._two_maps()
        assert can_fuse(program.body[0], program.body[1])

    def test_fuse_transformation(self):
        program = self._two_maps()
        reference = self._two_maps()
        Fuse(0, 1).apply(program)
        assert len(program.body) == 1
        assert programs_equivalent(reference, program, {"N": 16})

    def test_fusion_with_offset_dependence_rejected(self):
        b = ProgramBuilder("p", parameters=["N"])
        b.add_array("x", ("N",))
        b.add_array("t", ("N",), transient=True)
        b.add_array("y", ("N",))
        with b.loop("i", 0, "N"):
            b.assign(("t", "i"), b.read("x", "i") * 2)
        with b.loop("i", 1, "N"):
            b.assign(("y", "i"), b.read("t", b.sym("i") - 1))
        program = b.finish()
        # The consumer reads the previous iteration's producer value: the
        # matching band differs (bounds) and the dependence is not
        # loop-independent, so fusion must be refused.
        assert not can_fuse(program.body[0], program.body[1])

    def test_fuse_chains_in_body(self):
        program = self._two_maps()
        fused = fuse_chains_in_body(program.body)
        assert fused == 1 and len(program.body) == 1

    def test_fuse_adjacent_respects_min_depth(self):
        program = self._two_maps()
        assert fuse_adjacent_loops(program.body, min_depth=2) == 0
        assert fuse_adjacent_loops(program.body, min_depth=1) == 1


class TestIdiomDetection:
    def test_gemm_detected_after_normalization(self):
        program = normalize_program(build_gemm())
        matches = detect_blas3_nests(program)
        assert any(match.routine == "gemm" for _, match in matches)

    def test_fused_form_not_detected(self):
        program = build_gemm()  # scaling statement still fused with the nest
        assert match_blas3(program.body[1]) is not None  # contraction nest alone is clean
        assert match_blas3(program.body[0]) is None

    def test_syrk_classified(self):
        from repro.workloads.polybench import build_syrk_b
        program = normalize_program(build_syrk_b())
        matches = detect_blas3_nests(program)
        assert any(match.routine == "syrk" for _, match in matches)

    def test_replacement_preserves_semantics(self):
        program = normalize_program(build_gemm())
        reference = program.copy()
        index, match = detect_blas3_nests(program)[0]
        ReplaceWithLibraryCall(index).apply(program)
        assert program.library_calls()
        assert programs_equivalent(reference, program, PARAMS)

    def test_replacement_of_non_idiom_raises(self, vector_add_program):
        with pytest.raises(TransformationError):
            ReplaceWithLibraryCall(0).apply(vector_add_program)

    def test_flop_expression_positive(self):
        program = normalize_program(build_gemm())
        index, match = detect_blas3_nests(program)[0]
        ReplaceWithLibraryCall(index).apply(program)
        call = program.library_calls()[0]
        assert call.flop_expr.evaluate(PARAMS) > 0


class TestRecipes:
    def test_round_trip_serialization(self):
        recipe = Recipe("opt", [Interchange(0, ["i", "k", "j"]),
                                Tile(0, {"i": 32}), Parallelize(0), Vectorize(0),
                                Unroll(0, factor=4)])
        restored = Recipe.from_dict(recipe.to_dict())
        assert [t.name for t in restored] == [t.name for t in recipe]
        assert restored.transformations[1].params()["tile_sizes"] == {"i": 32}

    def test_unknown_transformation_rejected(self):
        with pytest.raises(ValueError):
            Transformation.from_dict({"name": "does-not-exist", "params": {}})

    def test_apply_recipe_skips_illegal_steps(self, stencil_program):
        recipe = Recipe("bad", [Parallelize(0), Unroll(0, factor=2)])
        result = apply_recipe(stencil_program, recipe, strict=False)
        assert len(result.failed) == 1 and len(result.applied) == 1
        assert not result.fully_applied

    def test_apply_recipe_strict_raises(self, stencil_program):
        recipe = Recipe("bad", [Parallelize(0)])
        with pytest.raises(TransformationError):
            apply_recipe(stencil_program, recipe, strict=True)

    def test_recipe_application_preserves_semantics(self):
        program = build_gemm(with_scaling=False)
        reference = program.copy()
        recipe = Recipe("opt", [Interchange(0, ["i", "k", "j"]),
                                Tile(0, {"i": 4, "k": 4}),
                                Parallelize(0), Vectorize(0)])
        result = apply_recipe(program, recipe, strict=False)
        assert result.fully_applied
        assert programs_equivalent(reference, program, PARAMS)

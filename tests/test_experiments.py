"""Integration tests for the experiment harnesses (fast settings).

These tests assert the *qualitative* properties the paper's figures rest on,
not absolute runtimes: daisy is robust across A/B variants, the ablation
shows Norm+Opt dominating, the Python comparison favors daisy, and the
CLOUDSC pipeline improves the erosion kernel.
"""

import pytest

from repro.experiments import (ExperimentSettings, figure1, figure6, figure7,
                               figure9, figure11, figure12, summary, table1)

SUBSET = ["gemm", "atax", "jacobi-2d"]


@pytest.fixture(scope="module")
def settings():
    return ExperimentSettings.fast(benchmarks=SUBSET)


@pytest.fixture(scope="module")
def fig6_rows(settings):
    return figure6.run(settings)


class TestFigure1:
    def test_daisy_insensitive_to_loop_order(self, settings):
        rows = figure1.run(settings)
        daisy_rows = [row for row in rows if row["scheduler"] == "daisy"]
        assert len(daisy_rows) == 6
        spread = max(r["relative_to_best_order"] for r in daisy_rows)
        assert spread < 1.2

    def test_baseline_sensitive_to_loop_order(self, settings):
        rows = figure1.run(settings)
        spreads = {}
        for scheduler in ("icc", "polly"):
            entries = [r["relative_to_best_order"] for r in rows
                       if r["scheduler"] == scheduler]
            spreads[scheduler] = max(entries)
        assert max(spreads.values()) > 1.2


class TestFigure6:
    def test_row_count(self, fig6_rows):
        assert len(fig6_rows) == len(SUBSET) * 4 * 2

    def test_daisy_ab_ratio_close_to_one(self, fig6_rows):
        stats = figure6.robustness_summary(fig6_rows)
        daisy = next(row for row in stats if row["scheduler"] == "daisy")
        assert daisy["mean_ab_ratio"] < 1.15

    def test_daisy_not_slower_than_baselines_on_average(self, fig6_rows):
        stats = figure6.robustness_summary(fig6_rows)
        for row in stats:
            if row["scheduler"] == "daisy":
                continue
            assert row["geo_speedup_of_daisy_A"] >= 0.9
            assert row["geo_speedup_of_daisy_B"] >= 0.9

    def test_formatting(self, fig6_rows):
        text = figure6.format_results(fig6_rows)
        assert "benchmark" in text and "gemm" in text


class TestFigure7:
    def test_full_pipeline_wins(self, settings):
        rows = figure7.run(settings)
        for benchmark in SUBSET:
            for variant in ("A", "B"):
                by_config = {row["configuration"]: row["normalized_runtime"]
                             for row in rows
                             if row["benchmark"] == benchmark and row["variant"] == variant}
                assert by_config["norm+opt"] <= by_config["clang"] * 1.05
                assert by_config["norm+opt"] <= min(by_config["opt"], by_config["norm"]) * 1.1


class TestFigure9:
    def test_daisy_competitive_with_frameworks(self, settings):
        rows = figure9.run(settings)
        stats = {row["framework"]: row["geo_mean_vs_daisy"]
                 for row in figure9.framework_summary(rows)}
        assert stats["daisy"] == pytest.approx(1.0)
        assert stats["numpy"] >= 1.0
        assert stats["numba"] >= 0.95
        assert stats["dace"] >= 0.95


class TestCloudscExperiments:
    def test_table1_shape(self, settings):
        rows = table1.run(settings)
        by_version = {row["version"]: row for row in rows if "version" in row}
        assert by_version["optimized"]["single_iteration_ms"] < by_version["original"]["single_iteration_ms"]
        assert by_version["optimized"]["l1_loads"] < by_version["original"]["l1_loads"]
        ratio = (by_version["original"]["klev_iterations_ms"]
                 / by_version["optimized"]["klev_iterations_ms"])
        assert ratio > 1.5

    def test_figure11_daisy_fastest(self, settings):
        rows = figure11.run(settings)
        runtimes = {row["version"]: row["normalized_runtime"] for row in rows
                    if row["version"] in figure11.VERSIONS}
        assert runtimes["fortran"] == pytest.approx(1.0)
        assert runtimes["daisy"] < 1.0
        assert runtimes["c"] > 1.0 and runtimes["dace"] > runtimes["c"]

    def test_figure12_strong_scaling_improves_with_threads(self, settings):
        rows = figure12.run_strong_scaling(settings, threads=(1, 12))
        daisy = {row["threads"]: row["runtime_s"] for row in rows
                 if row["version"] == "daisy"}
        fortran = {row["threads"]: row["runtime_s"] for row in rows
                   if row["version"] == "fortran"}
        assert daisy[12] < daisy[1]
        assert daisy[12] <= fortran[12]

    def test_figure12_weak_scaling_rows(self, settings):
        rows = figure12.run_weak_scaling(settings, points=((65536, 1), (131072, 2)))
        assert len(rows) == 2 * len(figure12.VERSIONS)
        daisy_rows = [row for row in rows if row["version"] == "daisy"]
        assert all(row["daisy_speedup_over_fortran"] >= 0.95 for row in daisy_rows)

"""Unit and property tests for the symbolic expression engine."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.symbols import (Add, Call, Const, FloorDiv, Max, Min, Mod, Mul,
                              Read, Sym, as_expr, call, const, maximum,
                              minimum, read, sym)


class TestConstruction:
    def test_constant_folding_in_add(self):
        expr = Const(2) + Const(3) + Sym("i")
        assert isinstance(expr, Add)
        assert expr.evaluate({"i": 1}) == 6

    def test_constant_folding_in_mul(self):
        expr = Const(2) * Const(3)
        assert expr == Const(6)

    def test_mul_by_zero_collapses(self):
        assert Sym("i") * 0 == Const(0)

    def test_add_flattens_nested_sums(self):
        expr = (Sym("i") + 1) + (Sym("j") + 2)
        assert expr.evaluate({"i": 10, "j": 20}) == 33

    def test_subtraction_and_negation(self):
        expr = Sym("i") - 3
        assert expr.evaluate({"i": 10}) == 7
        assert (-Sym("i")).evaluate({"i": 4}) == -4

    def test_floordiv_simplification(self):
        assert FloorDiv.make(Sym("i"), Const(1)) == Sym("i")
        assert FloorDiv.make(Const(7), Const(2)) == Const(3)

    def test_mod_of_constants(self):
        assert Mod.make(Const(7), Const(3)) == Const(1)

    def test_min_max_fold_constants(self):
        assert minimum(3, 5) == Const(3)
        assert maximum(3, 5) == Const(5)
        expr = minimum(Sym("i"), 5, 7)
        assert expr.evaluate({"i": 10}) == 5

    def test_as_expr_coercions(self):
        assert as_expr(5) == Const(5)
        assert as_expr("i") == Sym("i")
        assert as_expr(Const(1)) == Const(1)
        with pytest.raises(TypeError):
            as_expr(object())

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            as_expr(True)

    def test_symbol_requires_name(self):
        with pytest.raises(ValueError):
            Sym("")


class TestQueries:
    def test_free_symbols(self):
        expr = Sym("i") * 2 + Sym("N") - 1
        assert expr.free_symbols() == {"i", "N"}

    def test_substitute_replaces_symbols(self):
        expr = Sym("i") + Sym("j")
        replaced = expr.substitute({"i": Sym("k") * 2})
        assert replaced.evaluate({"k": 3, "j": 1}) == 7

    def test_substitute_is_pure(self):
        expr = Sym("i") + 1
        expr.substitute({"i": 5})
        assert expr.free_symbols() == {"i"}

    def test_evaluate_unbound_symbol_raises(self):
        with pytest.raises(KeyError):
            Sym("i").evaluate({})

    def test_read_evaluation_uses_arrays(self):
        import numpy as np
        expr = read("A", Sym("i") + 1)
        value = expr.evaluate({"i": 1}, arrays={"A": np.array([0.0, 1.0, 2.0])})
        assert value == 2.0

    def test_call_evaluation(self):
        assert call("sqrt", 16).evaluate({}) == 4.0
        with pytest.raises(KeyError):
            call("nope", 1).evaluate({})

    def test_equality_and_hashing(self):
        assert Sym("i") + 1 == Sym("i") + 1
        assert hash(Sym("i") * 2) == hash(Sym("i") * 2)
        assert Sym("i") != Sym("j")
        assert len({Sym("i"), Sym("i"), Sym("j")}) == 2


class TestAffineDecomposition:
    def test_affine_simple(self):
        coeffs, offset = (Sym("i") * 3 + Sym("j") + 7).as_affine()
        assert coeffs == {"i": 3, "j": 1}
        assert offset == 7

    def test_affine_with_negative_coefficients(self):
        coeffs, offset = (Sym("N") - Sym("i") - 1).as_affine()
        assert coeffs == {"N": 1, "i": -1}
        assert offset == -1

    def test_non_affine_product(self):
        assert (Sym("i") * Sym("j")).as_affine() is None

    def test_non_affine_floordiv(self):
        assert (Sym("i") // 2).as_affine() is None

    def test_constant_is_affine(self):
        coeffs, offset = Const(5).as_affine()
        assert coeffs == {} and offset == 5


# -- property-based tests --------------------------------------------------------

_names = st.sampled_from(["i", "j", "k", "N", "M"])


@st.composite
def affine_exprs(draw, depth=0):
    """Random affine expressions over a small set of symbols."""
    if depth > 3 or draw(st.booleans()):
        if draw(st.booleans()):
            return Const(draw(st.integers(-10, 10)))
        return Sym(draw(_names))
    left = draw(affine_exprs(depth=depth + 1))
    right = draw(affine_exprs(depth=depth + 1))
    if draw(st.booleans()):
        return left + right
    return left * draw(st.integers(-5, 5))


@given(affine_exprs(), st.integers(0, 7), st.integers(0, 7), st.integers(0, 7),
       st.integers(1, 9), st.integers(1, 9))
@settings(max_examples=60, deadline=None)
def test_affine_decomposition_matches_evaluation(expr, i, j, k, n, m):
    env = {"i": i, "j": j, "k": k, "N": n, "M": m}
    decomposition = expr.as_affine()
    assert decomposition is not None
    coeffs, offset = decomposition
    reconstructed = offset + sum(coeff * env[name] for name, coeff in coeffs.items())
    assert reconstructed == expr.evaluate(env)


@given(affine_exprs(), st.integers(-5, 5))
@settings(max_examples=60, deadline=None)
def test_substitution_commutes_with_evaluation(expr, value):
    env = {"i": 2, "j": 3, "k": 4, "N": 5, "M": 6}
    substituted = expr.substitute({"i": Const(value)})
    env_direct = dict(env)
    env_direct["i"] = value
    assert substituted.evaluate(env) == expr.evaluate(env_direct)


@given(affine_exprs())
@settings(max_examples=60, deadline=None)
def test_expression_equality_is_consistent_with_hash(expr):
    clone = expr.substitute({})
    assert clone == expr
    assert hash(clone) == hash(expr)

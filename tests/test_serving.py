"""Tests for the async service core: queueing, micro-batching, coalescing."""

import asyncio

import pytest
from helpers import GEMM_PARAMS as PARAMS
from helpers import build_gemm, fast_session

from repro.api import ScheduleRequest
from repro.serving import (SchedulingService, ServiceConfig, ServiceRunner,
                           request_fingerprint)


def run(coro):
    return asyncio.run(coro)


class TestRequestFingerprint:
    def test_identical_requests_share_a_fingerprint(self):
        first = ScheduleRequest(program="gemm:a")
        second = ScheduleRequest(program="gemm:a")
        assert request_fingerprint(first) == request_fingerprint(second)

    def test_program_content_drives_the_fingerprint(self):
        # Same kernel under different names coalesces...
        one = ScheduleRequest(program=build_gemm(name="one"), parameters=PARAMS)
        two = ScheduleRequest(program=build_gemm(name="two"), parameters=PARAMS)
        assert request_fingerprint(one) == request_fingerprint(two)
        # ...different structure does not.
        other = ScheduleRequest(program=build_gemm(("k", "j", "i")),
                                parameters=PARAMS)
        assert request_fingerprint(one) != request_fingerprint(other)

    def test_configuration_distinguishes_requests(self):
        base = ScheduleRequest(program="gemm:a")
        assert request_fingerprint(base) \
            != request_fingerprint(ScheduleRequest(program="gemm:a",
                                                   scheduler="clang"))
        assert request_fingerprint(base) \
            != request_fingerprint(ScheduleRequest(program="gemm:a", threads=8))
        assert request_fingerprint(base) \
            != request_fingerprint(ScheduleRequest(program="gemm:a",
                                                   parameters={"NI": 8}))
        # None (registry defaults) and {} (no bindings) resolve differently.
        assert request_fingerprint(base) \
            != request_fingerprint(ScheduleRequest(program="gemm:a",
                                                   parameters={}))

    def test_label_does_not_split_the_coalescing_key(self):
        assert request_fingerprint(ScheduleRequest(program="gemm:a", label="x")) \
            == request_fingerprint(ScheduleRequest(program="gemm:a", label="y"))


class TestSchedulingService:
    def test_duplicate_inflight_requests_coalesce_to_one_schedule(self):
        """The acceptance criterion: N identical concurrent requests cost
        exactly one scheduler invocation."""
        session = fast_session()

        async def fire():
            service = SchedulingService(
                session, ServiceConfig(batch_window_s=0.05))
            await service.start()
            try:
                return await asyncio.gather(
                    *(service.schedule(ScheduleRequest(program="gemm:a"))
                      for _ in range(8)))
            finally:
                await service.stop()

        responses = run(fire())
        assert len(responses) == 8
        assert len({response.runtime_s for response in responses}) == 1
        report = session.report()
        assert report.schedule_calls == 1          # one scheduler invocation
        assert report.coalesced_requests == 7      # the rest rode along
        assert report.schedule_cache_misses == 1
        assert report.schedule_cache_hits == 0

    def test_coalesced_responses_do_not_share_programs(self):
        session = fast_session()

        async def fire():
            service = SchedulingService(
                session, ServiceConfig(batch_window_s=0.05))
            await service.start()
            try:
                return await asyncio.gather(
                    *(service.schedule(ScheduleRequest(program="gemm:a"))
                      for _ in range(3)))
            finally:
                await service.stop()

        responses = run(fire())
        responses[0].program.body.clear()
        assert responses[1].program.body and responses[2].program.body

    def test_distinct_requests_form_one_micro_batch(self):
        session = fast_session()

        async def fire():
            service = SchedulingService(
                session, ServiceConfig(batch_window_s=0.2, max_batch_size=8))
            await service.start()
            try:
                return await asyncio.gather(
                    service.schedule(ScheduleRequest(program="gemm:a")),
                    service.schedule(ScheduleRequest(program="atax:a")),
                    service.schedule(ScheduleRequest(program="bicg:a")))
            finally:
                await service.stop()

        responses = run(fire())
        assert all(response.runtime_s > 0 for response in responses)
        stats = session.report()
        assert stats.batch_calls == 1  # one schedule_batch served all three

    def test_sequential_repeat_is_a_cache_hit_not_coalesced(self):
        session = fast_session()

        async def fire():
            service = SchedulingService(session, ServiceConfig())
            await service.start()
            try:
                first = await service.schedule(ScheduleRequest(program="gemm:a"))
                second = await service.schedule(ScheduleRequest(program="gemm:a"))
                return first, second
            finally:
                await service.stop()

        first, second = run(fire())
        assert not first.from_cache and second.from_cache
        assert session.report().coalesced_requests == 0

    def test_tune_requests_are_rejected(self):
        session = fast_session()

        async def fire():
            service = SchedulingService(session, ServiceConfig())
            await service.start()
            try:
                await service.schedule(ScheduleRequest(program="gemm:a",
                                                       tune=True))
            finally:
                await service.stop()

        with pytest.raises(ValueError, match="tune requests"):
            run(fire())

    def test_one_bad_request_does_not_fail_its_batchmates(self):
        """A valid request sharing a micro-batch with an invalid one must
        still be served (per-item failure isolation)."""
        session = fast_session()

        async def fire():
            service = SchedulingService(
                session, ServiceConfig(batch_window_s=0.2, max_batch_size=8))
            await service.start()
            try:
                good, bad = await asyncio.gather(
                    service.schedule(ScheduleRequest(program="gemm:a")),
                    service.schedule(
                        ScheduleRequest(program="no-such-workload-anywhere")),
                    return_exceptions=True)
                return good, bad
            finally:
                await service.stop()

        good, bad = run(fire())
        assert isinstance(bad, Exception)
        assert not isinstance(good, Exception) and good.runtime_s > 0
        assert session.report().batch_calls == 1  # they shared one batch
        stats = session.report()
        assert stats.schedule_calls >= 1

    def test_errors_propagate_and_do_not_wedge_the_service(self):
        session = fast_session()

        async def fire():
            service = SchedulingService(session, ServiceConfig())
            await service.start()
            try:
                with pytest.raises(Exception):
                    await service.schedule(
                        ScheduleRequest(program="no-such-workload-anywhere"))
                # The batcher survives the failed batch and keeps serving.
                return await service.schedule(ScheduleRequest(program="gemm:a"))
            finally:
                await service.stop()

        response = run(fire())
        assert response.runtime_s > 0

    def test_schedule_before_start_raises(self):
        session = fast_session()

        async def fire():
            service = SchedulingService(session)
            await service.schedule(ScheduleRequest(program="gemm:a"))

        with pytest.raises(RuntimeError, match="not running"):
            run(fire())


class TestServiceRunner:
    def test_runner_context_schedules_from_plain_threads(self):
        session = fast_session()
        with ServiceRunner(session, ServiceConfig(batch_window_s=0.02)) as runner:
            response = runner.schedule(ScheduleRequest(program="gemm:a"))
            assert response.runtime_s > 0
            repeat = runner.schedule(ScheduleRequest(program="gemm:a"))
            assert repeat.from_cache
        assert session.report().schedule_calls == 2

    def test_schedule_many_coalesces_duplicates(self):
        session = fast_session()
        with ServiceRunner(session, ServiceConfig(batch_window_s=0.05)) as runner:
            requests = [ScheduleRequest(program="gemm:a") for _ in range(5)]
            requests += [ScheduleRequest(program="atax:a") for _ in range(5)]
            responses = runner.schedule_many(requests)
        assert len(responses) == 10
        report = session.report()
        assert report.schedule_calls == 2
        assert report.coalesced_requests == 8
        assert runner.stats.requests == 10
        assert runner.stats.coalesced == 8

    def test_runner_stop_is_idempotent(self):
        runner = ServiceRunner(fast_session())
        runner.start()
        runner.stop()
        runner.stop()

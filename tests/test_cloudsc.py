"""Tests for the CLOUDSC proxy workload and its optimization pipeline."""

import numpy as np
import pytest

from repro.experiments.cloudsc_pipeline import annotate_baseline, daisy_optimize
from repro.interp import run_program
from repro.normalization import normalize
from repro.perf import CacheHierarchy, CostModel, TraceGenerator
from repro.workloads.cloudsc import (DEFAULT_CONFIGURATION,
                                     WEAK_SCALING_POINTS, CloudscConfiguration,
                                     build_cloudsc_model, build_erosion_kernel)

EROSION_OUTPUTS = ("ZTP1", "ZQSMIX")
MODEL_OUTPUTS = ("ZTP1", "ZQSMIX", "ZQX", "ZLIQ", "ZRAIN")


def _inputs(program, params, seed=11):
    rng = np.random.default_rng(seed)
    inputs = {}
    for name, arr in program.arrays.items():
        if arr.transient:
            continue
        if name == "ZTP1":
            inputs[name] = rng.uniform(255.0, 300.0, size=arr.concrete_shape(params))
        else:
            inputs[name] = rng.uniform(0.5, 1.5, size=arr.concrete_shape(params))
    return inputs


class TestConfiguration:
    def test_default_matches_paper(self):
        assert DEFAULT_CONFIGURATION.nproma == 128
        assert DEFAULT_CONFIGURATION.nblocks == 512
        assert DEFAULT_CONFIGURATION.num_columns == 128 * 512

    def test_weak_scaling_points(self):
        assert WEAK_SCALING_POINTS[0] == (65536, 1)
        assert WEAK_SCALING_POINTS[-1] == (524288, 8)

    def test_parameters_mapping(self):
        cfg = CloudscConfiguration(nproma=32, nblocks=4, klev=10)
        assert cfg.parameters() == {"NPROMA": 32, "NBLOCKS": 4, "KLEV": 10}


class TestErosionKernel:
    def test_structure(self):
        kernel = build_erosion_kernel()
        assert len(kernel.body) == 1
        assert len(list(kernel.iter_computations())) == 8

    def test_normalization_fissions_and_expands(self):
        kernel = build_erosion_kernel()
        normalized, report = normalize(kernel)
        assert report.scalar_expansion.count == 6
        assert len(normalized.body) > 1

    def test_daisy_pipeline_preserves_semantics(self):
        kernel = build_erosion_kernel()
        optimized, info = daisy_optimize(kernel, parallel_blocks=False)
        assert info["scalars_expanded"] == 6
        assert info["arrays_contracted"] >= 1
        params = {"NPROMA": 16}
        inputs = _inputs(kernel, params)
        reference = run_program(kernel, params, inputs)
        result = run_program(optimized, params, inputs)
        for output in EROSION_OUTPUTS:
            assert np.allclose(reference[output], result[output])

    def test_optimized_kernel_is_faster_and_lighter_on_l1(self):
        kernel = build_erosion_kernel()
        params = {"NPROMA": 128}
        original = annotate_baseline(kernel, parallel_blocks=False)
        optimized, _ = daisy_optimize(kernel, parallel_blocks=False)
        model = CostModel(threads=1)
        t_original = model.estimate_seconds(original, params, assume_warm_caches=True)
        t_optimized = model.estimate_seconds(optimized, params, assume_warm_caches=True)
        assert t_optimized < t_original

        report_original = CacheHierarchy().run_trace(
            TraceGenerator(original, params).trace())
        report_optimized = CacheHierarchy().run_trace(
            TraceGenerator(optimized, params).trace())
        assert report_optimized.l1_loads < report_original.l1_loads
        assert report_optimized.l1_evictions <= report_original.l1_evictions


class TestFullModel:
    def test_structure(self):
        model = build_cloudsc_model()
        top = model.body[0]
        assert top.iterator == "JKGLO"
        vertical = top.body[0]
        assert vertical.iterator == "JK"
        jl_loops = [child for child in vertical.body if child.iterator == "JL"]
        assert len(jl_loops) >= 5

    def test_baseline_annotation_parallelizes_blocks(self):
        model = build_cloudsc_model()
        annotated = annotate_baseline(model, parallel_blocks=True)
        assert annotated.body[0].parallel
        innermost = [loop for loop in annotated.iter_loops()
                     if not any(hasattr(c, "iterator") for c in loop.body)]
        assert all(loop.vectorized for loop in innermost)

    def test_daisy_pipeline_preserves_semantics(self):
        model = build_cloudsc_model()
        optimized, info = daisy_optimize(model)
        assert info["loops_split"] > 0
        params = {"NBLOCKS": 2, "KLEV": 4, "NPROMA": 5}
        inputs = _inputs(model, params)
        reference = run_program(model, params, inputs)
        result = run_program(optimized, params, inputs)
        for output in MODEL_OUTPUTS:
            assert np.allclose(reference[output], result[output])

    def test_daisy_version_not_slower_than_baseline(self):
        model = build_cloudsc_model()
        params = CloudscConfiguration(nproma=128, nblocks=64).parameters()
        baseline = annotate_baseline(model, parallel_blocks=True)
        optimized, _ = daisy_optimize(model, parallel_blocks=True)
        cost = CostModel(threads=12)
        assert (cost.estimate_seconds(optimized, params)
                <= cost.estimate_seconds(baseline, params) * 1.05)

    def test_block_loop_scales_with_threads(self):
        model = build_cloudsc_model()
        params = CloudscConfiguration(nproma=128, nblocks=64).parameters()
        baseline = annotate_baseline(model, parallel_blocks=True)
        sequential = CostModel(threads=1).estimate_seconds(baseline, params)
        parallel = CostModel(threads=12).estimate_seconds(baseline, params)
        assert parallel < sequential / 2

"""End-to-end tests of the JSON-over-HTTP serving endpoint."""

from concurrent.futures import ThreadPoolExecutor

import pytest
from helpers import GEMM_PARAMS as PARAMS
from helpers import build_gemm, fast_session

from repro.api import ScheduleRequest, ScheduleResponse
from repro.serving import ServiceConfig, ServingClient, ServingError, ServingServer


@pytest.fixture
def served():
    """A server on an ephemeral port plus its client."""
    session = fast_session()
    with ServingServer(session, config=ServiceConfig(batch_window_s=0.02)) as server:
        yield session, server, ServingClient(server.address)


class TestEndpoints:
    def test_healthz(self, served):
        _, _, client = served
        payload = client.health()
        assert payload["status"] == "ok"

    def test_schedule_round_trip(self, served):
        _, _, client = served
        status, payload = client.request(
            "POST", "/v1/schedule", ScheduleRequest(program="gemm:a").to_dict())
        assert status == 200
        response = ScheduleResponse.from_dict(payload)
        assert response.scheduler == "daisy"
        assert response.runtime_s > 0
        assert response.program.body

    def test_schedule_with_inline_program(self, served):
        _, _, client = served
        response = client.schedule(build_gemm(), PARAMS)
        assert response.runtime_s > 0
        assert {info.status for info in response.result.nests} <= \
            {"optimized", "unchanged"}

    def test_equivalent_variant_is_served_from_cache(self, served):
        _, _, client = served
        first = client.schedule("gemm:a")
        second = client.schedule("gemm:b")
        assert not first.from_cache and second.from_cache
        assert second.runtime_s == first.runtime_s

    def test_report_reflects_traffic(self, served):
        session, _, client = served
        client.schedule("gemm:a")
        client.schedule("gemm:a")
        payload = client.report()
        assert payload["schedule_calls"] == 2
        assert payload["schedule_cache_hits"] == 1
        assert payload["service"]["requests"] == 2
        assert payload["cache_backend"] == "memory"
        assert session.report().schedule_calls == 2

    def test_report_round_trips_per_pass_timings(self, served):
        """Satellite: /v1/report must expose the per-pass timing counters of
        the normalization pipeline after real traffic."""
        _, _, client = served
        client.schedule("gemm:a")
        payload = client.report()
        passes = payload["normalization_passes"]
        for name in ("loop-normal-form", "maximal-fission",
                     "stride-minimization", "canonicalize-iterators"):
            assert name in passes, name
            assert passes[name]["runs"] >= 1
            assert passes[name]["wall_time_s"] >= 0.0
        assert passes["stride-minimization"]["changed"] >= 0
        assert payload["analysis_misses"] > 0

    def test_schedule_with_pipeline_name_over_http(self, served):
        _, _, client = served
        # gemm:a is a single fused nest, so fission changes its canonical
        # form — the two pipelines must produce distinct schedule entries.
        status, payload = client.request(
            "POST", "/v1/schedule",
            ScheduleRequest(program="gemm:a", pipeline="no-fission").to_dict())
        assert status == 200
        response = ScheduleResponse.from_dict(payload)
        assert response.request.pipeline == "no-fission"
        assert len(response.program.body) == 1  # not fissioned
        # The full-pipeline schedule is a fresh (non-cache) response with a
        # different canonical hash.
        full = client.schedule("gemm:a")
        assert not full.from_cache
        assert full.canonical_hash != response.canonical_hash

    def test_duplicate_concurrent_http_requests_coalesce(self, served):
        session, _, client = served
        with ThreadPoolExecutor(max_workers=6) as pool:
            responses = list(pool.map(
                lambda _: client.schedule("atax:a"), range(6)))
        assert len({response.runtime_s for response in responses}) == 1
        report = session.report()
        # One scheduler invocation total; everything else coalesced or hit
        # the cache, depending on arrival timing.
        assert report.schedule_cache_misses == 1
        assert report.coalesced_requests + report.schedule_cache_hits == 5


class TestErrorHandling:
    def test_unknown_path_is_404(self, served):
        _, _, client = served
        status, payload = client.request("GET", "/nope")
        assert status == 404 and "error" in payload
        status, _ = client.request("POST", "/nope", {})
        assert status == 404

    def test_invalid_json_is_400(self, served):
        import urllib.request

        _, server, _ = served
        request = urllib.request.Request(
            server.address + "/v1/schedule", data=b"{not json",
            method="POST", headers={"Content-Type": "application/json"})
        try:
            urllib.request.urlopen(request, timeout=10)
            status = 200
        except urllib.error.HTTPError as error:
            status = error.code
        assert status == 400

    def test_missing_program_is_400(self, served):
        _, _, client = served
        status, payload = client.request("POST", "/v1/schedule", {"threads": 2})
        assert status == 400 and "invalid schedule request" in payload["error"]

    def test_unknown_workload_is_400(self, served):
        _, _, client = served
        with pytest.raises(ServingError) as excinfo:
            client.schedule("definitely-not-a-workload")
        assert excinfo.value.status == 400

    def test_tune_request_is_400(self, served):
        _, _, client = served
        status, payload = client.request(
            "POST", "/v1/schedule",
            ScheduleRequest(program="gemm:a", tune=True).to_dict())
        assert status == 400 and "tune" in payload["error"]

    def test_body_must_be_an_object(self, served):
        _, _, client = served
        status, _ = client.request("POST", "/v1/schedule", None)
        assert status == 400


class TestPersistentServing:
    def test_server_restart_serves_from_disk_cache(self, tmp_path):
        """Boot a SQLite-backed server, take it down, boot a fresh one on the
        same cache file: the identical request is served without scheduling."""
        path = str(tmp_path / "cache.sqlite")

        session = fast_session(cache_path=path)
        with ServingServer(session) as server:
            cold = ServingClient(server.address).schedule("gemm:a")
            assert not cold.from_cache
        session.cache.close()

        session = fast_session(cache_path=path)
        with ServingServer(session) as server:
            warm = ServingClient(server.address).schedule("gemm:a")
            assert warm.from_cache
            assert warm.normalization_cache_hit
            assert warm.runtime_s == cold.runtime_s
            report = session.report()
            assert report.cache_backend == "sqlite"
            assert report.cache_disk_hits >= 2
        session.cache.close()

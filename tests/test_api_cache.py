"""Tests for content addressing and the two-level normalization cache."""

from helpers import build_gemm, build_vector_add

from repro.api import (NormalizationCache, NormalizationOptions,
                       canonical_program_dict, fingerprint,
                       program_content_hash)


class TestContentHash:
    def test_same_structure_same_hash(self):
        assert program_content_hash(build_gemm()) == program_content_hash(build_gemm())

    def test_name_does_not_affect_hash(self):
        assert (program_content_hash(build_gemm(name="one"))
                == program_content_hash(build_gemm(name="two")))

    def test_structure_affects_hash(self):
        assert (program_content_hash(build_gemm(("i", "j", "k")))
                != program_content_hash(build_gemm(("k", "j", "i"))))
        assert (program_content_hash(build_gemm())
                != program_content_hash(build_vector_add()))

    def test_extra_key_material_affects_hash(self):
        program = build_vector_add()
        assert (program_content_hash(program)
                != program_content_hash(program, extra={"options": "x"}))

    def test_canonical_dict_strips_names(self):
        data = canonical_program_dict(build_gemm(name="whatever"))
        assert data["name"] == ""
        names = [entry["name"] for entry in data["arrays"]]
        assert names == sorted(names)

    def test_options_fingerprint_stable(self):
        assert (fingerprint(NormalizationOptions())
                == fingerprint(NormalizationOptions()))
        assert (fingerprint(NormalizationOptions())
                != fingerprint(NormalizationOptions(apply_fission=False)))


class TestNormalizationLevel:
    def test_second_normalization_hits(self):
        cache = NormalizationCache()
        first = cache.normalized(build_gemm())
        second = cache.normalized(build_gemm())
        assert not first.hit and second.hit
        assert cache.stats.normalization_hits == 1
        assert cache.stats.normalization_misses == 1
        assert first.canonical_hash == second.canonical_hash

    def test_different_options_miss(self):
        cache = NormalizationCache()
        cache.normalized(build_gemm())
        other = cache.normalized(build_gemm(),
                                 NormalizationOptions(apply_fission=False))
        assert not other.hit
        assert cache.stats.normalization_misses == 2

    def test_served_programs_are_independent_copies(self):
        cache = NormalizationCache()
        first = cache.normalized(build_gemm())
        first.program.name = "mutated"
        first.program.body.clear()
        second = cache.normalized(build_gemm())
        assert second.program.body  # the cached master was not mutated

    def test_normalized_equivalent_variants_share_canonical_hash(self):
        """The paper's claim, content-addressed: all six GEMM loop orders
        normalize to one canonical form."""
        cache = NormalizationCache()
        hashes = {cache.normalized(build_gemm(order)).canonical_hash
                  for order in (("i", "j", "k"), ("i", "k", "j"), ("k", "i", "j"),
                                ("k", "j", "i"), ("j", "i", "k"), ("j", "k", "i"))}
        assert len(hashes) == 1
        # ... but each order is its own normalization-level entry.
        assert cache.stats.normalization_misses == 6


class TestScheduleLevel:
    def test_store_and_lookup_roundtrip(self):
        from repro.scheduler.base import ScheduleResult

        cache = NormalizationCache()
        entry = cache.normalized(build_gemm())
        key = cache.schedule_key(entry.canonical_hash, "daisy", 4, {"NI": 8})
        assert cache.lookup_schedule(key) is None
        cache.store_schedule(key, ScheduleResult("daisy", entry.program), 1.5)
        served = cache.lookup_schedule(key)
        assert served is not None
        result, runtime = served
        assert runtime == 1.5 and result.scheduler == "daisy"
        assert cache.stats.schedule_hits == 1

    def test_key_distinguishes_scheduler_threads_parameters(self):
        cache = NormalizationCache()
        base = cache.schedule_key("h", "daisy", 4, {"N": 8})
        assert base != cache.schedule_key("h", "polly", 4, {"N": 8})
        assert base != cache.schedule_key("h", "daisy", 8, {"N": 8})
        assert base != cache.schedule_key("h", "daisy", 4, {"N": 16})
        assert base == cache.schedule_key("h", "daisy", 4, {"N": 8})

    def test_lru_eviction(self):
        cache = NormalizationCache(max_entries=2)
        cache.normalized(build_gemm(("i", "j", "k")))
        cache.normalized(build_gemm(("i", "k", "j")))
        cache.normalized(build_gemm(("k", "i", "j")))
        assert cache.stats.evictions == 1
        # The oldest entry was evicted: normalizing it again misses.
        entry = cache.normalized(build_gemm(("i", "j", "k")))
        assert not entry.hit

"""Tests for end-to-end request tracing, SLO alert rules, and the push
exporter: tracer core semantics, cross-process span propagation through a
real 2-worker pool, the /v1/traces and /alerts endpoints, and the
trace-dump CLI exporters."""

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, HTTPServer

import pytest
from helpers import fast_session

from repro.api import ScheduleRequest, SearchConfig, Session
from repro.observability import (AlertEvaluator, AlertRule, MetricsRegistry,
                                 PushExporter, Tracer, chrome_trace_document,
                                 current_trace_id, default_alert_rules,
                                 register_process_metrics, span,
                                 traces_to_jsonl)
from repro.serving import (ServiceConfig, ServingClient, ServingServer,
                           WorkerConfig, WorkerPool)
from repro.serving.cli import main as cli_main

FAST_SEARCH = SearchConfig(population_size=4, epochs=1,
                           generations_per_epoch=1)


# -- tracer core --------------------------------------------------------------------

class TestTracerCore:
    def test_trace_id_is_deterministic_and_stable_across_tracers(self):
        assert Tracer.trace_id_for("req-1") == Tracer.trace_id_for("req-1")
        assert Tracer.trace_id_for("req-1") != Tracer.trace_id_for("req-2")
        assert len(Tracer.trace_id_for("req-1")) == 16

    def test_nested_spans_form_one_tree(self):
        tracer = Tracer()
        with tracer.trace("request", request_id="req-1") as root:
            assert current_trace_id() == root.trace_id
            with span("outer", layer=1) as outer:
                with span("inner") as inner:
                    assert inner.parent_id == outer.span_id
        record = tracer.get(Tracer.trace_id_for("req-1"))
        assert record is not None
        assert [s.name for s in record.spans] == ["request", "outer", "inner"]
        tree = record.tree()
        assert len(tree) == 1 and tree[0]["name"] == "request"
        assert tree[0]["children"][0]["children"][0]["name"] == "inner"
        assert tree[0]["children"][0]["attributes"] == {"layer": 1}

    def test_span_outside_any_trace_is_a_noop(self):
        assert current_trace_id() is None
        with span("orphan") as scope:
            scope.set_attribute("ignored", True)
            assert scope.context() == {}

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.trace("request", request_id="req-1"):
            with span("child"):
                pass
        assert tracer.stored == 0
        assert current_trace_id() is None

    def test_exception_marks_span_and_trace_as_error(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.trace("request", request_id="req-1"):
                with span("child"):
                    raise RuntimeError("boom")
        record = tracer.get(Tracer.trace_id_for("req-1"))
        assert record.status == "error"
        child = next(s for s in record.spans if s.name == "child")
        assert child.status == "error"
        assert "boom" in child.attributes["error"]

    def test_ring_buffer_evicts_oldest(self):
        tracer = Tracer(capacity=2)
        for index in range(3):
            with tracer.trace("request", request_id=f"req-{index}"):
                pass
        assert tracer.stored == 2
        assert tracer.get(Tracer.trace_id_for("req-0")) is None
        summaries = tracer.traces()
        assert [s["trace_id"] for s in summaries] == [
            Tracer.trace_id_for("req-2"), Tracer.trace_id_for("req-1")]
        assert tracer.traces(limit=1)[0]["trace_id"] == \
            Tracer.trace_id_for("req-2")

    def test_fragment_export_rejoins_the_coordinator_trace(self):
        """The worker/coordinator handshake, single-process edition: the
        worker's spans never finalize locally and re-parent correctly
        after absorb."""
        coordinator = Tracer(process="coordinator")
        worker = Tracer(process="worker")
        trace_id = Tracer.trace_id_for("req-1")
        root = coordinator.begin("request", trace_id)
        with worker.activate({"trace_id": trace_id,
                              "span_id": root.span_id}):
            with span("worker-side"):
                pass
        assert worker.stored == 0  # no local root: nothing finalized
        fragment = worker.export_fragment(trace_id)
        assert len(fragment) == 1
        assert worker.export_fragment(trace_id) == []  # drained
        coordinator.absorb(fragment)
        coordinator.finish(root)
        record = coordinator.get(trace_id)
        assert {s.name for s in record.spans} == {"request", "worker-side"}
        shipped = next(s for s in record.spans if s.name == "worker-side")
        assert shipped.parent_id == root.span_id
        assert shipped.process == "worker"
        assert record.summary()["processes"] == ["coordinator", "worker"]

    def test_late_fragment_lands_in_the_finalized_trace(self):
        coordinator = Tracer(process="coordinator")
        worker = Tracer(process="worker")
        trace_id = Tracer.trace_id_for("req-1")
        root = coordinator.begin("request", trace_id)
        worker.record(trace_id, root.span_id, "late", 0.0, 1.0)
        coordinator.finish(root)  # finalizes before the fragment arrives
        coordinator.absorb(worker.export_fragment(trace_id))
        assert {s.name for s in coordinator.get(trace_id).spans} == \
            {"request", "late"}

    def test_chrome_document_and_jsonl_exporters(self):
        tracer = Tracer(process="pid-test")
        with tracer.trace("request", request_id="req-1"):
            with span("child"):
                pass
        records = [tracer.get(Tracer.trace_id_for("req-1"))]
        doc = chrome_trace_document(records)
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        metas = [e for e in events if e["ph"] == "M"]
        slices = [e for e in events if e["ph"] == "X"]
        assert metas[0]["args"]["name"] == "pid-test"
        assert len(slices) == 2
        for event in slices:
            assert event["dur"] >= 0
            assert event["args"]["trace_id"] == records[0].trace_id
        # The dict form (as served by /v1/traces/<id>) renders identically.
        assert chrome_trace_document(
            [records[0].to_dict()])["traceEvents"] == events
        lines = traces_to_jsonl(records).splitlines()
        assert len(lines) == 2
        assert {json.loads(line)["name"] for line in lines} == \
            {"request", "child"}


# -- alert rules over synthetic snapshot streams ------------------------------------

def _latency_snapshot(good, bad):
    """A registry-snapshot fragment: ``good`` observations under 0.1s,
    ``bad`` ones in the overflow bucket."""
    return {"repro_request_latency_seconds": {
        "type": "histogram", "labelnames": [], "buckets": [0.1, 0.5],
        "series": [{"labels": [], "counts": [good, 0, bad],
                    "sum": 0.1 * good + 2.0 * bad}]}}


def _counter_snapshot(name, value):
    return {name: {"type": "counter", "labelnames": [],
                   "series": [{"labels": [], "value": value}]}}


BURN_RULE = AlertRule(
    name="latency-burn", kind="slo-burn-rate",
    metric="repro_request_latency_seconds", threshold=14.4,
    window_s=300.0, short_window_s=60.0, objective=0.95, latency_slo_s=0.1)


class TestAlertEvaluator:
    def test_burn_rate_fires_on_spike_and_resolves_on_recovery(self):
        evaluator = AlertEvaluator([BURN_RULE])
        evaluator.ingest(_latency_snapshot(good=50, bad=0), ts=1000.0)
        evaluator.ingest(_latency_snapshot(good=50, bad=70), ts=1030.0)
        state, = evaluator.evaluate()
        # Every delta request breached the SLO: burn = 1.0 / 0.05 = 20x.
        assert state.firing
        assert state.value == pytest.approx(20.0)
        assert state.since_s == 1030.0
        assert state.detail["short_burn"] == pytest.approx(20.0)
        # Healthy traffic dilutes the windowed error fraction below 14.4x.
        evaluator.ingest(_latency_snapshot(good=5000, bad=70), ts=1060.0)
        state, = evaluator.evaluate()
        assert not state.firing and state.since_s is None
        assert state.value < 1.0

    def test_one_window_alone_does_not_fire(self):
        """Multi-window semantics: a long-window burn with a quiet short
        window stays silent (the spike already passed)."""
        evaluator = AlertEvaluator([BURN_RULE])
        evaluator.ingest(_latency_snapshot(good=0, bad=100), ts=1000.0)
        evaluator.ingest(_latency_snapshot(good=0, bad=100), ts=1250.0)
        evaluator.ingest(_latency_snapshot(good=2000, bad=100), ts=1290.0)
        state, = evaluator.evaluate()
        assert state.detail["long_burn"] is not None
        assert not state.firing

    def test_no_traffic_means_no_alert(self):
        evaluator = AlertEvaluator([BURN_RULE])
        evaluator.ingest(_latency_snapshot(good=10, bad=0), ts=1000.0)
        evaluator.ingest(_latency_snapshot(good=10, bad=0), ts=1060.0)
        state, = evaluator.evaluate()
        assert state.value is None and not state.firing

    def test_rate_rule_measures_per_second_increase(self):
        rule = AlertRule(name="shed-rate", kind="rate",
                         metric="repro_admission_shed_total",
                         threshold=0.5, window_s=60.0)
        evaluator = AlertEvaluator([rule])
        evaluator.ingest(_counter_snapshot(rule.metric, 0), ts=1000.0)
        evaluator.ingest(_counter_snapshot(rule.metric, 12), ts=1060.0)
        state, = evaluator.evaluate()
        assert state.value == pytest.approx(0.2)
        assert not state.firing
        evaluator.ingest(_counter_snapshot(rule.metric, 100), ts=1120.0)
        state, = evaluator.evaluate()
        assert state.firing

    def test_threshold_rule_reads_a_real_registry_snapshot(self):
        """Shape compatibility with MetricsRegistry.to_dict, not a
        synthetic dict."""
        registry = MetricsRegistry()
        depth = registry.gauge("repro_service_queue_depth", "queued work")
        rule = default_alert_rules(max_queue_depth=100)[1]
        assert rule.name == "queue-depth-saturation"
        evaluator = AlertEvaluator([rule], snapshot_fn=registry.to_dict)
        depth.set(10)
        state, = evaluator.sample_and_evaluate(now=1000.0)
        assert not state.firing and state.value == 10
        depth.set(90)
        state, = evaluator.sample_and_evaluate(now=1001.0)
        assert state.firing and state.threshold == 80.0

    def test_default_rules_cover_the_ops_story(self):
        rules = {rule.name: rule for rule in default_alert_rules()}
        assert set(rules) == {"admission-shed-rate", "queue-depth-saturation",
                              "latency-slo-fast-burn",
                              "latency-slo-slow-burn"}
        assert rules["latency-slo-fast-burn"].threshold == 14.4
        assert rules["latency-slo-slow-burn"].severity == "ticket"
        # An unbounded queue has no meaningful saturation threshold.
        unbounded = [rule.name for rule in
                     default_alert_rules(max_queue_depth=0)]
        assert "queue-depth-saturation" not in unbounded


# -- push exporter ------------------------------------------------------------------

class _Sink:
    """Stdlib HTTP sink recording every POST; fails the first N of them."""

    def __init__(self, fail_first=0):
        self.bodies = []
        sink = self

        class Handler(BaseHTTPRequestHandler):
            def do_POST(self):
                length = int(self.headers.get("Content-Length", 0))
                raw = self.rfile.read(length)
                status = 500 if len(sink.bodies) < fail_first else 200
                sink.bodies.append(json.loads(raw))
                reply = b"{}"
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(reply)))
                self.end_headers()
                self.wfile.write(reply)

            def log_message(self, *args):
                pass

        self.server = HTTPServer(("127.0.0.1", 0), Handler)
        self.url = f"http://127.0.0.1:{self.server.server_port}/push"
        self._thread = threading.Thread(target=self.server.serve_forever,
                                        daemon=True)
        self._thread.start()

    def close(self):
        self.server.shutdown()
        self.server.server_close()


@pytest.fixture
def metric_values():
    registry = MetricsRegistry()

    def values(name):
        entry = registry.to_dict().get(name, {"series": []})
        return {tuple(series["labels"]): series["value"]
                for series in entry["series"]}

    return registry, values


class TestPushExporter:
    def test_delivers_after_a_failed_first_attempt(self, metric_values):
        registry, values = metric_values
        sink = _Sink(fail_first=1)
        try:
            exporter = PushExporter(sink.url, lambda: {"node": "n1"},
                                    backoff_s=0.01, metrics=registry)
            assert exporter.push_once()
        finally:
            sink.close()
        assert len(sink.bodies) == 2  # one 500, one 200
        assert sink.bodies[-1] == {"node": "n1"}
        assert values("repro_push_attempts_total") == {
            ("error",): 1.0, ("ok",): 1.0}
        assert values("repro_push_total") == {("ok",): 1.0}
        assert values(
            "repro_push_last_success_timestamp_seconds")[()] > 0

    def test_gives_up_after_max_attempts(self, metric_values):
        registry, values = metric_values
        sink = _Sink(fail_first=10)
        try:
            exporter = PushExporter(sink.url, dict, max_attempts=2,
                                    backoff_s=0.01, metrics=registry)
            assert not exporter.push_once()
        finally:
            sink.close()
        assert len(sink.bodies) == 2
        assert values("repro_push_attempts_total") == {("error",): 2.0}
        assert values("repro_push_total") == {("error",): 1.0}

    def test_unreachable_sink_never_raises(self):
        exporter = PushExporter("http://127.0.0.1:9/push", dict,
                                max_attempts=1, backoff_s=0.0)
        assert not exporter.push_once()

    def test_broken_payload_is_counted_not_raised(self, metric_values):
        registry, values = metric_values

        def explode():
            raise ValueError("no payload today")

        exporter = PushExporter("http://127.0.0.1:9/push", explode,
                                metrics=registry)
        assert not exporter.push_once()
        assert values("repro_push_total") == {("payload-error",): 1.0}

    def test_background_loop_pushes_until_stopped(self):
        sink = _Sink()
        try:
            exporter = PushExporter(sink.url, lambda: {"tick": True},
                                    interval_s=0.02)
            exporter.start()
            deadline = time.time() + 5.0
            while len(sink.bodies) < 2 and time.time() < deadline:
                time.sleep(0.01)
            exporter.stop()
        finally:
            sink.close()
        assert len(sink.bodies) >= 2


# -- session + service tracing ------------------------------------------------------

class TestSessionTracing:
    def test_traced_request_records_every_layer(self):
        session = fast_session()
        tracer = session.tracer
        trace_id = tracer.trace_id_for("req-1")
        root = tracer.begin("request", trace_id)
        request = ScheduleRequest(program="gemm:a")
        request.trace = root.context()
        response = session.schedule(request)
        tracer.finish(root)
        assert response.trace_id == trace_id
        record = tracer.get(trace_id)
        names = {s.name for s in record.spans}
        assert {"request", "session.schedule", "cache.lookup",
                "normalize.pipeline", "scheduler.search"} <= names
        assert any(name.startswith("pass:") for name in names)
        # Pass spans carry the PassResult facts.
        pass_span = next(s for s in record.spans
                         if s.name.startswith("pass:"))
        assert {"changed", "wall_time_s", "ir_delta"} <= \
            set(pass_span.attributes)
        session.close()

    def test_untraced_request_has_no_trace_id(self):
        session = fast_session()
        response = session.schedule(ScheduleRequest(program="gemm:a"))
        assert response.trace_id is None
        assert "trace_id" not in response.to_dict()
        assert session.tracer.stored == 0
        session.close()

    def test_build_info_and_uptime_gauges_are_registered(self):
        session = fast_session()
        snapshot = session.metrics.to_dict()
        build = snapshot["repro_build_info"]
        labels = dict(zip(build["labelnames"], build["series"][0]["labels"]))
        assert set(labels) == {"version", "python", "pid"}
        first = snapshot["repro_process_uptime_seconds"]["series"][0]["value"]
        assert first >= 0.0
        time.sleep(0.02)
        again = session.metrics.to_dict()
        assert again["repro_process_uptime_seconds"]["series"][0]["value"] \
            > first
        assert again["repro_process_start_time_seconds"]["series"][0]["value"] \
            == snapshot["repro_process_start_time_seconds"]["series"][0]["value"]
        session.close()


@pytest.fixture
def served(tmp_path):
    """A traced server on an ephemeral port, with a JSON access log."""
    session = fast_session()
    log_path = tmp_path / "access.jsonl"
    server = ServingServer(session, config=ServiceConfig(batch_window_s=0.02),
                           access_log=str(log_path))
    with server:
        yield session, server, ServingClient(server.address), log_path
    session.close()


class TestHttpTracing:
    def test_response_access_log_and_ring_buffer_share_one_trace_id(
            self, served):
        session, server, client, log_path = served
        response = client.schedule("gemm:a")
        assert response.trace_id
        listing = client.traces()
        assert listing["stored"] == 1
        assert listing["traces"][0]["trace_id"] == response.trace_id
        entry = json.loads(log_path.read_text().splitlines()[0])
        assert entry["trace_id"] == response.trace_id

    def test_full_span_tree_is_served_and_nested(self, served):
        _, _, client, _ = served
        response = client.schedule("gemm:a")
        record = client.trace(response.trace_id)
        assert record["span_count"] >= 6
        names = {s["name"] for s in record["spans"]}
        assert {"request", "service.admission", "service.queue",
                "service.batch", "service.schedule", "session.schedule",
                "scheduler.search"} <= names
        tree = record["tree"]
        assert len(tree) == 1 and tree[0]["name"] == "request"
        # Queue wait is a measured sub-interval, not a placeholder.
        queued = next(s for s in record["spans"]
                      if s["name"] == "service.queue")
        assert queued["duration_s"] >= 0.0
        assert queued["attributes"]["priority"] == 5

    def test_trace_listing_limit_and_unknown_id(self, served):
        _, _, client, _ = served
        client.schedule("gemm:a")
        client.schedule("mvt:a")
        assert len(client.traces(limit=1)["traces"]) == 1
        assert client.traces()["stored"] == 2
        status, payload = client.request("GET", "/v1/traces/no-such-trace")
        assert status == 404 and "unknown trace" in payload["error"]
        status, payload = client.request("GET", "/v1/traces?limit=banana")
        assert status == 400

    def test_alerts_endpoint_fires_on_a_latency_spike(self):
        """A synthetic SLO (nothing is fast enough) must trip the
        burn-rate rule as soon as traffic flows."""
        session = fast_session()
        strict = AlertRule(
            name="strict-latency", kind="slo-burn-rate",
            metric="repro_request_latency_seconds", threshold=2.0,
            window_s=300.0, short_window_s=60.0, objective=0.95,
            latency_slo_s=1e-9)
        server = ServingServer(session,
                               config=ServiceConfig(batch_window_s=0.02),
                               alert_rules=[strict], alert_interval_s=60.0)
        with server:
            client = ServingClient(server.address)
            baseline = client.alerts()
            assert baseline["firing"] == []
            client.schedule("gemm:a")
            payload = client.alerts()
            assert payload["firing"] == ["strict-latency"]
            state, = payload["alerts"]
            assert state["value"] == pytest.approx(20.0)
            assert state["since_s"] is not None
            report = client.report()
            assert report["alerts"]["firing"] == ["strict-latency"]
            assert report["alerts"]["rules"] == 1
        session.close()

    def test_disabled_tracing_404s_and_omits_trace_ids(self, tmp_path):
        session = fast_session()
        session.tracer.enabled = False
        log_path = tmp_path / "access.jsonl"
        server = ServingServer(session,
                               config=ServiceConfig(batch_window_s=0.02),
                               expose_traces=False,
                               access_log=str(log_path))
        with server:
            client = ServingClient(server.address)
            response = client.schedule("gemm:a")
            assert response.trace_id is None
            status, _ = client.request("GET", "/v1/traces")
            assert status == 404
        entry = json.loads(log_path.read_text().splitlines()[0])
        assert entry["trace_id"] is None
        session.close()

    def test_trace_dump_cli_exports_chrome_and_jsonl(self, served, tmp_path,
                                                     capsys):
        _, server, client, _ = served
        client.schedule("gemm:a")
        chrome_path = tmp_path / "trace.json"
        assert cli_main(["trace-dump", "--url", server.address,
                         "--output", str(chrome_path)]) == 0
        capsys.readouterr()  # drop the "wrote N trace(s)" status line
        doc = json.loads(chrome_path.read_text())
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(slices) >= 6
        assert {"request", "service.schedule"} <= \
            {e["name"] for e in slices}
        assert cli_main(["trace-dump", "--url", server.address,
                         "--format", "jsonl"]) == 0
        lines = [json.loads(line) for line
                 in capsys.readouterr().out.splitlines() if line.strip()]
        assert len(lines) >= 6
        assert len({line["trace_id"] for line in lines}) == 1

    def test_latency_histogram_links_slow_traces_as_exemplars(self, served):
        session, _, client, _ = served
        response = client.schedule("gemm:a")
        entry = session.metrics.to_dict()["repro_request_latency_seconds"]
        exemplars = {}
        for series in entry["series"]:
            exemplars.update(series.get("exemplars", {}))
        assert response.trace_id in \
            {e["trace_id"] for e in exemplars.values()}
        # Exemplars stay out of the Prometheus text exposition.
        assert "exemplar" not in client.metrics()


# -- cross-process propagation ------------------------------------------------------

@pytest.fixture(scope="module")
def traced_pool(tmp_path_factory):
    cache = str(tmp_path_factory.mktemp("traced-pool") / "cache.sqlite")
    config = WorkerConfig(threads=4, cache_path=cache, search=FAST_SEARCH)
    with WorkerPool(2, config) as pool:
        yield pool


class TestCrossProcessTracing:
    def test_one_request_yields_one_trace_spanning_both_processes(
            self, traced_pool):
        session = Session(threads=4)
        config = ServiceConfig(batch_window_s=0.005)
        with ServingServer(session, config=config,
                           pool=traced_pool) as server:
            client = ServingClient(server.address)
            response = client.schedule("gemm:a")
            assert response.trace_id
            record = client.trace(response.trace_id)
            assert record["span_count"] >= 6
            assert len(record["processes"]) == 2
            spans = record["spans"]
            by_id = {s["span_id"]: s for s in spans}
            coordinator = by_id[next(s["span_id"] for s in spans
                                     if s["name"] == "request")]["process"]
            # The worker-side session span rejoined under the
            # coordinator's executor span, across the process boundary.
            worker_side = next(s for s in spans
                               if s["name"] == "session.schedule")
            assert worker_side["process"] != coordinator
            parent = by_id[worker_side["parent_id"]]
            assert parent["name"] == "service.schedule"
            assert parent["process"] == coordinator
            assert parent["attributes"]["executor"] == "pool"
            # Worker-side pass spans travelled too.
            assert any(s["name"].startswith("pass:") and
                       s["process"] == worker_side["process"]
                       for s in spans)
            # A single tree, rooted at the coordinator's request span.
            assert len(record["tree"]) == 1
        session.close()

"""Tests for loop-tree nodes, the builder API, printing and validation."""

import pytest

from helpers import build_gemm, build_vector_add
from repro.ir import (Computation, LibraryCall, Loop, ProgramBuilder,
                      ValidationError, access, to_pseudocode, to_tree,
                      validate_program)
from repro.ir.symbols import Read, Sym


class TestComputation:
    def test_reads_and_writes(self):
        comp = Computation(access("C", "i", "j"),
                           Read("C", ("i", "j")) + Read("A", ("i", "k")) * Read("B", ("k", "j")))
        reads = [acc.array for acc in comp.reads()]
        assert reads == ["C", "A", "B"]
        assert comp.writes()[0].array == "C"
        assert comp.accessed_arrays() == {"A", "B", "C"}

    def test_reduction_detection(self):
        reduction = Computation(access("s"), Read("s", ()) + Read("x", ("i",)))
        plain = Computation(access("y", "i"), Read("x", ("i",)) * 2)
        assert reduction.is_reduction()
        assert not plain.is_reduction()

    def test_substitute(self):
        comp = Computation(access("y", "i"), Read("x", (Sym("i") + 1,)))
        shifted = comp.substitute({"i": Sym("j")})
        assert str(shifted.target) == "y[j]"


class TestLoop:
    def test_trip_count(self):
        loop = Loop("i", 2, "N", 3)
        assert loop.trip_count({"N": 11}) == 3
        assert loop.trip_count({"N": 2}) == 0

    def test_trip_count_invalid_step(self):
        with pytest.raises(ValueError):
            Loop("i", 0, 10, 0).trip_count({})

    def test_is_normalized(self):
        assert Loop("i", 0, "N").is_normalized()
        assert not Loop("i", 1, "N").is_normalized()
        assert not Loop("i", 0, "N", 2).is_normalized()

    def test_band_and_depth(self, gemm_program):
        nest = gemm_program.body[1]
        band = nest.perfectly_nested_band()
        assert [loop.iterator for loop in band] == ["i", "j", "k"]
        assert nest.depth() == 3
        assert nest.is_perfect_nest()

    def test_imperfect_nest(self):
        b = ProgramBuilder("p", parameters=["N"])
        b.add_array("x", ("N",))
        with b.loop("i", 0, "N"):
            b.assign(("x", "i"), 1.0)
            with b.loop("j", 0, "N"):
                b.assign(("x", "j"), 2.0)
        program = b.finish()
        assert not program.body[0].is_perfect_nest()

    def test_copy_is_deep(self, gemm_program):
        clone = gemm_program.copy()
        clone.body[0].body[0].body[0].name = "renamed"
        original_names = [c.name for c in gemm_program.iter_computations()]
        assert "renamed" not in original_names


class TestProgram:
    def test_iteration_helpers(self, gemm_program):
        assert len(list(gemm_program.iter_computations())) == 2
        assert len(list(gemm_program.iter_loops())) == 5
        assert len(gemm_program.top_level_loops()) == 2

    def test_duplicate_container_rejected(self):
        b = ProgramBuilder("p")
        b.add_array("A", ("N",))
        with pytest.raises(ValueError):
            b.add_array("A", ("N",))

    def test_used_parameters(self, gemm_program):
        assert {"NI", "NJ", "NK"} <= gemm_program.used_parameters()

    def test_library_calls_listed(self):
        b = ProgramBuilder("p", parameters=["N"])
        b.add_array("A", ("N", "N"))
        b.add_array("C", ("N", "N"))
        b.library_call("syrk", outputs=["C"], inputs=["A"])
        program = b.finish()
        assert [call.routine for call in program.library_calls()] == ["syrk"]


class TestBuilder:
    def test_unclosed_loop_detected(self):
        b = ProgramBuilder("p", parameters=["N"])
        b.add_array("x", ("N",))
        ctx = b.loop("i", 0, "N")
        ctx.__enter__()
        with pytest.raises(RuntimeError):
            b.finish()

    def test_accumulate_builds_reduction(self):
        b = ProgramBuilder("p", parameters=["N"])
        b.add_array("s", ())
        b.add_array("x", ("N",))
        with b.loop("i", 0, "N"):
            comp = b.accumulate(("s",), b.read("x", "i"))
        assert comp.is_reduction()

    def test_parameters_inferred_from_bounds(self):
        b = ProgramBuilder("p")
        b.add_array("x", ("N",))
        with b.loop("i", 0, "M"):
            b.assign(("x", "i"), 0.0)
        program = b.finish()
        assert "M" in program.parameters and "N" in program.parameters


class TestPrinter:
    def test_pseudocode_contains_loops_and_statements(self, gemm_program):
        text = to_pseudocode(gemm_program)
        assert "for (i = 0; i < NI; i++)" in text
        assert "C[i, j]" in text

    def test_tree_rendering(self, gemm_program):
        text = to_tree(gemm_program)
        assert text.count("loop ") == 5
        assert text.count("comp ") == 2

    def test_annotations_printed(self, vector_add_program):
        loop = vector_add_program.body[0]
        loop.parallel = True
        loop.vectorized = True
        text = to_pseudocode(vector_add_program)
        assert "#pragma parallel simd" in text


class TestValidation:
    def test_valid_program_passes(self, gemm_program):
        assert validate_program(gemm_program) == []

    def test_undeclared_container(self):
        b = ProgramBuilder("p", parameters=["N"])
        b.add_array("x", ("N",))
        with b.loop("i", 0, "N"):
            b.assign(("x", "i"), Read("ghost", (Sym("i"),)))
        errors = validate_program(b.finish(), strict=False)
        assert any("ghost" in error for error in errors)

    def test_rank_mismatch(self):
        b = ProgramBuilder("p", parameters=["N"])
        b.add_array("x", ("N", "N"))
        with b.loop("i", 0, "N"):
            b.assign(("x", "i"), 1.0)
        errors = validate_program(b.finish(), strict=False)
        assert any("rank" in error for error in errors)

    def test_unbound_symbol_in_index(self):
        b = ProgramBuilder("p", parameters=["N"])
        b.add_array("x", ("N",))
        with b.loop("i", 0, "N"):
            b.assign(("x", Sym("q")), 1.0)
        program = b.finish()
        # The builder registers unknown symbols as parameters; drop the bogus
        # one to simulate a malformed program.
        program.parameters.remove("q")
        errors = validate_program(program, strict=False)
        assert any("unbound" in error for error in errors)

    def test_strict_mode_raises(self):
        b = ProgramBuilder("p", parameters=["N"])
        b.add_array("x", ("N",))
        with b.loop("i", 0, "N"):
            b.assign(("x", Sym("q")), 1.0)
        program = b.finish()
        program.parameters.remove("q")
        with pytest.raises(ValidationError):
            validate_program(program, strict=True)

    def test_iterator_shadowing_detected(self):
        b = ProgramBuilder("p", parameters=["N"])
        b.add_array("x", ("N", "N"))
        with b.loop("i", 0, "N"):
            with b.loop("i", 0, "N"):
                b.assign(("x", "i", "i"), 1.0)
        errors = validate_program(b.finish(), strict=False)
        assert any("shadows" in error for error in errors)

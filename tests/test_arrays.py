"""Tests for array/scalar container declarations."""

import numpy as np
import pytest

from repro.ir.arrays import Array, array, scalar
from repro.ir.symbols import Sym


class TestDeclaration:
    def test_basic_properties(self):
        arr = array("A", ("N", "M"))
        assert arr.rank == 2
        assert not arr.is_scalar
        assert arr.element_size == 8

    def test_scalar(self):
        s = scalar("alpha")
        assert s.rank == 0
        assert s.is_scalar

    def test_invalid_dtype_rejected(self):
        with pytest.raises(ValueError):
            array("A", ("N",), dtype="float16")

    def test_float32_element_size(self):
        assert array("A", ("N",), dtype="float32").element_size == 4


class TestShapes:
    def test_concrete_shape(self):
        arr = array("A", ("N", Sym("M") + 1))
        assert arr.concrete_shape({"N": 4, "M": 5}) == (4, 6)

    def test_size_in_elements_and_bytes(self):
        arr = array("A", ("N", "M"))
        assert arr.size_in_elements({"N": 3, "M": 5}) == 15
        assert arr.size_in_bytes({"N": 3, "M": 5}) == 15 * 8

    def test_row_major_strides(self):
        arr = array("A", ("N", "M", "K"))
        assert arr.row_major_strides({"N": 2, "M": 3, "K": 4}) == (12, 4, 1)

    def test_symbolic_strides_evaluate_consistently(self):
        arr = array("A", ("N", "M"))
        symbolic = arr.symbolic_strides()
        values = tuple(int(s.evaluate({"N": 7, "M": 9})) for s in symbolic)
        assert values == arr.row_major_strides({"N": 7, "M": 9})

    def test_scalar_strides_empty(self):
        assert scalar("x").row_major_strides({}) == ()


class TestAllocation:
    def test_zero_allocation(self):
        data = array("A", ("N",)).allocate({"N": 4})
        assert data.shape == (4,)
        assert np.all(data == 0)

    def test_fill_allocation(self):
        data = array("A", ("N",)).allocate({"N": 3}, fill=2.5)
        assert np.all(data == 2.5)

    def test_random_allocation_reproducible(self):
        arr = array("A", ("N", "M"))
        first = arr.allocate({"N": 3, "M": 4}, rng=np.random.default_rng(7))
        second = arr.allocate({"N": 3, "M": 4}, rng=np.random.default_rng(7))
        assert np.array_equal(first, second)

    def test_scalar_allocation_is_zero_dimensional(self):
        data = scalar("x").allocate({})
        assert data.shape == ()

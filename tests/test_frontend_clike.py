"""Tests for the C-like frontend: lexer, parser, lowering, and end-to-end
equivalence with builder-constructed programs."""

import numpy as np
import pytest

from helpers import build_gemm
from repro.frontend import parse_clike_program
from repro.frontend.clike import (LexerError, LoweringError, ParseError,
                                  parse_source, tokenize)
from repro.interp import programs_equivalent, run_program
from repro.normalization import normalize
from repro.ir import to_pseudocode

GEMM_SOURCE = """
// C = beta*C + alpha*A*B
double C[NI][NJ];
double A[NI][NK];
double B[NK][NJ];
double alpha;
double beta;

for (i = 0; i < NI; i++) {
  for (j = 0; j < NJ; j++) {
    C[i][j] *= beta;
    for (k = 0; k < NK; k++) {
      C[i][j] += alpha * A[i][k] * B[k][j];
    }
  }
}
"""

STENCIL_SOURCE = """
double A[N];
double B[N];
for (t = 0; t < T; t++) {
  for (i = 1; i < N - 1; i++) {
    B[i] = 0.5 * (A[i - 1] + A[i + 1]);
  }
  for (i = 1; i < N - 1; i++) {
    A[i] = B[i];
  }
}
"""


class TestLexer:
    def test_token_kinds(self):
        tokens = tokenize("for (i = 0; i < N; i++) { A[i] = 2.5; }")
        kinds = [token.kind for token in tokens]
        assert kinds[0] == "keyword" and kinds[-1] == "eof"
        assert any(token.kind == "number" and token.text == "2.5" for token in tokens)

    def test_comments_are_skipped(self):
        tokens = tokenize("// a comment\nx = 1; /* block */ y = 2;")
        assert all(token.kind != "COMMENT" for token in tokens)
        assert sum(1 for token in tokens if token.text == "=") == 2

    def test_unexpected_character(self):
        with pytest.raises(LexerError):
            tokenize("x = @;")


class TestParser:
    def test_gemm_parses(self):
        program = parse_source(GEMM_SOURCE, "gemm")
        assert len(program.declarations) == 5
        assert len(program.statements) == 1

    def test_compound_assignment_ops(self):
        source = "double x[N];\nfor (i = 0; i < N; i++) { x[i] += 1; x[i] *= 2; }"
        parsed = parse_source(source)
        loop = parsed.statements[0]
        assert [stmt.op for stmt in loop.body] == ["+", "*"]

    def test_strided_loop(self):
        parsed = parse_source("double x[N];\nfor (i = 0; i < N; i += 4) { x[i] = 0; }")
        assert parsed.statements[0].step.value == 4

    def test_missing_semicolon_rejected(self):
        with pytest.raises(ParseError):
            parse_source("double x[N]\n")

    def test_wrong_condition_variable_rejected(self):
        with pytest.raises(ParseError):
            parse_source("double x[N];\nfor (i = 0; j < N; i++) { x[i] = 0; }")


class TestLowering:
    def test_gemm_structure(self):
        program = parse_clike_program(GEMM_SOURCE, "gemm_from_c")
        assert set(program.arrays) == {"C", "A", "B", "alpha", "beta"}
        assert {"NI", "NJ", "NK"} <= set(program.parameters)
        text = to_pseudocode(program)
        assert "for (k = 0; k < NK; k++)" in text

    def test_gemm_equivalent_to_builder_version(self):
        parsed = parse_clike_program(GEMM_SOURCE, "gemm_from_c")
        built = build_gemm()
        assert programs_equivalent(parsed, built, {"NI": 8, "NJ": 9, "NK": 10})

    def test_division_and_intrinsics(self):
        source = """
        double x[N];
        double y[N];
        for (i = 0; i < N; i++) {
          y[i] = sqrt(x[i]) / 2.0 + fmax(x[i], 0.5);
        }
        """
        program = parse_clike_program(source)
        result = run_program(program, {"N": 4}, {"x": np.array([1.0, 4.0, 9.0, 16.0])})
        expected = np.sqrt([1.0, 4.0, 9.0, 16.0]) / 2.0 + np.maximum([1, 4, 9, 16], 0.5)
        assert np.allclose(result["y"], expected)

    def test_undeclared_target_rejected(self):
        with pytest.raises(LoweringError):
            parse_clike_program("for (i = 0; i < N; i++) { ghost[i] = 1; }")

    def test_unknown_function_rejected(self):
        with pytest.raises(LoweringError):
            parse_clike_program(
                "double x[N];\nfor (i = 0; i < N; i++) { x[i] = frob(1); }")

    def test_stencil_round_trip_semantics(self):
        program = parse_clike_program(STENCIL_SOURCE, "stencil_from_c")
        normalized, _ = normalize(program)
        assert programs_equivalent(program, normalized, {"T": 3, "N": 16})


class TestEndToEndPipeline:
    def test_parsed_gemm_normalizes_and_matches_blas(self):
        from repro.transforms import detect_blas3_nests
        program = parse_clike_program(GEMM_SOURCE, "gemm_from_c")
        normalized, report = normalize(program)
        assert report.fission.loops_split >= 1
        assert any(match.routine == "gemm" for _, match in detect_blas3_nests(normalized))

    def test_parsed_program_schedulable_by_daisy(self):
        from repro.scheduler import DaisyConfig, DaisyScheduler
        from repro.scheduler.evolutionary import SearchConfig
        program = parse_clike_program(GEMM_SOURCE, "gemm_from_c")
        daisy = DaisyScheduler(config=DaisyConfig(
            threads=4, search=SearchConfig(population_size=4, epochs=1,
                                           generations_per_epoch=1)))
        result = daisy.tune(program, {"NI": 200, "NJ": 210, "NK": 220})
        assert any(info.status == "optimized" for info in result.nests)

"""Tests for the sharded tuning database and database-entry round-trips."""

import json
import threading

import pytest

from repro.api import (SearchConfig, Session, ShardedTuningDatabase,
                       TuningDatabase, embedding_shard)
from repro.scheduler.database import DatabaseEntry
from repro.scheduler.embedding import EMBEDDING_SIZE, PerformanceEmbedding
from repro.transforms.recipe import Recipe

FAST_SEARCH = SearchConfig(population_size=4, epochs=1, generations_per_epoch=1)


def embedding(seed: float, label: str = "") -> PerformanceEmbedding:
    vector = tuple(float(seed + i * 0.25) for i in range(EMBEDDING_SIZE))
    return PerformanceEmbedding(label=label, vector=vector)


def seeded_database(count: int = 12) -> TuningDatabase:
    database = TuningDatabase()
    for i in range(count):
        database.add(embedding(float(i), label=f"nest{i}"),
                     Recipe(f"recipe{i}"), runtime=0.1 * i)
    return database


class TestDatabaseEntryRoundTrip:
    def test_runtime_is_coerced_to_float(self):
        """JSON-string runtimes must not silently survive round-trips."""
        entry = DatabaseEntry.from_dict({
            "embedding": ["1.0"] * EMBEDDING_SIZE,
            "recipe": Recipe("r").to_dict(),
            "label": "x",
            "runtime": "0.25",
        })
        assert entry.runtime == 0.25
        assert isinstance(entry.runtime, float)

    def test_runtime_none_stays_none(self):
        entry = DatabaseEntry.from_dict({
            "embedding": [1.0] * EMBEDDING_SIZE,
            "recipe": Recipe("r").to_dict(),
        })
        assert entry.runtime is None


class TestDatabaseVersion:
    def test_version_changes_on_add(self):
        database = TuningDatabase()
        before = database.version
        database.add(embedding(1.0, "x"), Recipe("r"))
        assert database.version != before

    def test_equal_size_different_content_different_version(self):
        """The schedule-cache guarantee: two databases of equal size but
        different content must not share a version (their cached schedules
        would otherwise collide in a persistent cache)."""
        first = TuningDatabase()
        first.add(embedding(1.0, "x"), Recipe("r1"))
        second = TuningDatabase()
        second.add(embedding(2.0, "y"), Recipe("r2"))
        assert len(first) == len(second)
        assert first.version != second.version

    def test_version_is_reproducible_across_load(self):
        database = seeded_database(5)
        restored = TuningDatabase.from_json(database.to_json())
        assert restored.version == database.version

    def test_sharded_version_tracks_content(self):
        flat = seeded_database(6)
        sharded = ShardedTuningDatabase.from_database(flat, 3)
        before = sharded.version
        sharded.add(embedding(99.0, "new"), Recipe("r"))
        assert sharded.version != before
        # Same content, same shard layout → same version after a round-trip.
        restored = ShardedTuningDatabase.from_json(
            ShardedTuningDatabase.from_database(flat, 3).to_json())
        assert restored.version == before


class TestSharding:
    def test_shard_assignment_is_deterministic_and_json_stable(self):
        vector = [0.1 + i for i in range(EMBEDDING_SIZE)]
        index = embedding_shard(vector, 4)
        assert embedding_shard(vector, 4) == index
        # Values round-tripped through JSON land in the same shard.
        assert embedding_shard(json.loads(json.dumps(vector)), 4) == index

    def test_entries_partition_across_shards(self):
        sharded = ShardedTuningDatabase.from_database(seeded_database(32), 4)
        sizes = sharded.shard_sizes()
        assert sum(sizes) == 32 and len(sizes) == 4
        assert sum(1 for size in sizes if size > 0) > 1  # actually spread out

    def test_add_routes_by_embedding_hash(self):
        sharded = ShardedTuningDatabase(num_shards=4)
        emb = embedding(3.0, "x")
        sharded.add(emb, Recipe("r"))
        expected = embedding_shard(emb.vector, 4)
        assert sharded.shard_sizes()[expected] == 1

    def test_invalid_shard_count_raises(self):
        with pytest.raises(ValueError):
            ShardedTuningDatabase(num_shards=0)


class TestScatterGather:
    def test_query_matches_unsharded_database(self):
        """The acceptance criterion: scatter-gather nearest-neighbor results
        equal the unsharded database's on the same entries."""
        flat = seeded_database(16)
        sharded = ShardedTuningDatabase.from_database(flat, 4)
        for k in (1, 3, 8):
            for seed in (0.0, 2.6, 7.1, 15.0):
                probe = embedding(seed)
                flat_result = flat.query(probe, k=k)
                shard_result = sharded.query(probe, k=k)
                assert [entry.label for _, entry in flat_result] \
                    == [entry.label for _, entry in shard_result]
                assert [pytest.approx(d) for d, _ in flat_result] \
                    == [d for d, _ in shard_result]

    def test_query_matches_on_seeded_benchmarks(self):
        """Same check on real embeddings: seed from the registry benchmarks
        and compare nearest neighbors when scheduling the B variants."""
        flat = Session(threads=4, search=FAST_SEARCH)
        flat.seed(["gemm", "atax", "bicg"])
        sharded_db = ShardedTuningDatabase.from_database(flat.database, 4)
        assert len(sharded_db) == len(flat.database)
        for entry in flat.database.entries:
            probe = PerformanceEmbedding(label="probe", vector=entry.embedding)
            flat_best = flat.database.best_match(probe)
            shard_best = sharded_db.best_match(probe)
            assert flat_best is not None
            assert shard_best.label == flat_best.label
            assert shard_best.recipe.name == flat_best.recipe.name

    def test_best_match_respects_max_distance(self):
        sharded = ShardedTuningDatabase.from_database(seeded_database(4), 2)
        assert sharded.best_match(embedding(0.0), max_distance=1e-6) is not None
        assert sharded.best_match(embedding(1000.0), max_distance=1.0) is None

    def test_empty_database(self):
        sharded = ShardedTuningDatabase(num_shards=3)
        assert len(sharded) == 0
        assert sharded.query(embedding(1.0), k=2) == []
        assert sharded.best_match(embedding(1.0)) is None


class TestSessionIntegration:
    def test_session_transfer_tunes_through_sharded_database(self):
        session = Session(threads=4, search=FAST_SEARCH,
                          database=ShardedTuningDatabase(num_shards=4))
        session.tune("gemm:a", label="gemm")
        assert len(session.database) > 0
        response = session.schedule("gemm:b")
        assert {info.status for info in response.result.nests} == {"optimized"}
        report = session.report()
        assert report.database_shards and sum(report.database_shards) \
            == report.database_entries

    def test_unsharded_session_reports_no_shards(self):
        session = Session(threads=4, search=FAST_SEARCH)
        assert session.report().database_shards == []

    def test_concurrent_adds_land_once_each(self):
        sharded = ShardedTuningDatabase(num_shards=4)

        def worker(base):
            for i in range(base, base + 16):
                sharded.add(embedding(float(i), f"n{i}"), Recipe(f"r{i}"))

        threads = [threading.Thread(target=worker, args=(n * 16,))
                   for n in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(sharded) == 64
        assert len({entry.label for entry in sharded.entries}) == 64


class TestPersistence:
    def test_json_roundtrip_preserves_shards_and_entries(self):
        sharded = ShardedTuningDatabase.from_database(seeded_database(10), 4)
        restored = ShardedTuningDatabase.from_json(sharded.to_json())
        assert restored.num_shards == 4
        assert restored.shard_sizes() == sharded.shard_sizes()
        assert [e.label for e in restored.entries] \
            == [e.label for e in sharded.entries]

    def test_from_json_accepts_unsharded_dump(self):
        flat = seeded_database(6)
        restored = ShardedTuningDatabase.from_json(flat.to_json())
        assert len(restored) == 6

    def test_sqlite_roundtrip(self, tmp_path):
        path = str(tmp_path / "db.sqlite")
        sharded = ShardedTuningDatabase.from_database(seeded_database(10), 5)
        sharded.save_sqlite(path)
        restored = ShardedTuningDatabase.load_sqlite(path)
        assert restored.num_shards == 5
        assert restored.shard_sizes() == sharded.shard_sizes()
        probe = embedding(4.2)
        assert restored.best_match(probe).label == sharded.best_match(probe).label
        # Runtimes come back as floats even though SQLite stores REALs.
        assert all(isinstance(e.runtime, float) for e in restored.entries
                   if e.runtime is not None)

    def test_sqlite_preserves_a_custom_shard_layout(self, tmp_path):
        """Like the JSON path, loading with the saved shard count must keep
        the stored layout verbatim, even if it differs from what rehashing
        would produce."""
        entries = [e.to_dict() for e in seeded_database(4).entries]
        # A deliberately lopsided, hand-given layout.
        custom = ShardedTuningDatabase.from_json(json.dumps(
            {"num_shards": 3, "shards": [entries[:3], [], entries[3:]]}))
        assert custom.shard_sizes() == [3, 0, 1]
        path = str(tmp_path / "db.sqlite")
        custom.save_sqlite(path)
        restored = ShardedTuningDatabase.load_sqlite(path)
        assert restored.shard_sizes() == [3, 0, 1]

    def test_sqlite_rebalance_on_load(self, tmp_path):
        path = str(tmp_path / "db.sqlite")
        ShardedTuningDatabase.from_database(seeded_database(12), 3).save_sqlite(path)
        rebalanced = ShardedTuningDatabase.load_sqlite(path, num_shards=6)
        assert rebalanced.num_shards == 6
        assert len(rebalanced) == 12

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "db.json")
        sharded = ShardedTuningDatabase.from_database(seeded_database(8), 2)
        sharded.save(path)
        assert ShardedTuningDatabase.load(path).shard_sizes() \
            == sharded.shard_sizes()

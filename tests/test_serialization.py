"""Serialization round-trip tests (unit + property-based)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import build_gemm, build_stencil, build_vector_add
from repro.ir import (expr_from_dict, expr_to_dict, program_from_json,
                      program_to_json, to_pseudocode)
from repro.ir.serialization import node_from_dict, node_to_dict
from repro.ir.symbols import (Call, Const, FloorDiv, Max, Min, Mod, Read, Sym)


class TestExpressionRoundTrip:
    def test_all_expression_kinds(self):
        expressions = [
            Const(3),
            Sym("i"),
            Sym("i") + 2 * Sym("j"),
            Sym("i") * Sym("j"),
            FloorDiv.make(Sym("i"), Const(4)),
            Mod.make(Sym("i"), Const(3)),
            Min.make([Sym("i"), Const(7)]),
            Max.make([Sym("i"), Const(0)]),
            Read("A", (Sym("i") + 1, Sym("j"))),
            Call("sqrt", (Sym("x"),)),
        ]
        for expr in expressions:
            assert expr_from_dict(expr_to_dict(expr)) == expr


class TestProgramRoundTrip:
    def test_gemm_round_trip_preserves_structure(self):
        program = build_gemm()
        restored = program_from_json(program_to_json(program))
        assert to_pseudocode(restored) == to_pseudocode(program)
        assert restored.parameters == program.parameters
        assert set(restored.arrays) == set(program.arrays)

    def test_stencil_round_trip(self):
        program = build_stencil()
        restored = program_from_json(program_to_json(program))
        assert to_pseudocode(restored) == to_pseudocode(program)

    def test_annotations_survive(self):
        program = build_vector_add()
        program.body[0].parallel = True
        program.body[0].vectorized = True
        program.body[0].unroll = 4
        restored = program_from_json(program_to_json(program))
        loop = restored.body[0]
        assert loop.parallel and loop.vectorized and loop.unroll == 4

    def test_library_call_round_trip(self):
        from repro.ir.nodes import LibraryCall
        call = LibraryCall("gemm", ["C"], ["A", "B"], Sym("N") * Sym("N") * 2,
                           metadata={"roles": ["i", "j", "k"]})
        restored = node_from_dict(node_to_dict(call))
        assert restored.routine == "gemm"
        assert restored.outputs == ("C",)
        assert restored.metadata["roles"] == ["i", "j", "k"]
        assert restored.flop_expr == call.flop_expr


_leaf = st.one_of(st.integers(-20, 20).map(Const),
                  st.sampled_from(["i", "j", "N"]).map(Sym))


@st.composite
def random_exprs(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        return draw(_leaf)
    kind = draw(st.sampled_from(["add", "mul", "min", "max", "read", "call", "floordiv"]))
    left = draw(random_exprs(depth=depth + 1))
    right = draw(random_exprs(depth=depth + 1))
    if kind == "add":
        return left + right
    if kind == "mul":
        return left * right
    if kind == "min":
        return Min.make([left, right])
    if kind == "max":
        return Max.make([left, right])
    if kind == "read":
        return Read("A", (left,))
    if kind == "call":
        return Call("fmax", (left, right))
    return FloorDiv.make(left, Const(draw(st.integers(1, 8))))


@given(random_exprs())
@settings(max_examples=80, deadline=None)
def test_expression_round_trip_property(expr):
    assert expr_from_dict(expr_to_dict(expr)) == expr

"""Tests of the observability subsystem: the metrics registry and its
instruments (property-based histogram invariants included), concurrency
safety across threads and real processes, the wiring through Session /
SchedulingService / WorkerPool, and the end-to-end ``/metrics`` scrape."""

import json
import math
import multiprocessing
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest
from helpers import (build_gemm, fast_session, observation_streams,
                     parse_prometheus_text, prometheus_sample,
                     uniform_buckets)

from repro.api import SearchConfig, Session
from repro.observability import (DEFAULT_LATENCY_BUCKETS, MetricsError,
                                 MetricsRegistry, merge_registry_dicts,
                                 render_registry_dict)
from repro.serving import (ServiceConfig, ServingClient, ServingError,
                           ServingServer, WorkerConfig, WorkerPool)

FAST_SEARCH = SearchConfig(population_size=4, epochs=1,
                           generations_per_epoch=1)


# -- the instruments -----------------------------------------------------------------

class TestCounter:
    def test_counts_and_rejects_negative(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_t_total", "help")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(MetricsError):
            counter.inc(-1)

    def test_labelled_series_are_independent(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_t_total", "", ("outcome",))
        counter.labels("hit").inc(3)
        counter.labels(outcome="miss").inc()
        assert counter.labels("hit").value == 3
        assert counter.labels("miss").value == 1

    def test_label_arity_is_checked(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_t_total", "", ("a", "b"))
        with pytest.raises(MetricsError):
            counter.labels("only-one")
        with pytest.raises(MetricsError):
            counter.labels(a="x", wrong="y")


class TestGauge:
    def test_set_inc_dec_and_max(self):
        gauge = MetricsRegistry().gauge("repro_depth", "")
        gauge.set(5)
        gauge.dec(2)
        gauge.inc()
        assert gauge.value == 4
        gauge.set_max(2)
        assert gauge.value == 4
        gauge.set_max(9)
        assert gauge.value == 9


class TestRegistry:
    def test_declaration_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_t_total", "help", ("x",))
        second = registry.counter("repro_t_total", "help", ("x",))
        assert first is second

    def test_conflicting_redeclaration_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_t_total", "")
        with pytest.raises(MetricsError):
            registry.gauge("repro_t_total", "")
        registry.histogram("repro_h", "", buckets=(1.0, 2.0))
        with pytest.raises(MetricsError):
            registry.histogram("repro_h", "", buckets=(1.0, 3.0))

    def test_invalid_names_raise(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricsError):
            registry.counter("0bad", "")
        with pytest.raises(MetricsError):
            registry.counter("repro_ok", "", ("bad-label",))

    def test_histogram_bucket_validation(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricsError):
            registry.histogram("repro_h1", "", buckets=())
        with pytest.raises(MetricsError):
            registry.histogram("repro_h2", "", buckets=(2.0, 1.0))
        with pytest.raises(MetricsError):
            registry.histogram("repro_h3", "", buckets=(1.0, math.inf))

    def test_render_and_parse_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("repro_a_total", "a help", ("k",)).labels("v").inc(2)
        registry.gauge("repro_g", "g help").set(1.5)
        histogram = registry.histogram("repro_h_seconds", "",
                                       buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(50.0)
        parsed = parse_prometheus_text(registry.render())
        assert prometheus_sample(parsed, "repro_a_total", k="v") == 2
        assert prometheus_sample(parsed, "repro_g") == 1.5
        assert prometheus_sample(parsed, "repro_h_seconds_count") == 2
        assert prometheus_sample(parsed, "repro_h_seconds_bucket",
                                 le="0.1") == 1
        assert prometheus_sample(parsed, "repro_h_seconds_bucket",
                                 le="+Inf") == 2
        assert parsed["repro_h_seconds"]["type"] == "histogram"

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        # Includes the adversarial literal backslash-then-'n' sequence,
        # which a wrong-order unescape would decode as a newline.
        value = 'a"b\\c\nd\\ne'
        registry.counter("repro_e_total", "", ("who",)).labels(value).inc()
        parsed = parse_prometheus_text(registry.render())
        assert prometheus_sample(parsed, "repro_e_total", who=value) == 1

    def test_unlabelled_instruments_render_zero_before_first_use(self):
        registry = MetricsRegistry()
        registry.counter("repro_idle_total", "")
        parsed = parse_prometheus_text(registry.render())
        assert prometheus_sample(parsed, "repro_idle_total") == 0


# -- property-based histogram invariants ---------------------------------------------

class TestHistogramProperties:
    """Satellite: Hypothesis-style random-stream invariants over the
    fixed-bucket histogram (generators in ``tests/helpers.py``)."""

    def test_bucket_monotonicity_sum_count_and_quantiles(self):
        for index, (shape, stream) in enumerate(
                observation_streams(seed=0xC60, count=40)):
            bounds, width = uniform_buckets(stream)
            registry = MetricsRegistry()
            histogram = registry.histogram("repro_p_seconds", "",
                                           buckets=bounds)
            for value in stream:
                histogram.observe(value)

            # Invariant 1: count and sum match the raw stream exactly.
            assert histogram.count == len(stream), (index, shape)
            assert histogram.sum == pytest.approx(sum(stream)), (index, shape)

            # Invariant 2: rendered cumulative buckets are monotone and the
            # +Inf bucket equals the count.
            parsed = parse_prometheus_text(registry.render())
            samples = parsed["repro_p_seconds"]["samples"]
            cumulative = [
                value for (name, labels), value in sorted(
                    samples.items(),
                    key=lambda item: float(dict(item[0][1]).get("le", "inf")
                                           .replace("+Inf", "inf")))
                if name.endswith("_bucket")]
            assert cumulative == sorted(cumulative), (index, shape)
            assert cumulative[-1] == len(stream), (index, shape)

            # Invariant 3: quantile estimates land within one bucket width
            # of the sorted-sample oracle (buckets cover the stream).
            ordered = sorted(stream)
            for q in (0.0, 0.1, 0.5, 0.9, 0.99, 1.0):
                oracle = ordered[max(0, math.ceil(q * len(ordered)) - 1)]
                estimate = histogram.quantile(q)
                assert estimate != math.inf, (index, shape, q)
                assert abs(estimate - oracle) <= width + 1e-9, \
                    (index, shape, q, estimate, oracle)

    def test_quantile_of_empty_histogram_is_nan(self):
        histogram = MetricsRegistry().histogram("repro_p", "",
                                                buckets=(1.0,))
        assert math.isnan(histogram.quantile(0.5))
        with pytest.raises(MetricsError):
            histogram.quantile(1.5)

    def test_observations_beyond_the_last_bound_overflow_to_inf(self):
        histogram = MetricsRegistry().histogram("repro_p", "",
                                                buckets=(1.0, 2.0))
        histogram.observe(99.0)
        assert histogram.count == 1
        # Mid-range quantiles land in the +Inf overflow bucket...
        assert histogram.quantile(0.5) == math.inf
        # ...but q=1.0 clamps to the highest finite edge (a plottable,
        # defined value) instead of leaking inf.
        assert histogram.quantile(1.0) == 2.0

    def test_quantile_boundary_contract(self):
        """Satellite: q=0.0 / q=1.0 / empty return defined values — checked
        property-style over random streams, not just one example."""
        for index, (shape, stream) in enumerate(
                observation_streams(seed=0xB0DA, count=40)):
            bounds, _ = uniform_buckets(stream)
            histogram = MetricsRegistry().histogram("repro_b_seconds", "",
                                                    buckets=bounds)
            assert math.isnan(histogram.quantile(0.0)), (index, shape)
            assert math.isnan(histogram.quantile(1.0)), (index, shape)
            for value in stream:
                histogram.observe(value)
            # q=0.0 is the lowest bucket edge, q=1.0 the finite upper edge
            # of the highest nonempty bucket; both finite, properly ordered,
            # and bracketing every mid quantile.
            low, high = histogram.quantile(0.0), histogram.quantile(1.0)
            assert low == bounds[0], (index, shape)
            assert math.isfinite(high), (index, shape)
            assert low <= high <= bounds[-1], (index, shape)
            for q in (0.25, 0.5, 0.75):
                estimate = histogram.quantile(q)
                assert low <= estimate <= high, (index, shape, q)

    def test_quantile_one_clamps_overflow_to_highest_finite_edge(self):
        histogram = MetricsRegistry().histogram("repro_b", "",
                                                buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 99.0, 123.0):
            histogram.observe(value)
        assert histogram.quantile(1.0) == 4.0
        assert histogram.quantile(0.0) == 1.0


# -- merging snapshots ----------------------------------------------------------------

def _sample_registry(observations):
    registry = MetricsRegistry()
    registry.counter("repro_m_total", "", ("k",)).labels("x").inc(2)
    registry.gauge("repro_m_depth", "").set(3)
    histogram = registry.histogram("repro_m_seconds", "", ("p",),
                                   buckets=(0.5, 1.5))
    for value in observations:
        histogram.labels("5").observe(value)
    return registry


class TestMerge:
    def test_counters_gauges_and_histograms_sum(self):
        first = _sample_registry([0.1, 1.0])
        second = _sample_registry([2.0])
        merged = merge_registry_dicts([first.to_dict(), second.to_dict()])
        parsed = parse_prometheus_text(render_registry_dict(merged))
        assert prometheus_sample(parsed, "repro_m_total", k="x") == 4
        assert prometheus_sample(parsed, "repro_m_depth") == 6
        assert prometheus_sample(parsed, "repro_m_seconds_count", p="5") == 3
        assert prometheus_sample(parsed, "repro_m_seconds_bucket",
                                 p="5", le="0.5") == 1
        assert prometheus_sample(parsed, "repro_m_seconds_sum",
                                 p="5") == pytest.approx(3.1)

    def test_disjoint_series_union(self):
        first = MetricsRegistry()
        first.counter("repro_m_total", "", ("k",)).labels("a").inc()
        second = MetricsRegistry()
        second.counter("repro_m_total", "", ("k",)).labels("b").inc(2)
        merged = merge_registry_dicts([first.to_dict(), second.to_dict()])
        labels = {tuple(series["labels"]): series["value"]
                  for series in merged["repro_m_total"]["series"]}
        assert labels == {("a",): 1, ("b",): 2}

    def test_incompatible_snapshots_raise(self):
        first = MetricsRegistry()
        first.counter("repro_m_total", "")
        second = MetricsRegistry()
        second.gauge("repro_m_total", "")
        with pytest.raises(MetricsError):
            merge_registry_dicts([first.to_dict(), second.to_dict()])

    def test_snapshot_is_json_serializable(self):
        registry = _sample_registry([0.2])
        round_tripped = json.loads(json.dumps(registry.to_dict()))
        assert merge_registry_dicts([round_tripped]) \
            == merge_registry_dicts([registry.to_dict()])


# -- concurrency: threads and real processes -----------------------------------------

_STRESS_THREADS = 8
_STRESS_INCREMENTS = 2000


def _thread_stress(registry, barrier):
    counter = registry.counter("repro_s_total", "", ("worker",))
    histogram = registry.histogram("repro_s_seconds", "", buckets=(0.5,))
    gauge = registry.gauge("repro_s_gauge", "")
    barrier.wait(timeout=30)
    for index in range(_STRESS_INCREMENTS):
        counter.labels("shared").inc()
        histogram.observe(index % 2)  # alternates below/above the bound
        gauge.inc()


def _process_stress(observations, queue):
    """Subprocess body: observe into a fresh registry, ship the snapshot."""
    registry = MetricsRegistry()
    histogram = registry.histogram("repro_s_seconds", "", ("priority",),
                                   buckets=DEFAULT_LATENCY_BUCKETS)
    counter = registry.counter("repro_s_total", "")
    for value in observations:
        histogram.labels("0").observe(value)
        counter.inc()
    queue.put(registry.to_dict())


class TestConcurrency:
    def test_no_lost_increments_across_threads(self):
        """Satellite: N threads hammering one shared registry."""
        registry = MetricsRegistry()
        barrier = threading.Barrier(_STRESS_THREADS)
        with ThreadPoolExecutor(max_workers=_STRESS_THREADS) as pool:
            futures = [pool.submit(_thread_stress, registry, barrier)
                       for _ in range(_STRESS_THREADS)]
            for future in futures:
                future.result(timeout=60)
        expected = _STRESS_THREADS * _STRESS_INCREMENTS
        assert registry.counter("repro_s_total", "", ("worker",)) \
            .labels("shared").value == expected
        histogram = registry.histogram("repro_s_seconds", "", buckets=(0.5,))
        assert histogram.count == expected
        assert histogram.sum == expected / 2  # half the observations are 1.0
        assert registry.gauge("repro_s_gauge", "").value == expected

    def test_two_real_processes_merge_without_loss(self):
        """Satellite: registries built in two real processes merge at the
        coordinator with histogram count == sum of per-worker counts."""
        context = multiprocessing.get_context("spawn")
        queue = context.Queue()
        streams = [[0.0001 * index for index in range(150)],
                   [0.01 * index for index in range(75)]]
        processes = [context.Process(target=_process_stress,
                                     args=(stream, queue))
                     for stream in streams]
        for process in processes:
            process.start()
        snapshots = [queue.get(timeout=120) for _ in processes]
        for process in processes:
            process.join(timeout=120)
            assert process.exitcode == 0
        merged = merge_registry_dicts(snapshots)
        parsed = parse_prometheus_text(render_registry_dict(merged))
        total = sum(len(stream) for stream in streams)
        assert prometheus_sample(parsed, "repro_s_seconds_count",
                                 priority="0") == total
        assert prometheus_sample(parsed, "repro_s_total") == total
        expected_sum = sum(sum(stream) for stream in streams)
        assert prometheus_sample(parsed, "repro_s_seconds_sum",
                                 priority="0") == pytest.approx(expected_sum)


# -- session and cache wiring ---------------------------------------------------------

class TestSessionWiring:
    def test_cache_hits_and_misses_are_counted(self):
        session = fast_session()
        session.schedule("gemm:a")
        session.schedule("gemm:a")
        metric = session.metrics.counter(
            "repro_cache_requests_total", "", ("level", "outcome"))
        assert metric.labels("normalization", "miss").value == 1
        assert metric.labels("normalization", "hit").value == 1
        assert metric.labels("schedule", "miss").value == 1
        assert metric.labels("schedule", "hit").value == 1
        session.close()

    def test_metrics_agree_with_session_report(self):
        session = fast_session()
        session.schedule("gemm:a")
        session.schedule("gemm:b")  # normalized-equivalent: schedule hit
        report = session.report()
        metric = session.metrics.counter(
            "repro_cache_requests_total", "", ("level", "outcome"))
        assert metric.labels("schedule", "hit").value \
            == report.schedule_cache_hits
        assert metric.labels("normalization", "miss").value \
            == report.normalization_misses
        calls = session.metrics.counter("repro_session_calls_total", "",
                                        ("kind",))
        assert calls.labels("schedule").value == report.schedule_calls
        session.close()

    def test_per_pass_wall_time_flows_from_pass_results(self):
        session = fast_session()
        session.schedule(build_gemm(), {"NI": 16, "NJ": 16, "NK": 16})
        report = session.report()
        runs = session.metrics.counter("repro_pass_runs_total", "", ("pass",))
        wall = session.metrics.counter("repro_pass_wall_seconds_total", "",
                                       ("pass",))
        for name, entry in report.normalization_passes.items():
            assert runs.labels(name).value == entry["runs"], name
            assert wall.labels(name).value \
                == pytest.approx(entry["wall_time_s"]), name
        session.close()

    def test_injected_cache_registry_is_adopted(self):
        from repro.api import NormalizationCache

        cache = NormalizationCache()
        session = Session(cache=cache)
        assert session.metrics is cache.metrics
        session.close()
        cache.close()


# -- the end-to-end scrape ------------------------------------------------------------

class TestMetricsOverHttp:
    def test_scrape_reflects_cold_warm_coalesced_and_shed_traffic(self):
        """Satellite: drive every traffic class through the server and hold
        the ``/metrics`` scrape to the client-observed request mix."""
        session = fast_session()
        config = ServiceConfig(max_batch_size=1, batch_window_s=0.01,
                               max_queue_depth=1, retry_after_s=0.05)
        with ServingServer(session, config=config) as server:
            client = ServingClient(server.address)
            client.schedule("gemm:a", priority=1)          # cold
            client.schedule("gemm:a", priority=1)          # warm (cache hit)
            client.schedule("gemm:b", priority=3)          # warm equivalent

            # A coalescing burst: identical requests submitted concurrently.
            with ThreadPoolExecutor(max_workers=4) as pool:
                list(pool.map(lambda _: client.schedule("atax:a", priority=2),
                              range(4)))

            # Saturate the 1-deep queue with distinct cold programs until
            # the server sheds at least one request.
            def flood(index):
                try:
                    client.schedule("gemm:a",
                                    {"NI": 24 + index, "NJ": 24, "NK": 24},
                                    priority=9)
                    return 200
                except ServingError as error:
                    return error.status
            with ThreadPoolExecutor(max_workers=8) as pool:
                statuses = list(pool.map(flood, range(8)))
            served_p9 = statuses.count(200)
            shed = statuses.count(429)
            assert shed >= 1 and served_p9 + shed == 8

            parsed = parse_prometheus_text(client.metrics())
            report = client.report()

        # Per-priority end-to-end latency counts match what the client saw.
        latency = "repro_request_latency_seconds_count"
        assert prometheus_sample(parsed, latency, priority="1") == 2
        assert prometheus_sample(parsed, latency, priority="3") == 1
        assert prometheus_sample(parsed, latency, priority="2") == 4
        assert prometheus_sample(parsed, latency, priority="9") == served_p9

        # Admission counters match the shed 429s; the queue is drained.
        assert prometheus_sample(parsed, "repro_admission_shed_total",
                                 reason="queue-full") == shed
        assert prometheus_sample(parsed, "repro_service_rejected_total") \
            == shed
        assert prometheus_sample(parsed, "repro_service_queue_depth") == 0

        # /v1/report renders from the same registry: the two views agree.
        assert report["service"]["requests"] == prometheus_sample(
            parsed, "repro_service_requests_total")
        assert report["service"]["coalesced"] == prometheus_sample(
            parsed, "repro_service_coalesced_total")
        assert report["admission"]["rejected_queue_full"] == shed

        # Cache and pass instruments from the session appear in the scrape.
        assert prometheus_sample(parsed, "repro_cache_requests_total",
                                 level="schedule", outcome="hit") >= 2
        assert prometheus_sample(parsed, "repro_pass_runs_total",
                                 **{"pass": "stride-minimization"}) >= 1
        session.close()

    def test_report_keys_are_byte_compatible(self):
        """Acceptance: every pre-existing /v1/report key survives with the
        same names and integer-typed values."""
        session = fast_session()
        with ServingServer(session) as server:
            client = ServingClient(server.address)
            client.schedule("gemm:a")
            report = client.report()
        assert set(report["service"]) == {
            "requests", "coalesced", "batches", "scheduled", "fast_lane",
            "errors", "rejected", "largest_batch", "policy"}
        assert report["service"]["policy"] == "strict-priority"
        assert all(isinstance(value, int)
                   for key, value in report["service"].items()
                   if key != "policy")
        assert set(report["admission"]) == {
            "admitted", "rejected_queue_full", "rejected_client_limit"}
        assert all(isinstance(value, int)
                   for value in report["admission"].values())
        session.close()

    def test_fresh_service_over_a_reused_session_reports_zero(self):
        """Registry counters are cumulative (Prometheus semantics), but a
        fresh service's /v1/report still starts at zero: the stats views
        baseline themselves at construction."""
        session = fast_session()
        with ServingServer(session) as server:
            client = ServingClient(server.address)
            client.schedule("gemm:a")
            assert client.report()["service"]["requests"] == 1
        with ServingServer(session) as server:  # new server, same session
            report = ServingClient(server.address).report()
        assert report["service"]["requests"] == 0
        assert report["admission"]["admitted"] == 0
        cumulative = session.metrics.counter(
            "repro_service_requests_total", "")
        assert cumulative.value == 1  # the scrape view never resets
        session.close()

    def test_metrics_endpoint_can_be_disabled(self):
        session = fast_session()
        with ServingServer(session, expose_metrics=False) as server:
            client = ServingClient(server.address)
            with pytest.raises(ServingError) as caught:
                client.metrics()
            assert caught.value.status == 404
        session.close()

    def test_access_log_records_request_ids_and_outcomes(self, tmp_path):
        log_path = tmp_path / "access.jsonl"
        session = fast_session()
        with ServingServer(session, access_log=str(log_path)) as server:
            client = ServingClient(server.address)
            client.schedule("gemm:a", priority=2, client="logged")
            with pytest.raises(ServingError):
                client.schedule("not-a-workload")
        entries = [json.loads(line)
                   for line in log_path.read_text().splitlines()]
        assert len(entries) == 2
        ok, bad = entries
        assert ok["outcome"] == "ok" and ok["status"] == 200
        assert ok["priority"] == 2 and ok["client"] == "logged"
        assert ok["program"] == "gemm:a"
        assert ok["queue_wait_s"] >= 0 and ok["duration_s"] > 0
        assert bad["outcome"] == "invalid" and bad["status"] == 400
        assert ok["request_id"] != bad["request_id"]
        assert ok["request_id"].split("-")[0] \
            == bad["request_id"].split("-")[0]
        session.close()


# -- the worker pool ------------------------------------------------------------------

class TestPoolMetrics:
    def test_merged_coordinator_view_is_consistent_with_workers(self, tmp_path):
        """Acceptance: pool-backed end-to-end traffic; the merged registry
        equals the sum of the per-worker registries."""
        config = WorkerConfig(threads=4, search=FAST_SEARCH,
                              cache_path=str(tmp_path / "cache.sqlite"))
        session = fast_session()
        with WorkerPool(2, config) as pool:
            with ServingServer(session, pool=pool) as server:
                client = ServingClient(server.address)
                for name in ("gemm:a", "gemm:b", "atax:a", "mvt:a"):
                    client.schedule(name)
                gathered = pool.metrics()
                scrape = client.metrics(include_workers=True)

        assert gathered["num_workers"] == 2
        assert gathered["registries_collected"] == 2
        per_worker = list(gathered["per_worker"].values())
        merged = gathered["merged"]

        # Merged counters are exactly the per-worker sums, for every series
        # of every counter the workers reported.
        for name, entry in merged.items():
            if entry["type"] != "counter":
                continue
            for series in entry["series"]:
                expected = 0.0
                for snapshot in per_worker:
                    for candidate in snapshot.get(name, {}).get("series", []):
                        if candidate["labels"] == series["labels"]:
                            expected += candidate["value"]
                assert series["value"] == pytest.approx(expected), \
                    (name, series["labels"])

        # The worker sessions did real scheduling: their merged schedule
        # calls equal the traffic that was not coalesced away.
        calls = {tuple(series["labels"]): series["value"]
                 for series in merged["repro_session_calls_total"]["series"]}
        assert calls[("schedule",)] == 4

        # The ?workers=1 scrape contains the merged worker traffic on top
        # of the coordinator's serving instruments.
        parsed = parse_prometheus_text(scrape)
        assert prometheus_sample(parsed, "repro_session_calls_total",
                                 kind="schedule") >= 4
        assert prometheus_sample(parsed, "repro_request_latency_seconds_count",
                                 priority="5") == 4
        session.close()


# -- the response fast lane -----------------------------------------------------------

class TestFastLaneObservability:
    def test_fast_lane_and_full_path_views_agree(self, tmp_path):
        """Acceptance: /metrics, /v1/report, and the access log report the
        same fast-lane vs full-Session hit counts for the same traffic."""
        log_path = tmp_path / "access.jsonl"
        session = fast_session()
        with ServingServer(session, access_log=str(log_path)) as server:
            client = ServingClient(server.address)
            # 1st: cold schedule.  2nd: fully cache-served through the
            # session (stores the encoded response).  3rd and 4th: served
            # by the zero-parse fast lane.
            for _ in range(4):
                client.schedule("gemm:a")
            parsed = parse_prometheus_text(client.metrics())
            report = client.report()
            traces = client.traces()["traces"]
        entries = [json.loads(line)
                   for line in log_path.read_text().splitlines()]
        session.close()

        logged_fast = [entry for entry in entries if entry["fast_lane"]]
        logged_slow = [entry for entry in entries if not entry["fast_lane"]]
        assert len(entries) == 4
        assert len(logged_fast) == 2 and len(logged_slow) == 2

        # The service view and the scrape agree with the access log.
        assert report["service"]["fast_lane"] == 2
        assert report["service"]["requests"] == 4
        assert report["service"]["scheduled"] == 4
        assert prometheus_sample(parsed, "repro_service_fast_lane_total") == 2
        assert prometheus_sample(parsed, "repro_service_requests_total") == 4

        # The session's response-cache counters tell the same story: two
        # probes missed (cold + first warm repeat), two hit.
        assert report["response_cache_hits"] == 2
        assert report["response_cache_misses"] == 2
        assert prometheus_sample(parsed, "repro_cache_requests_total",
                                 level="response", outcome="hit") == 2
        assert prometheus_sample(parsed, "repro_cache_requests_total",
                                 level="response", outcome="miss") == 2

        # Every admitted request (fast lane included) is in the latency
        # distribution, and every fast-lane request has a trace in the ring
        # buffer — a single root span, against the slow path's full tree.
        assert prometheus_sample(parsed, "repro_request_latency_seconds_count",
                                 priority="5") == 4
        by_id = {record["trace_id"]: record for record in traces}
        for entry in logged_fast:
            record = by_id[entry["trace_id"]]
            assert record["span_count"] == 1
            assert record["attributes"]["fast_lane"] is True
        for entry in logged_slow:
            assert by_id[entry["trace_id"]]["span_count"] > 1

    def test_fast_lane_bytes_equal_slow_path_bytes(self):
        """The fast lane serves byte-identical JSON to the slow path (the
        tracer is disabled so responses carry no per-request trace ids)."""
        import urllib.request

        from repro.observability import Tracer

        session = fast_session(tracer=Tracer(enabled=False))
        with ServingServer(session) as server:
            body = json.dumps({"program": "gemm:a"}).encode("utf-8")

            def post():
                request = urllib.request.Request(
                    server.address + "/v1/schedule", data=body,
                    headers={"Content-Type": "application/json"})
                with urllib.request.urlopen(request) as response:
                    return response.read()

            post()                      # cold
            slow_bytes = post()         # fully cache-served, stores
            fast_bytes = post()         # fast lane
            report = ServingClient(server.address).report()
        session.close()
        assert report["service"]["fast_lane"] == 1
        assert fast_bytes == slow_bytes

"""Tests for embeddings, the tuning database, the evolutionary search, the
daisy scheduler, and the baseline schedulers."""

import pytest

from helpers import build_gemm, build_stencil, build_vector_add
from repro.normalization import normalize_program
from repro.perf import CostModel
from repro.scheduler import (ClangScheduler, DaceScheduler, DaisyConfig,
                             DaisyScheduler, EvolutionarySearch, IccScheduler,
                             MctsConfig, NumbaScheduler, NumpyScheduler,
                             PollyScheduler, SearchConfig, TiramisuScheduler,
                             TuningDatabase, embed_nest, embed_program,
                             nest_is_scop, retarget_recipe)
from repro.scheduler.embedding import EMBEDDING_SIZE
from repro.transforms import Recipe, Interchange, Parallelize
from repro.workloads.polybench import (build_gemm_a, build_gemm_b,
                                       build_jacobi2d_a, build_jacobi2d_b)

PARAMS = {"NI": 120, "NJ": 140, "NK": 160}
FAST_SEARCH = SearchConfig(population_size=4, epochs=1, generations_per_epoch=1)


class TestEmbeddings:
    def test_embedding_has_fixed_size(self, gemm_program, gemm_params):
        embedding = embed_nest(gemm_program.body[1], gemm_program.arrays, gemm_params)
        assert len(embedding.vector) == EMBEDDING_SIZE

    def test_normalized_variants_have_close_embeddings(self):
        params = {"NI": 64, "NJ": 64, "NK": 64}
        norm_a = normalize_program(build_gemm_a())
        norm_b = normalize_program(build_gemm_b())
        embeddings_a = embed_program(norm_a, params)
        embeddings_b = embed_program(norm_b, params)
        assert len(embeddings_a) == len(embeddings_b)
        for left, right in zip(embeddings_a, embeddings_b):
            assert left.distance(right) < 1e-6

    def test_different_kernels_have_distant_embeddings(self, gemm_params):
        gemm = normalize_program(build_gemm_a())
        stencil = normalize_program(build_jacobi2d_a())
        gemm_embedding = embed_program(gemm, gemm_params)[-1]
        stencil_embedding = embed_program(stencil, {"TSTEPS": 10, "N": 64})[0]
        assert gemm_embedding.distance(stencil_embedding) > 1.0


class TestDatabase:
    def test_add_and_query_nearest(self, gemm_program, gemm_params):
        database = TuningDatabase()
        embedding = embed_nest(gemm_program.body[1], gemm_program.arrays, gemm_params)
        recipe = Recipe("opt", [Parallelize(0)])
        database.add(embedding, recipe)
        match = database.best_match(embedding)
        assert match is not None and match.recipe.name == "opt"

    def test_distance_bound_rejects_far_matches(self, gemm_program, gemm_params):
        database = TuningDatabase()
        embedding = embed_nest(gemm_program.body[1], gemm_program.arrays, gemm_params)
        database.add(embedding, Recipe("opt"))
        stencil = normalize_program(build_jacobi2d_a())
        other = embed_program(stencil, {"TSTEPS": 10, "N": 64})[0]
        assert database.best_match(other, max_distance=0.5) is None

    def test_persistence_round_trip(self, tmp_path, gemm_program, gemm_params):
        database = TuningDatabase()
        embedding = embed_nest(gemm_program.body[1], gemm_program.arrays, gemm_params)
        database.add(embedding, Recipe("opt", [Interchange(0, ["i", "k", "j"])]))
        path = tmp_path / "db.json"
        database.save(str(path))
        restored = TuningDatabase.load(str(path))
        assert len(restored) == 1
        assert restored.entries[0].recipe.transformations[0].name == "interchange"

    def test_retarget_recipe(self):
        recipe = Recipe("opt", [Interchange(0, ["i", "k", "j"]), Parallelize(0)])
        moved = retarget_recipe(recipe, 3)
        assert all(t.params()["nest_index"] == 3 for t in moved)


class TestEvolutionarySearch:
    def test_search_does_not_worsen_runtime(self):
        program = normalize_program(build_gemm(with_scaling=False))
        model = CostModel(threads=4)
        search = EvolutionarySearch(model, FAST_SEARCH)
        baseline = model.estimate_seconds(program, PARAMS)
        outcome = search.search(program, 0, PARAMS)
        assert outcome.runtime <= baseline + 1e-12
        assert outcome.evaluated > 0

    def test_seed_recipes_considered(self):
        program = normalize_program(build_gemm(with_scaling=False))
        model = CostModel(threads=4)
        search = EvolutionarySearch(model, FAST_SEARCH)
        seed = Recipe("seed", [Parallelize(0)])
        outcome = search.search(program, 0, PARAMS, seed_recipes=[seed])
        assert outcome.runtime <= model.estimate_seconds(program, PARAMS)


class TestDaisy:
    def _daisy(self):
        return DaisyScheduler(config=DaisyConfig(threads=4, search=FAST_SEARCH))

    def test_ab_variants_get_equal_runtimes(self):
        daisy = self._daisy()
        daisy.tune(build_gemm_a(), PARAMS, label="gemm")
        runtime_a = daisy.estimate(build_gemm_a(), PARAMS)
        runtime_b = daisy.estimate(build_gemm_b(), PARAMS)
        assert runtime_b == pytest.approx(runtime_a, rel=0.15)

    def test_blas_idiom_used(self):
        daisy = self._daisy()
        result = daisy.tune(build_gemm_a(), PARAMS, label="gemm")
        assert any("blas" in (info.detail or "") for info in result.nests)
        assert result.program.library_calls()

    def test_database_populated_by_tuning(self):
        daisy = self._daisy()
        daisy.tune(build_gemm_a(), PARAMS, label="gemm")
        assert len(daisy.database) >= 1

    def test_schedule_without_database_still_runs(self):
        daisy = self._daisy()
        result = daisy.schedule(build_jacobi2d_a(), {"TSTEPS": 10, "N": 64})
        assert result.nests


class TestBaselines:
    def test_polly_optimizes_scop(self, gemm_program):
        assert nest_is_scop(gemm_program.body[1])
        polly = PollyScheduler(threads=4)
        result = polly.schedule(gemm_program, PARAMS)
        assert any(info.status == "optimized" for info in result.nests)

    def test_polly_is_sensitive_to_loop_order(self):
        polly = PollyScheduler(threads=4)
        fast = polly.estimate(build_gemm(order=("i", "k", "j"), with_scaling=False), PARAMS)
        slow = polly.estimate(build_gemm(order=("j", "k", "i"), with_scaling=False), PARAMS)
        assert slow >= fast

    def test_icc_parallelizes_clang_does_not(self, vector_add_program):
        icc_result = IccScheduler(threads=4).schedule(vector_add_program, {"N": 4096})
        clang_result = ClangScheduler(threads=4).schedule(vector_add_program, {"N": 4096})
        assert icc_result.program.body[0].parallel
        assert not clang_result.program.body[0].parallel

    def test_tiramisu_marks_unsupported(self):
        tiramisu = TiramisuScheduler(threads=4, config=MctsConfig(rollouts=4))
        stencil = build_stencil()
        result = tiramisu.schedule(stencil, {"T": 10, "N": 128})
        assert result.unsupported

    def test_tiramisu_handles_parallel_nest(self):
        tiramisu = TiramisuScheduler(threads=4, config=MctsConfig(rollouts=4))
        result = tiramisu.schedule(build_gemm(with_scaling=False), PARAMS)
        assert not result.unsupported

    def test_frameworks_schedule_npbench_programs(self):
        from repro.workloads.polybench import build_gemm_npbench
        program = build_gemm_npbench()
        for scheduler in (NumpyScheduler(), NumbaScheduler(threads=4),
                          DaceScheduler(threads=4)):
            runtime = scheduler.estimate(program, PARAMS)
            assert runtime > 0

    def test_dace_uses_library_nodes_on_clean_matmul(self):
        program = normalize_program(build_gemm_a())
        result = DaceScheduler(threads=4).schedule(program, PARAMS)
        assert result.program.library_calls()

    def test_numpy_charges_python_dispatch(self):
        from repro.workloads.polybench import build_syrk_npbench
        program = build_syrk_npbench()
        params = {"N": 60, "M": 50}
        numpy_runtime = NumpyScheduler().estimate(program, params)
        numba_runtime = NumbaScheduler(threads=1).estimate(program, params)
        assert numpy_runtime > numba_runtime

"""Tests for affine access extraction and dependence analysis."""

import pytest

from helpers import build_gemm, build_stencil, build_vector_add
from repro.analysis import (EQ, LT, computation_accesses, decompose_access,
                            dependences_between, legal_permutations,
                            loop_carried_dependences, nest_dependences,
                            permutation_is_legal, self_dependences)
from repro.analysis.affine import access_is_contiguous, decompose_index
from repro.ir import ProgramBuilder, access
from repro.ir.symbols import Sym


class TestAffineDecomposition:
    def test_coefficients_extracted(self):
        acc = decompose_access(access("A", Sym("i") * 2 + 1, Sym("j")), ["i", "j"], False)
        assert acc.affine
        assert acc.indices[0].coefficient("i") == 2
        assert acc.indices[0].constant == 1
        assert acc.indices[1].coefficient("j") == 1

    def test_parameter_offsets_separate(self):
        index = decompose_index(Sym("N") - Sym("i") - 1, ["i"])
        assert index.coefficient("i") == -1
        assert dict(index.offset_coefficients) == {"N": 1}

    def test_non_affine_flagged(self):
        acc = decompose_access(access("A", Sym("i") * Sym("j")), ["i", "j"], False)
        assert not acc.affine

    def test_computation_accesses_order(self, gemm_program):
        comp = list(gemm_program.iter_computations())[1]
        accesses = computation_accesses(comp, ["i", "j", "k"])
        assert accesses[-1].is_write
        assert accesses[-1].array == "C"

    def test_contiguity(self):
        acc = decompose_access(access("A", Sym("i"), Sym("j")), ["i", "j"], False)
        assert access_is_contiguous(acc, "j", (100, 1))
        assert not access_is_contiguous(acc, "i", (100, 1))


class TestDependenceTesting:
    def test_independent_computations(self):
        b = ProgramBuilder("p", parameters=["N"])
        b.add_array("x", ("N",))
        b.add_array("y", ("N",))
        b.add_array("z", ("N",))
        with b.loop("i", 0, "N"):
            first = b.assign(("x", "i"), b.read("z", "i"))
            second = b.assign(("y", "i"), b.read("z", "i") * 2)
        deps = dependences_between(first, second, ["i"])
        assert deps == []

    def test_flow_dependence_same_iteration(self):
        b = ProgramBuilder("p", parameters=["N"])
        b.add_array("x", ("N",))
        b.add_array("y", ("N",))
        with b.loop("i", 0, "N"):
            first = b.assign(("x", "i"), 1.0)
            second = b.assign(("y", "i"), b.read("x", "i"))
        deps = dependences_between(first, second, ["i"])
        assert len(deps) == 1
        assert deps[0].kind == "flow"
        assert deps[0].loop_independent

    def test_carried_dependence_distance_one(self):
        b = ProgramBuilder("p", parameters=["N"])
        b.add_array("x", ("N",))
        with b.loop("i", 1, "N"):
            comp = b.assign(("x", "i"), b.read("x", Sym("i") - 1) + 1.0)
        deps = self_dependences(comp, ["i"])
        assert deps
        assert any(dep.directions == (LT,) and dep.distance == (1,) for dep in deps)

    def test_strong_siv_disproves_dependence(self):
        b = ProgramBuilder("p", parameters=["N"])
        b.add_array("x", ("N",))
        with b.loop("i", 0, "N"):
            first = b.assign(("x", Sym("i") * 2), 1.0)
            second = b.assign(("x", Sym("i") * 2), 2.0)
        # Same subscript: output dependence at distance 0 exists.
        deps = dependences_between(first, second, ["i"])
        assert any(dep.kind == "output" for dep in deps)

    def test_gcd_test_disproves(self):
        b = ProgramBuilder("p", parameters=["N"])
        b.add_array("x", ("N",))
        b.add_array("y", ("N",))
        with b.loop("i", 0, "N"):
            even = b.assign(("x", Sym("i") * 2), 1.0)
            odd = b.assign(("y", "i"), b.read("x", Sym("i") * 2 + 1))
        deps = dependences_between(even, odd, ["i"])
        assert deps == []

    def test_loop_carried_on_reduction(self, gemm_program):
        inner_k = gemm_program.body[1].body[0].body[0]
        carried = loop_carried_dependences(inner_k)
        assert carried  # C[i][j] accumulation carried by k


class TestPermutationLegality:
    def test_gemm_fully_permutable(self, gemm_program):
        nest = gemm_program.body[1]
        assert permutation_is_legal(nest, ["i", "k", "j"])
        assert permutation_is_legal(nest, ["k", "j", "i"])
        assert len(legal_permutations(nest)) == 6

    def test_stencil_time_loop_not_interchangeable(self, stencil_program):
        nest = stencil_program.body[0]
        # The band is only the time loop (its body has two inner loops), so
        # check an explicitly constructed two-level case instead.
        b = ProgramBuilder("p", parameters=["T", "N"])
        b.add_array("A", ("T", "N"))
        with b.loop("t", 1, "T"):
            with b.loop("i", 1, b.sym("N") - 1):
                b.assign(("A", "t", "i"),
                         b.read("A", b.sym("t") - 1, b.sym("i") - 1)
                         + b.read("A", b.sym("t") - 1, b.sym("i") + 1))
        nest = b.finish().body[0]
        assert permutation_is_legal(nest, ["t", "i"])
        # Interchanging a wavefront-style dependence (t-1, i+1) is illegal.
        assert not permutation_is_legal(nest, ["i", "t"])

    def test_permutation_mismatch_raises(self, gemm_program):
        with pytest.raises(ValueError):
            permutation_is_legal(gemm_program.body[1], ["i", "j"])

    def test_nest_dependences_cover_reduction(self, gemm_program):
        deps = nest_dependences(gemm_program.body[1])
        assert any(dep.array == "C" for dep in deps)

"""Tests for the repro.api plugin registries."""

import pytest

from repro.api import (FRONTENDS, SCHEDULERS, Registry, RegistryError,
                       Scheduler, Session, create_scheduler,
                       register_scheduler, scheduler_normalizes,
                       scheduler_tunes)


class TestBuiltins:
    def test_all_shipped_schedulers_registered(self):
        for name in ("daisy", "evolutionary", "polly", "clang", "icc",
                     "tiramisu", "numpy", "numba", "dace"):
            assert name in SCHEDULERS

    def test_clike_frontend_registered(self):
        assert "clike" in FRONTENDS

    def test_create_scheduler_builds_instances(self):
        for name in SCHEDULERS.names():
            instance = create_scheduler(name, threads=2)
            assert isinstance(instance, Scheduler)

    def test_normalizing_metadata(self):
        assert scheduler_normalizes("daisy")
        assert scheduler_normalizes("evolutionary")
        assert not scheduler_normalizes("polly")
        assert not scheduler_normalizes("clang")

    def test_tuning_metadata(self):
        assert scheduler_tunes("daisy")
        assert not scheduler_tunes("icc")


class TestRegistryBehavior:
    def test_unknown_lookup_raises_with_known_names(self):
        registry = Registry("widget")
        with pytest.raises(RegistryError, match="unknown widget 'nope'"):
            registry.get("nope")

    def test_duplicate_registration_rejected(self):
        registry = Registry("widget")
        registry.register("w")(lambda: 1)
        with pytest.raises(RegistryError, match="already registered"):
            registry.register("w")(lambda: 2)

    def test_overwrite_allows_replacement(self):
        registry = Registry("widget")
        registry.register("w")(lambda: 1)
        registry.register("w", overwrite=True)(lambda: 2)
        assert registry.create("w") == 2

    def test_decorator_preserves_factory(self):
        registry = Registry("widget")

        @registry.register("w", flavor="sweet")
        def make():
            return "widget"

        assert make() == "widget"
        assert registry.metadata("w") == {"flavor": "sweet"}

    def test_unregister(self):
        registry = Registry("widget")
        registry.register("w")(lambda: 1)
        registry.unregister("w")
        assert "w" not in registry
        with pytest.raises(RegistryError):
            registry.unregister("w")


class TestCustomScheduler:
    def test_registered_scheduler_usable_through_session(self, gemm_params):
        from repro.scheduler.base import ScheduleResult

        class IdentityScheduler(Scheduler):
            name = "identity-test"

            def schedule(self, program, parameters):
                return ScheduleResult(scheduler=self.name, program=program.copy())

        @register_scheduler("identity-test", normalizes=False)
        def _make_identity(machine=None, threads=1, **_ignored):
            return IdentityScheduler(machine, threads)

        try:
            session = Session()
            from helpers import build_gemm
            response = session.schedule(build_gemm(), gemm_params,
                                        scheduler="identity-test")
            assert response.scheduler == "identity-test"
            assert response.runtime_s > 0
        finally:
            SCHEDULERS.unregister("identity-test")

    def test_session_rejects_unknown_default_scheduler(self):
        with pytest.raises(RegistryError):
            Session(scheduler="not-a-scheduler")

    def test_schedule_with_unknown_scheduler_raises(self, gemm_params):
        from helpers import build_gemm

        session = Session()
        with pytest.raises(RegistryError):
            session.schedule(build_gemm(), gemm_params, scheduler="bogus")

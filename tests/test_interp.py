"""Tests for the reference interpreter."""

import numpy as np
import pytest

from helpers import build_gemm, build_vector_add
from repro.interp import (ExecutionError, allocate_storage,
                          programs_equivalent, run_program)
from repro.ir import ProgramBuilder
from repro.ir.symbols import Sym


class TestExecution:
    def test_vector_add_matches_numpy(self, rng):
        program = build_vector_add()
        x = rng.uniform(size=8)
        y = rng.uniform(size=8)
        result = run_program(program, {"N": 8}, {"x": x, "y": y})
        assert np.allclose(result["z"], x + y)

    def test_gemm_matches_numpy(self, rng):
        program = build_gemm(with_scaling=False)
        params = {"NI": 5, "NJ": 6, "NK": 7}
        a = rng.uniform(size=(5, 7))
        b = rng.uniform(size=(7, 6))
        c = rng.uniform(size=(5, 6))
        result = run_program(program, params,
                             {"A": a, "B": b, "C": c, "alpha": np.array(2.0),
                              "beta": np.array(1.0)})
        assert np.allclose(result["C"], c + 2.0 * (a @ b))

    def test_intrinsics(self):
        b = ProgramBuilder("p", parameters=["N"])
        b.add_array("x", ("N",))
        b.add_array("y", ("N",))
        with b.loop("i", 0, "N"):
            b.assign(("y", "i"), b.call("sqrt", b.read("x", "i"))
                     + b.call("fmax", b.read("x", "i"), 2.0))
        result = run_program(b.finish(), {"N": 3}, {"x": np.array([1.0, 4.0, 9.0])})
        # sqrt(x) + max(x, 2): 1+2, 2+4, 3+9
        assert np.allclose(result["y"], [3.0, 6.0, 12.0])

    def test_strided_and_offset_loops(self):
        b = ProgramBuilder("p", parameters=["N"])
        b.add_array("x", ("N",))
        with b.loop("i", 1, "N", 2):
            b.assign(("x", "i"), 1.0)
        result = run_program(b.finish(), {"N": 6}, {"x": np.zeros(6)})
        assert np.allclose(result["x"], [0, 1, 0, 1, 0, 1])

    def test_scalar_containers(self):
        b = ProgramBuilder("p", parameters=["N"])
        b.add_array("x", ("N",))
        b.add_scalar("s", transient=True)
        b.add_array("out", ("N",))
        with b.loop("i", 0, "N"):
            b.assign(("s",), b.read("x", "i") * 2)
            b.assign(("out", "i"), b.read("s") + 1)
        result = run_program(b.finish(), {"N": 4}, {"x": np.arange(4.0)})
        assert np.allclose(result["out"], np.arange(4.0) * 2 + 1)

    def test_unknown_intrinsic_raises(self):
        b = ProgramBuilder("p", parameters=["N"])
        b.add_array("x", ("N",))
        with b.loop("i", 0, "N"):
            b.assign(("x", "i"), b.call("frobnicate", 1.0))
        with pytest.raises(ExecutionError):
            run_program(b.finish(), {"N": 2})

    def test_negative_step_rejected(self):
        b = ProgramBuilder("p", parameters=["N"])
        b.add_array("x", ("N",))
        with b.loop("i", 0, "N", -1):
            b.assign(("x", "i"), 1.0)
        with pytest.raises(ExecutionError):
            run_program(b.finish(), {"N": 4})


class TestStorageAndEquivalence:
    def test_allocate_storage_shapes(self, gemm_program):
        storage = allocate_storage(gemm_program, {"NI": 3, "NJ": 4, "NK": 5})
        assert storage["C"].shape == (3, 4)
        assert storage["alpha"].shape == ()

    def test_allocate_storage_reproducible(self, gemm_program):
        params = {"NI": 3, "NJ": 4, "NK": 5}
        first = allocate_storage(gemm_program, params, seed=3)
        second = allocate_storage(gemm_program, params, seed=3)
        assert np.array_equal(first["A"], second["A"])

    def test_programs_equivalent_positive(self):
        assert programs_equivalent(build_vector_add(), build_vector_add(), {"N": 8})

    def test_programs_equivalent_negative(self):
        left = build_vector_add()
        b = ProgramBuilder("vecsub", parameters=["N"])
        b.add_array("x", ("N",))
        b.add_array("y", ("N",))
        b.add_array("z", ("N",))
        with b.loop("i", 0, "N"):
            b.assign(("z", "i"), b.read("x", "i") - b.read("y", "i"))
        assert not programs_equivalent(left, b.finish(), {"N": 8})


class TestTypedErrors:
    def _oob_program(self):
        b = ProgramBuilder("oob", parameters=["N"])
        b.add_array("x", ("N",))
        with b.loop("i", 0, "N"):
            b.assign(("x", "i"), b.read("x", Sym("i") + 1))
        return b.finish()

    def test_out_of_bounds_read(self):
        from repro.interp import OutOfBoundsError

        with pytest.raises(OutOfBoundsError) as excinfo:
            run_program(self._oob_program(), {"N": 3})
        error = excinfo.value
        assert isinstance(error, ExecutionError)
        assert error.array == "x"
        assert error.access == "read"
        assert error.indices == (3,)
        assert error.shape == (3,)

    def test_out_of_bounds_write(self):
        from repro.interp import OutOfBoundsError

        b = ProgramBuilder("oobw", parameters=["N"])
        b.add_array("x", ("N",))
        with b.loop("i", 0, "N"):
            b.assign(("x", Sym("i") + 1), 1.0)
        with pytest.raises(OutOfBoundsError) as excinfo:
            run_program(b.finish(), {"N": 2})
        assert excinfo.value.access == "write"

    def test_negative_index_rejected(self):
        # NumPy would silently wrap x[-1]; the interpreter must not.
        from repro.interp import OutOfBoundsError

        b = ProgramBuilder("neg", parameters=["N"])
        b.add_array("x", ("N",))
        with b.loop("i", 0, "N"):
            b.assign(("x", "i"), b.read("x", Sym("i") - 1))
        with pytest.raises(OutOfBoundsError) as excinfo:
            run_program(b.finish(), {"N": 3})
        assert excinfo.value.indices == (-1,)

    def test_error_carries_statement_and_iterators(self):
        with pytest.raises(ExecutionError) as excinfo:
            run_program(self._oob_program(), {"N": 3})
        error = excinfo.value
        assert error.statement is not None
        assert error.iterators == {"i": 2}
        text = str(error)
        assert error.statement in text and "i=2" in text

    def test_uninitialized_read_detected(self):
        from repro.interp import UninitializedReadError

        b = ProgramBuilder("uninit", parameters=["N"])
        b.add_array("x", ("N",))
        b.add_scalar("t", transient=True)
        with b.loop("i", 0, "N"):
            b.assign(("x", "i"), b.read("t"))
        with pytest.raises(UninitializedReadError) as excinfo:
            run_program(b.finish(), {"N": 2}, check_uninitialized=True)
        assert excinfo.value.array == "t"

    def test_uninitialized_check_off_by_default(self):
        b = ProgramBuilder("uninit_ok", parameters=["N"])
        b.add_array("x", ("N",))
        b.add_scalar("t", transient=True)
        with b.loop("i", 0, "N"):
            b.assign(("x", "i"), b.read("t"))
        run_program(b.finish(), {"N": 2})  # transients are zero-filled

    def test_write_before_read_passes_check(self):
        b = ProgramBuilder("init_ok", parameters=["N"])
        b.add_array("x", ("N",))
        b.add_scalar("t", transient=True)
        b.assign(("t",), 2.0)
        with b.loop("i", 0, "N"):
            b.assign(("x", "i"), b.read("t"))
        run_program(b.finish(), {"N": 2}, check_uninitialized=True)

    def test_select_intrinsic(self):
        b = ProgramBuilder("sel", parameters=["N"])
        b.add_array("x", ("N",))
        with b.loop("i", 0, "N"):
            b.assign(("x", "i"), b.call("select", "i", 1.0, -1.0))
        result = run_program(b.finish(), {"N": 3})
        assert list(result["x"]) == [-1.0, 1.0, 1.0]

"""Property tests for memoized content hashes and interned IR.

``program_content_hash`` joins canonical JSON fragments memoized on the IR
nodes; ``program_content_hash_reference`` is the original implementation,
kept as the executable specification.  These tests fuzz the one invariant
everything above the IR relies on: the memoized digest equals a
from-scratch recomputation — on freshly built programs, and again after
every registered normalization pipeline has mutated them in place (the
mutation seams must have invalidated exactly the right fragments).
"""

import json

import pytest

from repro.api.hashing import (canonical_program_dict, program_content_hash,
                               program_content_hash_reference)
from repro.fuzz import generate_program
from repro.ir.canonical import canonical_program_json
from repro.passes import get_pipeline, pipeline_names

#: 100 deterministic fuzz programs (the satellite bar for this property).
SEEDS = range(100)


def assert_digest_fresh(program, context: str) -> None:
    """The memoized views agree with a from-scratch recomputation."""
    assert canonical_program_json(program) == json.dumps(
        canonical_program_dict(program), sort_keys=True), context
    assert program_content_hash(program) == \
        program_content_hash_reference(program), context
    # ``extra`` exercises the second key-ordering branch of the fast path.
    assert program_content_hash(program, extra={"threads": 4}) == \
        program_content_hash_reference(program, extra={"threads": 4}), context


def test_fuzz_programs_hash_identically():
    """Freshly generated programs: memoized digest == reference digest."""
    for seed in SEEDS:
        program = generate_program(seed).program
        assert_digest_fresh(program, f"seed {seed}")
        # A second hash must come from the memo and still agree.
        assert program_content_hash(program) == \
            program_content_hash_reference(program), f"seed {seed} (repeat)"


@pytest.mark.parametrize("pipeline_name", pipeline_names())
def test_digests_stay_fresh_after_pipeline_mutation(pipeline_name):
    """Every registered pipeline mutates programs in place; the mutation
    seams must invalidate the memoized fragments so the cached digest never
    goes stale."""
    for seed in SEEDS:
        program = generate_program(seed).program
        before = program_content_hash(program)  # prime the memos
        pipeline = get_pipeline(pipeline_name)
        pipeline.run(program)
        context = f"pipeline {pipeline_name!r}, seed {seed}"
        assert_digest_fresh(program, context)
        after = program_content_hash(program)
        # Sanity on the direction of the test: when the pipeline changed
        # the program, the memoized digest must have moved with it.
        changed = canonical_program_dict(program) != \
            canonical_program_dict(generate_program(seed).program)
        assert (after != before) == changed, context


def test_interned_subtrees_share_digest_memos():
    """Two identical fuzz programs hash equal and stay independent."""
    for seed in (0, 7, 42):
        first = generate_program(seed).program
        second = generate_program(seed).program
        assert first is not second
        assert program_content_hash(first) == program_content_hash(second)
        pipeline = get_pipeline(pipeline_names()[0])
        pipeline.run(first)
        # Mutating one copy never leaks into the other's digest.
        assert program_content_hash(second) == \
            program_content_hash_reference(second), f"seed {seed}"

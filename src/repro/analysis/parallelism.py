"""Parallel-loop detection.

A loop is (DOALL-)parallel when it carries no dependence: no two distinct
iterations of the loop access the same memory location with at least one
write.  Reductions (a read-modify-write of an element that is invariant in
the loop) are detected separately because they can still be parallelized
with atomic updates or privatization — at a cost the performance model
charges for (the paper observes exactly this on correlation/covariance,
Section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from ..ir.nodes import Computation, LibraryCall, Loop, Node
from .affine import decompose_access
from .dependence import Dependence, loop_carried_dependences


@dataclass(frozen=True)
class ParallelismInfo:
    """Parallelism classification of a single loop."""

    iterator: str
    is_parallel: bool
    is_reduction: bool
    carried: Tuple[Dependence, ...]
    #: True when the loop is parallel only after privatizing per-iteration
    #: scalar temporaries (OpenMP ``private`` / SIMD scalar expansion).
    requires_privatization: bool = False


def _reduction_arrays(loop: Loop) -> Set[str]:
    """Containers updated as ``X[..] = X[..] op expr`` with the subscript
    invariant in ``loop.iterator``."""
    reductions: Set[str] = set()

    def recurse(node: Node, iterators: List[str]) -> None:
        if isinstance(node, Loop):
            for child in node.body:
                recurse(child, iterators + [node.iterator])
        elif isinstance(node, Computation):
            if not node.is_reduction():
                return
            target = decompose_access(node.target, iterators + [loop.iterator], True)
            if target.affine and not target.uses_iterator(loop.iterator):
                reductions.add(node.target.array)

    for child in loop.body:
        recurse(child, [loop.iterator])
    return reductions


def analyze_loop_parallelism(loop: Loop,
                             arrays: Optional[dict] = None) -> ParallelismInfo:
    """Classify a single loop as parallel, reduction, or sequential.

    Dependences carried only through per-iteration scalar temporaries do not
    prevent parallel execution: compilers privatize such scalars (OpenMP
    ``private`` clauses, SIMD scalar expansion).  When ``arrays`` (the
    program's container table) is provided, scalars marked ``transient`` are
    treated as privatizable; without the table, any rank-0 access pattern
    (empty subscript list) is.

    Tile loops (created by :class:`repro.transforms.tiling.Tile`) partition
    the iteration space of their original loop, so their parallelism is that
    of the corresponding point loop; the subscripts reference the point
    iterator, which plain dependence testing over the tile iterator cannot
    see.
    """
    if loop.tile_of is not None and loop.iterator != loop.tile_of:
        for candidate in loop.iter_loops():
            if candidate is loop:
                continue
            if candidate.iterator == loop.tile_of:
                inner = analyze_loop_parallelism(candidate, arrays)
                return ParallelismInfo(loop.iterator, inner.is_parallel,
                                       inner.is_reduction, inner.carried,
                                       inner.requires_privatization)
    carried = loop_carried_dependences(loop)
    if not carried:
        return ParallelismInfo(loop.iterator, True, False, ())

    privatizable = _privatizable_scalars(loop, arrays)
    remaining = [dep for dep in carried if dep.array not in privatizable]
    if not remaining:
        return ParallelismInfo(loop.iterator, True, False, tuple(carried),
                               requires_privatization=True)

    reduction_targets = _reduction_arrays(loop)
    non_reduction = [dep for dep in remaining if dep.array not in reduction_targets]
    if not non_reduction and reduction_targets:
        return ParallelismInfo(loop.iterator, False, True, tuple(carried))
    return ParallelismInfo(loop.iterator, False, False, tuple(carried))


def _privatizable_scalars(loop: Loop, arrays: Optional[dict]) -> Set[str]:
    """Temporaries that can be privatized per iteration of ``loop``.

    A container qualifies when, inside one iteration of the loop, it is
    written before it is read (in statement order), and it does not carry a
    value into later iterations or out of the loop:

    * scalars (empty subscripts) always qualify structurally,
    * higher-rank containers qualify only when declared ``transient`` and the
      container table ``arrays`` is available — these are the scratch arrays
      produced by scalar expansion, which each iteration of an outer parallel
      loop (e.g. the CLOUDSC block loop) fully rewrites before reading.
    """
    candidates: Set[str] = set()
    order: List[Tuple[str, bool]] = []

    def recurse(node: Node) -> None:
        if isinstance(node, Loop):
            for child in node.body:
                recurse(child)
        elif isinstance(node, Computation):
            for acc in node.reads():
                order.append((acc.array, False, len(acc.indices)))
            order.append((node.target.array, True, len(node.target.indices)))

    for child in loop.body:
        recurse(child)

    seen_write: Set[str] = set()
    disqualified: Set[str] = set()
    for name, is_write, rank in order:
        declared = arrays.get(name) if arrays is not None else None
        is_transient = bool(getattr(declared, "transient", False))
        if rank == 0:
            if arrays is not None and not is_transient:
                disqualified.add(name)
                continue
        else:
            if not is_transient:
                disqualified.add(name)
                continue
        if is_write:
            seen_write.add(name)
            candidates.add(name)
        elif name not in seen_write:
            disqualified.add(name)
    return candidates - disqualified


def parallel_loops(nest: Loop) -> List[str]:
    """Iterators of all parallel loops in the nest (pre-order)."""
    result = []
    for loop in nest.iter_loops():
        if analyze_loop_parallelism(loop).is_parallel:
            result.append(loop.iterator)
    return result


def outermost_parallel_loop(nest: Loop) -> Optional[Loop]:
    """The outermost parallel loop of the nest, if any."""
    for loop in nest.iter_loops():
        if analyze_loop_parallelism(loop).is_parallel:
            return loop
    return None


def is_fully_parallel_band(nest: Loop) -> bool:
    """True if every loop of the perfectly nested band is parallel."""
    for loop in nest.perfectly_nested_band():
        if not analyze_loop_parallelism(loop).is_parallel:
            return False
    return True

"""Affine access-function extraction.

Most of the analyses in this library (dependence testing, stride cost,
parallelism detection) operate on *affine access functions*: each array
subscript is decomposed into ``sum(coeff_k * iterator_k) + offset`` where the
offset may still involve size parameters but not iterators.

Accesses that are not affine in the surrounding iterators are marked as such
and treated conservatively by all downstream analyses, mirroring the paper's
observation that loop nests that cannot be lifted to the symbolic
representation are simply left unoptimized (Section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..ir.nodes import ArrayAccess, Computation, Loop
from ..ir.symbols import Expr


@dataclass(frozen=True)
class AffineIndex:
    """One subscript decomposed over the surrounding loop iterators.

    Attributes:
        coefficients: Iterator name -> integer coefficient.  Iterators not in
            the mapping have coefficient zero.
        offset_coefficients: Parameter name -> coefficient, for parts of the
            subscript that depend on size parameters (e.g. ``N - 1``).
        constant: The constant part of the subscript.
        affine: False when the subscript could not be decomposed; in that case
            the other fields are meaningless.
    """

    coefficients: Tuple[Tuple[str, float], ...]
    offset_coefficients: Tuple[Tuple[str, float], ...]
    constant: float
    affine: bool = True

    def coefficient(self, iterator: str) -> float:
        for name, coeff in self.coefficients:
            if name == iterator:
                return coeff
        return 0.0

    def iterator_names(self) -> Tuple[str, ...]:
        return tuple(name for name, coeff in self.coefficients if coeff != 0)

    @property
    def is_constant(self) -> bool:
        return self.affine and not self.coefficients and not self.offset_coefficients

    @staticmethod
    def non_affine() -> "AffineIndex":
        return AffineIndex((), (), 0.0, affine=False)


@dataclass(frozen=True)
class AffineAccess:
    """An array access with all subscripts decomposed affinely."""

    array: str
    indices: Tuple[AffineIndex, ...]
    is_write: bool

    @property
    def affine(self) -> bool:
        return all(index.affine for index in self.indices)

    def coefficient_matrix(self, iterators: Sequence[str]) -> List[List[float]]:
        """Rectangular matrix of subscript coefficients over ``iterators``."""
        return [[index.coefficient(it) for it in iterators] for index in self.indices]

    def uses_iterator(self, iterator: str) -> bool:
        return any(index.coefficient(iterator) != 0 for index in self.indices)


def decompose_index(expr: Expr, iterators: Sequence[str]) -> AffineIndex:
    """Decompose one subscript expression over the given iterators."""
    affine_form = expr.as_affine()
    if affine_form is None:
        return AffineIndex.non_affine()
    coeffs, constant = affine_form
    iterator_set = set(iterators)
    iterator_coeffs = tuple(sorted(
        (name, float(coeff)) for name, coeff in coeffs.items() if name in iterator_set))
    parameter_coeffs = tuple(sorted(
        (name, float(coeff)) for name, coeff in coeffs.items() if name not in iterator_set))
    return AffineIndex(iterator_coeffs, parameter_coeffs, float(constant))


def decompose_access(access: ArrayAccess, iterators: Sequence[str],
                     is_write: bool) -> AffineAccess:
    """Decompose every subscript of ``access``."""
    indices = tuple(decompose_index(index, iterators) for index in access.indices)
    return AffineAccess(access.array, indices, is_write)


def computation_accesses(comp: Computation,
                         iterators: Sequence[str]) -> List[AffineAccess]:
    """All accesses of a computation decomposed over ``iterators``.

    The write is listed last so that analyses that care about order (for
    instance read-after-write within a statement) can rely on it.
    """
    accesses = [decompose_access(acc, iterators, is_write=False)
                for acc in comp.reads()]
    accesses.append(decompose_access(comp.target, iterators, is_write=True))
    return accesses


def loop_nest_accesses(loop: Loop) -> List[Tuple[Computation, List[AffineAccess]]]:
    """Accesses of every computation in a loop nest.

    Each computation is decomposed over the iterators that actually enclose
    it (the in-order iterator list of the nest restricted to its ancestors).
    """
    result: List[Tuple[Computation, List[AffineAccess]]] = []

    def recurse(node, enclosing: List[str]) -> None:
        if isinstance(node, Loop):
            inner = enclosing + [node.iterator]
            for child in node.body:
                recurse(child, inner)
        elif isinstance(node, Computation):
            result.append((node, computation_accesses(node, enclosing)))

    recurse(loop, [])
    return result


def access_is_contiguous(access: AffineAccess, innermost: str,
                         strides: Sequence[float]) -> bool:
    """True if advancing ``innermost`` by one moves the address by one element.

    ``strides`` are the row-major element strides of the array's dimensions.
    """
    if not access.affine or len(strides) != len(access.indices):
        return False
    movement = 0.0
    for index, stride in zip(access.indices, strides):
        movement += index.coefficient(innermost) * stride
    return movement == 1.0

"""Dataflow (producer/consumer) analysis between top-level loop nests.

After maximal loop fission a program is a *sequence* of atomic loop nests.
The dataflow graph over that sequence — which nest produces data consumed by
which later nest — drives the producer-consumer fusion used in the CLOUDSC
case study (Section 5.1) and the SDFG-style reasoning of Section 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

import networkx as nx

from ..ir.nodes import Computation, LibraryCall, Loop, Node, Program


@dataclass(frozen=True)
class DataflowEdge:
    """An edge of the dataflow graph: producer index -> consumer index."""

    producer: int
    consumer: int
    arrays: FrozenSet[str]
    kind: str  # "flow", "anti" or "output"


def node_reads_writes(node: Node) -> Tuple[Set[str], Set[str]]:
    """Containers read and written (possibly partially) by a subtree."""
    reads: Set[str] = set()
    writes: Set[str] = set()

    def recurse(current: Node) -> None:
        if isinstance(current, Loop):
            for child in current.body:
                recurse(child)
        elif isinstance(current, Computation):
            for acc in current.reads():
                reads.add(acc.array)
            writes.add(current.target.array)
        elif isinstance(current, LibraryCall):
            reads.update(current.inputs)
            writes.update(current.outputs)

    recurse(node)
    return reads, writes


def build_dataflow_graph(nodes: List[Node]) -> nx.DiGraph:
    """Build the dataflow graph over an ordered sequence of nodes.

    Graph nodes are the indices of ``nodes``; edges carry ``arrays`` (the
    containers that induce the edge) and ``kind``.
    """
    graph = nx.DiGraph()
    summaries = [node_reads_writes(node) for node in nodes]
    for index, node in enumerate(nodes):
        reads, writes = summaries[index]
        graph.add_node(index, node=node, reads=frozenset(reads), writes=frozenset(writes))

    for i in range(len(nodes)):
        reads_i, writes_i = summaries[i]
        for j in range(i + 1, len(nodes)):
            reads_j, writes_j = summaries[j]
            flow = writes_i & reads_j
            anti = reads_i & writes_j
            output = writes_i & writes_j
            if flow:
                _add_edge(graph, i, j, flow, "flow")
            if anti:
                _add_edge(graph, i, j, anti, "anti")
            if output:
                _add_edge(graph, i, j, output, "output")
    return graph


def _add_edge(graph: nx.DiGraph, src: int, dst: int, arrays: Set[str], kind: str) -> None:
    if graph.has_edge(src, dst):
        data = graph[src][dst]
        data["arrays"] = frozenset(data["arrays"] | arrays)
        data["kinds"] = frozenset(data["kinds"] | {kind})
    else:
        graph.add_edge(src, dst, arrays=frozenset(arrays), kinds=frozenset({kind}))


def program_dataflow(program: Program) -> nx.DiGraph:
    """Dataflow graph over the program's top-level nodes."""
    return build_dataflow_graph(list(program.body))


def producer_consumer_pairs(program: Program) -> List[Tuple[int, int, FrozenSet[str]]]:
    """One-to-one producer/consumer pairs among top-level nodes.

    A pair ``(p, c)`` qualifies when node ``p`` is the *only* producer of the
    containers that node ``c`` reads from ``p``, and ``c`` is the *only*
    consumer of those containers — the fusion precondition used for CLOUDSC
    (Figure 10b: "fused by one-to-one produce-consumer loop nest relations").
    """
    graph = program_dataflow(program)
    pairs: List[Tuple[int, int, FrozenSet[str]]] = []
    for producer, consumer, data in graph.edges(data=True):
        if "flow" not in data["kinds"]:
            continue
        arrays = data["arrays"]
        exclusive = True
        for array in arrays:
            producers = [n for n in graph.nodes
                         if array in graph.nodes[n]["writes"] and n != producer]
            consumers = [n for n in graph.nodes
                         if array in graph.nodes[n]["reads"] and n != consumer]
            if producers or consumers:
                exclusive = False
                break
        if exclusive:
            pairs.append((producer, consumer, arrays))
    return pairs


def transient_candidates(program: Program) -> Set[str]:
    """Containers only ever used as intermediate storage between nests.

    These are candidates for demotion to small local buffers after fusion
    (the ``ZQP_0`` / ``ZCOND_0`` arrays of Figure 10b).
    """
    graph = program_dataflow(program)
    written: Dict[str, List[int]] = {}
    read: Dict[str, List[int]] = {}
    for index in graph.nodes:
        for array in graph.nodes[index]["writes"]:
            written.setdefault(array, []).append(index)
        for array in graph.nodes[index]["reads"]:
            read.setdefault(array, []).append(index)
    candidates: Set[str] = set()
    for name, arr in program.arrays.items():
        if arr.transient:
            candidates.add(name)
            continue
        writers = written.get(name, [])
        readers = read.get(name, [])
        if len(writers) == 1 and readers and all(r > writers[0] for r in readers):
            # Written once, read only afterwards: behaves like a temporary if
            # the caller does not observe it (callers decide that).
            continue
    return candidates


def topological_order(graph: nx.DiGraph) -> List[int]:
    """A topological order of the dataflow graph (program order ties kept)."""
    return list(nx.lexicographical_topological_sort(graph))


def has_cycle(graph: nx.DiGraph) -> bool:
    """True if the dataflow graph contains a dependence cycle."""
    return not nx.is_directed_acyclic_graph(graph)

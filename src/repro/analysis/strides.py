"""Stride cost functions for loop orders.

Section 2.2 defines a generic criterion ``stride(loop)`` that maps subsequent
accesses of a loop nest to a real value; the canonical choice is "the sum of
all distances between two subsequent accesses to all arrays over all
computations".  Two subsequent accesses differ by one step of the innermost
iterator, so the dominant term is the per-access stride with respect to the
innermost loop; outer loops contribute with geometrically decreasing weight
so that the total order over permutations is well defined.

When array extents are not statically known, the paper proposes counting
out-of-order accesses with respect to the permutation of loop iterators and
array dimensions; :func:`out_of_order_count` implements that fallback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..ir.arrays import Array
from ..ir.nodes import ArrayAccess, Computation, Loop, Program
from .affine import AffineAccess, computation_accesses, decompose_access

#: Nominal extent used for size parameters without a concrete binding when
#: evaluating symbolic strides.  Any value much larger than a cache line works;
#: the *ordering* of permutations is what matters.
DEFAULT_PARAMETER_VALUE = 256

#: Relative weight of each loop level when summing strides, innermost first.
LEVEL_WEIGHT_DECAY = 1e-3


def _array_strides(array: Array, parameters: Mapping[str, int]) -> Tuple[int, ...]:
    bindings = dict(parameters)
    for dim in array.shape:
        for symbol in dim.free_symbols():
            bindings.setdefault(symbol, DEFAULT_PARAMETER_VALUE)
    return array.row_major_strides(bindings)


def access_stride(access: AffineAccess, iterator: str,
                  element_strides: Sequence[int]) -> Optional[float]:
    """Address movement (in elements) when ``iterator`` advances by one.

    Returns ``None`` when the access is not affine (unknown stride).
    """
    if not access.affine:
        return None
    if len(element_strides) != len(access.indices):
        return None
    movement = 0.0
    for index, stride in zip(access.indices, element_strides):
        movement += index.coefficient(iterator) * stride
    return movement


@dataclass(frozen=True)
class StrideReport:
    """Break-down of the stride cost of one loop nest."""

    total: float
    per_level: Tuple[Tuple[str, float], ...]
    non_affine_accesses: int

    def level_cost(self, iterator: str) -> float:
        for name, cost in self.per_level:
            if name == iterator:
                return cost
        return 0.0


def nest_stride_report(loop: Loop, arrays: Mapping[str, Array],
                       parameters: Optional[Mapping[str, int]] = None,
                       order: Optional[Sequence[str]] = None) -> StrideReport:
    """Compute the stride cost of a loop nest for a given loop order.

    ``order`` lists the iterators of the nest's perfectly nested band from
    outermost to innermost; it defaults to the order in which they currently
    appear.  Loops below the band keep their position; their strides are
    charged at innermost weight.
    """
    parameters = dict(parameters or {})
    band = loop.perfectly_nested_band()
    band_iterators = [lp.iterator for lp in band]
    if order is None:
        order = band_iterators
    if sorted(order) != sorted(band_iterators):
        raise ValueError(f"order {list(order)} does not match band {band_iterators}")

    # Weight per iterator: innermost position gets weight 1.
    weights: Dict[str, float] = {}
    for position, iterator in enumerate(reversed(list(order))):
        weights[iterator] = LEVEL_WEIGHT_DECAY ** position

    per_level: Dict[str, float] = {iterator: 0.0 for iterator in order}
    non_affine = 0
    penalty = 0.0

    def handle_computation(comp: Computation, enclosing: List[str]) -> None:
        nonlocal non_affine, penalty
        for affine_access in computation_accesses(comp, enclosing):
            if affine_access.array not in arrays:
                continue
            element_strides = _array_strides(arrays[affine_access.array], parameters)
            if not affine_access.affine:
                non_affine += 1
                # Unknown accesses are charged a large constant so that
                # permutations cannot "hide" them.
                penalty += max(element_strides) if element_strides else 1.0
                continue
            for iterator in order:
                stride = access_stride(affine_access, iterator, element_strides)
                if stride is None:
                    continue
                per_level[iterator] += abs(stride)

    def recurse(node, enclosing: List[str]) -> None:
        if isinstance(node, Loop):
            inner = enclosing + [node.iterator]
            for child in node.body:
                recurse(child, inner)
        elif isinstance(node, Computation):
            handle_computation(node, enclosing)

    recurse(loop, [])

    total = penalty
    for iterator in order:
        total += weights.get(iterator, 1.0) * per_level[iterator]
    return StrideReport(total=total,
                        per_level=tuple((it, per_level[it]) for it in order),
                        non_affine_accesses=non_affine)


def nest_stride_cost(loop: Loop, arrays: Mapping[str, Array],
                     parameters: Optional[Mapping[str, int]] = None,
                     order: Optional[Sequence[str]] = None) -> float:
    """The scalar ``stride(loop)`` criterion of Section 2.2."""
    return nest_stride_report(loop, arrays, parameters, order).total


def program_stride_cost(program: Program,
                        parameters: Optional[Mapping[str, int]] = None) -> float:
    """Sum of the stride costs of all top-level loop nests of a program."""
    total = 0.0
    for node in program.body:
        if isinstance(node, Loop):
            total += nest_stride_cost(node, program.arrays, parameters)
    return total


def out_of_order_count(loop: Loop, arrays: Mapping[str, Array],
                       order: Optional[Sequence[str]] = None) -> int:
    """Count accesses whose subscript order disagrees with the loop order.

    For each affine access, the access is "in order" when the iterator used
    in the last (fastest-varying) array dimension appears innermost among the
    iterators the access uses, the second-to-last dimension's iterator next,
    and so on.  The count of violated adjacent pairs is returned, summed over
    all accesses.  This is the paper's fallback criterion for symbolic shapes.
    """
    band = loop.perfectly_nested_band()
    band_iterators = [lp.iterator for lp in band]
    if order is None:
        order = band_iterators
    position = {iterator: idx for idx, iterator in enumerate(order)}

    violations = 0

    def dominant_iterator(index) -> Optional[str]:
        names = [name for name in index.iterator_names() if name in position]
        if not names:
            return None
        # The iterator with the largest coefficient dominates the subscript.
        return max(names, key=lambda name: abs(index.coefficient(name)))

    def handle(comp: Computation, enclosing: List[str]) -> None:
        nonlocal violations
        for affine_access in computation_accesses(comp, enclosing):
            if not affine_access.affine:
                violations += 1
                continue
            dominant = [dominant_iterator(index) for index in affine_access.indices]
            dominant = [d for d in dominant if d is not None]
            for outer_dim, inner_dim in zip(dominant, dominant[1:]):
                # The later array dimension varies faster; its iterator should
                # be deeper (larger position) in the loop order.
                if position[outer_dim] > position[inner_dim]:
                    violations += 1

    def recurse(node, enclosing: List[str]) -> None:
        if isinstance(node, Loop):
            inner = enclosing + [node.iterator]
            for child in node.body:
                recurse(child, inner)
        elif isinstance(node, Computation):
            handle(node, enclosing)

    recurse(loop, [])
    return violations

"""Flop counting and invariance facts for the expression-rewrite passes.

The rewrite family (``repro.passes.rewrite``) needs two kinds of answers:

* **How much work does an expression / program perform?**  ``expr_flops``
  counts the arithmetic operations of a single evaluation of a value
  expression (index arithmetic is addressing, not floating-point work, so
  ``Read`` is a leaf); ``program_flops`` walks the loop structure and sums
  operations over the *actual* iteration space for a parameter binding,
  which makes before/after comparisons exact even for triangular nests.

* **What would an enclosing loop change about an expression?**
  ``expr_reads`` collects the arrays a value expression loads from and
  ``written_arrays`` the arrays a subtree stores to; an expression is
  invariant in a loop iff the loop's iterator is not among its free
  symbols and none of its read arrays is written in the loop body.  The
  passes memoize ``written_arrays`` per subtree through the shared
  :class:`~repro.passes.analysis.AnalysisManager` (kind
  ``"written-arrays"``).

Counts are static properties of the IR, so all results are immutable and
safe to memoize by content fingerprint.
"""

from __future__ import annotations

from typing import Mapping, Optional, Union

from ..ir.nodes import Computation, LibraryCall, Loop, Node, Program
from ..ir.symbols import (Add, Call, Const, Expr, FloorDiv, Max, Min, Mod,
                          Mul, Read, Sym)

__all__ = [
    "expr_flops", "expr_reads", "computation_flops", "program_flops",
    "written_arrays",
]


def expr_flops(expr: Expr) -> int:
    """Arithmetic operations performed by one evaluation of ``expr``.

    An n-ary :class:`Add`/:class:`Mul`/:class:`Min`/:class:`Max` costs
    ``n - 1`` operations, every intrinsic :class:`Call` costs one plus its
    arguments, and leaves (constants, symbols, array reads) cost nothing —
    index expressions inside a ``Read`` are address computation, not
    floating-point work.
    """
    if isinstance(expr, (Const, Sym, Read)):
        return 0
    if isinstance(expr, Add):
        return (len(expr.terms) - 1) + sum(expr_flops(t) for t in expr.terms)
    if isinstance(expr, Mul):
        return (len(expr.factors) - 1) + sum(expr_flops(f) for f in expr.factors)
    if isinstance(expr, (FloorDiv, Mod)):
        return 1 + expr_flops(expr.numerator) + expr_flops(expr.denominator)
    if isinstance(expr, (Min, Max, Call)):
        args = expr.args
        base = 1 if isinstance(expr, Call) else max(0, len(args) - 1)
        return base + sum(expr_flops(a) for a in args)
    raise TypeError(f"unsupported expression node: {type(expr).__name__}")


def expr_reads(expr: Expr) -> frozenset:
    """Names of the arrays a value expression loads from.

    Index expressions never contain reads in this IR, so the collector does
    not descend into them.
    """
    if isinstance(expr, Read):
        return frozenset({expr.array})
    out = frozenset()
    for child in expr.children():
        if isinstance(child, Read):
            out |= frozenset({child.array})
        else:
            out |= expr_reads(child)
    return out


def computation_flops(computation: Computation) -> int:
    """Operations one execution of a statement performs (its RHS)."""
    return expr_flops(computation.value)


def written_arrays(node: Union[Node, Program]) -> frozenset:
    """Names of the arrays the subtree under ``node`` stores to."""
    names = set()
    if isinstance(node, Computation):
        names.add(node.target.array)
    elif isinstance(node, LibraryCall):
        names.update(node.outputs)
    elif isinstance(node, (Loop, Program)):
        for child in node.body:
            names.update(written_arrays(child))
    return frozenset(names)


def _flop_sensitivity(node: Node) -> frozenset:
    """Symbols the flop count of ``node`` depends on (seen from its parent)."""
    if isinstance(node, Computation):
        return frozenset()
    if isinstance(node, LibraryCall):
        return node.flop_expr.free_symbols()
    sensitivity = set()
    for child in node.body:
        sensitivity |= _flop_sensitivity(child)
    sensitivity.discard(node.iterator)
    sensitivity |= node.start.free_symbols()
    sensitivity |= node.end.free_symbols()
    sensitivity |= node.step.free_symbols()
    return frozenset(sensitivity)


def _node_flops(node: Node, env: dict) -> int:
    if isinstance(node, Computation):
        return computation_flops(node)
    if isinstance(node, LibraryCall):
        return int(node.flop_expr.evaluate(env))
    start = int(node.start.evaluate(env))
    end = int(node.end.evaluate(env))
    step = int(node.step.evaluate(env))
    trips = len(range(start, end, step)) if step != 0 else 0
    if trips == 0:
        return 0
    varying = set()
    for child in node.body:
        varying |= _flop_sensitivity(child)
    if node.iterator not in varying:
        # Every iteration performs the same work: count one, multiply.
        env = dict(env)
        env[node.iterator] = start
        return trips * sum(_node_flops(child, env) for child in node.body)
    total = 0
    env = dict(env)
    for value in range(start, end, step):
        env[node.iterator] = value
        total += sum(_node_flops(child, env) for child in node.body)
    return total


def program_flops(program: Program,
                  parameters: Optional[Mapping[str, int]] = None) -> int:
    """Total arithmetic operations one run of ``program`` performs.

    Walks the loop structure numerically under ``parameters`` (exact for
    triangular and parameter-dependent bounds) without touching any data;
    loops whose body does shape-independent work are counted in O(1).
    """
    env = dict(parameters or {})
    return sum(_node_flops(node, env) for node in program.body)

"""Reuse-distance and working-set estimation.

The normalization is motivated by memory-hierarchy cost (Section 2): the
reuse distance of accesses determines cache behavior.  This module gives a
cheap static estimate of per-array reuse distances and loop-nest working
sets, used by the performance embeddings and as a sanity metric in tests.
The precise cache behavior is measured by the cache simulator in
:mod:`repro.perf.cache`; this module is the *analytical* counterpart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from ..ir.arrays import Array
from ..ir.nodes import Computation, Loop, Program
from .affine import computation_accesses
from .strides import DEFAULT_PARAMETER_VALUE, _array_strides, access_stride


@dataclass(frozen=True)
class ReuseEstimate:
    """Static reuse summary for one loop nest."""

    #: Estimated number of distinct elements touched per innermost iteration.
    innermost_footprint: float
    #: Estimated number of distinct elements touched by one full execution of
    #: the innermost loop.
    innermost_working_set: float
    #: Estimated reuse distance (in accessed elements) for temporally reused
    #: values, per array.
    per_array_reuse: Tuple[Tuple[str, float], ...]

    def reuse_of(self, array: str) -> Optional[float]:
        for name, value in self.per_array_reuse:
            if name == array:
                return value
        return None


def _loop_extents(loop: Loop, parameters: Mapping[str, int]) -> Dict[str, int]:
    extents: Dict[str, int] = {}
    bindings = dict(parameters)
    for inner in loop.iter_loops():
        for expr in (inner.start, inner.end, inner.step):
            for symbol in expr.free_symbols():
                bindings.setdefault(symbol, DEFAULT_PARAMETER_VALUE)
    for inner in loop.iter_loops():
        try:
            extents[inner.iterator] = inner.trip_count(bindings)
        except (KeyError, ValueError):
            extents[inner.iterator] = DEFAULT_PARAMETER_VALUE
    return extents


def estimate_reuse(loop: Loop, arrays: Mapping[str, Array],
                   parameters: Optional[Mapping[str, int]] = None) -> ReuseEstimate:
    """Estimate reuse behavior of a loop nest.

    The estimate distinguishes three access classes per (computation, access):

    * invariant in the innermost loop — temporal reuse with distance equal to
      the per-iteration footprint;
    * unit stride in the innermost loop — spatial reuse, footprint counted
      once per cache line;
    * larger strides — no short-distance reuse, footprint counted per access.
    """
    parameters = dict(parameters or {})
    extents = _loop_extents(loop, parameters)
    band = loop.perfectly_nested_band()
    innermost = band[-1].iterator
    inner_trip = max(1, extents.get(innermost, DEFAULT_PARAMETER_VALUE))

    per_iteration = 0.0
    per_execution = 0.0
    reuse: Dict[str, float] = {}

    def handle(comp: Computation, enclosing: List[str]) -> None:
        nonlocal per_iteration, per_execution
        for access in computation_accesses(comp, enclosing):
            if access.array not in arrays:
                continue
            element_strides = _array_strides(arrays[access.array], parameters)
            stride = access_stride(access, innermost, element_strides)
            per_iteration += 1.0
            if stride is None:
                per_execution += float(inner_trip)
                continue
            if stride == 0:
                # Temporal reuse across innermost iterations: the value is
                # touched every iteration but occupies one element.
                per_execution += 1.0
                reuse[access.array] = min(
                    reuse.get(access.array, float("inf")), per_iteration)
            elif abs(stride) == 1:
                per_execution += float(inner_trip)
                reuse.setdefault(access.array, float(per_iteration))
            else:
                per_execution += float(inner_trip)

    def recurse(node, enclosing: List[str]) -> None:
        if isinstance(node, Loop):
            inner = enclosing + [node.iterator]
            for child in node.body:
                recurse(child, inner)
        elif isinstance(node, Computation):
            handle(node, enclosing)

    recurse(loop, [])

    finite_reuse = tuple(sorted(
        (name, value) for name, value in reuse.items() if value != float("inf")))
    return ReuseEstimate(innermost_footprint=per_iteration,
                         innermost_working_set=per_execution,
                         per_array_reuse=finite_reuse)


def program_working_set_bytes(program: Program,
                              parameters: Optional[Mapping[str, int]] = None) -> int:
    """Total bytes of all non-transient containers under concrete bindings."""
    parameters = dict(parameters or {})
    total = 0
    for arr in program.arrays.values():
        if arr.transient:
            continue
        bindings = dict(parameters)
        for dim in arr.shape:
            for symbol in dim.free_symbols():
                bindings.setdefault(symbol, DEFAULT_PARAMETER_VALUE)
        total += arr.size_in_bytes(bindings)
    return total

"""Static analyses over the symbolic loop-nest IR.

* :mod:`repro.analysis.affine` — affine access-function extraction.
* :mod:`repro.analysis.dependence` — dependence testing and direction vectors.
* :mod:`repro.analysis.dataflow` — producer/consumer graphs across loop nests.
* :mod:`repro.analysis.parallelism` — DOALL and reduction-loop detection.
* :mod:`repro.analysis.strides` — the ``stride(loop)`` normalization criterion.
* :mod:`repro.analysis.reuse` — static reuse-distance and working-set estimates.
* :mod:`repro.analysis.flops` — flop counting and invariance facts for the
  expression-rewrite passes.
"""

from .affine import (AffineAccess, AffineIndex, access_is_contiguous,
                     computation_accesses, decompose_access, decompose_index,
                     loop_nest_accesses)
from .dataflow import (DataflowEdge, build_dataflow_graph, has_cycle,
                       node_reads_writes, producer_consumer_pairs,
                       program_dataflow, topological_order)
from .flops import (computation_flops, expr_flops, expr_reads, program_flops,
                    written_arrays)
from .dependence import (ANY, EQ, GT, LT, Dependence, body_dependence_pairs,
                         dependences_between, legal_permutations,
                         loop_carried_dependences, nest_dependences,
                         permutation_is_legal, self_dependences)
from .parallelism import (ParallelismInfo, analyze_loop_parallelism,
                          is_fully_parallel_band, outermost_parallel_loop,
                          parallel_loops)
from .reuse import ReuseEstimate, estimate_reuse, program_working_set_bytes
from .strides import (StrideReport, access_stride, nest_stride_cost,
                      nest_stride_report, out_of_order_count,
                      program_stride_cost)

__all__ = [
    "AffineAccess", "AffineIndex", "access_is_contiguous", "computation_accesses",
    "decompose_access", "decompose_index", "loop_nest_accesses",
    "DataflowEdge", "build_dataflow_graph", "has_cycle", "node_reads_writes",
    "producer_consumer_pairs", "program_dataflow", "topological_order",
    "ANY", "EQ", "GT", "LT", "Dependence", "body_dependence_pairs",
    "dependences_between", "legal_permutations", "loop_carried_dependences",
    "nest_dependences", "permutation_is_legal", "self_dependences",
    "ParallelismInfo", "analyze_loop_parallelism", "is_fully_parallel_band",
    "outermost_parallel_loop", "parallel_loops",
    "ReuseEstimate", "estimate_reuse", "program_working_set_bytes",
    "computation_flops", "expr_flops", "expr_reads", "program_flops",
    "written_arrays",
    "StrideReport", "access_stride", "nest_stride_cost", "nest_stride_report",
    "out_of_order_count", "program_stride_cost",
]

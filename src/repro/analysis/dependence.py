"""Data-dependence analysis over the symbolic loop-nest IR.

The normalization passes rely on two legality questions:

* **Fission / distribution** (Section 2.1): which computations within a loop
  body can be separated into their own loop nests?
* **Permutation** (Section 2.2): which loop orders of a nest preserve the
  original semantics?

Both are answered through classical data-dependence analysis on affine
subscripts: ZIV and strong-SIV tests with a GCD fallback produce dependence
*direction vectors*; anything that cannot be analyzed is treated
conservatively as a dependence with unknown direction.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..ir.nodes import ArrayAccess, Computation, LibraryCall, Loop, Node
from .affine import AffineAccess, AffineIndex, decompose_access

#: Direction symbols: "<" (carried forward), "=" (same iteration),
#: ">" (carried backward), "*" (unknown).
LT, EQ, GT, ANY = "<", "=", ">", "*"

_DIRECTION_ORDER = (LT, EQ, GT)


@dataclass(frozen=True)
class Dependence:
    """A data dependence between two nodes under a common loop nest.

    Attributes:
        source / sink: The earlier and later node in program order.
        array: Container on which the dependence exists.
        kind: ``"flow"`` (write then read), ``"anti"`` (read then write) or
            ``"output"`` (write then write).
        directions: One direction symbol per common loop, outermost first.
        distance: Per-level integer distances when statically known, else None
            entries aligned with ``directions``.
    """

    source: Node
    sink: Node
    array: str
    kind: str
    directions: Tuple[str, ...]
    distance: Tuple[Optional[int], ...]

    @property
    def loop_independent(self) -> bool:
        """True when the dependence occurs within a single iteration."""
        return all(direction == EQ for direction in self.directions)

    def carried_levels(self) -> List[int]:
        """Loop levels (0-based, outermost first) that may carry the dependence."""
        levels = []
        for level, direction in enumerate(self.directions):
            if direction in (LT, GT, ANY):
                levels.append(level)
        return levels

    def is_carried_by(self, level: int) -> bool:
        """True if this dependence may be carried by loop ``level``.

        A dependence is carried by level *k* when the first non-"=" entry of
        its direction vector is at position *k* (or unknown up to *k*).
        """
        for idx in range(level):
            if self.directions[idx] in (LT, GT):
                return False
            if self.directions[idx] == ANY:
                return True
        if level >= len(self.directions):
            return False
        return self.directions[level] in (LT, GT, ANY)


# -- helpers -------------------------------------------------------------------


def _gather_accesses(node: Node, common_iterators: Sequence[str]
                     ) -> List[Tuple[ArrayAccess, bool, List[str]]]:
    """Collect all accesses in a subtree with their full iterator context.

    Returns triples ``(access, is_write, private_iterators)`` where
    ``private_iterators`` are iterators of loops inside ``node`` (not part of
    the common surrounding nest).
    """
    collected: List[Tuple[ArrayAccess, bool, List[str]]] = []

    def recurse(current: Node, private: List[str]) -> None:
        if isinstance(current, Loop):
            inner = private + [current.iterator]
            for child in current.body:
                recurse(child, inner)
        elif isinstance(current, Computation):
            for acc in current.reads():
                collected.append((acc, False, list(private)))
            collected.append((current.target, True, list(private)))
        elif isinstance(current, LibraryCall):
            # Library calls touch whole containers; model as rank-0 accesses
            # which force a conservative dependence on any overlap.
            for name in current.inputs:
                collected.append((ArrayAccess(name, ()), False, list(private)))
            for name in current.outputs:
                collected.append((ArrayAccess(name, ()), True, list(private)))

    recurse(node, [])
    return collected


def _dimension_testable(index_a: AffineIndex, index_b: AffineIndex,
                        private_a: Set[str], private_b: Set[str]) -> bool:
    """A dimension is testable when both subscripts are affine and do not
    involve iterators private to either side."""
    if not index_a.affine or not index_b.affine:
        return False
    if any(name in private_a for name in index_a.iterator_names()):
        return False
    if any(name in private_b for name in index_b.iterator_names()):
        return False
    return True


def _offsets_match(index_a: AffineIndex, index_b: AffineIndex) -> bool:
    """True when the parameter-dependent parts of both subscripts agree."""
    return dict(index_a.offset_coefficients) == dict(index_b.offset_coefficients)


def _test_dimension(index_a: AffineIndex, index_b: AffineIndex,
                    common_iterators: Sequence[str]
                    ) -> Tuple[bool, Dict[str, Optional[int]]]:
    """Test a single subscript dimension.

    Returns ``(may_depend, constraints)``.  ``constraints`` maps iterator
    names to a required integer distance (``iteration_b - iteration_a``) when
    the dimension pins one down; a value of ``None`` means the dimension
    constrains that iterator to any single consistent value (not used here).
    ``may_depend=False`` proves independence outright.
    """
    coeffs_a = dict(index_a.coefficients)
    coeffs_b = dict(index_b.coefficients)
    involved = {name for name in list(coeffs_a) + list(coeffs_b)
                if coeffs_a.get(name, 0) != 0 or coeffs_b.get(name, 0) != 0}
    involved &= set(common_iterators)

    if not involved:
        # ZIV: both subscripts are constants (possibly parameter-dependent).
        if _offsets_match(index_a, index_b):
            return (index_a.constant == index_b.constant), {}
        # Different parameter expressions: cannot disprove, no constraint.
        return True, {}

    if len(involved) == 1:
        iterator = next(iter(involved))
        a = coeffs_a.get(iterator, 0.0)
        b = coeffs_b.get(iterator, 0.0)
        if not _offsets_match(index_a, index_b):
            return True, {}
        delta = index_a.constant - index_b.constant
        if a == b and a != 0:
            # Strong SIV: a*i_a + c_a == a*i_b + c_b  =>  i_b - i_a = (c_a - c_b)/a
            distance = delta / a
            if abs(distance - round(distance)) > 1e-9:
                return False, {}
            return True, {iterator: int(round(distance))}
        if a != 0 and b != 0:
            # Weak SIV with differing coefficients: fall back to a GCD test.
            from math import gcd
            g = gcd(int(abs(a)), int(abs(b))) if float(a).is_integer() and float(b).is_integer() else 1
            if g != 0 and float(delta).is_integer() and int(delta) % g != 0:
                return False, {}
            return True, {}
        # One side does not use the iterator at all (e.g. A[i] vs A[0]):
        # a dependence may exist for a specific iteration; no distance pinned.
        return True, {}

    # MIV: multiple iterators involved.  Use a GCD test on integer coefficients.
    from math import gcd
    all_coeffs = []
    integral = True
    for name in involved:
        for value in (coeffs_a.get(name, 0.0), -coeffs_b.get(name, 0.0)):
            if value == 0:
                continue
            if not float(value).is_integer():
                integral = False
            all_coeffs.append(int(abs(value)) if float(value).is_integer() else 0)
    delta = index_b.constant - index_a.constant
    if integral and all_coeffs and float(delta).is_integer() and _offsets_match(index_a, index_b):
        g = 0
        for value in all_coeffs:
            g = gcd(g, value)
        if g != 0 and int(delta) % g != 0:
            return False, {}
    return True, {}


def _directions_from_constraints(constraints: Dict[str, Optional[int]],
                                 common_iterators: Sequence[str]
                                 ) -> Tuple[Tuple[str, ...], Tuple[Optional[int], ...]]:
    directions: List[str] = []
    distances: List[Optional[int]] = []
    for iterator in common_iterators:
        if iterator in constraints and constraints[iterator] is not None:
            distance = constraints[iterator]
            distances.append(distance)
            if distance > 0:
                directions.append(LT)
            elif distance < 0:
                directions.append(GT)
            else:
                directions.append(EQ)
        else:
            directions.append(ANY)
            distances.append(None)
    return tuple(directions), tuple(distances)


def _test_access_pair(access_a: ArrayAccess, private_a: List[str], write_a: bool,
                      access_b: ArrayAccess, private_b: List[str], write_b: bool,
                      common_iterators: Sequence[str]
                      ) -> Optional[Tuple[Tuple[str, ...], Tuple[Optional[int], ...]]]:
    """Test one pair of accesses; returns direction/distance vectors or None."""
    if access_a.array != access_b.array:
        return None
    if not (write_a or write_b):
        return None

    known_a = list(common_iterators) + private_a
    known_b = list(common_iterators) + private_b
    affine_a = decompose_access(access_a, known_a, write_a)
    affine_b = decompose_access(access_b, known_b, write_b)

    if len(affine_a.indices) != len(affine_b.indices):
        # Rank mismatch (e.g. whole-container library-call access): conservative.
        return tuple(ANY for _ in common_iterators), tuple(None for _ in common_iterators)

    constraints: Dict[str, Optional[int]] = {}
    private_set_a = set(private_a)
    private_set_b = set(private_b)
    for index_a, index_b in zip(affine_a.indices, affine_b.indices):
        if not _dimension_testable(index_a, index_b, private_set_a, private_set_b):
            continue
        may_depend, dim_constraints = _test_dimension(index_a, index_b, common_iterators)
        if not may_depend:
            return None
        for iterator, distance in dim_constraints.items():
            if iterator in constraints and constraints[iterator] != distance:
                # Two dimensions demand inconsistent distances: independent.
                return None
            constraints[iterator] = distance

    return _directions_from_constraints(constraints, common_iterators)


def _classify(write_a: bool, write_b: bool) -> str:
    if write_a and write_b:
        return "output"
    if write_a:
        return "flow"
    return "anti"


# -- public API ----------------------------------------------------------------


def dependences_between(node_a: Node, node_b: Node,
                        common_iterators: Sequence[str]) -> List[Dependence]:
    """All dependences from ``node_a`` (earlier) to ``node_b`` (later).

    ``common_iterators`` are the iterators of the loops enclosing *both*
    nodes, outermost first.  Dependences are reported with direction vectors
    over exactly those loops.
    """
    accesses_a = _gather_accesses(node_a, common_iterators)
    accesses_b = _gather_accesses(node_b, common_iterators)
    found: List[Dependence] = []
    seen: Set[Tuple] = set()
    for (acc_a, write_a, private_a), (acc_b, write_b, private_b) in product(accesses_a, accesses_b):
        result = _test_access_pair(acc_a, private_a, write_a,
                                   acc_b, private_b, write_b, common_iterators)
        if result is None:
            continue
        directions, distances = result
        kind = _classify(write_a, write_b)
        key = (acc_a.array, kind, directions)
        if key in seen:
            continue
        seen.add(key)
        found.append(Dependence(node_a, node_b, acc_a.array, kind, directions, distances))
    return found


def self_dependences(node: Node, common_iterators: Sequence[str]) -> List[Dependence]:
    """Dependences of a node on itself across iterations of the common loops."""
    deps = dependences_between(node, node, common_iterators)
    # A same-iteration self dependence (all "=") is not a real dependence
    # unless it is a reduction (write and read of the same element), in which
    # case it is still loop-independent and does not constrain permutation.
    return [dep for dep in deps if not dep.loop_independent]


def body_dependence_pairs(loop: Loop) -> List[Tuple[int, int, Dependence]]:
    """Dependences among the direct children of ``loop``'s body.

    Children are identified by index; dependences from child ``i`` to child
    ``j >= i`` are reported (including ``i == j`` self dependences carried by
    the loop itself).
    """
    common = [loop.iterator]
    pairs: List[Tuple[int, int, Dependence]] = []
    for i, child_a in enumerate(loop.body):
        for j in range(i, len(loop.body)):
            child_b = loop.body[j]
            if i == j:
                for dep in self_dependences(child_a, common):
                    pairs.append((i, j, dep))
                continue
            for dep in dependences_between(child_a, child_b, common):
                pairs.append((i, j, dep))
            # Backward dependences (from the later to the earlier child) can
            # only be carried by the surrounding loop.
            for dep in dependences_between(child_b, child_a, common):
                if not dep.loop_independent:
                    pairs.append((j, i, dep))
    return pairs


def loop_carried_dependences(loop: Loop) -> List[Dependence]:
    """All dependences carried by ``loop`` (over its own iterator)."""
    carried: List[Dependence] = []
    common = [loop.iterator]
    children = list(loop.body)
    for i, child_a in enumerate(children):
        for child_b in children[i:]:
            for dep in dependences_between(child_a, child_b, common):
                if not dep.loop_independent:
                    carried.append(dep)
            if child_a is not child_b:
                for dep in dependences_between(child_b, child_a, common):
                    if not dep.loop_independent:
                        carried.append(dep)
    return carried


def nest_dependences(loop: Loop) -> List[Dependence]:
    """All dependences among computations of a loop nest, over its own loops.

    Every pair of computations (including a computation with itself) is tested
    over the iterators of the loops that enclose *both* computations within
    ``loop``.  Used for permutation legality.
    """
    comps_with_context: List[Tuple[Computation, List[str]]] = []

    def recurse(node: Node, iterators: List[str]) -> None:
        if isinstance(node, Loop):
            inner = iterators + [node.iterator]
            for child in node.body:
                recurse(child, inner)
        elif isinstance(node, Computation):
            comps_with_context.append((node, iterators))

    recurse(loop, [])

    deps: List[Dependence] = []
    for i, (comp_a, iters_a) in enumerate(comps_with_context):
        for j, (comp_b, iters_b) in enumerate(comps_with_context):
            if j < i:
                continue
            common: List[str] = []
            for it_a, it_b in zip(iters_a, iters_b):
                if it_a == it_b:
                    common.append(it_a)
                else:
                    break
            if comp_a is comp_b:
                deps.extend(self_dependences(comp_a, common))
            else:
                deps.extend(dependences_between(comp_a, comp_b, common))
                deps.extend(dep for dep in dependences_between(comp_b, comp_a, common)
                            if not dep.loop_independent)
    return deps


#: Maximum number of unknown ("*") entries expanded when checking permutation
#: legality; vectors with more unknowns are treated conservatively.
MAX_ANY_EXPANSION = 8


def band_bounds_respect_order(band: Sequence[Loop],
                              order: Sequence[str]) -> bool:
    """Structural legality of a band reordering: a loop's bounds may only
    reference iterators that remain *outside* it.  Triangular and other
    non-rectangular domains constrain which permutations are expressible at
    all — moving ``j`` with bound ``N - i`` above ``i`` leaves ``i`` unbound
    in ``j``'s header regardless of dependences.
    """
    position = {iterator: idx for idx, iterator in enumerate(order)}
    band_iterators = set(position)
    for lp in band:
        referenced = ((lp.start.free_symbols() | lp.end.free_symbols()
                       | lp.step.free_symbols()) & band_iterators)
        if any(position[other] >= position[lp.iterator]
               for other in referenced):
            return False
    return True


def permutation_is_legal(loop: Loop, permutation: Sequence[str]) -> bool:
    """Check whether reordering the nest's loops to ``permutation`` is legal.

    ``permutation`` lists the iterators of the perfectly nested band of
    ``loop`` in their new order, outermost first.  Two conditions are
    enforced.  Structurally, every loop bound must keep referencing only
    iterators outside it (:func:`band_bounds_respect_order`).  Semantically,
    the classical interchange condition is applied: every dependence
    direction vector that can occur in the original execution order (i.e. is
    lexicographically non-negative) must remain lexicographically
    non-negative after reordering.  Unknown ("*") entries are expanded into
    all concrete directions before the check, but only vectors that are
    possible in the original order are considered — a backward vector cannot
    flow from an earlier to a later instance.
    """
    band = loop.perfectly_nested_band()
    original = [lp.iterator for lp in band]
    if sorted(original) != sorted(permutation):
        raise ValueError(
            f"permutation {list(permutation)} is not a reordering of {original}")
    if not band_bounds_respect_order(band, permutation):
        return False

    deps = nest_dependences(loop)
    index_of = {iterator: idx for idx, iterator in enumerate(original)}
    for dep in deps:
        # Direction vectors are reported over the loops common to both
        # endpoints; pad with "=" for the inner band loops not included.
        directions = list(dep.directions) + [EQ] * (len(original) - len(dep.directions))
        for concrete in _expand_directions(directions):
            if not _lexicographically_non_negative(concrete):
                # This vector cannot occur in the original program order.
                continue
            permuted = []
            for iterator in permutation:
                idx = index_of[iterator]
                permuted.append(concrete[idx] if idx < len(concrete) else EQ)
            if not _lexicographically_non_negative(permuted):
                return False
    return True


def _expand_directions(directions: Sequence[str]) -> Iterable[Tuple[str, ...]]:
    """Expand "*" entries into all concrete direction symbols."""
    unknown_positions = [idx for idx, d in enumerate(directions) if d == ANY]
    if len(unknown_positions) > MAX_ANY_EXPANSION:
        # Too many unknowns to enumerate: behave conservatively by returning
        # a single backward vector, which makes any reordering illegal.
        yield tuple(GT if d == ANY else d for d in directions)
        return
    if not unknown_positions:
        yield tuple(directions)
        return
    for assignment in product(_DIRECTION_ORDER, repeat=len(unknown_positions)):
        concrete = list(directions)
        for position, symbol in zip(unknown_positions, assignment):
            concrete[position] = symbol
        yield tuple(concrete)


def _lexicographically_non_negative(directions: Sequence[str]) -> bool:
    """True if the direction vector cannot represent a backward dependence."""
    for direction in directions:
        if direction == LT:
            return True
        if direction == EQ:
            continue
        if direction == GT:
            return False
        if direction == ANY:
            # Unknown direction at the leading position could be ">".
            return False
    return True


def legal_permutations(loop: Loop, limit: Optional[int] = None) -> List[Tuple[str, ...]]:
    """Enumerate legal permutations of the nest's perfectly nested band."""
    from itertools import permutations as iter_permutations

    band = loop.perfectly_nested_band()
    iterators = [lp.iterator for lp in band]
    legal: List[Tuple[str, ...]] = []
    for perm in iter_permutations(iterators):
        if permutation_is_legal(loop, perm):
            legal.append(perm)
            if limit is not None and len(legal) >= limit:
                break
    return legal

"""Analytical performance model.

The paper evaluates schedules by running the generated code on an Intel Xeon
E5-2680v3.  Offline, we substitute a roofline-with-locality model: per loop
nest the model estimates

* the floating-point work,
* the bytes moved from each memory-hierarchy level (based on per-access
  stride classes, reuse loops, and whether the reused footprint fits in a
  cache level),
* the effect of schedule annotations (parallel loops, SIMD loops, unrolling,
  atomic reductions, tiling — the latter implicitly through the footprint of
  the tile loops),

and reports the nest runtime as ``max(compute, memory) + overheads``.  The
absolute numbers are approximations, but the model preserves the *ordering*
effects the paper's claims rest on: strided variants are slower than
unit-stride variants, unparallelized code does not scale, BLAS calls beat
generic loop nests, and atomic reductions are expensive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..analysis.affine import computation_accesses, decompose_access
from ..analysis.parallelism import analyze_loop_parallelism
from ..ir.arrays import Array
from ..ir.nodes import Computation, LibraryCall, Loop, Node, Program
from ..ir.symbols import (Add, Call, Const, Expr, FloorDiv, Max, Min, Mod, Mul,
                          Read, Sym)
from .machine import DEFAULT_MACHINE, MachineModel

#: Cost (in FLOP equivalents) of intrinsics, relative to one multiply-add.
INTRINSIC_FLOP_COST = {
    "sqrt": 6.0, "exp": 10.0, "log": 10.0, "pow": 12.0, "div": 4.0,
    "abs": 1.0, "fmax": 1.0, "fmin": 1.0, "floor": 1.0, "ceil": 1.0,
    "tanh": 12.0,
}

MEMORY_LEVELS = ("L1", "L2", "L3", "DRAM")

#: Number of values that can be held in registers within one iteration of an
#: innermost loop before the compiler starts spilling (16 ymm registers).
REGISTER_BUDGET = 16


def count_flops(expr: Expr) -> float:
    """Number of arithmetic operations in an expression tree."""
    if isinstance(expr, (Const, Sym)):
        return 0.0
    if isinstance(expr, Read):
        return sum(count_flops(i) for i in expr.indices)
    if isinstance(expr, Add):
        return (len(expr.terms) - 1) + sum(count_flops(t) for t in expr.terms)
    if isinstance(expr, Mul):
        return (len(expr.factors) - 1) + sum(count_flops(f) for f in expr.factors)
    if isinstance(expr, (FloorDiv, Mod)):
        return 1 + sum(count_flops(c) for c in expr.children())
    if isinstance(expr, (Min, Max)):
        return (len(expr.args) - 1) + sum(count_flops(a) for a in expr.args)
    if isinstance(expr, Call):
        return (INTRINSIC_FLOP_COST.get(expr.func, 4.0)
                + sum(count_flops(a) for a in expr.args))
    return 1.0


def _safe_flops(call: LibraryCall, parameters: Mapping[str, float]) -> float:
    """Evaluate a library call's FLOP expression, tolerating unbound symbols."""
    if not call.flop_expr:
        return 0.0
    bindings = dict(parameters)
    for symbol in call.flop_expr.free_symbols():
        bindings.setdefault(symbol, 256)
    try:
        return float(call.flop_expr.evaluate(bindings))
    except (KeyError, ZeroDivisionError):
        return 0.0


@dataclass
class NestCost:
    """Cost break-down of one top-level node."""

    label: str
    flops: float = 0.0
    bytes_by_level: Dict[str, float] = field(default_factory=lambda: {lvl: 0.0 for lvl in MEMORY_LEVELS})
    compute_time: float = 0.0
    memory_time: float = 0.0
    overhead_time: float = 0.0
    atomic_time: float = 0.0
    active_threads: int = 1
    vectorized: bool = False
    time: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        out = {"flops": self.flops, "compute_time": self.compute_time,
               "memory_time": self.memory_time, "overhead_time": self.overhead_time,
               "atomic_time": self.atomic_time, "time": self.time,
               "threads": self.active_threads}
        out.update({f"bytes_{lvl}": self.bytes_by_level[lvl] for lvl in MEMORY_LEVELS})
        return out


@dataclass
class RuntimeEstimate:
    """Estimated runtime of a whole program."""

    program: str
    total_time: float
    nests: List[NestCost]
    threads: int

    def as_dict(self) -> Dict[str, object]:
        return {"program": self.program, "total_time": self.total_time,
                "threads": self.threads,
                "nests": [nest.as_dict() for nest in self.nests]}


@dataclass
class _LoopFrame:
    loop: Loop
    trip: float
    midpoint: float


class CostModel:
    """Estimates program runtime on a :class:`MachineModel`."""

    def __init__(self, machine: MachineModel = DEFAULT_MACHINE, threads: int = 1):
        if threads < 1:
            raise ValueError("threads must be at least 1")
        self.machine = machine
        self.threads = min(threads, machine.cores)

    # -- public API ---------------------------------------------------------------

    def estimate(self, program: Program,
                 parameters: Mapping[str, int],
                 assume_warm_caches: bool = False) -> RuntimeEstimate:
        """Estimate the runtime of ``program`` under concrete parameters.

        With ``assume_warm_caches`` the program's containers are assumed to be
        resident from a previous execution (the repeated-measurement protocol
        of the paper); first touches are then served by the cache level the
        container fits in instead of DRAM.
        """
        nests: List[NestCost] = []
        total = 0.0
        # Containers already touched by an earlier nest of this program: later
        # nests re-read them from the cache level their footprint fits in
        # rather than from DRAM.
        touched: Dict[str, float] = {}
        if assume_warm_caches:
            for name, arr in program.arrays.items():
                try:
                    touched[name] = float(arr.size_in_bytes(dict(parameters)))
                except KeyError:
                    touched[name] = 0.0
        for index, node in enumerate(program.body):
            if isinstance(node, LibraryCall):
                cost = self._estimate_library_call(node, program, parameters, index)
            elif isinstance(node, Loop):
                cost = self._estimate_nest(node, program, parameters, index, touched)
            elif isinstance(node, Computation):
                cost = NestCost(label=f"{index}:{node.name}",
                                flops=count_flops(node.value))
                cost.compute_time = cost.flops / self.machine.scalar_flops(1)
                cost.time = cost.compute_time
            else:
                continue
            nests.append(cost)
            total += cost.time
        return RuntimeEstimate(program.name, total, nests, self.threads)

    def estimate_seconds(self, program: Program,
                         parameters: Mapping[str, int],
                         assume_warm_caches: bool = False) -> float:
        return self.estimate(program, parameters, assume_warm_caches).total_time

    # -- library calls -------------------------------------------------------------

    def _estimate_library_call(self, call: LibraryCall, program: Program,
                               parameters: Mapping[str, int], index: int) -> NestCost:
        cost = NestCost(label=f"{index}:call:{call.routine}")
        cost.flops = _safe_flops(call, dict(parameters))
        flops = cost.flops
        threads = self.threads
        peak = self.machine.peak_flops_per_core * threads * self.machine.blas_efficiency
        cost.compute_time = flops / peak if peak else 0.0

        operand_bytes = 0.0
        for name in set(call.inputs) | set(call.outputs):
            if name in program.arrays:
                operand_bytes += program.arrays[name].size_in_bytes(dict(parameters))
        cost.bytes_by_level["DRAM"] = operand_bytes
        cost.memory_time = operand_bytes / self.machine.bandwidth_of("DRAM", threads)
        cost.overhead_time = self.machine.parallel_overhead_s if threads > 1 else 0.0
        cost.active_threads = threads
        cost.vectorized = True
        cost.time = max(cost.compute_time, cost.memory_time) + cost.overhead_time
        return cost

    # -- loop nests -----------------------------------------------------------------

    def _estimate_nest(self, nest: Loop, program: Program,
                       parameters: Mapping[str, int], index: int,
                       touched: Optional[Dict[str, float]] = None) -> NestCost:
        cost = NestCost(label=f"{index}:{nest.iterator}")
        params = dict(parameters)

        parallel_loop = self._outermost_parallel(nest)
        if parallel_loop is not None:
            trip = self._trip(parallel_loop, params, {})
            cost.active_threads = max(1, min(self.threads, int(trip) or 1))
        threads = cost.active_threads

        stats = _NestStatistics(self.machine, program.arrays, params,
                                touched=touched)
        stats.walk(nest)

        cost.flops = stats.flops
        cost.bytes_by_level = stats.bytes_by_level
        cost.vectorized = stats.any_vectorized

        # Compute time: flops executed under an (effective) SIMD schedule run
        # at the vector rate, everything else at the scalar rate.  Register
        # pressure above the budget disables effective vectorization (see
        # _NestStatistics).
        scalar_rate = self.machine.frequency_hz * self.machine.scalar_flops_per_cycle * threads
        vector_rate = self.machine.frequency_hz * self.machine.vector_flops_per_cycle * threads
        cost.compute_time = 0.0
        if scalar_rate:
            cost.compute_time += stats.scalar_flops / scalar_rate
        if vector_rate:
            cost.compute_time += stats.vector_flops / vector_rate

        # Memory time: sum of per-level transfer times at the level bandwidths.
        memory_time = 0.0
        for level in MEMORY_LEVELS:
            volume = stats.bytes_by_level[level]
            if volume <= 0:
                continue
            memory_time += volume / self.machine.bandwidth_of(level, threads)
        cost.memory_time = memory_time

        # Loop bookkeeping overhead.
        cost.overhead_time = (stats.loop_iterations * self.machine.loop_overhead_cycles
                              / self.machine.frequency_hz / threads)
        if threads > 1:
            cost.overhead_time += self.machine.parallel_overhead_s

        # Atomic reductions: parallel loops that carry reduction dependences
        # serialize their updates through atomics.
        if parallel_loop is not None and threads > 1:
            info = analyze_loop_parallelism(parallel_loop)
            if info.is_reduction:
                cost.atomic_time = stats.write_iterations * self.machine.atomic_cost_s

        cost.time = (max(cost.compute_time, cost.memory_time)
                     + cost.overhead_time + cost.atomic_time)
        return cost

    def _outermost_parallel(self, nest: Loop) -> Optional[Loop]:
        for loop in nest.iter_loops():
            if loop.parallel:
                return loop
        return None

    def _trip(self, loop: Loop, params: Mapping[str, float],
              env: Mapping[str, float]) -> float:
        bindings = {**params, **env}
        try:
            start = loop.start.evaluate(bindings)
            end = loop.end.evaluate(bindings)
            step = loop.step.evaluate(bindings)
        except (KeyError, ZeroDivisionError):
            return 0.0
        if step <= 0:
            return 0.0
        return max(0.0, (end - start) / step)


class _NestStatistics:
    """Collects flop and memory-traffic statistics of one loop nest."""

    def __init__(self, machine: MachineModel, arrays: Mapping[str, Array],
                 parameters: Mapping[str, float],
                 touched: Optional[Dict[str, float]] = None):
        self.machine = machine
        self.arrays = arrays
        self.parameters = dict(parameters)
        self._touched = touched if touched is not None else {}
        self.flops = 0.0
        self.scalar_flops = 0.0
        self.vector_flops = 0.0
        self.loop_iterations = 0.0
        self.write_iterations = 0.0
        self.any_vectorized = False
        self.bytes_by_level: Dict[str, float] = {lvl: 0.0 for lvl in MEMORY_LEVELS}
        self._frames: List[_LoopFrame] = []
        self._pressure_cache: Dict[int, float] = {}
        #: Cold-miss volume already charged per container (the first touch of
        #: a container is charged once, not once per syntactic access).
        self._cold_charged: Dict[str, float] = {}

    # -- traversal ------------------------------------------------------------------

    def walk(self, node: Node) -> None:
        if isinstance(node, Loop):
            self._walk_loop(node)
        elif isinstance(node, Computation):
            self._handle_computation(node)
        elif isinstance(node, LibraryCall):
            self._handle_library_call(node)

    def _walk_loop(self, loop: Loop) -> None:
        env = {frame.loop.iterator: frame.midpoint for frame in self._frames}
        bindings = {**self.parameters, **env}
        try:
            start = loop.start.evaluate(bindings)
            end = loop.end.evaluate(bindings)
            step = loop.step.evaluate(bindings)
        except (KeyError, ZeroDivisionError):
            start, end, step = 0.0, 0.0, 1.0
        trip = max(0.0, (end - start) / step) if step > 0 else 0.0
        midpoint = start + (end - start) / 2.0

        outer_iterations = 1.0
        for frame in self._frames:
            outer_iterations *= max(frame.trip, 1.0)
        effective_unroll = max(1, loop.unroll)
        if loop.vectorized:
            effective_unroll *= self.machine.vector_width
        self.loop_iterations += outer_iterations * trip / effective_unroll
        if loop.vectorized:
            self.any_vectorized = True

        self._frames.append(_LoopFrame(loop, trip, midpoint))
        for child in loop.body:
            self.walk(child)
        self._frames.pop()

    def _handle_library_call(self, call: LibraryCall) -> None:
        flops = _safe_flops(call, self.parameters)
        multiplier = 1.0
        for frame in self._frames:
            multiplier *= max(frame.trip, 1.0)
        self.flops += flops * multiplier
        # Library routines are hand-vectorized.
        self.vector_flops += flops * multiplier
        for name in set(call.inputs) | set(call.outputs):
            if name in self.arrays:
                self.bytes_by_level["DRAM"] += (
                    self.arrays[name].size_in_bytes(self.parameters) * multiplier)

    # -- per computation --------------------------------------------------------------

    def _loop_register_pressure(self, loop: Loop) -> float:
        """Distinct values live in one iteration of ``loop``'s directly nested
        statements (operands plus temporaries), used as a spill predictor."""
        key = id(loop)
        if key in self._pressure_cache:
            return self._pressure_cache[key]
        operands = 0
        for child in loop.body:
            if isinstance(child, Computation):
                operands += len(child.reads()) + 1
        self._pressure_cache[key] = float(operands)
        return float(operands)

    def _handle_computation(self, comp: Computation) -> None:
        iterations = 1.0
        for frame in self._frames:
            iterations *= max(frame.trip, 1.0)
        comp_flops = count_flops(comp.value) * iterations
        self.flops += comp_flops
        self.write_iterations += iterations

        # Effective vectorization: an enclosing loop is marked SIMD and the
        # innermost loop body fits the register budget.  Oversized bodies
        # (heavily inlined/unrolled code such as the original CLOUDSC erosion
        # loop) fall back to scalar execution and pay spill traffic.
        innermost = self._frames[-1].loop if self._frames else None
        pressure = self._loop_register_pressure(innermost) if innermost else 0.0
        simd_marked = any(frame.loop.vectorized for frame in self._frames)
        if simd_marked and pressure <= REGISTER_BUDGET:
            self.vector_flops += comp_flops
        else:
            self.scalar_flops += comp_flops
        if pressure > REGISTER_BUDGET:
            spilled = pressure - REGISTER_BUDGET
            self.bytes_by_level["L1"] += iterations * spilled * 2.0 * 8.0

        iterators = [frame.loop.iterator for frame in self._frames]
        trips = [max(frame.trip, 1.0) for frame in self._frames]
        element = 8.0
        line = float(self.machine.line_bytes)

        accesses = computation_accesses(comp, iterators)
        # Footprint of one iteration of each loop level: the distinct bytes all
        # accesses of this computation touch inside that level.  Used to decide
        # which cache level serves temporal re-use.
        level_footprints = self._level_footprints(accesses, iterators, trips, element, line)

        for access in accesses:
            if access.array not in self.arrays:
                continue
            arr = self.arrays[access.array]
            elem = float(arr.element_size)
            strides = arr.row_major_strides(self._shape_bindings(arr))
            self._account_access(access, iterators, trips, strides, elem, line,
                                 level_footprints, iterations)

    def _shape_bindings(self, arr: Array) -> Dict[str, int]:
        bindings = dict()
        for dim in arr.shape:
            for symbol in dim.free_symbols():
                bindings[symbol] = int(self.parameters.get(symbol, 256))
        return {**{k: int(v) for k, v in self.parameters.items()
                   if isinstance(v, (int, float))}, **bindings}

    def _access_uses(self, access, iterator: str) -> bool:
        if not access.affine:
            return True
        return access.uses_iterator(iterator)

    def _access_stride(self, access, iterator: str, strides: Sequence[int]) -> Optional[float]:
        if not access.affine or len(strides) != len(access.indices):
            return None
        movement = 0.0
        for idx, stride in zip(access.indices, strides):
            movement += idx.coefficient(iterator) * stride
        return movement

    def _distinct_bytes(self, access, iterators: Sequence[str], trips: Sequence[float],
                        strides: Sequence[int], elem: float, line: float,
                        from_level: int) -> float:
        """Distinct bytes this access touches inside loops ``from_level..n``."""
        distinct = 1.0
        min_stride_bytes: Optional[float] = None
        for level in range(from_level, len(iterators)):
            iterator = iterators[level]
            if self._access_uses(access, iterator):
                distinct *= max(trips[level], 1.0)
                stride = self._access_stride(access, iterator, strides)
                stride_bytes = (abs(stride) * elem if stride is not None and stride != 0
                                else line)
                if min_stride_bytes is None or stride_bytes < min_stride_bytes:
                    min_stride_bytes = stride_bytes
        if distinct <= 1.0 or min_stride_bytes is None:
            return elem
        # Bytes per distinct element: if *any* used loop walks the array with
        # (near-)unit stride, consecutive elements share cache lines even when
        # another loop strides across rows (the spatial reuse is recovered at
        # some cache level); only accesses with no dense dimension at all pull
        # a full line per element.
        bytes_per_element = min(max(min_stride_bytes, elem), line)
        return max(distinct * bytes_per_element, elem)

    def _level_footprints(self, accesses, iterators, trips, elem, line) -> List[float]:
        footprints = []
        for level in range(len(iterators) + 1):
            total = 0.0
            for access in accesses:
                if access.array not in self.arrays:
                    continue
                arr = self.arrays[access.array]
                strides = arr.row_major_strides(self._shape_bindings(arr))
                total += self._distinct_bytes(access, iterators, trips, strides,
                                              float(arr.element_size), line, level)
            footprints.append(total)
        return footprints

    def _account_access(self, access, iterators: Sequence[str], trips: Sequence[float],
                        strides: Sequence[int], elem: float, line: float,
                        level_footprints: List[float], iterations: float) -> None:
        # Every dynamic access touches L1 (or a register); charge L1 port traffic.
        self.bytes_by_level["L1"] += iterations * elem

        # Cold traffic: each distinct element is loaded at least once per
        # nest.  The first nest touching a container pays DRAM; later nests
        # (and later accesses within the same nest) re-read it from the cache
        # level its footprint fits in.
        cold = self._distinct_bytes(access, iterators, trips, strides, elem, line, 0)
        already_nest = self._cold_charged.get(access.array, 0.0)
        volume = max(0.0, cold - already_nest)
        if volume > 0:
            if access.array in self._touched:
                source = self.machine.smallest_level_fitting(cold)
                if source != "L1":
                    self.bytes_by_level[source] += volume
            else:
                self.bytes_by_level["DRAM"] += volume
            self._cold_charged[access.array] = cold
        self._touched[access.array] = max(self._touched.get(access.array, 0.0), cold)

        # Temporal re-use: for each loop the access is invariant to, the data
        # touched inside that loop is re-swept (trip - 1) times per execution
        # of the outer loops; the sweep is served by the smallest cache level
        # that holds the footprint of one iteration of that loop.
        for level, iterator in enumerate(iterators):
            if self._access_uses(access, iterator):
                continue
            resweeps = max(trips[level] - 1.0, 0.0)
            if resweeps <= 0:
                continue
            outer = 1.0
            for outer_level in range(level):
                outer *= max(trips[outer_level], 1.0)
            volume = self._distinct_bytes(access, iterators, trips, strides, elem,
                                          line, level + 1)
            footprint = level_footprints[level + 1] if level + 1 < len(level_footprints) else elem
            source = self.machine.smallest_level_fitting(footprint)
            if source == "L1":
                # Already charged through the per-access L1 term.
                continue
            self.bytes_by_level[source] += resweeps * outer * volume

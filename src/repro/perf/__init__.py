"""Performance-model substrate: machine model, cache simulator, cost model."""

from .cache import CacheHierarchy, CacheLevelStats, CacheReport
from .machine import DEFAULT_MACHINE, CacheLevel, MachineModel
from .measurement import (MeasurementProtocol, MeasurementResult,
                          measure_with_noise)
from .model import CostModel, NestCost, RuntimeEstimate, count_flops
from .trace import (TraceGenerator, TraceLayout, build_layout, count_accesses,
                    generate_trace)

__all__ = [
    "CacheHierarchy", "CacheLevelStats", "CacheReport",
    "DEFAULT_MACHINE", "CacheLevel", "MachineModel",
    "MeasurementProtocol", "MeasurementResult", "measure_with_noise",
    "CostModel", "NestCost", "RuntimeEstimate", "count_flops",
    "TraceGenerator", "TraceLayout", "build_layout", "count_accesses",
    "generate_trace",
]

"""Machine model.

The paper's measurements were taken on a dual-socket Intel Xeon E5-2680v3
(12 cores, 2.5 GHz, AVX2, 64 GB RAM).  This module describes that machine —
cache hierarchy, bandwidths, vector width, core count — as the parameter set
of the analytical performance model and the cache simulator.  The default
values approximate the E5-2680v3; experiments can instantiate other machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass(frozen=True)
class CacheLevel:
    """One level of the data-cache hierarchy."""

    name: str
    size_bytes: int
    line_bytes: int
    associativity: int
    #: Sustained bandwidth for this level, bytes per second (per core for L1/L2,
    #: shared for L3).
    bandwidth: float
    #: Load-to-use latency in cycles (used by the simulator's cost report).
    latency_cycles: int
    shared: bool = False

    @property
    def num_sets(self) -> int:
        return max(1, self.size_bytes // (self.line_bytes * self.associativity))


@dataclass(frozen=True)
class MachineModel:
    """Parameters of the simulated machine."""

    name: str = "xeon-e5-2680v3"
    cores: int = 12
    frequency_hz: float = 2.5e9
    #: SIMD width in double-precision elements (AVX2 = 4).
    vector_width: int = 4
    #: Scalar floating-point operations per cycle per core (one FMA pipe).
    scalar_flops_per_cycle: float = 2.0
    #: Peak vector FLOPs per cycle per core (2 FMA pipes x width x 2 flops).
    vector_flops_per_cycle: float = 16.0
    #: Main-memory bandwidth in bytes per second (single socket, stream-like).
    dram_bandwidth: float = 50e9
    #: Fraction of DRAM bandwidth a single core can sustain.
    single_core_dram_fraction: float = 0.30
    #: Efficiency of the optimized BLAS library relative to peak FLOP/s.
    blas_efficiency: float = 0.80
    #: Per-parallel-region overhead in seconds (thread fork/join).
    parallel_overhead_s: float = 5e-6
    #: Cost of one atomic read-modify-write, in seconds.
    atomic_cost_s: float = 2.0e-8
    #: Per-iteration loop bookkeeping cost in cycles (vectorized loops retire
    #: ``vector_width`` iterations per issue, unrolled loops amortize further).
    loop_overhead_cycles: float = 1.0
    cache_levels: Tuple[CacheLevel, ...] = (
        CacheLevel("L1", 32 * 1024, 64, 8, 300e9, 4),
        CacheLevel("L2", 256 * 1024, 64, 8, 120e9, 12),
        CacheLevel("L3", 30 * 1024 * 1024, 64, 20, 80e9, 40, shared=True),
    )

    @property
    def line_bytes(self) -> int:
        return self.cache_levels[0].line_bytes

    @property
    def peak_flops(self) -> float:
        """Peak double-precision FLOP/s of the full machine."""
        return self.cores * self.frequency_hz * self.vector_flops_per_cycle

    @property
    def peak_flops_per_core(self) -> float:
        return self.frequency_hz * self.vector_flops_per_cycle

    def scalar_flops(self, cores: int = 1) -> float:
        return cores * self.frequency_hz * self.scalar_flops_per_cycle

    def level_by_name(self, name: str) -> CacheLevel:
        for level in self.cache_levels:
            if level.name == name:
                return level
        raise KeyError(f"no cache level named {name!r}")

    def smallest_level_fitting(self, footprint_bytes: float) -> str:
        """Name of the smallest cache level that can hold ``footprint_bytes``.

        Returns ``"DRAM"`` when the footprint exceeds the last-level cache.
        """
        for level in self.cache_levels:
            if footprint_bytes <= level.size_bytes:
                return level.name
        return "DRAM"

    def bandwidth_of(self, level_name: str, threads: int = 1) -> float:
        """Effective bandwidth of a level for ``threads`` active cores."""
        if level_name == "DRAM":
            single = self.dram_bandwidth * self.single_core_dram_fraction
            return min(self.dram_bandwidth, single * max(1, threads))
        level = self.level_by_name(level_name)
        if level.shared:
            return level.bandwidth
        return level.bandwidth * max(1, threads)


#: The default machine used throughout the experiments.
DEFAULT_MACHINE = MachineModel()

"""Measurement protocol.

The paper measures "according to a standard framework [Hoefler & Belli,
SC'15], where measurements are taken until the variance drops below five
percent, and the resulting median is reported as the runtime".  This module
implements that protocol over an arbitrary measurement callable.  For the
analytical cost model the callable is deterministic, so the protocol
converges after the minimum number of repetitions; experiments can inject a
noise model to exercise the full loop, which the test-suite uses to verify
the stopping rule.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np


@dataclass
class MeasurementResult:
    """Outcome of a variance-bounded measurement series."""

    samples: List[float]
    median: float
    mean: float
    coefficient_of_variation: float
    converged: bool

    @property
    def repetitions(self) -> int:
        return len(self.samples)


@dataclass
class MeasurementProtocol:
    """Repeat a measurement until its relative variation is below a bound."""

    max_relative_variation: float = 0.05
    min_repetitions: int = 3
    max_repetitions: int = 50

    def run(self, measure: Callable[[], float]) -> MeasurementResult:
        """Call ``measure`` until the coefficient of variation is low enough."""
        samples: List[float] = []
        converged = False
        while len(samples) < self.max_repetitions:
            samples.append(float(measure()))
            if len(samples) < self.min_repetitions:
                continue
            mean = statistics.fmean(samples)
            if mean == 0:
                converged = True
                break
            deviation = statistics.pstdev(samples)
            if deviation / mean <= self.max_relative_variation:
                converged = True
                break
        mean = statistics.fmean(samples)
        cov = statistics.pstdev(samples) / mean if mean else 0.0
        return MeasurementResult(
            samples=samples,
            median=statistics.median(samples),
            mean=mean,
            coefficient_of_variation=cov,
            converged=converged,
        )


def measure_with_noise(base_runtime: float, noise: float = 0.02,
                       seed: Optional[int] = None,
                       protocol: Optional[MeasurementProtocol] = None
                       ) -> MeasurementResult:
    """Measure a deterministic runtime under multiplicative Gaussian noise.

    This mimics run-to-run variation of real measurements so that the
    experiment harness exercises the full variance-bounded protocol rather
    than short-circuiting on identical samples.
    """
    rng = np.random.default_rng(seed)
    protocol = protocol or MeasurementProtocol()

    def sample() -> float:
        return max(0.0, base_runtime * (1.0 + rng.normal(0.0, noise)))

    return protocol.run(sample)

"""Memory address trace generation.

The cache simulator consumes a sequence of ``(address, is_write)`` events.
This module walks a program (or a single nest) under concrete parameter
bindings and emits that sequence in execution order, assigning each container
a distinct, line-aligned base address in a flat virtual address space.

Trace generation executes the loop structure but not the arithmetic, so it is
much faster than full interpretation; it is still linear in the number of
dynamic accesses, so callers use reduced problem sizes (the CLOUDSC erosion
kernel of Table 1 is small enough to trace exactly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from ..ir.arrays import Array
from ..ir.nodes import Computation, LibraryCall, Loop, Node, Program
from ..ir.serialization import node_from_dict
from ..ir.symbols import Expr

#: Containers are placed at line-aligned addresses with this alignment.
BASE_ALIGNMENT = 4096


@dataclass(frozen=True)
class TraceLayout:
    """Base addresses and strides of every container."""

    bases: Dict[str, int]
    strides: Dict[str, Tuple[int, ...]]
    element_sizes: Dict[str, int]

    def address(self, array: str, index: Tuple[int, ...]) -> int:
        base = self.bases[array]
        strides = self.strides[array]
        offset = 0
        for value, stride in zip(index, strides):
            offset += value * stride
        return base + offset * self.element_sizes[array]


def build_layout(program: Program, parameters: Mapping[str, int]) -> TraceLayout:
    """Assign every container a base address and row-major strides."""
    bases: Dict[str, int] = {}
    strides: Dict[str, Tuple[int, ...]] = {}
    element_sizes: Dict[str, int] = {}
    cursor = BASE_ALIGNMENT
    for name, arr in program.arrays.items():
        bases[name] = cursor
        strides[name] = arr.row_major_strides(parameters) if arr.rank else (1,)
        element_sizes[name] = arr.element_size
        size = max(arr.size_in_bytes(parameters), arr.element_size)
        cursor += ((size + BASE_ALIGNMENT - 1) // BASE_ALIGNMENT) * BASE_ALIGNMENT
    return TraceLayout(bases, strides, element_sizes)


class TraceGenerator:
    """Walks a program and yields ``(address, is_write)`` events.

    ``register_budget`` models register allocation: scalar temporaries
    (transient rank-0 containers) inside an innermost loop whose body fits the
    budget live entirely in registers and emit no memory traffic; bodies that
    exceed the budget spill, so their scalar accesses appear in the trace —
    this is what makes the original (heavily inlined) CLOUDSC erosion loop
    produce more L1 loads and evictions than the normalized version (Table 1).
    """

    def __init__(self, program: Program, parameters: Mapping[str, int],
                 layout: Optional[TraceLayout] = None,
                 register_budget: int = 16):
        self.program = program
        self.parameters = dict(parameters)
        self.layout = layout or build_layout(program, parameters)
        self.register_budget = register_budget

    def _loop_pressure(self, loop: Loop) -> int:
        operands = 0
        for child in loop.body:
            if isinstance(child, Computation):
                operands += len(child.reads()) + 1
        return operands

    def _is_register_scalar(self, array: str, enclosing: Optional[Loop]) -> bool:
        declared = self.program.arrays.get(array)
        if declared is None or not declared.transient or declared.rank != 0:
            return False
        if enclosing is None:
            return True
        return self._loop_pressure(enclosing) <= self.register_budget

    def _eval(self, expr: Expr, env: Dict[str, int]) -> int:
        return int(expr.evaluate({**self.parameters, **env}))

    def trace(self) -> Iterator[Tuple[int, bool]]:
        env: Dict[str, int] = {}
        for node in self.program.body:
            yield from self._trace_node(node, env, None)

    def trace_node(self, node: Node) -> Iterator[Tuple[int, bool]]:
        """Trace a single node (e.g. one loop nest) of the program."""
        yield from self._trace_node(node, {}, None)

    def _trace_node(self, node: Node, env: Dict[str, int],
                    enclosing: Optional[Loop]) -> Iterator[Tuple[int, bool]]:
        if isinstance(node, Loop):
            start = self._eval(node.start, env)
            end = self._eval(node.end, env)
            step = self._eval(node.step, env)
            for value in range(start, end, step):
                inner = dict(env)
                inner[node.iterator] = value
                for child in node.body:
                    yield from self._trace_node(child, inner, node)
        elif isinstance(node, Computation):
            for access in node.reads():
                if self._is_register_scalar(access.array, enclosing):
                    continue
                index = tuple(self._eval(i, env) for i in access.indices)
                yield self.layout.address(access.array, index), False
            target = node.target
            if not self._is_register_scalar(target.array, enclosing):
                index = tuple(self._eval(i, env) for i in target.indices)
                yield self.layout.address(target.array, index), True
        elif isinstance(node, LibraryCall):
            original = node.metadata.get("original")
            if original is not None:
                yield from self._trace_node(node_from_dict(original), env, enclosing)
            else:
                # Builtin routines touch each operand once, streaming.
                for name in list(node.inputs) + list(node.outputs):
                    arr = self.program.arrays[name]
                    elements = arr.size_in_elements(self.parameters)
                    for element in range(elements):
                        yield (self.layout.bases[name]
                               + element * arr.element_size), name in node.outputs


def generate_trace(program: Program, parameters: Mapping[str, int]
                   ) -> List[Tuple[int, bool]]:
    """Materialize the full trace of a program (small sizes only)."""
    return list(TraceGenerator(program, parameters).trace())


def count_accesses(program: Program, parameters: Mapping[str, int]) -> int:
    """Number of dynamic memory accesses the trace would contain."""
    total = 0

    def recurse(node: Node, multiplier: int) -> None:
        nonlocal total
        if isinstance(node, Loop):
            try:
                trips = node.trip_count(dict(parameters))
            except KeyError:
                trips = 0
            for child in node.body:
                recurse(child, multiplier * trips)
        elif isinstance(node, Computation):
            total += multiplier * (len(node.reads()) + 1)
        elif isinstance(node, LibraryCall):
            original = node.metadata.get("original")
            if original is not None:
                recurse(node_from_dict(original), multiplier)

    for node in program.body:
        recurse(node, 1)
    return total

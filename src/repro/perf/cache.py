"""Multi-level set-associative LRU cache simulator.

The CLOUDSC case study (Table 1) reports L1 loads and evictions before and
after the optimization.  The paper measures these with hardware counters; we
measure them by simulating the cache hierarchy on the program's memory
address trace.  The simulator is exact for the modeled hierarchy: inclusive,
write-allocate, write-back, true-LRU replacement.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from .machine import CacheLevel, MachineModel, DEFAULT_MACHINE


@dataclass
class CacheLevelStats:
    """Access statistics of one cache level."""

    name: str
    loads: int = 0
    stores: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.loads + self.stores

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "loads": self.loads, "stores": self.stores, "hits": self.hits,
            "misses": self.misses, "evictions": self.evictions,
            "writebacks": self.writebacks, "hit_rate": self.hit_rate,
        }


class _SetAssociativeCache:
    """One level: an array of LRU sets holding line tags."""

    def __init__(self, level: CacheLevel):
        self.level = level
        self.sets: List[OrderedDict] = [OrderedDict() for _ in range(level.num_sets)]
        self.stats = CacheLevelStats(level.name)

    def _locate(self, address: int) -> Tuple[int, int]:
        line = address // self.level.line_bytes
        set_index = line % self.level.num_sets
        return line, set_index

    def access(self, address: int, is_write: bool) -> bool:
        """Access one address; returns True on hit.

        On a miss the line is installed (write-allocate); the evicted line, if
        any, is counted and a writeback is charged when it was dirty.
        """
        line, set_index = self._locate(address)
        cache_set = self.sets[set_index]
        if is_write:
            self.stats.stores += 1
        else:
            self.stats.loads += 1

        if line in cache_set:
            self.stats.hits += 1
            dirty = cache_set.pop(line)
            cache_set[line] = dirty or is_write
            return True

        self.stats.misses += 1
        if len(cache_set) >= self.level.associativity:
            _evicted_line, was_dirty = cache_set.popitem(last=False)
            self.stats.evictions += 1
            if was_dirty:
                self.stats.writebacks += 1
        cache_set[line] = is_write
        return False


class CacheHierarchy:
    """A multi-level cache fed with an address trace."""

    def __init__(self, machine: MachineModel = DEFAULT_MACHINE):
        self.machine = machine
        self.levels = [_SetAssociativeCache(level) for level in machine.cache_levels]
        self.dram_accesses = 0

    def access(self, address: int, is_write: bool = False) -> str:
        """Perform one access; returns the name of the level that served it."""
        for cache in self.levels:
            if cache.access(address, is_write):
                return cache.level.name
        self.dram_accesses += 1
        return "DRAM"

    def run_trace(self, trace: Iterable[Tuple[int, bool]]) -> "CacheReport":
        for address, is_write in trace:
            self.access(address, is_write)
        return self.report()

    def report(self) -> "CacheReport":
        return CacheReport(
            levels={cache.level.name: cache.stats for cache in self.levels},
            dram_accesses=self.dram_accesses,
            line_bytes=self.machine.line_bytes,
        )


@dataclass
class CacheReport:
    """Aggregated result of a cache simulation."""

    levels: Dict[str, CacheLevelStats]
    dram_accesses: int
    line_bytes: int

    def level(self, name: str) -> CacheLevelStats:
        return self.levels[name]

    @property
    def l1_loads(self) -> int:
        return self.levels["L1"].loads if "L1" in self.levels else 0

    @property
    def l1_evictions(self) -> int:
        return self.levels["L1"].evictions if "L1" in self.levels else 0

    def dram_bytes(self) -> int:
        return self.dram_accesses * self.line_bytes

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        out = {name: stats.as_dict() for name, stats in self.levels.items()}
        out["DRAM"] = {"accesses": self.dram_accesses, "bytes": self.dram_bytes()}
        return out

"""Visitors and structural rewriting utilities for loop-nest trees."""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Tuple

from .nodes import Computation, LibraryCall, Loop, Node, Program


class NodeVisitor:
    """Pre-order visitor over programs and loop trees.

    Subclasses override ``visit_loop``, ``visit_computation`` and
    ``visit_library_call``; the default implementations recurse.
    """

    def visit_program(self, program: Program) -> None:
        for node in program.body:
            self.visit(node)

    def visit(self, node: Node) -> None:
        if isinstance(node, Loop):
            self.visit_loop(node)
        elif isinstance(node, Computation):
            self.visit_computation(node)
        elif isinstance(node, LibraryCall):
            self.visit_library_call(node)
        else:
            raise TypeError(f"unexpected node type {type(node).__name__}")

    def visit_loop(self, loop: Loop) -> None:
        for child in loop.body:
            self.visit(child)

    def visit_computation(self, comp: Computation) -> None:
        return None

    def visit_library_call(self, call: LibraryCall) -> None:
        return None


class NodeTransformer:
    """Post-order rewriting visitor.

    ``visit_*`` methods return a node, a list of nodes (to splice in place),
    or ``None`` (to delete the node).
    """

    def transform_program(self, program: Program) -> Program:
        program.body = self._transform_body(program.body)
        return program

    def _transform_body(self, body: List[Node]) -> List[Node]:
        new_body: List[Node] = []
        for node in body:
            result = self.transform(node)
            if result is None:
                continue
            if isinstance(result, list):
                new_body.extend(result)
            else:
                new_body.append(result)
        return new_body

    def transform(self, node: Node):
        if isinstance(node, Loop):
            node.body = self._transform_body(node.body)
            return self.visit_loop(node)
        if isinstance(node, Computation):
            return self.visit_computation(node)
        if isinstance(node, LibraryCall):
            return self.visit_library_call(node)
        raise TypeError(f"unexpected node type {type(node).__name__}")

    def visit_loop(self, loop: Loop):
        return loop

    def visit_computation(self, comp: Computation):
        return comp

    def visit_library_call(self, call: LibraryCall):
        return call


def walk_with_ancestors(program: Program) -> Iterator[Tuple[Node, Tuple[Loop, ...]]]:
    """Yield ``(node, enclosing_loops)`` for every node in program order.

    ``enclosing_loops`` is ordered from outermost to innermost and does not
    include the node itself.
    """

    def recurse(node: Node, ancestors: Tuple[Loop, ...]) -> Iterator[Tuple[Node, Tuple[Loop, ...]]]:
        yield node, ancestors
        if isinstance(node, Loop):
            inner = ancestors + (node,)
            for child in node.body:
                yield from recurse(child, inner)

    for top in program.body:
        yield from recurse(top, ())


def enclosing_loops_of(program: Program, target: Node) -> Tuple[Loop, ...]:
    """Return the loops enclosing ``target`` (outermost first)."""
    for node, ancestors in walk_with_ancestors(program):
        if node is target:
            return ancestors
    raise ValueError("target node is not part of the program")


def find_parent(program: Program, target: Node) -> Tuple[Optional[Loop], List[Node]]:
    """Return ``(parent_loop, body_list)`` containing ``target``.

    ``parent_loop`` is ``None`` when the node sits at the program's top level.
    """
    if target in program.body:
        return None, program.body
    for loop in program.iter_loops():
        if target in loop.body:
            return loop, loop.body
    raise ValueError("target node is not part of the program")


def replace_node(program: Program, old: Node, new_nodes: List[Node]) -> None:
    """Replace ``old`` with ``new_nodes`` in place, wherever it occurs."""
    _, body = find_parent(program, old)
    index = body.index(old)
    body[index:index + 1] = new_nodes


def map_computations(program: Program,
                     fn: Callable[[Computation], Computation]) -> Program:
    """Apply ``fn`` to every computation, rebuilding the tree in place."""

    class _Mapper(NodeTransformer):
        def visit_computation(self, comp: Computation):
            return fn(comp)

    return _Mapper().transform_program(program)

"""Serialization of programs and expressions to and from plain dictionaries.

The transfer-tuning database (Section 4) stores optimization recipes keyed by
loop-nest embeddings.  Persisting those databases, and exchanging loop nests
with the Tiramisu-style standalone search (which consumes a JSON
representation in the paper), requires a stable serialization format.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from .arrays import Array
from .nodes import ArrayAccess, Computation, LibraryCall, Loop, Node, Program
from .symbols import (Add, Call, Const, Expr, FloorDiv, Max, Min, Mod, Mul,
                      Read, Sym)


def expr_to_dict(expr: Expr) -> Dict[str, Any]:
    """Convert an expression to a JSON-serializable dictionary."""
    if isinstance(expr, Const):
        return {"kind": "const", "value": expr.value}
    if isinstance(expr, Sym):
        return {"kind": "sym", "name": expr.name}
    if isinstance(expr, Add):
        return {"kind": "add", "terms": [expr_to_dict(t) for t in expr.terms]}
    if isinstance(expr, Mul):
        return {"kind": "mul", "factors": [expr_to_dict(f) for f in expr.factors]}
    if isinstance(expr, FloorDiv):
        return {"kind": "floordiv", "numerator": expr_to_dict(expr.numerator),
                "denominator": expr_to_dict(expr.denominator)}
    if isinstance(expr, Mod):
        return {"kind": "mod", "numerator": expr_to_dict(expr.numerator),
                "denominator": expr_to_dict(expr.denominator)}
    if isinstance(expr, Min):
        return {"kind": "min", "args": [expr_to_dict(a) for a in expr.args]}
    if isinstance(expr, Max):
        return {"kind": "max", "args": [expr_to_dict(a) for a in expr.args]}
    if isinstance(expr, Read):
        return {"kind": "read", "array": expr.array,
                "indices": [expr_to_dict(i) for i in expr.indices]}
    if isinstance(expr, Call):
        return {"kind": "call", "func": expr.func,
                "args": [expr_to_dict(a) for a in expr.args]}
    raise TypeError(f"cannot serialize expression of type {type(expr).__name__}")


def expr_from_dict(data: Dict[str, Any]) -> Expr:
    """Inverse of :func:`expr_to_dict`.

    Decoded expressions are hash-consed (:func:`repro.ir.canonical.intern_expr`),
    so identical sub-trees across cache entries share one interned instance.
    """
    from .canonical import intern_expr
    return intern_expr(_expr_from_dict(data))


def _expr_from_dict(data: Dict[str, Any]) -> Expr:
    kind = data["kind"]
    if kind == "const":
        return Const(data["value"])
    if kind == "sym":
        return Sym(data["name"])
    if kind == "add":
        return Add.make([expr_from_dict(t) for t in data["terms"]])
    if kind == "mul":
        return Mul.make([expr_from_dict(f) for f in data["factors"]])
    if kind == "floordiv":
        return FloorDiv.make(expr_from_dict(data["numerator"]),
                             expr_from_dict(data["denominator"]))
    if kind == "mod":
        return Mod.make(expr_from_dict(data["numerator"]),
                        expr_from_dict(data["denominator"]))
    if kind == "min":
        return Min.make([expr_from_dict(a) for a in data["args"]])
    if kind == "max":
        return Max.make([expr_from_dict(a) for a in data["args"]])
    if kind == "read":
        return Read(data["array"], [expr_from_dict(i) for i in data["indices"]])
    if kind == "call":
        return Call(data["func"], [expr_from_dict(a) for a in data["args"]])
    raise ValueError(f"unknown expression kind {kind!r}")


def node_to_dict(node: Node) -> Dict[str, Any]:
    """Convert a loop-tree node to a dictionary."""
    if isinstance(node, Loop):
        return {
            "kind": "loop",
            "iterator": node.iterator,
            "start": expr_to_dict(node.start),
            "end": expr_to_dict(node.end),
            "step": expr_to_dict(node.step),
            "parallel": node.parallel,
            "vectorized": node.vectorized,
            "unroll": node.unroll,
            "tile_of": node.tile_of,
            "body": [node_to_dict(child) for child in node.body],
        }
    if isinstance(node, Computation):
        return {
            "kind": "computation",
            "name": node.name,
            "target": {"array": node.target.array,
                       "indices": [expr_to_dict(i) for i in node.target.indices]},
            "value": expr_to_dict(node.value),
        }
    if isinstance(node, LibraryCall):
        return {
            "kind": "library_call",
            "routine": node.routine,
            "outputs": list(node.outputs),
            "inputs": list(node.inputs),
            "flops": expr_to_dict(node.flop_expr),
            "metadata": dict(node.metadata),
        }
    raise TypeError(f"cannot serialize node of type {type(node).__name__}")


def node_from_dict(data: Dict[str, Any]) -> Node:
    """Inverse of :func:`node_to_dict`."""
    kind = data["kind"]
    if kind == "loop":
        return Loop(
            iterator=data["iterator"],
            start=expr_from_dict(data["start"]),
            end=expr_from_dict(data["end"]),
            step=expr_from_dict(data["step"]),
            body=[node_from_dict(child) for child in data["body"]],
            parallel=data.get("parallel", False),
            vectorized=data.get("vectorized", False),
            unroll=data.get("unroll", 1),
            tile_of=data.get("tile_of"),
        )
    if kind == "computation":
        target = ArrayAccess(data["target"]["array"],
                             [expr_from_dict(i) for i in data["target"]["indices"]])
        return Computation(target, expr_from_dict(data["value"]), name=data["name"])
    if kind == "library_call":
        return LibraryCall(data["routine"], data["outputs"], data["inputs"],
                           expr_from_dict(data["flops"]), data.get("metadata"))
    raise ValueError(f"unknown node kind {kind!r}")


def program_to_dict(program: Program) -> Dict[str, Any]:
    """Convert a program to a dictionary."""
    return {
        "name": program.name,
        "parameters": list(program.parameters),
        "arrays": [
            {
                "name": arr.name,
                "shape": [expr_to_dict(dim) for dim in arr.shape],
                "dtype": arr.dtype,
                "transient": arr.transient,
            }
            for arr in program.arrays.values()
        ],
        "body": [node_to_dict(node) for node in program.body],
    }


def program_from_dict(data: Dict[str, Any]) -> Program:
    """Inverse of :func:`program_to_dict`."""
    arrays = [
        Array(name=entry["name"],
              shape=tuple(expr_from_dict(dim) for dim in entry["shape"]),
              dtype=entry.get("dtype", "float64"),
              transient=entry.get("transient", False))
        for entry in data["arrays"]
    ]
    body = [node_from_dict(node) for node in data["body"]]
    return Program(data["name"], arrays, body, data.get("parameters", []))


def program_to_json(program: Program, indent: int = 2) -> str:
    """Serialize a program to a JSON string."""
    return json.dumps(program_to_dict(program), indent=indent)


def program_from_json(text: str) -> Program:
    """Deserialize a program from a JSON string."""
    return program_from_dict(json.loads(text))

"""Structural validation of loop-nest programs.

Validation catches malformed IR early: undeclared containers, rank
mismatches, duplicate or shadowed iterators, and references to unbound
symbols.  Every frontend and transformation is expected to leave programs
in a state that passes :func:`validate_program`.
"""

from __future__ import annotations

from typing import List, Set

from .nodes import ArrayAccess, Computation, LibraryCall, Loop, Node, Program
from .symbols import Read, Expr


class ValidationError(Exception):
    """Raised when a program violates structural invariants."""

    def __init__(self, errors: List[str]):
        super().__init__("; ".join(errors))
        self.errors = errors


def _collect_reads(expr: Expr) -> List[Read]:
    found: List[Read] = []

    def visit(node: Expr) -> None:
        if isinstance(node, Read):
            found.append(node)
        for child in node.children():
            visit(child)

    visit(expr)
    return found


def validate_program(program: Program, strict: bool = True) -> List[str]:
    """Validate ``program`` and return the list of problems found.

    With ``strict=True`` (the default) a :class:`ValidationError` is raised
    if any problem is found; otherwise the list is returned for inspection.
    """
    errors: List[str] = []
    iterator_names: Set[str] = set()

    def check_access(access: ArrayAccess, where: str, visible: Set[str]) -> None:
        if access.array not in program.arrays:
            errors.append(f"{where}: access to undeclared container {access.array!r}")
            return
        declared = program.arrays[access.array]
        if declared.rank != access.rank:
            errors.append(
                f"{where}: container {access.array!r} has rank {declared.rank} "
                f"but is accessed with {access.rank} indices")
        unknown = access.free_symbols() - visible
        if unknown:
            errors.append(
                f"{where}: index uses unbound symbols {sorted(unknown)}")

    def check_node(node: Node, visible: Set[str]) -> None:
        if isinstance(node, Loop):
            if node.iterator in visible:
                errors.append(f"loop {node.iterator!r} shadows an enclosing symbol")
            iterator_names.add(node.iterator)
            bound_symbols = (node.start.free_symbols() | node.end.free_symbols()
                             | node.step.free_symbols())
            unknown = bound_symbols - visible
            if unknown:
                errors.append(
                    f"loop {node.iterator!r}: bounds use unbound symbols {sorted(unknown)}")
            inner = visible | {node.iterator}
            for child in node.body:
                check_node(child, inner)
        elif isinstance(node, Computation):
            where = f"computation {node.name}"
            check_access(node.target, where, visible)
            for access in node.reads():
                check_access(access, where, visible)
            value_symbols = {
                symbol for symbol in node.value.free_symbols()
            }
            read_symbols = set()
            for read_node in _collect_reads(node.value):
                read_symbols |= read_node.free_symbols()
            scalar_symbols = value_symbols - read_symbols
            unknown = scalar_symbols - visible
            if unknown:
                errors.append(f"{where}: value uses unbound symbols {sorted(unknown)}")
        elif isinstance(node, LibraryCall):
            for name in list(node.outputs) + list(node.inputs):
                if name not in program.arrays:
                    errors.append(
                        f"library call {node.routine}: undeclared container {name!r}")
        else:
            errors.append(f"unexpected node type {type(node).__name__}")

    visible_symbols = set(program.parameters)
    for node in program.body:
        check_node(node, visible_symbols)

    if strict and errors:
        raise ValidationError(errors)
    return errors


def assert_valid(program: Program) -> Program:
    """Validate and return ``program`` (convenience for pipelines)."""
    validate_program(program, strict=True)
    return program

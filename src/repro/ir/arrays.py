"""Array and scalar container declarations.

The symbolic loop-nest representation describes data containers by name,
symbolic shape, and element type.  Shapes may refer to size parameters
(``N``, ``M``, ...), which are bound to concrete values only when a program
is executed or measured.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence, Tuple

import numpy as np

from .symbols import Expr, ExprLike, as_expr

#: Supported element types and their NumPy equivalents.
DTYPES = {
    "float64": np.float64,
    "float32": np.float32,
    "int64": np.int64,
    "int32": np.int32,
}


@dataclass(frozen=True)
class Array:
    """A data container: an n-dimensional array or (0-dimensional) scalar.

    Attributes:
        name: Container name, unique within a program.
        shape: Symbolic extents per dimension; empty for scalars.
        dtype: Element type name (see :data:`DTYPES`).
        transient: True for temporaries introduced by transformations; such
            containers are not part of the program's observable state.
        element_size: Size in bytes of one element, used by the performance
            model to translate accesses into cache lines.
    """

    name: str
    shape: Tuple[Expr, ...] = ()
    dtype: str = "float64"
    transient: bool = False

    def __post_init__(self) -> None:
        if self.dtype not in DTYPES:
            raise ValueError(f"unsupported dtype {self.dtype!r}")
        object.__setattr__(self, "shape", tuple(as_expr(s) for s in self.shape))

    @property
    def rank(self) -> int:
        """Number of dimensions (0 for scalars)."""
        return len(self.shape)

    @property
    def is_scalar(self) -> bool:
        return self.rank == 0

    @property
    def element_size(self) -> int:
        return np.dtype(DTYPES[self.dtype]).itemsize

    def concrete_shape(self, parameters: Mapping[str, int]) -> Tuple[int, ...]:
        """Evaluate the symbolic shape under concrete parameter bindings."""
        return tuple(int(dim.evaluate(parameters)) for dim in self.shape)

    def size_in_elements(self, parameters: Mapping[str, int]) -> int:
        """Total number of elements under concrete parameter bindings."""
        total = 1
        for extent in self.concrete_shape(parameters):
            total *= extent
        return total

    def size_in_bytes(self, parameters: Mapping[str, int]) -> int:
        return self.size_in_elements(parameters) * self.element_size

    def row_major_strides(self, parameters: Mapping[str, int]) -> Tuple[int, ...]:
        """Row-major element strides for each dimension.

        The innermost (last) dimension has stride 1; this is the layout the
        paper assumes when computing stride costs for C code.
        """
        shape = self.concrete_shape(parameters)
        strides = [1] * len(shape)
        for dim in range(len(shape) - 2, -1, -1):
            strides[dim] = strides[dim + 1] * shape[dim + 1]
        return tuple(strides)

    def symbolic_strides(self) -> Tuple[Expr, ...]:
        """Row-major strides as symbolic expressions."""
        from .symbols import Const, Mul
        rank = self.rank
        strides: list = [Const(1)] * rank
        for dim in range(rank - 2, -1, -1):
            strides[dim] = Mul.make([strides[dim + 1], self.shape[dim + 1]])
        return tuple(strides)

    def allocate(self, parameters: Mapping[str, int],
                 fill: Optional[float] = None,
                 rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Allocate a NumPy array matching the declaration.

        ``fill`` initializes all elements to a constant.  If ``rng`` is given,
        the array is filled with uniform random values; otherwise it is
        zero-initialized.
        """
        shape = self.concrete_shape(parameters)
        dtype = DTYPES[self.dtype]
        if fill is not None:
            return np.full(shape, fill, dtype=dtype)
        if rng is not None:
            return rng.uniform(0.0, 1.0, size=shape).astype(dtype)
        return np.zeros(shape, dtype=dtype)


def array(name: str, shape: Sequence[ExprLike] = (), dtype: str = "float64",
          transient: bool = False) -> Array:
    """Convenience constructor for :class:`Array`."""
    return Array(name=name, shape=tuple(as_expr(s) for s in shape), dtype=dtype,
                 transient=transient)


def scalar(name: str, dtype: str = "float64", transient: bool = False) -> Array:
    """Convenience constructor for a scalar container."""
    return Array(name=name, shape=(), dtype=dtype, transient=transient)

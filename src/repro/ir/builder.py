"""A small fluent builder API for constructing loop-nest programs.

The workload definitions (PolyBench kernels, the CLOUDSC proxy) and the
examples use this builder so that loop nests read similarly to the original
C sources.

Example::

    b = ProgramBuilder("gemm", parameters=["NI", "NJ", "NK"])
    b.add_array("C", ("NI", "NJ"))
    b.add_array("A", ("NI", "NK"))
    b.add_array("B", ("NK", "NJ"))
    with b.loop("i", 0, "NI"):
        with b.loop("j", 0, "NJ"):
            b.assign(("C", "i", "j"), b.read("C", "i", "j") * 0.5)
            with b.loop("k", 0, "NK"):
                b.assign(("C", "i", "j"),
                         b.read("C", "i", "j") + b.read("A", "i", "k") * b.read("B", "k", "j"))
    program = b.finish()
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional, Sequence, Tuple, Union

from .arrays import Array, array, scalar
from .nodes import ArrayAccess, Computation, LibraryCall, Loop, Node, Program
from .symbols import Call, Expr, ExprLike, Read, Sym, as_expr

AccessSpec = Union[ArrayAccess, Tuple]


def _as_access(spec: AccessSpec) -> ArrayAccess:
    if isinstance(spec, ArrayAccess):
        return spec
    if isinstance(spec, tuple) and spec:
        name, *indices = spec
        return ArrayAccess(str(name), tuple(as_expr(i) for i in indices))
    raise TypeError(f"cannot interpret {spec!r} as an array access")


class ProgramBuilder:
    """Builds a :class:`~repro.ir.nodes.Program` incrementally."""

    def __init__(self, name: str, parameters: Optional[Sequence[str]] = None):
        self._program = Program(name, arrays=[], parameters=list(parameters or []))
        # Stack of bodies; the innermost open loop body is the append target.
        self._body_stack: List[List[Node]] = [self._program.body]
        self._open_iterators: List[str] = []
        self._statement_counter = 0

    # -- containers -------------------------------------------------------------

    def add_array(self, name: str, shape: Sequence[ExprLike] = (),
                  dtype: str = "float64", transient: bool = False) -> Array:
        """Declare an array container and return its declaration."""
        arr = array(name, shape, dtype=dtype, transient=transient)
        self._program.add_array(arr)
        for dim in arr.shape:
            for symbol in dim.free_symbols():
                self._program.ensure_parameter(symbol)
        return arr

    def add_scalar(self, name: str, dtype: str = "float64",
                   transient: bool = False) -> Array:
        """Declare a scalar container."""
        arr = scalar(name, dtype=dtype, transient=transient)
        self._program.add_array(arr)
        return arr

    # -- expressions -------------------------------------------------------------

    @staticmethod
    def read(name: str, *indices: ExprLike) -> Read:
        """Reference an array element (or scalar) inside an expression."""
        return Read(name, tuple(as_expr(i) for i in indices))

    @staticmethod
    def sym(name: str) -> Sym:
        return Sym(name)

    @staticmethod
    def call(func: str, *args: ExprLike) -> Call:
        return Call(func, tuple(as_expr(a) for a in args))

    # -- structure ---------------------------------------------------------------

    @contextmanager
    def loop(self, iterator: str, start: ExprLike, end: ExprLike,
             step: ExprLike = 1, parallel: bool = False) -> Iterator[Loop]:
        """Open a loop; statements added inside the ``with`` block nest in it."""
        loop_node = Loop(iterator, start, end, step, body=[], parallel=parallel)
        self._body_stack[-1].append(loop_node)
        self._body_stack.append(loop_node.body)
        self._open_iterators.append(iterator)
        bound_symbols = (loop_node.start.free_symbols()
                         | loop_node.end.free_symbols()
                         | loop_node.step.free_symbols())
        for symbol in bound_symbols:
            # Bounds may reference enclosing loop iterators (triangular
            # domains); those are not size parameters.
            if symbol not in self._open_iterators:
                self._program.ensure_parameter(symbol)
        try:
            yield loop_node
        finally:
            self._body_stack.pop()
            self._open_iterators.pop()

    def assign(self, target: AccessSpec, value: ExprLike,
               name: Optional[str] = None) -> Computation:
        """Append a computation writing ``target = value``."""
        comp = Computation(_as_access(target), as_expr(value),
                           name=name or f"S{self._statement_counter}")
        self._statement_counter += 1
        self._body_stack[-1].append(comp)
        return comp

    def accumulate(self, target: AccessSpec, value: ExprLike,
                   name: Optional[str] = None) -> Computation:
        """Append a computation ``target = target + value`` (a reduction)."""
        target_access = _as_access(target)
        rhs = target_access.as_read() + as_expr(value)
        return self.assign(target_access, rhs, name=name)

    def library_call(self, routine: str, outputs: Sequence[str],
                     inputs: Sequence[str], flop_expr: ExprLike = 0,
                     metadata=None) -> LibraryCall:
        """Append a library call node (used rarely in hand-written inputs)."""
        node = LibraryCall(routine, outputs, inputs, flop_expr, metadata)
        self._body_stack[-1].append(node)
        return node

    # -- finalisation -------------------------------------------------------------

    def finish(self) -> Program:
        """Return the constructed program.

        Raises ``RuntimeError`` if a loop context is still open, which would
        indicate a structurally broken build.
        """
        if len(self._body_stack) != 1:
            raise RuntimeError("finish() called while a loop context is still open")
        iterators = {loop.iterator for loop in self._program.iter_loops()}
        remaining = self._program.used_parameters() - iterators
        for symbol in sorted(remaining):
            self._program.ensure_parameter(symbol)
        # Loop iterators never double as size parameters.
        self._program.parameters = [name for name in self._program.parameters
                                    if name not in iterators]
        return self._program

    @property
    def program(self) -> Program:
        """The program under construction (useful for inspection in tests)."""
        return self._program

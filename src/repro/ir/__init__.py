"""Symbolic loop-nest intermediate representation.

This package implements the lifted symbolic representation described in
Section 3 of the paper: programs are trees of loops and computations over
symbolically-shaped arrays, with iterators, domains, and accesses expressed
in a small symbolic expression language.
"""

from .arrays import DTYPES, Array, array, scalar
from .builder import ProgramBuilder
from .nodes import (ArrayAccess, Computation, LibraryCall, Loop, Node,
                    Program, access)
from .printer import loop_signature, to_pseudocode, to_tree
from .serialization import (expr_from_dict, expr_to_dict, node_from_dict,
                            node_to_dict, program_from_dict, program_from_json,
                            program_to_dict, program_to_json)
from .symbols import (Add, Call, Const, Expr, FloorDiv, Max, Min, Mod, Mul,
                      Read, Sym, as_expr, call, const, maximum, minimum, read,
                      sym)
from .validation import ValidationError, assert_valid, validate_program
from .visitor import (NodeTransformer, NodeVisitor, enclosing_loops_of,
                      find_parent, map_computations, replace_node,
                      walk_with_ancestors)

__all__ = [
    "Array", "array", "scalar", "DTYPES",
    "ProgramBuilder",
    "ArrayAccess", "Computation", "LibraryCall", "Loop", "Node", "Program", "access",
    "loop_signature", "to_pseudocode", "to_tree",
    "expr_from_dict", "expr_to_dict", "node_from_dict", "node_to_dict",
    "program_from_dict", "program_from_json", "program_to_dict", "program_to_json",
    "Add", "Call", "Const", "Expr", "FloorDiv", "Max", "Min", "Mod", "Mul",
    "Read", "Sym", "as_expr", "call", "const", "maximum", "minimum", "read", "sym",
    "ValidationError", "assert_valid", "validate_program",
    "NodeTransformer", "NodeVisitor", "enclosing_loops_of", "find_parent",
    "map_computations", "replace_node", "walk_with_ancestors",
]

"""Loop-nest tree nodes.

The paper characterizes programs as trees of *loops* and *computations*
(Section 2, Figure 2):

* a **computation** is a unit of work with exactly one write of a scalar
  value to a data container;
* a **loop** has an iterator, initial value, update, termination condition,
  and a body that is an ordered sequence of computations and loops;
* a **loop nest** is a loop whose body may contain further loops.

This module defines those nodes plus :class:`LibraryCall`, which represents
a loop nest replaced by an optimized library routine after idiom detection
(Section 4, "Seeding a Scheduling Database").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from .arrays import Array
from .symbols import Const, Expr, ExprLike, Read, Sym, as_expr

_node_counter = itertools.count()


def _next_id() -> int:
    return next(_node_counter)


class FrozenNodeError(TypeError):
    """Raised when a frozen (cache-shared) IR node is mutated.

    Frozen subtrees are shared between program views (see
    :meth:`Program.snapshot`); mutate a private :meth:`Node.copy` /
    :meth:`Program.copy` instead.
    """


def _invalidate(node) -> None:
    """Clear memoized canonical fragments along the parent chain.

    Invariant: a node's ``_frag`` is only ever set after the fragments of
    its whole subtree were set (fragments are built bottom-up), and every
    mutation clears the chain up to the root.  A node with no memo
    therefore has no ancestor with one, so the walk can stop early —
    invalidation is O(1) amortized, not O(depth).
    """
    while node is not None:
        try:
            object.__delattr__(node, "_frag")
        except AttributeError:
            return
        node = getattr(node, "_parent", None)


def _adopt(owner, child) -> None:
    # Frozen nodes are structurally shared between views and never mutate,
    # so they neither need nor can have a single parent pointer.
    if isinstance(child, Node) and not getattr(child, "_frozen", False):
        object.__setattr__(child, "_parent", owner)


class _Body(list):
    """A loop body that keeps memoized fragments honest.

    Every mutation — item/slice assignment, append/extend/insert, removal,
    reordering — re-parents the inserted children and clears the owning
    loop's memoized canonical fragment along with its ancestors'.  These
    list operations are exactly the mutation seams the builder and the
    transformation passes use, so fragment invalidation rides on them
    instead of requiring ad-hoc notifications.
    """

    __slots__ = ("_owner",)

    def __init__(self, owner, items=()):
        super().__init__(items)
        self._owner = owner
        for child in self:
            _adopt(owner, child)

    def _mutated(self, new_children=()) -> None:
        owner = self._owner
        if getattr(owner, "_frozen", False):
            raise FrozenNodeError(
                f"cannot mutate the body of frozen node {owner!r}")
        for child in new_children:
            _adopt(owner, child)
        _invalidate(owner)

    def __setitem__(self, index, value):
        self._mutated(value if isinstance(index, slice) else (value,))
        super().__setitem__(index, value)

    def __delitem__(self, index):
        self._mutated()
        super().__delitem__(index)

    def __iadd__(self, items):
        items = list(items)
        self._mutated(items)
        super().extend(items)
        return self

    def append(self, item):
        self._mutated((item,))
        super().append(item)

    def extend(self, items):
        items = list(items)
        self._mutated(items)
        super().extend(items)

    def insert(self, index, item):
        self._mutated((item,))
        super().insert(index, item)

    def pop(self, index=-1):
        self._mutated()
        return super().pop(index)

    def remove(self, item):
        self._mutated()
        super().remove(item)

    def clear(self):
        self._mutated()
        super().clear()

    def sort(self, **kwargs):
        self._mutated()
        super().sort(**kwargs)

    def reverse(self):
        self._mutated()
        super().reverse()


@dataclass(frozen=True)
class ArrayAccess:
    """A single array access: container name plus symbolic index expressions."""

    array: str
    indices: Tuple[Expr, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "indices", tuple(as_expr(i) for i in self.indices))

    @property
    def rank(self) -> int:
        return len(self.indices)

    def free_symbols(self) -> frozenset:
        out = frozenset()
        for index in self.indices:
            out |= index.free_symbols()
        return out

    def substitute(self, mapping) -> "ArrayAccess":
        return ArrayAccess(self.array, tuple(i.substitute(mapping) for i in self.indices))

    def as_read(self) -> Read:
        return Read(self.array, self.indices)

    def __str__(self) -> str:
        if not self.indices:
            return self.array
        return self.array + "[" + ", ".join(str(i) for i in self.indices) + "]"


def access(array: str, *indices: ExprLike) -> ArrayAccess:
    """Convenience constructor for :class:`ArrayAccess`."""
    return ArrayAccess(array, tuple(indices))


class Node:
    """Base class of loop-tree nodes.

    Nodes memoize their canonical JSON fragment (``repro.ir.canonical``)
    and keep it honest through two seams: attribute assignment
    (``__setattr__``) and body-list mutation (:class:`_Body`).  A node can
    also be :meth:`frozen <freeze>`, after which mutation raises
    :class:`FrozenNodeError` and the node may be structurally shared
    between program views; :meth:`copy` always returns unfrozen nodes.
    """

    __slots__ = ("node_id", "_frag", "_parent", "_frozen")

    def __setattr__(self, name, value):
        if name[0] == "_":
            # Internal bookkeeping (memo, parent pointer, frozen flag):
            # always allowed, never invalidates.
            object.__setattr__(self, name, value)
            return
        if getattr(self, "_frozen", False):
            raise FrozenNodeError(f"cannot mutate frozen node {self!r}")
        if name == "body":
            value = _Body(self, value)
        _invalidate(self)
        object.__setattr__(self, name, value)

    def freeze(self) -> "Node":
        """Freeze this subtree: further mutation raises, so its memoized
        fragments are trusted forever and the nodes can be shared."""
        # A frozen node's subtree is entirely frozen (freezing is the only
        # way to set the flag and it walks the whole subtree), so repeat
        # freezes — every snapshot of a cached program — are O(1).
        stack = [self]
        while stack:
            node = stack.pop()
            if getattr(node, "_frozen", False):
                continue
            object.__setattr__(node, "_frozen", True)
            stack.extend(getattr(node, "body", ()))
        return self

    @property
    def frozen(self) -> bool:
        return getattr(self, "_frozen", False)

    def copy(self) -> "Node":
        raise NotImplementedError

    def iter_computations(self) -> Iterator["Computation"]:
        """Yield all computations in this subtree, in program order."""
        raise NotImplementedError

    def iter_loops(self) -> Iterator["Loop"]:
        """Yield all loops in this subtree, in pre-order."""
        raise NotImplementedError


class Computation(Node):
    """A unit of work with exactly one write to a data container.

    Attributes:
        name: Statement label (``S0``, ``S1``, ...).
        target: The written array element.
        value: Right-hand-side expression; may contain :class:`Read` nodes.
    """

    __slots__ = ("name", "target", "value")

    def __init__(self, target: ArrayAccess, value: ExprLike, name: Optional[str] = None):
        self.node_id = _next_id()
        self.name = name or f"S{self.node_id}"
        self.target = target
        self.value = as_expr(value)

    def copy(self) -> "Computation":
        return Computation(self.target, self.value, name=self.name)

    def iter_computations(self) -> Iterator["Computation"]:
        yield self

    def iter_loops(self) -> Iterator["Loop"]:
        return iter(())

    def reads(self) -> List[ArrayAccess]:
        """All array reads appearing in the right-hand side, in order."""
        found: List[ArrayAccess] = []

        def visit(expr: Expr) -> None:
            if isinstance(expr, Read):
                found.append(ArrayAccess(expr.array, expr.indices))
            for child in expr.children():
                visit(child)

        visit(self.value)
        return found

    def writes(self) -> List[ArrayAccess]:
        """The single write of this computation, as a one-element list."""
        return [self.target]

    def accesses(self) -> List[Tuple[str, ArrayAccess]]:
        """All accesses as ``(kind, access)`` with kind ``"read"``/``"write"``."""
        out = [("read", acc) for acc in self.reads()]
        out.append(("write", self.target))
        return out

    def accessed_arrays(self) -> frozenset:
        return frozenset(acc.array for _, acc in self.accesses())

    def is_reduction(self) -> bool:
        """True if the target element is also read (e.g. ``C[i,j] += ...``)."""
        return any(acc.array == self.target.array and acc.indices == self.target.indices
                   for acc in self.reads())

    def free_symbols(self) -> frozenset:
        out = self.target.free_symbols()
        out |= self.value.free_symbols()
        return out

    def substitute(self, mapping) -> "Computation":
        return Computation(self.target.substitute(mapping),
                           self.value.substitute(mapping), name=self.name)

    def __repr__(self) -> str:
        return f"Computation({self.name}: {self.target} = {self.value})"


class Loop(Node):
    """A counted loop with symbolic bounds.

    The iteration domain is ``start <= iterator < end`` with increment
    ``step``.  Schedule annotations (``parallel``, ``vectorized``,
    ``unroll``) are attached by transformations and consumed by the
    performance model and code generator; they do not change semantics.
    """

    __slots__ = ("iterator", "start", "end", "step", "body",
                 "parallel", "vectorized", "unroll", "tile_of")

    def __init__(self, iterator: str, start: ExprLike, end: ExprLike,
                 step: ExprLike = 1, body: Optional[Sequence[Node]] = None,
                 parallel: bool = False, vectorized: bool = False,
                 unroll: int = 1, tile_of: Optional[str] = None):
        self.node_id = _next_id()
        self.iterator = iterator
        self.start = as_expr(start)
        self.end = as_expr(end)
        self.step = as_expr(step)
        self.body: List[Node] = list(body or [])
        self.parallel = parallel
        self.vectorized = vectorized
        self.unroll = unroll
        self.tile_of = tile_of

    def copy(self) -> "Loop":
        return Loop(self.iterator, self.start, self.end, self.step,
                    body=[child.copy() for child in self.body],
                    parallel=self.parallel, vectorized=self.vectorized,
                    unroll=self.unroll, tile_of=self.tile_of)

    def iter_computations(self) -> Iterator[Computation]:
        for child in self.body:
            yield from child.iter_computations()

    def iter_loops(self) -> Iterator["Loop"]:
        yield self
        for child in self.body:
            yield from child.iter_loops()

    def trip_count(self, parameters: Dict[str, int]) -> int:
        """Number of iterations under concrete parameter bindings."""
        start = self.start.evaluate(parameters)
        end = self.end.evaluate(parameters)
        step = self.step.evaluate(parameters)
        if step <= 0:
            raise ValueError(f"loop {self.iterator} has non-positive step {step}")
        return max(0, -(-(end - start) // step))

    def symbolic_trip_count(self) -> Expr:
        """Trip count as a symbolic expression (assumes step divides range)."""
        from .symbols import FloorDiv, Mul
        span = self.end - self.start
        return FloorDiv.make(span, self.step)

    def is_normalized(self) -> bool:
        """True if the loop starts at 0 with unit step."""
        return self.start == Const(0) and self.step == Const(1)

    def nested_iterators(self) -> List[str]:
        """Iterators of this loop and all nested loops, in-order."""
        return [loop.iterator for loop in self.iter_loops()]

    def perfectly_nested_band(self) -> List["Loop"]:
        """Longest chain of singly-nested loops starting at this loop.

        Returns the band ``[self, child, grandchild, ...]`` where each loop's
        body contains exactly one node which is itself a loop.  The last loop
        in the band may contain any body.
        """
        band = [self]
        current = self
        while len(current.body) == 1 and isinstance(current.body[0], Loop):
            current = current.body[0]
            band.append(current)
        return band

    def innermost_body(self) -> List[Node]:
        """Body of the deepest loop of the perfectly nested band."""
        return self.perfectly_nested_band()[-1].body

    def is_perfect_nest(self) -> bool:
        """True if every body on the band except the innermost holds one loop."""
        band = self.perfectly_nested_band()
        return all(not isinstance(child, Loop) for child in band[-1].body)

    def depth(self) -> int:
        """Maximum loop-nesting depth of this subtree."""
        child_depths = [child.depth() for child in self.body if isinstance(child, Loop)]
        return 1 + (max(child_depths) if child_depths else 0)

    def free_symbols(self) -> frozenset:
        out = self.start.free_symbols() | self.end.free_symbols() | self.step.free_symbols()
        for child in self.body:
            if isinstance(child, (Loop, Computation, LibraryCall)):
                out |= child.free_symbols()
        return out - frozenset(self.nested_iterators())

    def __repr__(self) -> str:
        flags = []
        if self.parallel:
            flags.append("parallel")
        if self.vectorized:
            flags.append("vector")
        if self.unroll > 1:
            flags.append(f"unroll={self.unroll}")
        suffix = f" [{', '.join(flags)}]" if flags else ""
        return (f"Loop({self.iterator}: {self.start}..{self.end} step {self.step}, "
                f"{len(self.body)} children{suffix})")


class LibraryCall(Node):
    """A loop nest replaced by an optimized library routine (idiom detection).

    Attributes:
        routine: Library routine name, e.g. ``"gemm"`` or ``"gemv"``.
        outputs / inputs: Container names passed to the routine.
        flop_expr: Symbolic count of floating-point operations performed,
            used by the performance model.
        metadata: Routine-specific parameters (e.g. transposition flags or
            scaling constants) used by the interpreter.
    """

    __slots__ = ("routine", "outputs", "inputs", "flop_expr", "metadata")

    def __init__(self, routine: str, outputs: Sequence[str], inputs: Sequence[str],
                 flop_expr: ExprLike = 0, metadata: Optional[Dict[str, object]] = None):
        self.node_id = _next_id()
        self.routine = routine
        self.outputs = tuple(outputs)
        self.inputs = tuple(inputs)
        self.flop_expr = as_expr(flop_expr)
        self.metadata = dict(metadata or {})

    def copy(self) -> "LibraryCall":
        return LibraryCall(self.routine, self.outputs, self.inputs,
                           self.flop_expr, dict(self.metadata))

    def iter_computations(self) -> Iterator[Computation]:
        return iter(())

    def iter_loops(self) -> Iterator[Loop]:
        return iter(())

    def accessed_arrays(self) -> frozenset:
        return frozenset(self.outputs) | frozenset(self.inputs)

    def free_symbols(self) -> frozenset:
        return self.flop_expr.free_symbols()

    def __repr__(self) -> str:
        return (f"LibraryCall({self.routine}, outputs={list(self.outputs)}, "
                f"inputs={list(self.inputs)})")


NodeLike = Union[Loop, Computation, LibraryCall]


class Program:
    """A complete program: container declarations plus a sequence of nodes.

    This plays the role of the lifted symbolic representation (an SDFG-like
    view) in the paper: the unit on which normalization passes and the
    auto-scheduler operate.
    """

    def __init__(self, name: str, arrays: Sequence[Array],
                 body: Optional[Sequence[Node]] = None,
                 parameters: Optional[Sequence[str]] = None):
        self.name = name
        self.arrays: Dict[str, Array] = {}
        for arr in arrays:
            self.add_array(arr)
        self.body: List[Node] = list(body or [])
        self.parameters: List[str] = list(parameters or [])

    # -- container management --------------------------------------------------

    def add_array(self, arr: Array) -> Array:
        if arr.name in self.arrays:
            raise ValueError(f"duplicate container name {arr.name!r}")
        self.arrays[arr.name] = arr
        return arr

    def get_array(self, name: str) -> Array:
        if name not in self.arrays:
            raise KeyError(f"unknown container {name!r} in program {self.name!r}")
        return self.arrays[name]

    def ensure_parameter(self, name: str) -> None:
        if name not in self.parameters:
            self.parameters.append(name)

    # -- traversal ---------------------------------------------------------------

    def iter_computations(self) -> Iterator[Computation]:
        for node in self.body:
            yield from node.iter_computations()

    def iter_loops(self) -> Iterator[Loop]:
        for node in self.body:
            yield from node.iter_loops()

    def top_level_loops(self) -> List[Loop]:
        return [node for node in self.body if isinstance(node, Loop)]

    def library_calls(self) -> List[LibraryCall]:
        out: List[LibraryCall] = []

        def visit(node: Node) -> None:
            if isinstance(node, LibraryCall):
                out.append(node)
            elif isinstance(node, Loop):
                for child in node.body:
                    visit(child)

        for node in self.body:
            visit(node)
        return out

    def copy(self) -> "Program":
        clone = Program(self.name, list(self.arrays.values()),
                        [node.copy() for node in self.body],
                        list(self.parameters))
        return clone

    def freeze(self) -> "Program":
        """Freeze every body node (see :meth:`Node.freeze`); program-level
        containers (name, arrays, parameters) stay mutable."""
        for node in self.body:
            node.freeze()
        return self

    def snapshot(self) -> "Program":
        """A cheap copy-on-write view of this program.

        Body nodes are frozen and *shared* (mutating them raises
        :class:`FrozenNodeError`); the view's own name, body list, array
        dict, and parameter list are fresh, so callers may rename the
        view, splice its body, or add containers without affecting other
        views.  Use :meth:`copy` to materialize a fully mutable tree.
        """
        self.freeze()
        view = Program.__new__(Program)
        view.name = self.name
        view.arrays = dict(self.arrays)
        view.body = list(self.body)
        view.parameters = list(self.parameters)
        return view

    def used_parameters(self) -> frozenset:
        """Symbols referenced by the program that are not loop iterators."""
        iterators = {loop.iterator for loop in self.iter_loops()}
        used = frozenset()
        for node in self.body:
            if isinstance(node, (Loop, Computation, LibraryCall)):
                used |= node.free_symbols()
        for arr in self.arrays.values():
            for dim in arr.shape:
                used |= dim.free_symbols()
        return used - iterators

    def __repr__(self) -> str:
        return (f"Program({self.name!r}, {len(self.arrays)} containers, "
                f"{len(self.body)} top-level nodes)")

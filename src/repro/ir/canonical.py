"""Memoized canonical-JSON fragments: the warm half of content hashing.

``repro.api.hashing.program_content_hash`` is defined as the SHA-256 of
``json.dumps({"program": canonical_program_dict(p)}, sort_keys=True)`` —
a full ``program_to_dict`` + ``json.dumps`` walk per call.  On the warm
serving path that walk dominates: the same programs are hashed again and
again while their structure never changes.

This module produces the *same bytes* without the walk.  Every expression
and node memoizes its canonical JSON fragment (the exact substring
``json.dumps(..., sort_keys=True)`` would emit for it, with incidental
names already stripped) in a ``_frag`` slot; :func:`canonical_program_json`
assembles the program-level JSON from those fragments.  Memos stay honest
through the IR's mutation seams — attribute assignment and body-list
operations clear the owning chain (see ``repro.ir.nodes``) — and
expressions are immutable, so their fragments never expire.

Byte-compatibility with the reference implementation is load-bearing
(cache keys must not change across this optimization) and is enforced by
a fuzz property test (``tests/test_hash_consing.py``).
"""

from __future__ import annotations

import hashlib
import json
from typing import Union

from .arrays import Array
from .nodes import Computation, LibraryCall, Loop, Node, Program
from .symbols import (Add, Call, Const, Expr, FloorDiv, Max, Min, Mod, Mul,
                      Read, Sym)

_dumps = json.dumps


def expr_fragment(expr: Expr) -> str:
    """The canonical JSON fragment of one expression (memoized)."""
    try:
        return expr._frag
    except AttributeError:
        pass
    # Keys appear in sorted order, exactly as json.dumps(..., sort_keys=True)
    # emits the matching expr_to_dict dictionary.
    if isinstance(expr, Const):
        frag = '{"kind": "const", "value": %s}' % _dumps(expr.value)
    elif isinstance(expr, Sym):
        frag = '{"kind": "sym", "name": %s}' % _dumps(expr.name)
    elif isinstance(expr, Add):
        frag = '{"kind": "add", "terms": [%s]}' % ", ".join(
            expr_fragment(t) for t in expr.terms)
    elif isinstance(expr, Mul):
        frag = '{"factors": [%s], "kind": "mul"}' % ", ".join(
            expr_fragment(f) for f in expr.factors)
    elif isinstance(expr, FloorDiv):
        frag = '{"denominator": %s, "kind": "floordiv", "numerator": %s}' % (
            expr_fragment(expr.denominator), expr_fragment(expr.numerator))
    elif isinstance(expr, Mod):
        frag = '{"denominator": %s, "kind": "mod", "numerator": %s}' % (
            expr_fragment(expr.denominator), expr_fragment(expr.numerator))
    elif isinstance(expr, Min):
        frag = '{"args": [%s], "kind": "min"}' % ", ".join(
            expr_fragment(a) for a in expr.args)
    elif isinstance(expr, Max):
        frag = '{"args": [%s], "kind": "max"}' % ", ".join(
            expr_fragment(a) for a in expr.args)
    elif isinstance(expr, Read):
        frag = '{"array": %s, "indices": [%s], "kind": "read"}' % (
            _dumps(expr.array),
            ", ".join(expr_fragment(i) for i in expr.indices))
    elif isinstance(expr, Call):
        frag = '{"args": [%s], "func": %s, "kind": "call"}' % (
            ", ".join(expr_fragment(a) for a in expr.args),
            _dumps(expr.func))
    else:
        raise TypeError(
            f"cannot serialize expression of type {type(expr).__name__}")
    expr._frag = frag
    return frag


def node_fragment(node: Node) -> str:
    """The canonical JSON fragment of one loop-tree node (memoized).

    Canonical means statement labels are stripped (computation ``name`` is
    the empty string), matching ``canonical_program_dict``.
    """
    try:
        return node._frag
    except AttributeError:
        pass
    if isinstance(node, Loop):
        frag = ('{"body": [%s], "end": %s, "iterator": %s, "kind": "loop", '
                '"parallel": %s, "start": %s, "step": %s, "tile_of": %s, '
                '"unroll": %s, "vectorized": %s}') % (
            ", ".join(node_fragment(child) for child in node.body),
            expr_fragment(node.end), _dumps(node.iterator),
            _dumps(node.parallel), expr_fragment(node.start),
            expr_fragment(node.step), _dumps(node.tile_of),
            _dumps(node.unroll), _dumps(node.vectorized))
    elif isinstance(node, Computation):
        frag = ('{"kind": "computation", "name": "", "target": '
                '{"array": %s, "indices": [%s]}, "value": %s}') % (
            _dumps(node.target.array),
            ", ".join(expr_fragment(i) for i in node.target.indices),
            expr_fragment(node.value))
    elif isinstance(node, LibraryCall):
        frag = ('{"flops": %s, "inputs": %s, "kind": "library_call", '
                '"metadata": %s, "outputs": %s, "routine": %s}') % (
            expr_fragment(node.flop_expr), _dumps(list(node.inputs)),
            _dumps(dict(node.metadata), sort_keys=True),
            _dumps(list(node.outputs)), _dumps(node.routine))
    else:
        raise TypeError(
            f"cannot serialize node of type {type(node).__name__}")
    node._frag = frag
    return frag


def _array_fragment(arr: Array) -> str:
    return '{"dtype": %s, "name": %s, "shape": [%s], "transient": %s}' % (
        _dumps(arr.dtype), _dumps(arr.name),
        ", ".join(expr_fragment(dim) for dim in arr.shape),
        _dumps(arr.transient))


def canonical_program_json(program: Program) -> str:
    """Byte-identical to ``json.dumps(canonical_program_dict(program),
    sort_keys=True)``, assembled from memoized per-node fragments.

    Only the program-level join (array sort, parameter sort, fragment
    concatenation) runs per call; on a warm program every node fragment is
    a memo hit.
    """
    arrays = ", ".join(
        _array_fragment(arr)
        for arr in sorted(program.arrays.values(), key=lambda a: a.name))
    body = ", ".join(node_fragment(node) for node in program.body)
    return '{"arrays": [%s], "body": [%s], "name": "", "parameters": %s}' % (
        arrays, body, _dumps(sorted(program.parameters)))


def structural_digest(item: Union[Expr, Node, Program]) -> str:
    """SHA-256 over the canonical fragment of one expression, node, or
    program — the memoized structural digest of that subtree."""
    if isinstance(item, Program):
        text = canonical_program_json(item)
    elif isinstance(item, Node):
        text = node_fragment(item)
    else:
        text = expr_fragment(item)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# -- hash-consing ---------------------------------------------------------------

#: Canonical instances of whole sub-expressions, keyed by their fragment.
#: Bounded: once full, expressions are simply not interned.
_EXPR_INTERN: dict = {}
_EXPR_INTERN_LIMIT = 65536


def intern_expr(expr: Expr) -> Expr:
    """Hash-cons ``expr``: return the one canonical instance of its
    structure, so identical sub-trees share memory, memoized hashes, and
    identity-fast equality.  Safe because expressions are immutable."""
    frag = expr_fragment(expr)
    found = _EXPR_INTERN.get(frag)
    if found is not None:
        return found
    if len(_EXPR_INTERN) < _EXPR_INTERN_LIMIT:
        _EXPR_INTERN[frag] = expr
    return expr

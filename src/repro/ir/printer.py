"""Pretty-printing of loop-nest programs.

Two renderers are provided:

* :func:`to_pseudocode` — indented C-like pseudocode, close to the paper's
  Figure 2a and Figure 3 listings.
* :func:`to_tree` — the loop/computation tree view of Figure 2b.
"""

from __future__ import annotations

from typing import List

from .nodes import Computation, LibraryCall, Loop, Node, Program


def _loop_header(loop: Loop) -> str:
    annotations = []
    if loop.parallel:
        annotations.append("parallel")
    if loop.vectorized:
        annotations.append("simd")
    if loop.unroll > 1:
        annotations.append(f"unroll({loop.unroll})")
    prefix = f"#pragma {' '.join(annotations)}\n" if annotations else ""
    step = f"{loop.iterator} += {loop.step}" if str(loop.step) != "1" else f"{loop.iterator}++"
    return (prefix + f"for ({loop.iterator} = {loop.start}; "
            f"{loop.iterator} < {loop.end}; {step})")


def to_pseudocode(item, indent: str = "  ") -> str:
    """Render a program or node as indented pseudocode."""

    lines: List[str] = []

    def emit(node: Node, depth: int) -> None:
        pad = indent * depth
        if isinstance(node, Loop):
            header = _loop_header(node)
            for header_line in header.split("\n"):
                lines.append(pad + header_line)
            lines.append(pad + "{")
            for child in node.body:
                emit(child, depth + 1)
            lines.append(pad + "}")
        elif isinstance(node, Computation):
            lines.append(pad + f"{node.target} = {node.value};  // {node.name}")
        elif isinstance(node, LibraryCall):
            args = ", ".join(list(node.outputs) + list(node.inputs))
            lines.append(pad + f"{node.routine}({args});  // library call")
        else:
            raise TypeError(f"unexpected node type {type(node).__name__}")

    if isinstance(item, Program):
        lines.append(f"// program {item.name}")
        for name, arr in item.arrays.items():
            if arr.transient:
                continue
            dims = "".join(f"[{dim}]" for dim in arr.shape)
            lines.append(f"{arr.dtype} {name}{dims};")
        for node in item.body:
            emit(node, 0)
    else:
        emit(item, 0)
    return "\n".join(lines)


def to_tree(item, indent: str = "  ") -> str:
    """Render a program or node as a loop/computation tree."""

    lines: List[str] = []

    def emit(node: Node, depth: int) -> None:
        pad = indent * depth
        if isinstance(node, Loop):
            lines.append(pad + f"loop {loop_signature(node)}")
            for child in node.body:
                emit(child, depth + 1)
        elif isinstance(node, Computation):
            lines.append(pad + f"comp {node.name}: {node.target} = {node.value}")
        elif isinstance(node, LibraryCall):
            lines.append(pad + f"call {node.routine}({', '.join(node.outputs + node.inputs)})")
        else:
            raise TypeError(f"unexpected node type {type(node).__name__}")

    if isinstance(item, Program):
        lines.append(f"program {item.name}")
        for node in item.body:
            emit(node, 1)
    else:
        emit(item, 0)
    return "\n".join(lines)


def loop_signature(loop: Loop) -> str:
    """Compact one-line description of a loop's iteration domain."""
    parts = [f"{loop.iterator} in [{loop.start}, {loop.end})"]
    if str(loop.step) != "1":
        parts.append(f"step {loop.step}")
    if loop.parallel:
        parts.append("parallel")
    if loop.vectorized:
        parts.append("simd")
    return " ".join(parts)

"""Symbolic expression engine used throughout the loop-nest IR.

The paper lifts loop nests into a symbolic representation where loop
iterators, domains, and data accesses are symbolic expressions (Section 3).
This module provides that expression language.

The expression language is intentionally small:

* ``Const`` and ``Sym`` are the leaves.
* ``Add`` and ``Mul`` are n-ary and flattened/folded on construction.
* ``FloorDiv``, ``Mod``, ``Min``, ``Max`` cover the shapes introduced by
  tiling and bounds normalization.
* ``Read`` and ``Call`` only appear inside computation bodies (right-hand
  sides); index expressions and loop bounds never contain them.

Every expression is immutable and hashable, which lets analyses memoize on
expressions and use them as dictionary keys.

Immutability is also what makes expressions cheap to re-hash: every
expression memoizes its structural hash (and, via ``repro.ir.canonical``,
its canonical JSON fragment) the first time it is computed, and ``Sym`` /
small ``Const`` leaves are interned so the most common sub-expressions
compare by identity.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, Mapping, Optional, Sequence, Tuple, Union

Number = Union[int, float]
ExprLike = Union["Expr", int, float, str]


def _as_expr(value: ExprLike) -> "Expr":
    """Coerce a Python value into an :class:`Expr`."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        raise TypeError("booleans are not valid symbolic values")
    if isinstance(value, (int, float)):
        return const(value)
    if isinstance(value, str):
        return sym(value)
    raise TypeError(f"cannot convert {value!r} to a symbolic expression")


class Expr:
    """Base class of all symbolic expressions."""

    # ``_hash`` memoizes the structural hash; ``_frag`` memoizes the
    # canonical JSON fragment (written by ``repro.ir.canonical``).  Both are
    # safe to cache forever because expressions are immutable.
    __slots__ = ("_hash", "_frag")

    # -- construction helpers -------------------------------------------------

    def __add__(self, other: ExprLike) -> "Expr":
        return Add.make([self, _as_expr(other)])

    def __radd__(self, other: ExprLike) -> "Expr":
        return Add.make([_as_expr(other), self])

    def __sub__(self, other: ExprLike) -> "Expr":
        return Add.make([self, Mul.make([Const(-1), _as_expr(other)])])

    def __rsub__(self, other: ExprLike) -> "Expr":
        return Add.make([_as_expr(other), Mul.make([Const(-1), self])])

    def __mul__(self, other: ExprLike) -> "Expr":
        return Mul.make([self, _as_expr(other)])

    def __rmul__(self, other: ExprLike) -> "Expr":
        return Mul.make([_as_expr(other), self])

    def __neg__(self) -> "Expr":
        return Mul.make([Const(-1), self])

    def __floordiv__(self, other: ExprLike) -> "Expr":
        return FloorDiv.make(self, _as_expr(other))

    def __mod__(self, other: ExprLike) -> "Expr":
        return Mod.make(self, _as_expr(other))

    def __truediv__(self, other: ExprLike) -> "Expr":
        return Call("div", (self, _as_expr(other)))

    # -- queries ---------------------------------------------------------------

    def free_symbols(self) -> frozenset:
        """Return the set of symbol names appearing in the expression."""
        raise NotImplementedError

    def substitute(self, mapping: Mapping[str, ExprLike]) -> "Expr":
        """Return a new expression with symbols replaced per ``mapping``."""
        raise NotImplementedError

    def evaluate(self, env: Mapping[str, Number],
                 functions: Optional[Mapping[str, Callable]] = None,
                 arrays: Optional[Mapping[str, object]] = None) -> Number:
        """Evaluate the expression numerically.

        ``env`` maps symbol names to numbers.  ``functions`` maps intrinsic
        names to callables (defaults to :data:`DEFAULT_FUNCTIONS`).  ``arrays``
        maps array names to indexable objects and is only needed when the
        expression contains :class:`Read` nodes.
        """
        raise NotImplementedError

    def children(self) -> Tuple["Expr", ...]:
        """Return the direct sub-expressions."""
        return ()

    def is_constant(self) -> bool:
        return isinstance(self, Const)

    def as_affine(self, symbols: Optional[Iterable[str]] = None
                  ) -> Optional[Tuple[Dict[str, Number], Number]]:
        """Decompose into an affine form ``sum(coeff_s * s) + const``.

        Returns ``None`` if the expression is not affine in its free symbols.
        If ``symbols`` is given, symbols outside that set are still allowed as
        long as they appear linearly (they are reported like any other symbol).
        """
        try:
            coeffs, const = _affine_decompose(self)
        except _NotAffine:
            return None
        if symbols is not None:
            allowed = set(symbols)
            # Symbols outside ``allowed`` are treated as symbolic parameters;
            # they are still part of the affine form.
            del allowed
        return coeffs, const

    # -- protocol --------------------------------------------------------------

    def _key(self) -> tuple:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Expr):
            return False
        # Memoized hashes give an O(1) negative answer on most mismatches;
        # only equal hashes fall through to the structural comparison.
        if hash(self) != hash(other):
            return False
        return self._key() == other._key()

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        try:
            return self._hash
        except AttributeError:
            value = hash(self._key())
            self._hash = value
            return value

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self})"


class _NotAffine(Exception):
    """Raised internally when an expression cannot be decomposed affinely."""


class Const(Expr):
    """A numeric literal."""

    __slots__ = ("value",)

    def __init__(self, value: Number):
        if isinstance(value, float) and value.is_integer():
            value = int(value)
        self.value = value

    def free_symbols(self) -> frozenset:
        return frozenset()

    def substitute(self, mapping: Mapping[str, ExprLike]) -> Expr:
        return self

    def evaluate(self, env, functions=None, arrays=None) -> Number:
        return self.value

    def _key(self) -> tuple:
        return ("const", self.value)

    def __str__(self) -> str:
        return str(self.value)


class Sym(Expr):
    """A named symbol: a loop iterator or a size parameter."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not name or not isinstance(name, str):
            raise ValueError("symbol name must be a non-empty string")
        self.name = name

    def free_symbols(self) -> frozenset:
        return frozenset({self.name})

    def substitute(self, mapping: Mapping[str, ExprLike]) -> Expr:
        if self.name in mapping:
            return _as_expr(mapping[self.name])
        return self

    def evaluate(self, env, functions=None, arrays=None) -> Number:
        if self.name not in env:
            raise KeyError(f"symbol {self.name!r} is not bound")
        return env[self.name]

    def _key(self) -> tuple:
        return ("sym", self.name)

    def __str__(self) -> str:
        return self.name


class Add(Expr):
    """An n-ary sum."""

    __slots__ = ("terms",)

    def __init__(self, terms: Sequence[Expr]):
        self.terms = tuple(terms)

    @staticmethod
    def make(terms: Sequence[Expr]) -> Expr:
        flat = []
        const = 0
        for term in terms:
            term = _as_expr(term)
            if isinstance(term, Add):
                inner_terms = list(term.terms)
            else:
                inner_terms = [term]
            for t in inner_terms:
                if isinstance(t, Const):
                    const += t.value
                else:
                    flat.append(t)
        if const != 0 or not flat:
            flat.append(Const(const))
        if len(flat) == 1:
            return flat[0]
        return Add(flat)

    def free_symbols(self) -> frozenset:
        out = frozenset()
        for term in self.terms:
            out |= term.free_symbols()
        return out

    def substitute(self, mapping) -> Expr:
        return Add.make([t.substitute(mapping) for t in self.terms])

    def evaluate(self, env, functions=None, arrays=None) -> Number:
        return sum(t.evaluate(env, functions, arrays) for t in self.terms)

    def children(self) -> Tuple[Expr, ...]:
        return self.terms

    def _key(self) -> tuple:
        return ("add", tuple(t._key() for t in self.terms))

    def __str__(self) -> str:
        parts = []
        for idx, term in enumerate(self.terms):
            text = str(term)
            if idx > 0 and not text.startswith("-"):
                parts.append("+")
            parts.append(text)
        return " ".join(parts) if parts else "0"


class Mul(Expr):
    """An n-ary product."""

    __slots__ = ("factors",)

    def __init__(self, factors: Sequence[Expr]):
        self.factors = tuple(factors)

    @staticmethod
    def make(factors: Sequence[Expr]) -> Expr:
        flat = []
        const = 1
        for factor in factors:
            factor = _as_expr(factor)
            if isinstance(factor, Mul):
                inner = list(factor.factors)
            else:
                inner = [factor]
            for f in inner:
                if isinstance(f, Const):
                    const *= f.value
                else:
                    flat.append(f)
        if const == 0:
            return Const(0)
        if const != 1 or not flat:
            flat.insert(0, Const(const))
        if len(flat) == 1:
            return flat[0]
        return Mul(flat)

    def free_symbols(self) -> frozenset:
        out = frozenset()
        for factor in self.factors:
            out |= factor.free_symbols()
        return out

    def substitute(self, mapping) -> Expr:
        return Mul.make([f.substitute(mapping) for f in self.factors])

    def evaluate(self, env, functions=None, arrays=None) -> Number:
        result = 1
        for factor in self.factors:
            result *= factor.evaluate(env, functions, arrays)
        return result

    def children(self) -> Tuple[Expr, ...]:
        return self.factors

    def _key(self) -> tuple:
        return ("mul", tuple(f._key() for f in self.factors))

    def __str__(self) -> str:
        parts = []
        for factor in self.factors:
            text = str(factor)
            if isinstance(factor, Add):
                text = f"({text})"
            parts.append(text)
        return "*".join(parts)


class FloorDiv(Expr):
    """Integer floor division, produced by tiling and bounds rewriting."""

    __slots__ = ("numerator", "denominator")

    def __init__(self, numerator: Expr, denominator: Expr):
        self.numerator = numerator
        self.denominator = denominator

    @staticmethod
    def make(numerator: Expr, denominator: Expr) -> Expr:
        numerator = _as_expr(numerator)
        denominator = _as_expr(denominator)
        if isinstance(denominator, Const) and denominator.value == 1:
            return numerator
        if isinstance(numerator, Const) and isinstance(denominator, Const):
            return Const(numerator.value // denominator.value)
        return FloorDiv(numerator, denominator)

    def free_symbols(self) -> frozenset:
        return self.numerator.free_symbols() | self.denominator.free_symbols()

    def substitute(self, mapping) -> Expr:
        return FloorDiv.make(self.numerator.substitute(mapping),
                             self.denominator.substitute(mapping))

    def evaluate(self, env, functions=None, arrays=None) -> Number:
        denom = self.denominator.evaluate(env, functions, arrays)
        if denom == 0:
            raise ZeroDivisionError("floor division by zero in symbolic expression")
        return self.numerator.evaluate(env, functions, arrays) // denom

    def children(self) -> Tuple[Expr, ...]:
        return (self.numerator, self.denominator)

    def _key(self) -> tuple:
        return ("floordiv", self.numerator._key(), self.denominator._key())

    def __str__(self) -> str:
        return f"({self.numerator})//({self.denominator})"


class Mod(Expr):
    """Integer modulo."""

    __slots__ = ("numerator", "denominator")

    def __init__(self, numerator: Expr, denominator: Expr):
        self.numerator = numerator
        self.denominator = denominator

    @staticmethod
    def make(numerator: Expr, denominator: Expr) -> Expr:
        numerator = _as_expr(numerator)
        denominator = _as_expr(denominator)
        if isinstance(numerator, Const) and isinstance(denominator, Const):
            return Const(numerator.value % denominator.value)
        return Mod(numerator, denominator)

    def free_symbols(self) -> frozenset:
        return self.numerator.free_symbols() | self.denominator.free_symbols()

    def substitute(self, mapping) -> Expr:
        return Mod.make(self.numerator.substitute(mapping),
                        self.denominator.substitute(mapping))

    def evaluate(self, env, functions=None, arrays=None) -> Number:
        return (self.numerator.evaluate(env, functions, arrays)
                % self.denominator.evaluate(env, functions, arrays))

    def children(self) -> Tuple[Expr, ...]:
        return (self.numerator, self.denominator)

    def _key(self) -> tuple:
        return ("mod", self.numerator._key(), self.denominator._key())

    def __str__(self) -> str:
        return f"({self.numerator})%({self.denominator})"


class Min(Expr):
    """n-ary minimum, produced by tiling boundary handling."""

    __slots__ = ("args",)

    def __init__(self, args: Sequence[Expr]):
        self.args = tuple(args)

    @staticmethod
    def make(args: Sequence[Expr]) -> Expr:
        flat = []
        for arg in args:
            arg = _as_expr(arg)
            if isinstance(arg, Min):
                flat.extend(arg.args)
            else:
                flat.append(arg)
        consts = [a.value for a in flat if isinstance(a, Const)]
        others = [a for a in flat if not isinstance(a, Const)]
        unique = []
        for expr in others:
            if expr not in unique:
                unique.append(expr)
        if consts:
            unique.append(Const(min(consts)))
        if len(unique) == 1:
            return unique[0]
        return Min(unique)

    def free_symbols(self) -> frozenset:
        out = frozenset()
        for arg in self.args:
            out |= arg.free_symbols()
        return out

    def substitute(self, mapping) -> Expr:
        return Min.make([a.substitute(mapping) for a in self.args])

    def evaluate(self, env, functions=None, arrays=None) -> Number:
        return min(a.evaluate(env, functions, arrays) for a in self.args)

    def children(self) -> Tuple[Expr, ...]:
        return self.args

    def _key(self) -> tuple:
        return ("min", tuple(a._key() for a in self.args))

    def __str__(self) -> str:
        return "min(" + ", ".join(str(a) for a in self.args) + ")"


class Max(Expr):
    """n-ary maximum."""

    __slots__ = ("args",)

    def __init__(self, args: Sequence[Expr]):
        self.args = tuple(args)

    @staticmethod
    def make(args: Sequence[Expr]) -> Expr:
        flat = []
        for arg in args:
            arg = _as_expr(arg)
            if isinstance(arg, Max):
                flat.extend(arg.args)
            else:
                flat.append(arg)
        consts = [a.value for a in flat if isinstance(a, Const)]
        others = [a for a in flat if not isinstance(a, Const)]
        unique = []
        for expr in others:
            if expr not in unique:
                unique.append(expr)
        if consts:
            unique.append(Const(max(consts)))
        if len(unique) == 1:
            return unique[0]
        return Max(unique)

    def free_symbols(self) -> frozenset:
        out = frozenset()
        for arg in self.args:
            out |= arg.free_symbols()
        return out

    def substitute(self, mapping) -> Expr:
        return Max.make([a.substitute(mapping) for a in self.args])

    def evaluate(self, env, functions=None, arrays=None) -> Number:
        return max(a.evaluate(env, functions, arrays) for a in self.args)

    def children(self) -> Tuple[Expr, ...]:
        return self.args

    def _key(self) -> tuple:
        return ("max", tuple(a._key() for a in self.args))

    def __str__(self) -> str:
        return "max(" + ", ".join(str(a) for a in self.args) + ")"


class Read(Expr):
    """A read of an array element; only valid inside computation bodies."""

    __slots__ = ("array", "indices")

    def __init__(self, array: str, indices: Sequence[ExprLike]):
        self.array = array
        self.indices = tuple(_as_expr(i) for i in indices)

    def free_symbols(self) -> frozenset:
        out = frozenset()
        for index in self.indices:
            out |= index.free_symbols()
        return out

    def substitute(self, mapping) -> Expr:
        return Read(self.array, [i.substitute(mapping) for i in self.indices])

    def evaluate(self, env, functions=None, arrays=None) -> Number:
        if arrays is None or self.array not in arrays:
            raise KeyError(f"array {self.array!r} is not bound")
        index = tuple(int(i.evaluate(env, functions, arrays)) for i in self.indices)
        data = arrays[self.array]
        if len(index) == 0:
            # Scalars are stored as zero-dimensional containers.
            return data[()]
        return data[index]

    def children(self) -> Tuple[Expr, ...]:
        return self.indices

    def _key(self) -> tuple:
        return ("read", self.array, tuple(i._key() for i in self.indices))

    def __str__(self) -> str:
        if not self.indices:
            return self.array
        return self.array + "[" + ", ".join(str(i) for i in self.indices) + "]"


DEFAULT_FUNCTIONS: Dict[str, Callable] = {
    "sqrt": math.sqrt,
    "exp": math.exp,
    "log": math.log,
    "abs": abs,
    "pow": pow,
    "div": lambda a, b: a / b,
    "fmax": max,
    "fmin": min,
    "select": lambda cond, then, other: then if cond > 0 else other,
}


class Call(Expr):
    """An intrinsic function call inside a computation body."""

    __slots__ = ("func", "args")

    def __init__(self, func: str, args: Sequence[ExprLike]):
        self.func = func
        self.args = tuple(_as_expr(a) for a in args)

    def free_symbols(self) -> frozenset:
        out = frozenset()
        for arg in self.args:
            out |= arg.free_symbols()
        return out

    def substitute(self, mapping) -> Expr:
        return Call(self.func, [a.substitute(mapping) for a in self.args])

    def evaluate(self, env, functions=None, arrays=None) -> Number:
        table = dict(DEFAULT_FUNCTIONS)
        if functions:
            table.update(functions)
        if self.func not in table:
            raise KeyError(f"unknown intrinsic {self.func!r}")
        values = [a.evaluate(env, functions, arrays) for a in self.args]
        return table[self.func](*values)

    def children(self) -> Tuple[Expr, ...]:
        return self.args

    def _key(self) -> tuple:
        return ("call", self.func, tuple(a._key() for a in self.args))

    def __str__(self) -> str:
        return f"{self.func}(" + ", ".join(str(a) for a in self.args) + ")"


# -- affine decomposition ------------------------------------------------------


def _merge_coeffs(a: Dict[str, Number], b: Dict[str, Number],
                  scale: Number = 1) -> Dict[str, Number]:
    out = dict(a)
    for name, coeff in b.items():
        out[name] = out.get(name, 0) + coeff * scale
    return {name: coeff for name, coeff in out.items() if coeff != 0}


def _affine_decompose(expr: Expr) -> Tuple[Dict[str, Number], Number]:
    if isinstance(expr, Const):
        return {}, expr.value
    if isinstance(expr, Sym):
        return {expr.name: 1}, 0
    if isinstance(expr, Add):
        coeffs: Dict[str, Number] = {}
        const: Number = 0
        for term in expr.terms:
            tc, tk = _affine_decompose(term)
            coeffs = _merge_coeffs(coeffs, tc)
            const += tk
        return coeffs, const
    if isinstance(expr, Mul):
        # A product is affine only if at most one factor is non-constant.
        const_part: Number = 1
        symbolic: Optional[Expr] = None
        for factor in expr.factors:
            if isinstance(factor, Const):
                const_part *= factor.value
            elif symbolic is None:
                symbolic = factor
            else:
                raise _NotAffine()
        if symbolic is None:
            return {}, const_part
        coeffs, const = _affine_decompose(symbolic)
        return ({name: coeff * const_part for name, coeff in coeffs.items()},
                const * const_part)
    raise _NotAffine()


# -- convenience constructors --------------------------------------------------

#: Interned leaves.  Loop iterators, size parameters, and small constants
#: recur constantly across programs, so every coercion returns the one
#: canonical instance: equality is an identity hit and the memoized
#: hash/fragment is computed once per distinct leaf, not once per use.
#: The tables are bounded; once full, new leaves are simply not interned.
_SYM_INTERN: Dict[str, Sym] = {}
_CONST_INTERN: Dict[Number, Const] = {}
_INTERN_LIMIT = 4096


def sym(name: str) -> Sym:
    """Create a symbol (interned: repeated names share one instance)."""
    try:
        return _SYM_INTERN[name]
    except KeyError:
        value = Sym(name)
        if isinstance(name, str) and len(_SYM_INTERN) < _INTERN_LIMIT:
            _SYM_INTERN[name] = value
        return value
    except TypeError:  # unhashable name: let the constructor reject it
        return Sym(name)


def const(value: Number) -> Const:
    """Create a constant (interned: repeated values share one instance)."""
    if value is True or value is False:
        return Const(value)  # bools alias 1/0 as dict keys; do not intern
    try:
        return _CONST_INTERN[value]
    except KeyError:
        expr = Const(value)
        if len(_CONST_INTERN) < _INTERN_LIMIT:
            # Key by the *coerced* value so const(2.0) and const(2) agree.
            _CONST_INTERN[expr.value] = expr
        return expr
    except TypeError:
        return Const(value)


def read(array: str, *indices: ExprLike) -> Read:
    """Create an array-element read for use in computation bodies."""
    return Read(array, indices)


def call(func: str, *args: ExprLike) -> Call:
    """Create an intrinsic function call."""
    return Call(func, args)


def minimum(*args: ExprLike) -> Expr:
    return Min.make([_as_expr(a) for a in args])


def maximum(*args: ExprLike) -> Expr:
    return Max.make([_as_expr(a) for a in args])


def as_expr(value: ExprLike) -> Expr:
    """Public coercion helper (ints, floats, and names become expressions)."""
    return _as_expr(value)

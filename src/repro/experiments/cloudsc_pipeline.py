"""Shared pipeline helpers for the CLOUDSC case study (Section 5).

Two program versions are compared throughout the case study:

* the **baseline** — the structure the production code has (fused physics
  loops with per-iteration scalars), compiled like the tuned Fortran build:
  innermost ``NPROMA`` loops vectorized, the block loop parallelized;
* the **daisy** version — the same program run through a-priori
  normalization (scalar expansion, maximal fission, stride minimization),
  then re-fused along one-to-one producer/consumer relations, array
  contraction, and the same vectorization/parallelization annotations.

The C and DaCe versions of the paper are modeled as calibrated factors on
the baseline (see EXPERIMENTS.md): they share the Fortran loop structure and
differ only by code-generation quality, which is outside the scope of the
loop-nest model.

Normalization runs through a :class:`repro.api.Session`: each harness passes
its settings-scoped session (so repeated ``daisy_optimize`` calls within a
figure — e.g. Figure 12's seven scaling points — hit one content-addressed
cache), and callers that pass no session (the examples) share the
module-level :func:`pipeline_session`.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..api import (Loop, NormalizationOptions, Program, Session,
                   analyze_loop_parallelism, contract_arrays,
                   fuse_adjacent_loops, fuse_chains_in_body,
                   fuse_chains_in_loop)

#: Runtime factors of the C and DaCe code generators relative to the tuned
#: Fortran build, taken from the paper's Figure 11 (both versions share the
#: Fortran loop structure; the gap is code-generation quality, which the
#: loop-nest performance model does not capture).
C_CODEGEN_FACTOR = 1.06
DACE_CODEGEN_FACTOR = 1.18

#: CLOUDSC keeps source iterator names: recipes are not transferred across
#: nests here, and the pseudocode listings of Figure 10 stay readable.
PIPELINE_OPTIONS = NormalizationOptions(canonicalize_iterators=False)

_shared_session: Optional[Session] = None


def pipeline_session() -> Session:
    """The session shared by the CLOUDSC harnesses (one normalization cache)."""
    global _shared_session
    if _shared_session is None:
        _shared_session = Session(normalization=PIPELINE_OPTIONS)
    return _shared_session


def annotate_baseline(program: Program, parallel_blocks: bool = True) -> Program:
    """Annotate a CLOUDSC-structured program the way the tuned build runs it.

    Innermost loops are marked SIMD (the compiler vectorizes the NPROMA loops,
    privatizing per-iteration scalars); the outermost block loop is marked
    parallel when requested and legal.
    """
    annotated = program.copy()
    for top in annotated.top_level_loops():
        if parallel_blocks:
            info = analyze_loop_parallelism(top, annotated.arrays)
            if info.is_parallel:
                top.parallel = True
        for loop in top.iter_loops():
            if not any(isinstance(child, Loop) for child in loop.body):
                loop.vectorized = True
    return annotated


def daisy_optimize(program: Program, parallel_blocks: bool = True,
                   session: Optional[Session] = None) -> Tuple[Program, dict]:
    """Run the daisy normalization-plus-fusion pipeline on a CLOUDSC program.

    Returns the optimized program and a small report dictionary.
    """
    session = session or pipeline_session()
    normalization = session.normalize(program, PIPELINE_OPTIONS)
    normalized, report = normalization.program, normalization.report

    fused = 0
    # Re-join outer (block/vertical) loops that maximal fission separated —
    # splitting those only multiplies cold memory traffic and loop overhead.
    fused += fuse_adjacent_loops(normalized.body, min_depth=2)
    # Inside, fuse one-to-one producer/consumer chains (Figure 10b) and demote
    # temporaries that no longer cross loop boundaries back to scalars.
    fused += fuse_chains_in_body(normalized.body)
    for loop in list(normalized.iter_loops()):
        fused += fuse_chains_in_loop(loop)
    contracted = contract_arrays(normalized)

    annotated = annotate_baseline(normalized, parallel_blocks=parallel_blocks)
    info = {
        "scalars_expanded": report.scalar_expansion.count,
        "loops_split": report.fission.loops_split,
        "chains_fused": fused,
        "arrays_contracted": contracted,
        "normalization_cache_hit": normalization.cache_hit,
    }
    return annotated, info

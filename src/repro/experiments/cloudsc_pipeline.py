"""Shared pipeline helpers for the CLOUDSC case study (Section 5).

Two program versions are compared throughout the case study:

* the **baseline** — the structure the production code has (fused physics
  loops with per-iteration scalars), compiled like the tuned Fortran build:
  innermost ``NPROMA`` loops vectorized, the block loop parallelized;
* the **daisy** version — the same program run through a-priori
  normalization (scalar expansion, maximal fission, stride minimization),
  then re-fused along one-to-one producer/consumer relations, array
  contraction, and the same vectorization/parallelization annotations.

The C and DaCe versions of the paper are modeled as calibrated factors on
the baseline (see EXPERIMENTS.md): they share the Fortran loop structure and
differ only by code-generation quality, which is outside the scope of the
loop-nest model.
"""

from __future__ import annotations

from typing import Tuple

from ..analysis.parallelism import analyze_loop_parallelism
from ..ir.nodes import Loop, Program
from ..normalization.pipeline import NormalizationOptions, normalize
from ..normalization.scalar_expansion import contract_arrays
from ..transforms.fusion import (fuse_adjacent_loops, fuse_chains_in_body,
                                 fuse_chains_in_loop)

#: Runtime factors of the C and DaCe code generators relative to the tuned
#: Fortran build, taken from the paper's Figure 11 (both versions share the
#: Fortran loop structure; the gap is code-generation quality, which the
#: loop-nest performance model does not capture).
C_CODEGEN_FACTOR = 1.06
DACE_CODEGEN_FACTOR = 1.18


def annotate_baseline(program: Program, parallel_blocks: bool = True) -> Program:
    """Annotate a CLOUDSC-structured program the way the tuned build runs it.

    Innermost loops are marked SIMD (the compiler vectorizes the NPROMA loops,
    privatizing per-iteration scalars); the outermost block loop is marked
    parallel when requested and legal.
    """
    annotated = program.copy()
    for top in annotated.top_level_loops():
        if parallel_blocks:
            info = analyze_loop_parallelism(top, annotated.arrays)
            if info.is_parallel:
                top.parallel = True
        for loop in top.iter_loops():
            if not any(isinstance(child, Loop) for child in loop.body):
                loop.vectorized = True
    return annotated


def daisy_optimize(program: Program, parallel_blocks: bool = True) -> Tuple[Program, dict]:
    """Run the daisy normalization-plus-fusion pipeline on a CLOUDSC program.

    Returns the optimized program and a small report dictionary.
    """
    options = NormalizationOptions(canonicalize_iterators=False)
    normalized, report = normalize(program, options)

    fused = 0
    # Re-join outer (block/vertical) loops that maximal fission separated —
    # splitting those only multiplies cold memory traffic and loop overhead.
    fused += fuse_adjacent_loops(normalized.body, min_depth=2)
    # Inside, fuse one-to-one producer/consumer chains (Figure 10b) and demote
    # temporaries that no longer cross loop boundaries back to scalars.
    fused += fuse_chains_in_body(normalized.body)
    for loop in list(normalized.iter_loops()):
        fused += fuse_chains_in_loop(loop)
    contracted = contract_arrays(normalized)

    annotated = annotate_baseline(normalized, parallel_blocks=parallel_blocks)
    info = {
        "scalars_expanded": report.scalar_expansion.count,
        "loops_split": report.fission.loops_split,
        "chains_fused": fused,
        "arrays_contracted": contracted,
    }
    return annotated, info

"""Figure 12: strong and weak scaling of CLOUDSC.

Strong scaling (Figure 12a): the full model at NPROMA=128, NBLOCKS=512 run
with 1-12 threads; the block loop is the parallel dimension.  Weak scaling
(Figure 12b): the workload grows with the thread count (65536 columns per
thread), keeping NPROMA=128.  For both, the Fortran baseline and the daisy
version are modeled directly and the C/DaCe versions as calibrated factors,
as in Figure 11.

One session serves every scaling point, so the normalization-plus-fusion
pipeline runs once and the per-thread-count evaluations hit the cache.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..api import (WEAK_SCALING_POINTS, CloudscConfiguration, Session,
                   build_cloudsc_model)
from .cloudsc_pipeline import (C_CODEGEN_FACTOR, DACE_CODEGEN_FACTOR,
                               PIPELINE_OPTIONS, annotate_baseline,
                               daisy_optimize)
from .common import ExperimentSettings, format_table

STRONG_SCALING_THREADS = (1, 2, 4, 6, 8, 10, 12)
VERSIONS = ("fortran", "c", "dace", "daisy")


def _runtimes_for(session: Session, configuration: CloudscConfiguration,
                  threads: int) -> Dict[str, float]:
    parameters = configuration.parameters()
    program = build_cloudsc_model()
    baseline = annotate_baseline(program, parallel_blocks=True)
    optimized, _ = daisy_optimize(program, parallel_blocks=True, session=session)
    fortran_runtime = session.evaluate(baseline, parameters, threads=threads)
    daisy_runtime = session.evaluate(optimized, parameters, threads=threads)
    return {
        "fortran": fortran_runtime,
        "c": fortran_runtime * C_CODEGEN_FACTOR,
        "dace": fortran_runtime * DACE_CODEGEN_FACTOR,
        "daisy": daisy_runtime,
    }


def run_strong_scaling(settings: Optional[ExperimentSettings] = None,
                       threads: Sequence[int] = STRONG_SCALING_THREADS
                       ) -> List[Dict[str, object]]:
    """Figure 12a: fixed problem size, increasing thread count."""
    settings = settings or ExperimentSettings()
    session = settings.session(normalization=PIPELINE_OPTIONS)
    configuration = CloudscConfiguration(nproma=128, nblocks=512)
    rows: List[Dict[str, object]] = []
    for count in threads:
        runtimes = _runtimes_for(session, configuration, count)
        for version in VERSIONS:
            rows.append({
                "threads": count,
                "version": version,
                "runtime_s": runtimes[version],
                "daisy_speedup_over_fortran":
                    runtimes["fortran"] / runtimes["daisy"] if version == "daisy" else None,
            })
    return rows


def run_weak_scaling(settings: Optional[ExperimentSettings] = None,
                     points: Sequence[Tuple[int, int]] = WEAK_SCALING_POINTS
                     ) -> List[Dict[str, object]]:
    """Figure 12b: workload grows proportionally with the thread count."""
    settings = settings or ExperimentSettings()
    session = settings.session(normalization=PIPELINE_OPTIONS)
    rows: List[Dict[str, object]] = []
    for columns, threads in points:
        nblocks = max(1, columns // 128)
        configuration = CloudscConfiguration(nproma=128, nblocks=nblocks)
        runtimes = _runtimes_for(session, configuration, threads)
        for version in VERSIONS:
            rows.append({
                "workload": columns,
                "threads": threads,
                "version": version,
                "runtime_s": runtimes[version],
                "daisy_speedup_over_fortran":
                    runtimes["fortran"] / runtimes["daisy"] if version == "daisy" else None,
            })
    return rows


def format_strong(rows: List[Dict[str, object]]) -> str:
    return format_table(rows, ["threads", "version", "runtime_s",
                               "daisy_speedup_over_fortran"])


def format_weak(rows: List[Dict[str, object]]) -> str:
    return format_table(rows, ["workload", "threads", "version", "runtime_s",
                               "daisy_speedup_over_fortran"])

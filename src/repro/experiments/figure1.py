"""Figure 1: structurally different GEMM kernels yield different performance.

The figure motivates the paper: the same GEMM expressed with different loop
orders is optimized very differently by auto-schedulers (3x-10x spread),
whereas a normalizing scheduler maps all of them to the same canonical form.
This experiment builds GEMM in all six loop orders and reports the estimated
runtime of each order under the baseline compiler, Polly, the Tiramisu-style
scheduler, and daisy.

Because all six orders share one canonical form, daisy schedules the first
order and serves the remaining five from the session's content-addressed
cache — the cache is the computational expression of the figure's message.
"""

from __future__ import annotations

from itertools import permutations
from typing import Dict, List, Optional

from ..api import Program, ProgramBuilder, benchmark
from .common import ExperimentSettings, format_table, make_session

LOOP_ORDERS = ["".join(order) for order in permutations("ijk")]
SCHEDULERS = ("daisy", "polly", "icc", "tiramisu")


def build_gemm_order(order: str) -> Program:
    """GEMM (C += alpha*A*B, pre-scaled by beta) with the given loop order."""
    b = ProgramBuilder(f"gemm_{order}", parameters=["NI", "NJ", "NK"])
    b.add_array("C", ("NI", "NJ"))
    b.add_array("A", ("NI", "NK"))
    b.add_array("B", ("NK", "NJ"))
    b.add_scalar("alpha")
    b.add_scalar("beta")
    with b.loop("i", 0, "NI"):
        with b.loop("j", 0, "NJ"):
            b.assign(("C", "i", "j"), b.read("C", "i", "j") * b.read("beta"))
    bounds = {"i": "NI", "j": "NJ", "k": "NK"}
    with b.loop(order[0], 0, bounds[order[0]]):
        with b.loop(order[1], 0, bounds[order[1]]):
            with b.loop(order[2], 0, bounds[order[2]]):
                b.assign(("C", "i", "j"),
                         b.read("C", "i", "j")
                         + b.read("alpha") * b.read("A", "i", "k") * b.read("B", "k", "j"))
    return b.finish()


def run(settings: Optional[ExperimentSettings] = None) -> List[Dict[str, object]]:
    """Run the experiment; returns one row per (loop order, scheduler)."""
    settings = settings or ExperimentSettings()
    spec = benchmark("gemm")
    parameters = spec.sizes(settings.size)

    session = make_session(settings, seed_specs=[spec])

    rows: List[Dict[str, object]] = []
    for order in LOOP_ORDERS:
        program = build_gemm_order(order)
        for name in SCHEDULERS:
            runtime = session.estimate(program, parameters, scheduler=name)
            rows.append({"order": order, "scheduler": name, "runtime_s": runtime})

    # Normalize each scheduler's runtimes by its best order so the spread
    # (the figure's message) is directly visible.
    best: Dict[str, float] = {}
    for row in rows:
        name = row["scheduler"]
        best[name] = min(best.get(name, float("inf")), row["runtime_s"])
    for row in rows:
        row["relative_to_best_order"] = row["runtime_s"] / best[row["scheduler"]]
    return rows


def format_results(rows: List[Dict[str, object]]) -> str:
    return format_table(rows, ["order", "scheduler", "runtime_s", "relative_to_best_order"])

"""Figure 6: A/B robustness of daisy versus Polly, icc, and Tiramisu.

For each of the 15 PolyBench benchmarks, the A (original) and B (alternative)
implementations are scheduled by daisy (database seeded from the normalized A
variants only), Polly, icc, and the Tiramisu-style scheduler.  Runtimes are
reported relative to the runtime of the A variant under daisy, exactly like
the figure; schedulers that cannot handle a benchmark are marked
unsupported (the figure's "X").

All four schedulers run through one :class:`repro.api.Session`, so B variants
whose normalized form matches the A variant are served straight from the
content-addressed schedule cache (robustness by construction).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .common import (ExperimentSettings, format_table, geometric_mean,
                     make_session)

SCHEDULERS = ("daisy", "polly", "icc", "tiramisu")
VARIANTS = ("a", "b")


def run(settings: Optional[ExperimentSettings] = None) -> List[Dict[str, object]]:
    """Run the robustness experiment; one row per (benchmark, scheduler, variant)."""
    settings = settings or ExperimentSettings()
    specs = settings.selected_benchmarks()

    session = make_session(settings, seed_specs=specs)

    rows: List[Dict[str, object]] = []
    for spec in specs:
        parameters = spec.sizes(settings.size)
        runtimes: Dict[tuple, float] = {}
        unsupported: Dict[tuple, bool] = {}
        for variant in VARIANTS:
            program = spec.variant(variant)
            for name in SCHEDULERS:
                response = session.schedule(program, parameters, scheduler=name)
                runtimes[(name, variant)] = response.runtime_s
                unsupported[(name, variant)] = response.result.unsupported

        baseline_runtime = runtimes[("daisy", "a")]
        for name in SCHEDULERS:
            for variant in VARIANTS:
                runtime = runtimes[(name, variant)]
                rows.append({
                    "benchmark": spec.name,
                    "scheduler": name,
                    "variant": variant.upper(),
                    "runtime_s": runtime,
                    "normalized_runtime": runtime / baseline_runtime,
                    "unsupported": unsupported[(name, variant)],
                })
    return rows


def robustness_summary(rows: List[Dict[str, object]]) -> List[Dict[str, object]]:
    """Per-scheduler A/B ratio statistics and geometric-mean speedups of daisy."""
    import statistics

    summary: List[Dict[str, object]] = []
    benchmarks = sorted({row["benchmark"] for row in rows})
    for scheduler in SCHEDULERS:
        ratios = []
        speedups_a = []
        speedups_b = []
        for name in benchmarks:
            by_variant = {row["variant"]: row for row in rows
                          if row["benchmark"] == name and row["scheduler"] == scheduler}
            daisy_by_variant = {row["variant"]: row for row in rows
                                if row["benchmark"] == name and row["scheduler"] == "daisy"}
            if not by_variant or any(row["unsupported"] for row in by_variant.values()):
                continue
            a, b = by_variant["A"]["runtime_s"], by_variant["B"]["runtime_s"]
            ratios.append(max(a, b) / min(a, b))
            speedups_a.append(a / daisy_by_variant["A"]["runtime_s"])
            speedups_b.append(b / daisy_by_variant["B"]["runtime_s"])
        summary.append({
            "scheduler": scheduler,
            "mean_ab_ratio": geometric_mean(ratios),
            "median_ab_ratio": statistics.median(ratios) if ratios else float("nan"),
            "max_ab_ratio": max(ratios) if ratios else float("nan"),
            "robust_benchmarks": sum(1 for ratio in ratios if ratio < 1.15),
            "geo_speedup_of_daisy_A": geometric_mean(speedups_a),
            "geo_speedup_of_daisy_B": geometric_mean(speedups_b),
            "benchmarks_supported": len(ratios),
        })
    return summary


def format_results(rows: List[Dict[str, object]]) -> str:
    return format_table(rows, ["benchmark", "scheduler", "variant",
                               "runtime_s", "normalized_runtime", "unsupported"])


def format_summary(rows: List[Dict[str, object]]) -> str:
    return format_table(rows, ["scheduler", "mean_ab_ratio", "median_ab_ratio",
                               "max_ab_ratio", "robust_benchmarks",
                               "geo_speedup_of_daisy_A", "geo_speedup_of_daisy_B",
                               "benchmarks_supported"])

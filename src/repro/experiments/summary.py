"""Headline geometric-mean speedups (abstract / Section 1).

The abstract reports daisy's geometric-mean speedups over the C baseline
compiler, Polly, the Tiramisu auto-scheduler, and the Python frameworks.
This module derives the same aggregates from the Figure 6, Figure 7 and
Figure 9 data so that the numbers in EXPERIMENTS.md are reproducible from a
single entry point.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from . import figure6, figure7, figure9
from .common import ExperimentSettings, format_table, geometric_mean


def run(settings: Optional[ExperimentSettings] = None) -> List[Dict[str, object]]:
    settings = settings or ExperimentSettings()

    fig6_rows = figure6.run(settings)
    fig7_rows = figure7.run(settings)
    fig9_rows = figure9.run(settings)

    rows: List[Dict[str, object]] = []

    # Speedups over the auto-schedulers and icc, from Figure 6 data (A and B
    # variants pooled, unsupported benchmarks excluded, as in the paper).
    daisy = {(r["benchmark"], r["variant"]): r["runtime_s"] for r in fig6_rows
             if r["scheduler"] == "daisy"}
    for scheduler in ("polly", "icc", "tiramisu"):
        ratios = []
        for row in fig6_rows:
            if row["scheduler"] != scheduler or row["unsupported"]:
                continue
            key = (row["benchmark"], row["variant"])
            ratios.append(row["runtime_s"] / daisy[key])
        rows.append({"comparison": f"daisy vs {scheduler}",
                     "geo_mean_speedup": geometric_mean(ratios),
                     "paper_value": {"polly": 2.31, "icc": 1.58, "tiramisu": 2.89}[scheduler]})

    # Speedup over the plain C compiler, from Figure 7 data.
    clang = {(r["benchmark"], r["variant"]): r["runtime_s"] for r in fig7_rows
             if r["configuration"] == "clang"}
    full = {(r["benchmark"], r["variant"]): r["runtime_s"] for r in fig7_rows
            if r["configuration"] == "norm+opt"}
    ratios = [clang[key] / full[key] for key in full]
    rows.append({"comparison": "daisy vs baseline C compiler",
                 "geo_mean_speedup": geometric_mean(ratios), "paper_value": 21.13})

    # Speedups over the Python frameworks, from Figure 9 data.
    daisy_py = {r["benchmark"]: r["runtime_s"] for r in fig9_rows
                if r["framework"] == "daisy"}
    paper_values = {"numpy": 9.04, "numba": 3.92, "dace": 1.47}
    for framework in ("numpy", "numba", "dace"):
        ratios = [row["runtime_s"] / daisy_py[row["benchmark"]]
                  for row in fig9_rows if row["framework"] == framework]
        rows.append({"comparison": f"daisy vs {framework}",
                     "geo_mean_speedup": geometric_mean(ratios),
                     "paper_value": paper_values[framework]})
    return rows


def format_results(rows: List[Dict[str, object]]) -> str:
    return format_table(rows, ["comparison", "geo_mean_speedup", "paper_value"])

"""Figure 11: CLOUDSC full-model runtime for sequential execution.

The Fortran, C, DaCe, and daisy versions of the (proxy) model are compared
for a single-threaded run at NPROMA=128, NBLOCKS=512.  Runtimes are
normalized by the Fortran version, so values below 1.0 mean faster than the
hand-tuned Fortran code.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..api import CloudscConfiguration, build_cloudsc_model
from .cloudsc_pipeline import (C_CODEGEN_FACTOR, DACE_CODEGEN_FACTOR,
                               PIPELINE_OPTIONS, annotate_baseline,
                               daisy_optimize)
from .common import ExperimentSettings, format_table

VERSIONS = ("fortran", "c", "dace", "daisy")


def run(settings: Optional[ExperimentSettings] = None,
        configuration: Optional[CloudscConfiguration] = None
        ) -> List[Dict[str, object]]:
    settings = settings or ExperimentSettings()
    configuration = configuration or CloudscConfiguration(nproma=128, nblocks=512)
    parameters = configuration.parameters()
    session = settings.session(normalization=PIPELINE_OPTIONS)

    model_program = build_cloudsc_model()
    baseline = annotate_baseline(model_program, parallel_blocks=False)
    optimized, pipeline_info = daisy_optimize(model_program, parallel_blocks=False,
                                              session=session)

    fortran_runtime = session.evaluate(baseline, parameters, threads=1)
    daisy_runtime = session.evaluate(optimized, parameters, threads=1)

    runtimes = {
        "fortran": fortran_runtime,
        "c": fortran_runtime * C_CODEGEN_FACTOR,
        "dace": fortran_runtime * DACE_CODEGEN_FACTOR,
        "daisy": daisy_runtime,
    }

    rows: List[Dict[str, object]] = []
    for version in VERSIONS:
        rows.append({
            "version": version,
            "runtime_s": runtimes[version],
            "normalized_runtime": runtimes[version] / fortran_runtime,
        })
    rows.append({"version": "pipeline", **pipeline_info})
    return rows


def format_results(rows: List[Dict[str, object]]) -> str:
    table_rows = [row for row in rows if row.get("version") in VERSIONS]
    return format_table(table_rows, ["version", "runtime_s", "normalized_runtime"])

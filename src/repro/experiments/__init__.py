"""Per-figure/table experiment harnesses reproducing the paper's evaluation.

* :mod:`repro.experiments.figure1` — GEMM loop-order sensitivity.
* :mod:`repro.experiments.figure6` — A/B robustness vs Polly, icc, Tiramisu.
* :mod:`repro.experiments.figure7` — normalization/transfer-tuning ablation.
* :mod:`repro.experiments.figure9` — Python (NPBench) frameworks comparison.
* :mod:`repro.experiments.table1` — CLOUDSC erosion kernel (runtime, L1).
* :mod:`repro.experiments.figure11` — CLOUDSC full model, sequential.
* :mod:`repro.experiments.figure12` — CLOUDSC strong and weak scaling.
* :mod:`repro.experiments.summary` — headline geometric-mean speedups.
"""

from . import (cloudsc_pipeline, figure1, figure6, figure7, figure9, figure11,
               figure12, summary, table1)
from .common import (ExperimentSettings, format_table, geometric_mean,
                     make_session)

__all__ = [
    "cloudsc_pipeline", "figure1", "figure6", "figure7", "figure9",
    "figure11", "figure12", "summary", "table1",
    "ExperimentSettings", "format_table", "geometric_mean", "make_session",
]

"""Shared infrastructure of the experiment harnesses.

Every experiment module produces plain data (lists of row dictionaries plus a
``format_table`` helper) so that the same code backs the pytest-benchmark
targets in ``benchmarks/``, the runnable examples, and EXPERIMENTS.md.

All pipeline wiring goes through :mod:`repro.api`: experiments create
:class:`~repro.api.Session` objects (one per pipeline configuration) and
resolve every scheduler by registry name, so they automatically share the
content-addressed normalization cache and the transfer-tuning database.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, List, Mapping, Optional, Sequence

import numpy as np

from ..api import (DEFAULT_MACHINE, BenchmarkSpec, MachineModel, MctsConfig,
                   NormalizationOptions, Program, SearchConfig, Session,
                   all_benchmarks, polybench_benchmarks)

#: Thread count of the paper's evaluation machine (Xeon E5-2680v3).
DEFAULT_THREADS = 12


@dataclass
class ExperimentSettings:
    """Knobs controlling how expensive an experiment run is.

    The defaults correspond to the paper's configuration; tests use the
    ``fast()`` preset to keep runtimes in milliseconds.
    """

    threads: int = DEFAULT_THREADS
    size: str = "large"
    machine: MachineModel = field(default_factory=lambda: DEFAULT_MACHINE)
    search: SearchConfig = field(default_factory=SearchConfig)
    mcts: MctsConfig = field(default_factory=MctsConfig)
    benchmarks: Optional[Sequence[str]] = None

    @staticmethod
    def fast(benchmarks: Optional[Sequence[str]] = None,
             size: str = "large") -> "ExperimentSettings":
        return ExperimentSettings(
            size=size,
            search=SearchConfig(population_size=4, epochs=1, generations_per_epoch=1),
            mcts=MctsConfig(rollouts=6),
            benchmarks=benchmarks,
        )

    def selected_benchmarks(self) -> List[BenchmarkSpec]:
        # The paper's figures sweep PolyBench only; any registered benchmark
        # (e.g. the FEM-assembly kernels) can still be opted in by name.
        if self.benchmarks is None:
            return polybench_benchmarks()
        wanted = set(self.benchmarks)
        return [spec for spec in all_benchmarks() if spec.name in wanted]

    def session(self, normalization: Optional[NormalizationOptions] = None,
                pipeline: Optional[str] = None) -> Session:
        """A fresh Session configured like this experiment run.

        ``pipeline`` selects a registry-named normalization pipeline
        ("a-priori", "no-fission", ...), the preferred way for ablations.
        """
        return Session(machine=self.machine, threads=self.threads,
                       normalization=normalization, pipeline=pipeline,
                       search=self.search, mcts=self.mcts, size=self.size)


def make_session(settings: ExperimentSettings,
                 seed_specs: Optional[Sequence[BenchmarkSpec]] = None,
                 normalization: Optional[NormalizationOptions] = None,
                 pipeline: Optional[str] = None) -> Session:
    """Create a session, optionally seeding its database from A variants."""
    session = settings.session(normalization, pipeline)
    if seed_specs:
        session.seed([spec.name for spec in seed_specs], variant="a")
    return session


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (ignores non-positive entries)."""
    positive = [v for v in values if v > 0]
    if not positive:
        return float("nan")
    return float(np.exp(np.mean(np.log(positive))))


def benchmark_parameters(spec: BenchmarkSpec, size: str) -> Mapping[str, int]:
    """Concrete parameter bindings (sizes) for a benchmark."""
    return spec.sizes(size)


def format_table(rows: Sequence[Mapping[str, object]],
                 columns: Sequence[str]) -> str:
    """Render rows as a fixed-width text table (used by examples and logs)."""
    widths = {col: max(len(col), *(len(_fmt(row.get(col))) for row in rows))
              for col in columns} if rows else {col: len(col) for col in columns}
    header = "  ".join(col.ljust(widths[col]) for col in columns)
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append("  ".join(_fmt(row.get(col)).ljust(widths[col]) for col in columns))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4f}"
    return str(value)

"""Shared infrastructure of the experiment harnesses.

Every experiment module produces plain data (lists of row dictionaries plus a
``format_table`` helper) so that the same code backs the pytest-benchmark
targets in ``benchmarks/``, the runnable examples, and EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from ..ir.nodes import Program
from ..perf.machine import DEFAULT_MACHINE, MachineModel
from ..perf.model import CostModel
from ..scheduler.base import Scheduler
from ..scheduler.compiler_baseline import ClangScheduler, IccScheduler
from ..scheduler.daisy import DaisyConfig, DaisyScheduler
from ..scheduler.evolutionary import SearchConfig
from ..scheduler.frameworks import DaceScheduler, NumbaScheduler, NumpyScheduler
from ..scheduler.polyhedral import PollyScheduler
from ..scheduler.tiramisu import MctsConfig, TiramisuScheduler
from ..workloads.registry import BenchmarkSpec, all_benchmarks

#: Thread count of the paper's evaluation machine (Xeon E5-2680v3).
DEFAULT_THREADS = 12


@dataclass
class ExperimentSettings:
    """Knobs controlling how expensive an experiment run is.

    The defaults correspond to the paper's configuration; tests use the
    ``fast()`` preset to keep runtimes in milliseconds.
    """

    threads: int = DEFAULT_THREADS
    size: str = "large"
    machine: MachineModel = field(default_factory=lambda: DEFAULT_MACHINE)
    search: SearchConfig = field(default_factory=SearchConfig)
    mcts: MctsConfig = field(default_factory=MctsConfig)
    benchmarks: Optional[Sequence[str]] = None

    @staticmethod
    def fast(benchmarks: Optional[Sequence[str]] = None,
             size: str = "large") -> "ExperimentSettings":
        return ExperimentSettings(
            size=size,
            search=SearchConfig(population_size=4, epochs=1, generations_per_epoch=1),
            mcts=MctsConfig(rollouts=6),
            benchmarks=benchmarks,
        )

    def selected_benchmarks(self) -> List[BenchmarkSpec]:
        specs = all_benchmarks()
        if self.benchmarks is None:
            return specs
        wanted = set(self.benchmarks)
        return [spec for spec in specs if spec.name in wanted]


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (ignores non-positive entries)."""
    positive = [v for v in values if v > 0]
    if not positive:
        return float("nan")
    return float(np.exp(np.mean(np.log(positive))))


def make_daisy(settings: ExperimentSettings,
               seed_specs: Optional[Sequence[BenchmarkSpec]] = None,
               normalization=None) -> DaisyScheduler:
    """Create a daisy scheduler, optionally seeded from benchmark A variants."""
    config = DaisyConfig(threads=settings.threads, search=settings.search)
    daisy = DaisyScheduler(machine=settings.machine, config=config,
                           normalization=normalization)
    for spec in (seed_specs or []):
        parameters = benchmark_parameters(spec, settings.size)
        daisy.tune(spec.variant("a"), parameters, label=spec.name)
    return daisy


def make_baselines(settings: ExperimentSettings) -> Dict[str, Scheduler]:
    """The auto-scheduler and compiler baselines of Section 4.1."""
    return {
        "polly": PollyScheduler(settings.machine, threads=settings.threads),
        "icc": IccScheduler(settings.machine, threads=settings.threads),
        "tiramisu": TiramisuScheduler(settings.machine, threads=settings.threads,
                                      config=settings.mcts),
    }


def make_python_frameworks(settings: ExperimentSettings) -> Dict[str, Scheduler]:
    """The Python-framework baselines of Section 4.3."""
    return {
        "numpy": NumpyScheduler(settings.machine),
        "numba": NumbaScheduler(settings.machine, threads=settings.threads),
        "dace": DaceScheduler(settings.machine, threads=settings.threads),
    }


def benchmark_parameters(spec: BenchmarkSpec, size: str) -> Dict[str, int]:
    """Concrete parameter bindings (sizes) for a benchmark."""
    return spec.sizes(size)


def estimate_runtime(scheduler: Scheduler, program: Program,
                     parameters: Mapping[str, int]) -> float:
    """Schedule a program and estimate its runtime with the scheduler's model."""
    return scheduler.estimate(program, parameters)


def format_table(rows: Sequence[Mapping[str, object]],
                 columns: Sequence[str]) -> str:
    """Render rows as a fixed-width text table (used by examples and logs)."""
    widths = {col: max(len(col), *(len(_fmt(row.get(col))) for row in rows))
              for col in columns} if rows else {col: len(col) for col in columns}
    header = "  ".join(col.ljust(widths[col]) for col in columns)
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append("  ".join(_fmt(row.get(col)).ljust(widths[col]) for col in columns))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4f}"
    return str(value)

"""Figure 9: auto-scheduling Python (NPBench-style) implementations.

The NPBench variants of the benchmarks (translated operator by operator, the
way an array-language frontend lowers them) are scheduled by daisy — using
the very same database that was seeded from the normalized *C* A variants —
by daisy without normalization, and by the NumPy, Numba, and DaCe execution
models.  Runtimes are reported relative to daisy (lower is better).

The framework baselines are ordinary registry schedulers, so one session
covers daisy, numpy, numba, and dace; the no-normalization ablation is its
own session selecting the registry-named ``"identity"`` pipeline (different
pipeline, different database).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .common import (ExperimentSettings, format_table, geometric_mean,
                     make_session)

FRAMEWORKS = ("daisy", "daisy_no_norm", "numpy", "numba", "dace")


def run(settings: Optional[ExperimentSettings] = None) -> List[Dict[str, object]]:
    settings = settings or ExperimentSettings()
    specs = settings.selected_benchmarks()

    # The database is seeded from the C A variants (Section 4.3: "we apply
    # the same database-based auto-scheduler from Section 4.1").
    session = make_session(settings, seed_specs=specs, pipeline="a-priori")
    session_no_norm = make_session(settings, seed_specs=specs,
                                   pipeline="identity")

    rows: List[Dict[str, object]] = []
    for spec in specs:
        parameters = spec.sizes(settings.size)
        program = spec.variant("npbench")
        runtimes: Dict[str, float] = {
            "daisy": session.estimate(program, parameters),
            "daisy_no_norm": session_no_norm.estimate(program, parameters),
        }
        for name in ("numpy", "numba", "dace"):
            runtimes[name] = session.estimate(program, parameters, scheduler=name)

        baseline = runtimes["daisy"]
        for name in FRAMEWORKS:
            rows.append({
                "benchmark": spec.name,
                "framework": name,
                "runtime_s": runtimes[name],
                "normalized_runtime": runtimes[name] / baseline,
            })
    return rows


def framework_summary(rows: List[Dict[str, object]]) -> List[Dict[str, object]]:
    """Geometric-mean slowdown of each framework relative to daisy."""
    summary = []
    for name in FRAMEWORKS:
        ratios = [row["normalized_runtime"] for row in rows if row["framework"] == name]
        summary.append({"framework": name,
                        "geo_mean_vs_daisy": geometric_mean(ratios)})
    return summary


def format_results(rows: List[Dict[str, object]]) -> str:
    return format_table(rows, ["benchmark", "framework", "runtime_s",
                               "normalized_runtime"])


def format_summary(rows: List[Dict[str, object]]) -> str:
    return format_table(rows, ["framework", "geo_mean_vs_daisy"])

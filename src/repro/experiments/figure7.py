"""Figure 7 (ablation): normalization and transfer tuning in isolation.

Four configurations per benchmark and variant, all relative to clang on the
A variant:

* ``clang``            — the plain compiler baseline,
* ``daisy (Opt)``      — transfer tuning *without* a-priori normalization,
* ``daisy (Norm)``     — a-priori normalization *without* transfer tuning
  (the normalized program is then compiled like clang),
* ``daisy (Norm+Opt)`` — the full pipeline.

The paper's finding is that only Norm+Opt reaches the best performance
consistently; Opt alone fails whenever the B variant's loop structure does
not literally match a database entry.

Each daisy configuration is one :class:`repro.api.Session` (sessions are the
unit of pipeline configuration), and the configurations differ only in the
*registry-named normalization pipeline* they select — ``"a-priori"`` for the
full pipeline, ``"identity"`` for transfer tuning on unnormalized nests — so
the ablation carries no ad-hoc option-flag combinations.  Note that
``"identity"`` skips *all* preconditioning, including classical loop-bound
normalization (which the pre-PR-3 flag combination still applied): the "Opt"
configuration now tunes the programs exactly as written, matching the
paper's description.  The "Norm" configuration reuses the full session's
normalization cache by scheduling with ``normalize=True`` under the clang
baseline.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .common import ExperimentSettings, format_table, make_session

CONFIGURATIONS = ("clang", "opt", "norm", "norm+opt")
VARIANTS = ("a", "b")


def run(settings: Optional[ExperimentSettings] = None) -> List[Dict[str, object]]:
    settings = settings or ExperimentSettings()
    specs = settings.selected_benchmarks()

    # Full daisy: normalization + transfer tuning, seeded from A variants.
    session_full = make_session(settings, seed_specs=specs,
                                pipeline="a-priori")
    # Opt-only: same transfer-tuning machinery but the identity pipeline (no
    # normalization); its database is seeded from the *unnormalized* A
    # variants.
    session_opt = make_session(settings, seed_specs=specs,
                               pipeline="identity")

    rows: List[Dict[str, object]] = []
    for spec in specs:
        parameters = spec.sizes(settings.size)
        runtimes: Dict[tuple, float] = {}
        for variant in VARIANTS:
            program = spec.variant(variant)

            runtimes[("clang", variant)] = session_full.estimate(
                program, parameters, scheduler="clang", threads=1)
            runtimes[("opt", variant)] = session_opt.estimate(program, parameters)

            # Norm: a-priori normalization, then the plain compiler.
            runtimes[("norm", variant)] = session_full.estimate(
                program, parameters, scheduler="clang", threads=1, normalize=True)

            runtimes[("norm+opt", variant)] = session_full.estimate(program, parameters)

        baseline = runtimes[("clang", "a")]
        for configuration in CONFIGURATIONS:
            for variant in VARIANTS:
                runtime = runtimes[(configuration, variant)]
                rows.append({
                    "benchmark": spec.name,
                    "configuration": configuration,
                    "variant": variant.upper(),
                    "runtime_s": runtime,
                    "normalized_runtime": runtime / baseline,
                })
    return rows


def format_results(rows: List[Dict[str, object]]) -> str:
    return format_table(rows, ["benchmark", "configuration", "variant",
                               "runtime_s", "normalized_runtime"])

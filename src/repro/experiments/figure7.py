"""Figure 7 (ablation): normalization and transfer tuning in isolation.

Four configurations per benchmark and variant, all relative to clang on the
A variant:

* ``clang``            — the plain compiler baseline,
* ``daisy (Opt)``      — transfer tuning *without* a-priori normalization,
* ``daisy (Norm)``     — a-priori normalization *without* transfer tuning
  (the normalized program is then compiled like clang),
* ``daisy (Norm+Opt)`` — the full pipeline.

The paper's finding is that only Norm+Opt reaches the best performance
consistently; Opt alone fails whenever the B variant's loop structure does
not literally match a database entry.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..normalization.pipeline import NormalizationOptions, normalize
from ..scheduler.compiler_baseline import ClangScheduler
from .common import ExperimentSettings, format_table, make_daisy

CONFIGURATIONS = ("clang", "opt", "norm", "norm+opt")
VARIANTS = ("a", "b")

#: Normalization options that disable the paper's criteria (used for the
#: "Opt" configuration: transfer tuning on unnormalized loop nests).
NO_NORMALIZATION = NormalizationOptions(
    apply_scalar_expansion=False,
    apply_fission=False,
    apply_stride_minimization=False,
    canonicalize_iterators=False,
)


def run(settings: Optional[ExperimentSettings] = None) -> List[Dict[str, object]]:
    settings = settings or ExperimentSettings()
    specs = settings.selected_benchmarks()

    clang = ClangScheduler(settings.machine, threads=1)
    # Full daisy: normalization + transfer tuning, seeded from A variants.
    daisy_full = make_daisy(settings, seed_specs=specs)
    # Opt-only: same transfer-tuning machinery but without normalization;
    # its database is seeded from the *unnormalized* A variants.
    daisy_opt = make_daisy(settings, seed_specs=specs, normalization=NO_NORMALIZATION)

    rows: List[Dict[str, object]] = []
    for spec in specs:
        parameters = spec.sizes(settings.size)
        runtimes: Dict[tuple, float] = {}
        for variant in VARIANTS:
            program = spec.variant(variant)

            runtimes[("clang", variant)] = clang.estimate(program, parameters)
            runtimes[("opt", variant)] = daisy_opt.estimate(program, parameters)

            normalized, _ = normalize(program)
            runtimes[("norm", variant)] = clang.estimate(normalized, parameters)

            runtimes[("norm+opt", variant)] = daisy_full.estimate(program, parameters)

        baseline = runtimes[("clang", "a")]
        for configuration in CONFIGURATIONS:
            for variant in VARIANTS:
                runtime = runtimes[(configuration, variant)]
                rows.append({
                    "benchmark": spec.name,
                    "configuration": configuration,
                    "variant": variant.upper(),
                    "runtime_s": runtime,
                    "normalized_runtime": runtime / baseline,
                })
    return rows


def format_results(rows: List[Dict[str, object]]) -> str:
    return format_table(rows, ["benchmark", "configuration", "variant",
                               "runtime_s", "normalized_runtime"])

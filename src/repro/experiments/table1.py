"""Table 1: the cloud-erosion loop nest before and after normalization.

The table reports, for the erosion loop nest of Figure 10 at NPROMA=128:

* the runtime of a single iteration (one vertical level),
* the runtime of KLEV iterations (a full vertical sweep),
* the absolute number of loads and evictions on the L1 cache.

Runtimes come from the analytical cost model under the repeated-measurement
(warm-cache) protocol; L1 statistics come from the cache simulator fed with
the exact address trace of one kernel execution.  Both are served by the
session facade (``evaluate`` and ``cache_report``).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..api import build_erosion_kernel
from .cloudsc_pipeline import (PIPELINE_OPTIONS, annotate_baseline,
                               daisy_optimize)
from .common import ExperimentSettings, format_table

#: Configuration of Section 5.1: NPROMA=128, KLEV vertical levels.
NPROMA = 128
KLEV = 137


def run(settings: Optional[ExperimentSettings] = None) -> List[Dict[str, object]]:
    settings = settings or ExperimentSettings()
    parameters = {"NPROMA": NPROMA}
    session = settings.session(normalization=PIPELINE_OPTIONS)

    kernel = build_erosion_kernel()
    original = annotate_baseline(kernel, parallel_blocks=False)
    optimized, pipeline_info = daisy_optimize(kernel, parallel_blocks=False,
                                              session=session)

    rows: List[Dict[str, object]] = []
    for name, program in (("original", original), ("optimized", optimized)):
        single = session.evaluate(program, parameters, threads=1,
                                  assume_warm_caches=True)
        sweep = single * KLEV
        report = session.cache_report(program, parameters)
        rows.append({
            "version": name,
            "single_iteration_ms": single * 1e3,
            "klev_iterations_ms": sweep * 1e3,
            "l1_loads": report.l1_loads,
            "l1_evicts": report.l1_evictions,
        })
    rows.append({"version": "pipeline", **pipeline_info})
    return rows


def format_results(rows: List[Dict[str, object]]) -> str:
    table_rows = [row for row in rows if row.get("version") in ("original", "optimized")]
    return format_table(table_rows, ["version", "single_iteration_ms",
                                     "klev_iterations_ms", "l1_loads", "l1_evicts"])

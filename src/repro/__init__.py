"""repro — reproduction of "A Priori Loop Nest Normalization" (CGO 2025).

The package is organized in layers:

* :mod:`repro.ir` — the symbolic loop-nest representation.
* :mod:`repro.frontend` — the C-like source frontend (further frontends
  plug in through :func:`repro.api.register_frontend`).
* :mod:`repro.analysis` — dependence, dataflow, stride and reuse analyses.
* :mod:`repro.passes` — the unified pass framework: instrumented passes,
  pipelines with fixed-point groups, the named-pipeline registry, and
  memoized per-nest analyses.
* :mod:`repro.normalization` — the paper's two normalization criteria,
  packaged as registered pass pipelines.
* :mod:`repro.transforms` — classical loop transformations and idiom detection.
* :mod:`repro.interp` — a reference interpreter for semantic validation.
* :mod:`repro.perf` — the cache/CPU performance-model substrate.
* :mod:`repro.scheduler` — the daisy auto-scheduler, the baselines, and the
  (sharded) transfer-tuning database.
* :mod:`repro.workloads` — PolyBench A/B variants, NPBench variants, CLOUDSC proxy.
* :mod:`repro.api` — the unified Session facade: pluggable scheduler and
  frontend registries, a content-addressed normalization cache over
  pluggable backends, and batch scheduling.  **New code should go through
  this layer.**
* :mod:`repro.observability` — dependency-free metrics (counters, gauges,
  per-priority latency histograms) with Prometheus text rendering and
  cross-process registry merging.
* :mod:`repro.serving` — the scheduling service: priority queue, admission
  control, multi-process worker pool, HTTP endpoint (``/metrics`` included),
  and CLI.
* :mod:`repro.experiments` — per-figure/table reproduction harnesses.

See ``README.md`` and ``docs/`` for the user-facing documentation.
"""

from .api import (RegistryError, ScheduleRequest, ScheduleResponse, Session,
                  register_frontend, register_scheduler)
from .ir import Program, ProgramBuilder
from .normalization import NormalizationOptions, normalize, normalize_program

__version__ = "0.1.0"

__all__ = [
    "Program",
    "ProgramBuilder",
    "NormalizationOptions",
    "normalize",
    "normalize_program",
    "Session",
    "ScheduleRequest",
    "ScheduleResponse",
    "RegistryError",
    "register_scheduler",
    "register_frontend",
    "__version__",
]

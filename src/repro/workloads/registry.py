"""Benchmark registry.

Maps each of the 15 PolyBench benchmarks selected by the paper to its A, B,
and NPBench-style variant builders plus its size presets, and provides the
single entry point the experiments iterate over.  The FEM-assembly kernels
of :mod:`repro.workloads.fem` register here too under the ``"fem"``
category; the paper-figure experiments restrict themselves to the PolyBench
subset via :func:`polybench_benchmarks`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from ..ir.nodes import Program  # noqa: F401  (re-exported for typing convenience)
from . import sizes as size_presets
from .fem import (build_fem_mass_a, build_fem_mass_b, build_fem_mass_npbench,
                  build_fem_rhs_a, build_fem_rhs_b, build_fem_rhs_npbench,
                  build_fem_stiffness_a, build_fem_stiffness_b,
                  build_fem_stiffness_npbench)
from .polybench import (build_2mm_a, build_2mm_b, build_2mm_npbench, build_3mm_a,
               build_3mm_b, build_3mm_npbench, build_atax_a, build_atax_b,
               build_atax_npbench, build_bicg_a, build_bicg_b,
               build_bicg_npbench, build_correlation_a, build_correlation_b,
               build_correlation_npbench, build_covariance_a,
               build_covariance_b, build_covariance_npbench, build_fdtd2d_a,
               build_fdtd2d_b, build_fdtd2d_npbench, build_gemm_a,
               build_gemm_b, build_gemm_npbench, build_gemver_a,
               build_gemver_b, build_gemver_npbench, build_gesummv_a,
               build_gesummv_b, build_gesummv_npbench, build_heat3d_a,
               build_heat3d_b, build_heat3d_npbench, build_jacobi2d_a,
               build_jacobi2d_b, build_jacobi2d_npbench, build_mvt_a,
               build_mvt_b, build_mvt_npbench, build_syr2k_a, build_syr2k_b,
               build_syr2k_npbench, build_syrk_a, build_syrk_b,
               build_syrk_npbench)

Builder = Callable[[], "Program"]


@dataclass(frozen=True)
class BenchmarkSpec:
    """One benchmark with all of its implementation variants."""

    name: str
    category: str
    build_a: Builder
    build_b: Builder
    build_npbench: Builder
    #: Containers whose final contents define the benchmark's output.
    outputs: Tuple[str, ...]
    #: Scalar inputs and the values PolyBench initializes them with.
    scalars: Mapping[str, float]

    def sizes(self, size: str = "large") -> Dict[str, int]:
        return size_presets.benchmark_sizes(self.name, size)

    def variant(self, which: str) -> "Program":
        """Build one of the variants: ``"a"``, ``"b"`` or ``"npbench"``."""
        builders = {"a": self.build_a, "b": self.build_b, "npbench": self.build_npbench}
        if which not in builders:
            raise KeyError(f"unknown variant {which!r}")
        return builders[which]()


_BENCHMARKS: List[BenchmarkSpec] = [
    BenchmarkSpec("gemm", "blas3", build_gemm_a, build_gemm_b, build_gemm_npbench,
                  outputs=("C",), scalars={"alpha": 1.5, "beta": 1.2}),
    BenchmarkSpec("2mm", "blas3", build_2mm_a, build_2mm_b, build_2mm_npbench,
                  outputs=("D",), scalars={"alpha": 1.5, "beta": 1.2}),
    BenchmarkSpec("3mm", "blas3", build_3mm_a, build_3mm_b, build_3mm_npbench,
                  outputs=("G",), scalars={}),
    BenchmarkSpec("syrk", "blas3", build_syrk_a, build_syrk_b, build_syrk_npbench,
                  outputs=("C",), scalars={"alpha": 1.5, "beta": 1.2}),
    BenchmarkSpec("syr2k", "blas3", build_syr2k_a, build_syr2k_b, build_syr2k_npbench,
                  outputs=("C",), scalars={"alpha": 1.5, "beta": 1.2}),
    BenchmarkSpec("atax", "blas2", build_atax_a, build_atax_b, build_atax_npbench,
                  outputs=("y",), scalars={}),
    BenchmarkSpec("bicg", "blas2", build_bicg_a, build_bicg_b, build_bicg_npbench,
                  outputs=("s", "q"), scalars={}),
    BenchmarkSpec("mvt", "blas2", build_mvt_a, build_mvt_b, build_mvt_npbench,
                  outputs=("x1", "x2"), scalars={}),
    BenchmarkSpec("gemver", "blas2", build_gemver_a, build_gemver_b, build_gemver_npbench,
                  outputs=("w",), scalars={"alpha": 1.5, "beta": 1.2}),
    BenchmarkSpec("gesummv", "blas2", build_gesummv_a, build_gesummv_b,
                  build_gesummv_npbench, outputs=("y",),
                  scalars={"alpha": 1.5, "beta": 1.2}),
    BenchmarkSpec("correlation", "stats", build_correlation_a, build_correlation_b,
                  build_correlation_npbench, outputs=("corr",),
                  scalars={"float_n": 1400.0}),
    BenchmarkSpec("covariance", "stats", build_covariance_a, build_covariance_b,
                  build_covariance_npbench, outputs=("cov",),
                  scalars={"float_n": 1400.0}),
    BenchmarkSpec("fdtd-2d", "stencil", build_fdtd2d_a, build_fdtd2d_b,
                  build_fdtd2d_npbench, outputs=("ex", "ey", "hz"), scalars={}),
    BenchmarkSpec("jacobi-2d", "stencil", build_jacobi2d_a, build_jacobi2d_b,
                  build_jacobi2d_npbench, outputs=("A",), scalars={}),
    BenchmarkSpec("heat-3d", "stencil", build_heat3d_a, build_heat3d_b,
                  build_heat3d_npbench, outputs=("A",), scalars={}),
    BenchmarkSpec("fem-mass", "fem", build_fem_mass_a, build_fem_mass_b,
                  build_fem_mass_npbench, outputs=("Ae",), scalars={}),
    BenchmarkSpec("fem-stiffness", "fem", build_fem_stiffness_a,
                  build_fem_stiffness_b, build_fem_stiffness_npbench,
                  outputs=("Ke",), scalars={"kappa": 0.9}),
    BenchmarkSpec("fem-rhs", "fem", build_fem_rhs_a, build_fem_rhs_b,
                  build_fem_rhs_npbench, outputs=("be",), scalars={}),
]

_BY_NAME: Dict[str, BenchmarkSpec] = {spec.name: spec for spec in _BENCHMARKS}


def all_benchmarks() -> List[BenchmarkSpec]:
    """Every registered benchmark: PolyBench plus the FEM-assembly kernels."""
    return list(_BENCHMARKS)


def polybench_benchmarks() -> List[BenchmarkSpec]:
    """The 15 parallelizable PolyBench benchmarks selected by the paper."""
    return [spec for spec in _BENCHMARKS if spec.category != "fem"]


def benchmark(name: str) -> BenchmarkSpec:
    if name not in _BY_NAME:
        raise KeyError(f"unknown benchmark {name!r}; known: {sorted(_BY_NAME)}")
    return _BY_NAME[name]


def benchmark_names() -> List[str]:
    return [spec.name for spec in _BENCHMARKS]


# -- fuzz namespace ----------------------------------------------------------------
#
# Generated programs live beside the curated benchmarks under ``fuzz:`` names
# of the form ``fuzz:<size_class>-<seed>`` (e.g. ``fuzz:small-17``).  Any such
# name resolves lazily through the deterministic generator, so the namespace
# is effectively infinite without storing anything; corpus entries (including
# minimized reproducers, whose programs differ from what the generator would
# emit today) can be pinned explicitly via :func:`register_fuzz_program`.

_FUZZ_PROGRAMS: Dict[str, Tuple["Program", Dict[str, int]]] = {}


def fuzz_key(size_class: str, seed: int) -> str:
    return f"{size_class}-{seed}"


def register_fuzz_program(generated) -> str:
    """Pin a generated (or minimized) program; returns its workload name.

    ``generated`` is a :class:`repro.fuzz.generator.GeneratedProgram`.
    Explicit registration takes precedence over lazy generation for the
    same key, so replayed corpora shadow the live generator.
    """
    key = fuzz_key(generated.size_class, generated.seed)
    _FUZZ_PROGRAMS[key] = (generated.program, dict(generated.parameters))
    return f"fuzz:{key}"


def fuzz_names() -> List[str]:
    """Keys of the explicitly registered fuzz programs (sans ``fuzz:``)."""
    return sorted(_FUZZ_PROGRAMS)


def fuzz_program(key: str) -> Tuple["Program", Dict[str, int]]:
    """Resolve ``fuzz:<key>``; falls back to deterministic generation.

    Returns a private copy of the program (callers may annotate it) plus
    its concrete parameter bindings.
    """
    if key in _FUZZ_PROGRAMS:
        program, parameters = _FUZZ_PROGRAMS[key]
        return program.copy(), dict(parameters)
    size_class, _, seed_text = key.rpartition("-")
    if size_class and seed_text.isdigit():
        from ..fuzz.generator import SIZE_CLASSES, generate_program

        if size_class in SIZE_CLASSES:
            generated = generate_program(int(seed_text), size_class)
            return generated.program, dict(generated.parameters)
    raise KeyError(
        f"unknown fuzz workload {key!r}: expected a registered name "
        f"({fuzz_names()}) or '<size_class>-<seed>'")

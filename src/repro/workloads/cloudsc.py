"""CLOUDSC proxy: a synthetic cloud-microphysics scheme (Section 5).

The real CLOUDSC is ECMWF's cloud and precipitation parametrization inside
the Integrated Forecasting System; it is proprietary-adjacent Fortran that we
cannot ship.  This module builds a structurally faithful proxy:

* the simulated volume is split into ``NBLOCKS`` independent blocks of
  ``NPROMA`` columns (``num_columns = NBLOCKS * NPROMA``),
* the vertical loop over ``KLEV`` levels is sequential (each level depends on
  the previous one),
* each vertical step runs several physics updates, each an ``NPROMA``-wide
  ``JL`` loop with inlined saturation/latent-heat formulas (the FOEEWM /
  FOELDCPM functions of Figure 10a) and per-iteration intermediate scalars.

The proxy preserves exactly the properties the case study exercises: the
fused JL loops with live-range-limited scalars (so that scalar expansion +
maximal fission + producer/consumer fusion reproduce the Figure 10b shape),
the NPROMA/NBLOCKS blocking trade-off, and a fully parallel block loop for
the scaling experiments (Figure 12).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..ir.builder import ProgramBuilder
from ..ir.nodes import Program

#: Physical constants used by the inlined thermodynamic functions (values are
#: representative, not meteorologically exact).
RTT = 273.16        # triple point of water [K]
R2ES = 611.21       # saturation pressure scale [Pa]
R3LES = 17.502      # saturation exponent (liquid)
R4LES = 32.19       # saturation offset (liquid)
RLVTT = 2.5008e6    # latent heat of vaporization [J/kg]
RCPD = 1004.7       # specific heat of dry air [J/(kg K)]
RAMIN = 1e-8        # minimum cloud fraction
RLMIN = 1e-8        # minimum cloud liquid

#: Damped latent-heat factor used by the proxy's temperature updates.  The
#: physical value (RLVTT / RCPD ~ 2490 K) makes the *proxy* numerically
#: unstable because its inputs are generic random fields rather than a real
#: atmospheric state; the damping keeps all intermediate values bounded while
#: preserving the loop/data-access structure the case study exercises.
LATENT_FACTOR = RLVTT / RCPD * 1.0e-3


def _erosion_body(b: ProgramBuilder, level_expr, jl: str,
                  block_expr=None, suffix: str = "") -> None:
    """One column update of the cloud-erosion physics (Figure 10a).

    Writes the temperature ``ZTP1`` and the saturation mixing ratio
    ``ZQSMIX`` using several intermediate scalars whose live range is a
    single ``JL`` iteration.
    """
    def field(name, *idx):
        if block_expr is not None:
            return b.read(name, block_expr, level_expr, *idx)
        return b.read(name, level_expr, *idx)

    def target(name, *idx):
        if block_expr is not None:
            return (name, block_expr, level_expr, *idx)
        return (name, level_expr, *idx)

    t = field("ZTP1", jl)
    # FOEEWM(T): saturation vapour pressure (simplified Magnus form with the
    # exponent clamped so that the proxy stays numerically bounded).
    b.assign((f"ZFOEEWM{suffix}",),
             R2ES * b.call("exp", R3LES * b.call(
                 "fmin", 1.0, b.call("fmax", -1.0,
                                     b.call("div", t - RTT, t - R4LES)))))
    # Saturation specific humidity from the pressure.
    b.assign((f"ZQSAT{suffix}",),
             b.call("div", b.read(f"ZFOEEWM{suffix}"), field("PAP", jl)))
    # Sub-saturation of the environmental air.
    b.assign((f"ZQE{suffix}",),
             b.call("fmax", 0.0, b.call("fmin", field("ZQX", jl),
                                        b.read(f"ZQSAT{suffix}"))))
    # Erosion of cloud by turbulent mixing.
    b.assign((f"ZLNEG{suffix}",),
             b.call("fmax", 0.0, b.read(f"ZQSAT{suffix}") - b.read(f"ZQE{suffix}")))
    b.assign((f"ZCOND{suffix}",),
             b.call("fmin", field("ZLIQ", jl),
                    field("ZA", jl) * b.read(f"ZLNEG{suffix}")))
    # FOELDCPM(T): latent heat over heat capacity (damped, see LATENT_FACTOR).
    b.assign((f"ZLDCP{suffix}",), LATENT_FACTOR + 0.0 * t)
    # State updates (the two writes of the original loop nest).
    b.assign(target("ZTP1", jl),
             field("ZTP1", jl) - b.read(f"ZLDCP{suffix}") * b.read(f"ZCOND{suffix}"))
    b.assign(target("ZQSMIX", jl),
             field("ZQSMIX", jl) + b.read(f"ZCOND{suffix}"))


def _declare_erosion_scalars(b: ProgramBuilder, suffix: str = "") -> None:
    for name in ("ZFOEEWM", "ZQSAT", "ZQE", "ZLNEG", "ZCOND", "ZLDCP"):
        b.add_scalar(f"{name}{suffix}", transient=True)


def build_erosion_kernel() -> Program:
    """The single cloud-erosion loop nest of Table 1 (one vertical level).

    The kernel updates one vertical level for all ``NPROMA`` columns — this
    is the loop nest Figure 10a shows; Table 1 reports its runtime for a
    single iteration and for ``KLEV`` repetitions (one per vertical level).
    """
    b = ProgramBuilder("cloudsc_erosion", parameters=["NPROMA"])
    for name in ("ZTP1", "ZQSMIX", "ZQX", "ZA", "ZLIQ", "PAP"):
        b.add_array(name, ("NPROMA",))
    _declare_erosion_scalars(b)
    with b.loop("JL", 0, "NPROMA"):
        _erosion_body_1d(b, "JL")
    return b.finish()


def _erosion_body_1d(b: ProgramBuilder, jl: str) -> None:
    """Single-level variant of :func:`_erosion_body` over 1-D column slices."""
    t = b.read("ZTP1", jl)
    b.assign(("ZFOEEWM",),
             R2ES * b.call("exp", R3LES * b.call(
                 "fmin", 1.0, b.call("fmax", -1.0,
                                     b.call("div", t - RTT, t - R4LES)))))
    b.assign(("ZQSAT",), b.call("div", b.read("ZFOEEWM"), b.read("PAP", jl)))
    b.assign(("ZQE",), b.call("fmax", 0.0, b.call("fmin", b.read("ZQX", jl),
                                                  b.read("ZQSAT"))))
    b.assign(("ZLNEG",), b.call("fmax", 0.0, b.read("ZQSAT") - b.read("ZQE")))
    b.assign(("ZCOND",), b.call("fmin", b.read("ZLIQ", jl),
                                b.read("ZA", jl) * b.read("ZLNEG")))
    b.assign(("ZLDCP",), LATENT_FACTOR + 0.0 * t)
    b.assign(("ZTP1", jl), b.read("ZTP1", jl) - b.read("ZLDCP") * b.read("ZCOND"))
    b.assign(("ZQSMIX", jl), b.read("ZQSMIX", jl) + b.read("ZCOND"))


#: The physics steps of the proxy model; each becomes one JL loop per level.
_PHYSICS_STEPS = ("erosion", "condensation", "evaporation", "autoconversion")


def _condensation_body(b: ProgramBuilder, blk, lvl, jl: str) -> None:
    t = b.read("ZTP1", blk, lvl, jl)
    b.assign(("ZDQS",),
             1.0e-3 * R2ES * b.call("exp", R3LES * b.call(
                 "fmin", 1.0, b.call("fmax", -1.0,
                                     b.call("div", t - RTT, t - R4LES))))
             - b.read("ZQSMIX", blk, lvl, jl))
    b.assign(("ZCND",),
             b.call("fmax", 0.0, b.call("fmin", b.read("ZDQS"),
                                        b.read("ZQX", blk, lvl, jl)))
             * b.read("ZA", blk, lvl, jl))
    b.assign(("ZTP1", blk, lvl, jl), t + LATENT_FACTOR * b.read("ZCND"))
    b.assign(("ZQX", blk, lvl, jl),
             b.call("fmax", RLMIN, b.read("ZQX", blk, lvl, jl) - b.read("ZCND")))


def _evaporation_body(b: ProgramBuilder, blk, lvl, jl: str) -> None:
    b.assign(("ZEVAP_LIM",),
             b.call("fmax", 0.0, b.read("ZQSMIX", blk, lvl, jl)
                    - b.read("ZQX", blk, lvl, jl)))
    b.assign(("ZEVAP",), b.call("fmin", b.read("ZLIQ", blk, lvl, jl),
                                0.5 * b.read("ZEVAP_LIM")))
    b.assign(("ZLIQ", blk, lvl, jl), b.read("ZLIQ", blk, lvl, jl) - b.read("ZEVAP"))
    b.assign(("ZQX", blk, lvl, jl), b.read("ZQX", blk, lvl, jl) + b.read("ZEVAP"))


def _autoconversion_body(b: ProgramBuilder, blk, lvl, jl: str) -> None:
    b.assign(("ZRAIN_SRC",),
             b.call("fmax", 0.0, b.read("ZLIQ", blk, lvl, jl) - RLMIN)
             * b.read("ZA", blk, lvl, jl) * 1.0e-3)
    b.assign(("ZLIQ", blk, lvl, jl),
             b.read("ZLIQ", blk, lvl, jl) - b.read("ZRAIN_SRC"))
    b.assign(("ZRAIN", blk, lvl, jl),
             b.read("ZRAIN", blk, lvl, jl) + b.read("ZRAIN_SRC"))


def _bulk_microphysics_body(b: ProgramBuilder, blk, lvl, jl: str, phase: int) -> None:
    """One sweep of the implicit microphysics solver (bulk of the scheme).

    These sweeps stand in for the sources/sinks of the remaining water
    species of the real scheme: they carry most of the floating-point work
    but have small, register-friendly loop bodies, so the normalization
    pipeline neither helps nor hurts them — which is what keeps the
    whole-model speedup of daisy in the ~10% range (Section 5.2) rather than
    the several-fold speedup seen on the erosion kernel in isolation.
    """
    rate = 0.004 * (phase + 1)
    t = b.read("ZTP1", blk, lvl, jl)
    delta = b.call("fmin", 50.0, b.call("fmax", -50.0, t - RTT))
    b.assign(("ZSOLVER",),
             b.call("exp", rate * delta)
             + b.call("exp", -2.0 * rate * delta)
             + b.call("sqrt", b.call("fmax", 1e-12, b.read("ZQX", blk, lvl, jl)))
             * b.call("exp", 0.5 * rate * delta))
    b.assign(("ZSINK",),
             b.call("fmin", b.read("ZQX", blk, lvl, jl),
                    1.0e-4 * b.read("ZSOLVER") * b.read("ZA", blk, lvl, jl)))
    b.assign(("ZQX", blk, lvl, jl), b.read("ZQX", blk, lvl, jl) - b.read("ZSINK"))
    b.assign(("ZRAIN", blk, lvl, jl),
             b.read("ZRAIN", blk, lvl, jl) + b.read("ZSINK"))


def build_cloudsc_model() -> Program:
    """The full CLOUDSC proxy: block loop x vertical loop x physics steps.

    The block loop ``JKGLO`` is fully data parallel (columns are
    independent); the vertical loop ``JK`` is sequential because each level's
    update reads the state written by the previous level (the `+1` coupling
    below).  Every physics step is one ``JL`` loop with its own intermediate
    scalars, matching the structure of the production code after inlining.
    """
    b = ProgramBuilder("cloudsc_proxy", parameters=["NBLOCKS", "KLEV", "NPROMA"])
    for name in ("ZTP1", "ZQSMIX", "ZQX", "ZA", "ZLIQ", "PAP", "ZRAIN"):
        b.add_array(name, ("NBLOCKS", "KLEV", "NPROMA"))
    _declare_erosion_scalars(b)
    for name in ("ZDQS", "ZCND", "ZEVAP_LIM", "ZEVAP", "ZRAIN_SRC", "ZVCOUP",
                 "ZSOLVER", "ZSINK"):
        b.add_scalar(name, transient=True)

    blk = b.sym("JKGLO")
    with b.loop("JKGLO", 0, "NBLOCKS"):
        with b.loop("JK", 1, "KLEV"):
            lvl = b.sym("JK")
            # Vertical coupling: each level starts from the level above.
            with b.loop("JL", 0, "NPROMA"):
                b.assign(("ZVCOUP",),
                         0.1 * (b.read("ZTP1", blk, lvl - 1, "JL")
                                - b.read("ZTP1", blk, lvl, "JL")))
                b.assign(("ZTP1", blk, lvl, "JL"),
                         b.read("ZTP1", blk, lvl, "JL") + b.read("ZVCOUP"))
            with b.loop("JL", 0, "NPROMA"):
                _erosion_body(b, lvl, "JL", block_expr=blk)
            with b.loop("JL", 0, "NPROMA"):
                _condensation_body(b, blk, lvl, "JL")
            with b.loop("JL", 0, "NPROMA"):
                _evaporation_body(b, blk, lvl, "JL")
            with b.loop("JL", 0, "NPROMA"):
                _autoconversion_body(b, blk, lvl, "JL")
            # The bulk of the scheme: three implicit-solver sweeps per level.
            for phase in range(3):
                with b.loop("JL", 0, "NPROMA"):
                    _bulk_microphysics_body(b, blk, lvl, "JL", phase)
    return b.finish()


@dataclass(frozen=True)
class CloudscConfiguration:
    """Problem configuration of the case study."""

    nproma: int = 128
    nblocks: int = 512
    klev: int = 137

    @property
    def num_columns(self) -> int:
        return self.nproma * self.nblocks

    def parameters(self) -> Dict[str, int]:
        return {"NPROMA": self.nproma, "NBLOCKS": self.nblocks, "KLEV": self.klev}

    def erosion_parameters(self) -> Dict[str, int]:
        return {"NPROMA": self.nproma, "KLEV": self.klev}


#: The configuration used in Section 5.2 (NPROMA=128, NBLOCKS=512).
DEFAULT_CONFIGURATION = CloudscConfiguration()

#: Workload sizes of the weak-scaling experiment (Figure 12b):
#: total columns / threads, with NPROMA fixed at 128.
WEAK_SCALING_POINTS = (
    (65536, 1),
    (131072, 2),
    (262144, 4),
    (524288, 8),
)

"""FEM-assembly-style workloads: expression-heavy quadrature loop nests.

Finite-element local-assembly kernels are the motivating workload for the
expression-rewrite pass family (:mod:`repro.passes.rewrite`): their innermost
statements multiply quadrature weights, inline Jacobian determinants, and
basis-function tables, so large subexpressions are invariant with respect to
one or two of the surrounding loops.  Generalized LICM hoists the per-element
geometry factors and the per-quadrature-point coefficient polynomials out of
the basis-function loops, which is exactly the transformation FEM code
generators such as COFFEE perform by hand.

Three kernels, each with the registry's usual three variants:

* ``fem-mass``      — mass matrix ``Ae[e,i,j] += w[q] * detJ(e) * phi[q,i]
  * phi[q,j]`` with the Jacobian determinant inlined (hoistable to the
  element loop),
* ``fem-stiffness`` — Helmholtz stiffness matrix with inline
  inverse-Jacobian gradient transforms (the per-test-function transformed
  gradients hoist out of the trial-function loop),
* ``fem-rhs``       — load vector with an inline coefficient polynomial
  evaluated at quadrature points (factorizable and hoistable).

The A variants are written the "natural" way with everything inline; the B
variants permute loops but accumulate in the same order per output element;
the NPBench-style variants materialize the geometry factors into transient
temporaries operator by operator — i.e. they look like what the rewrite
pipeline turns the A variants into.
"""

from __future__ import annotations

from .ir_helpers import Program, ProgramBuilder

#: Coefficients of the inline source polynomial in ``fem-rhs`` (dyadic, so
#: re-association in the rewrite passes stays cheap to compare).
_C0, _C1, _C2 = 0.5, 0.25, 0.125


def _mass_builder(name: str) -> ProgramBuilder:
    b = ProgramBuilder(name, parameters=["NE", "NB", "NQ"])
    b.add_array("Ae", ("NE", "NB", "NB"))
    b.add_array("phi", ("NQ", "NB"))
    b.add_array("w", ("NQ",))
    for entry in ("J00", "J01", "J10", "J11"):
        b.add_array(entry, ("NE",))
    return b


def _det_j(b: ProgramBuilder):
    """The inline Jacobian determinant ``J00*J11 - J01*J10`` of element e."""
    return (b.read("J00", "e") * b.read("J11", "e")
            - b.read("J01", "e") * b.read("J10", "e"))


def build_fem_mass_a() -> Program:
    """Mass matrix, natural loop order, determinant inlined per statement."""
    b = _mass_builder("fem_mass_a")
    with b.loop("e", 0, "NE"):
        with b.loop("i", 0, "NB"):
            with b.loop("j", 0, "NB"):
                b.assign(("Ae", "e", "i", "j"), 0.0)
                with b.loop("q", 0, "NQ"):
                    b.accumulate(("Ae", "e", "i", "j"),
                                 b.read("w", "q") * _det_j(b)
                                 * b.read("phi", "q", "i")
                                 * b.read("phi", "q", "j"))
    return b.finish()


def build_fem_mass_b() -> Program:
    """Mass matrix, quadrature loop hoisted outward, init fissioned."""
    b = _mass_builder("fem_mass_b")
    with b.loop("e", 0, "NE"):
        with b.loop("i", 0, "NB"):
            with b.loop("j", 0, "NB"):
                b.assign(("Ae", "e", "i", "j"), 0.0)
    with b.loop("e", 0, "NE"):
        with b.loop("q", 0, "NQ"):
            with b.loop("i", 0, "NB"):
                with b.loop("j", 0, "NB"):
                    b.accumulate(("Ae", "e", "i", "j"),
                                 b.read("w", "q") * _det_j(b)
                                 * b.read("phi", "q", "i")
                                 * b.read("phi", "q", "j"))
    return b.finish()


def build_fem_mass_npbench() -> Program:
    """Mass matrix with the determinant precomputed operator-style."""
    b = _mass_builder("fem_mass_npbench")
    b.add_array("detJ", ("NE",), transient=True)
    with b.loop("e", 0, "NE"):
        b.assign(("detJ", "e"), _det_j(b))
    with b.loop("e", 0, "NE"):
        with b.loop("i", 0, "NB"):
            with b.loop("j", 0, "NB"):
                b.assign(("Ae", "e", "i", "j"), 0.0)
                with b.loop("q", 0, "NQ"):
                    b.accumulate(("Ae", "e", "i", "j"),
                                 b.read("w", "q") * b.read("detJ", "e")
                                 * b.read("phi", "q", "i")
                                 * b.read("phi", "q", "j"))
    return b.finish()


def _stiffness_builder(name: str) -> ProgramBuilder:
    b = ProgramBuilder(name, parameters=["NE", "NB", "NQ"])
    b.add_array("Ke", ("NE", "NB", "NB"))
    b.add_array("phi", ("NQ", "NB"))
    b.add_array("gx", ("NQ", "NB"))
    b.add_array("gy", ("NQ", "NB"))
    b.add_array("w", ("NQ",))
    b.add_array("detJ", ("NE",))
    for entry in ("Ji00", "Ji01", "Ji10", "Ji11"):
        b.add_array(entry, ("NE",))
    b.add_scalar("kappa")
    return b


def _grad_dot(b: ProgramBuilder, row: str, column: str):
    """One physical-gradient factor: row of Jinv applied to basis ``column``."""
    first, second = ("Ji00", "Ji10") if row == "x" else ("Ji01", "Ji11")
    return (b.read(first, "e") * b.read("gx", "q", column)
            + b.read(second, "e") * b.read("gy", "q", column))


def _stiffness_value(b: ProgramBuilder):
    return (b.read("w", "q") * b.read("detJ", "e")
            * (_grad_dot(b, "x", "i") * _grad_dot(b, "x", "j")
               + _grad_dot(b, "y", "i") * _grad_dot(b, "y", "j")
               + b.read("kappa") * b.read("phi", "q", "i")
               * b.read("phi", "q", "j")))


def build_fem_stiffness_a() -> Program:
    """Helmholtz stiffness, gradient transform inlined in the (i, j) body."""
    b = _stiffness_builder("fem_stiffness_a")
    with b.loop("e", 0, "NE"):
        with b.loop("i", 0, "NB"):
            with b.loop("j", 0, "NB"):
                b.assign(("Ke", "e", "i", "j"), 0.0)
        with b.loop("q", 0, "NQ"):
            with b.loop("i", 0, "NB"):
                with b.loop("j", 0, "NB"):
                    b.accumulate(("Ke", "e", "i", "j"), _stiffness_value(b))
    return b.finish()


def build_fem_stiffness_b() -> Program:
    """Same sums with the quadrature loop innermost."""
    b = _stiffness_builder("fem_stiffness_b")
    with b.loop("e", 0, "NE"):
        with b.loop("i", 0, "NB"):
            with b.loop("j", 0, "NB"):
                b.assign(("Ke", "e", "i", "j"), 0.0)
                with b.loop("q", 0, "NQ"):
                    b.accumulate(("Ke", "e", "i", "j"), _stiffness_value(b))
    return b.finish()


def build_fem_stiffness_npbench() -> Program:
    """Stiffness with physical gradients materialized per (e, q, i)."""
    b = _stiffness_builder("fem_stiffness_npbench")
    b.add_array("gpx", ("NE", "NQ", "NB"), transient=True)
    b.add_array("gpy", ("NE", "NQ", "NB"), transient=True)
    with b.loop("e", 0, "NE"):
        with b.loop("q", 0, "NQ"):
            with b.loop("i", 0, "NB"):
                b.assign(("gpx", "e", "q", "i"), _grad_dot(b, "x", "i"))
                b.assign(("gpy", "e", "q", "i"), _grad_dot(b, "y", "i"))
    with b.loop("e", 0, "NE"):
        with b.loop("i", 0, "NB"):
            with b.loop("j", 0, "NB"):
                b.assign(("Ke", "e", "i", "j"), 0.0)
    with b.loop("e", 0, "NE"):
        with b.loop("q", 0, "NQ"):
            with b.loop("i", 0, "NB"):
                with b.loop("j", 0, "NB"):
                    b.accumulate(
                        ("Ke", "e", "i", "j"),
                        b.read("w", "q") * b.read("detJ", "e")
                        * (b.read("gpx", "e", "q", "i")
                           * b.read("gpx", "e", "q", "j")
                           + b.read("gpy", "e", "q", "i")
                           * b.read("gpy", "e", "q", "j")
                           + b.read("kappa") * b.read("phi", "q", "i")
                           * b.read("phi", "q", "j")))
    return b.finish()


def _rhs_builder(name: str) -> ProgramBuilder:
    b = ProgramBuilder(name, parameters=["NE", "NB", "NQ"])
    b.add_array("be", ("NE", "NB"))
    b.add_array("phi", ("NQ", "NB"))
    b.add_array("w", ("NQ",))
    b.add_array("xq", ("NE", "NQ"))
    for entry in ("J00", "J01", "J10", "J11"):
        b.add_array(entry, ("NE",))
    return b


def _source_poly(b: ProgramBuilder):
    """The inline source coefficient ``c0 + c1*x + c2*x*x`` at point (e, q)."""
    x = b.read("xq", "e", "q")
    return _C0 + _C1 * x + _C2 * x * x


def build_fem_rhs_a() -> Program:
    """Load vector: determinant and source polynomial inlined per statement."""
    b = _rhs_builder("fem_rhs_a")
    with b.loop("e", 0, "NE"):
        with b.loop("i", 0, "NB"):
            b.assign(("be", "e", "i"), 0.0)
        with b.loop("q", 0, "NQ"):
            with b.loop("i", 0, "NB"):
                b.accumulate(("be", "e", "i"),
                             b.read("w", "q") * _det_j(b)
                             * b.read("phi", "q", "i") * _source_poly(b))
    return b.finish()


def build_fem_rhs_b() -> Program:
    """Same sums with the quadrature loop innermost."""
    b = _rhs_builder("fem_rhs_b")
    with b.loop("e", 0, "NE"):
        with b.loop("i", 0, "NB"):
            b.assign(("be", "e", "i"), 0.0)
            with b.loop("q", 0, "NQ"):
                b.accumulate(("be", "e", "i"),
                             b.read("w", "q") * _det_j(b)
                             * b.read("phi", "q", "i") * _source_poly(b))
    return b.finish()


def build_fem_rhs_npbench() -> Program:
    """Load vector with determinant and source values precomputed."""
    b = _rhs_builder("fem_rhs_npbench")
    b.add_array("detJ", ("NE",), transient=True)
    b.add_array("fq", ("NE", "NQ"), transient=True)
    with b.loop("e", 0, "NE"):
        b.assign(("detJ", "e"), _det_j(b))
        with b.loop("q", 0, "NQ"):
            b.assign(("fq", "e", "q"), _source_poly(b))
    with b.loop("e", 0, "NE"):
        with b.loop("i", 0, "NB"):
            b.assign(("be", "e", "i"), 0.0)
        with b.loop("q", 0, "NQ"):
            with b.loop("i", 0, "NB"):
                b.accumulate(("be", "e", "i"),
                             b.read("w", "q") * b.read("detJ", "e")
                             * b.read("phi", "q", "i") * b.read("fq", "e", "q"))
    return b.finish()

"""Convenience re-exports for workload definitions."""

from ..ir.builder import ProgramBuilder
from ..ir.nodes import Program

__all__ = ["ProgramBuilder", "Program"]

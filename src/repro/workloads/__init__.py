"""Workloads: PolyBench A/B/NPBench variants, FEM-assembly kernels, and the
CLOUDSC proxy."""

from .cloudsc import (DEFAULT_CONFIGURATION, WEAK_SCALING_POINTS,
                      CloudscConfiguration, build_cloudsc_model,
                      build_erosion_kernel)
from .fem import (build_fem_mass_a, build_fem_mass_b, build_fem_mass_npbench,
                  build_fem_rhs_a, build_fem_rhs_b, build_fem_rhs_npbench,
                  build_fem_stiffness_a, build_fem_stiffness_b,
                  build_fem_stiffness_npbench)
from .registry import (BenchmarkSpec, all_benchmarks, benchmark,
                       benchmark_names, polybench_benchmarks)
from .sizes import POLYBENCH_SIZES, SIZE_CLASSES, benchmark_sizes

__all__ = [
    "DEFAULT_CONFIGURATION", "WEAK_SCALING_POINTS", "CloudscConfiguration",
    "build_cloudsc_model", "build_erosion_kernel",
    "build_fem_mass_a", "build_fem_mass_b", "build_fem_mass_npbench",
    "build_fem_stiffness_a", "build_fem_stiffness_b",
    "build_fem_stiffness_npbench",
    "build_fem_rhs_a", "build_fem_rhs_b", "build_fem_rhs_npbench",
    "BenchmarkSpec", "all_benchmarks", "benchmark", "benchmark_names",
    "polybench_benchmarks",
    "POLYBENCH_SIZES", "SIZE_CLASSES", "benchmark_sizes",
]

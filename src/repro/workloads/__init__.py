"""Workloads: PolyBench A/B/NPBench variants and the CLOUDSC proxy."""

from .cloudsc import (DEFAULT_CONFIGURATION, WEAK_SCALING_POINTS,
                      CloudscConfiguration, build_cloudsc_model,
                      build_erosion_kernel)
from .registry import BenchmarkSpec, all_benchmarks, benchmark, benchmark_names
from .sizes import POLYBENCH_SIZES, SIZE_CLASSES, benchmark_sizes

__all__ = [
    "DEFAULT_CONFIGURATION", "WEAK_SCALING_POINTS", "CloudscConfiguration",
    "build_cloudsc_model", "build_erosion_kernel",
    "BenchmarkSpec", "all_benchmarks", "benchmark", "benchmark_names",
    "POLYBENCH_SIZES", "SIZE_CLASSES", "benchmark_sizes",
]

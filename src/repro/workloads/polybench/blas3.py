"""BLAS-3-like PolyBench kernels: gemm, 2mm, 3mm, syrk, syr2k.

Each benchmark provides three builders:

* ``build_<name>_a``   — the original PolyBench loop structure (A variant),
* ``build_<name>_b``   — a semantically equivalent alternative composition
  and permutation of the loops (B variant), the kind of variation a
  developer might legitimately write,
* ``build_<name>_npbench`` — the structure produced by translating the
  NPBench (NumPy) implementation operator by operator: separate nests per
  array operation, reduction initialisation inside the operation's nest, and
  ``py_``-prefixed loops where the NumPy code iterates in the interpreter.

The A and B variants are checked for observational equivalence by the test
suite using the reference interpreter.
"""

from __future__ import annotations

from ..ir_helpers import ProgramBuilder
from ...ir.nodes import Program


# ----------------------------------------------------------------------------
# gemm: C = alpha * A @ B + beta * C
# ----------------------------------------------------------------------------

def build_gemm_a() -> Program:
    """PolyBench gemm: beta-scaling fused above the contraction loop."""
    b = ProgramBuilder("gemm_a", parameters=["NI", "NJ", "NK"])
    b.add_array("C", ("NI", "NJ"))
    b.add_array("A", ("NI", "NK"))
    b.add_array("B", ("NK", "NJ"))
    b.add_scalar("alpha")
    b.add_scalar("beta")
    with b.loop("i", 0, "NI"):
        with b.loop("j", 0, "NJ"):
            b.assign(("C", "i", "j"), b.read("C", "i", "j") * b.read("beta"))
            with b.loop("k", 0, "NK"):
                b.assign(("C", "i", "j"),
                         b.read("C", "i", "j")
                         + b.read("alpha") * b.read("A", "i", "k") * b.read("B", "k", "j"))
    return b.finish()


def build_gemm_b() -> Program:
    """Alternative gemm: fissioned scaling, k-outermost accumulation."""
    b = ProgramBuilder("gemm_b", parameters=["NI", "NJ", "NK"])
    b.add_array("C", ("NI", "NJ"))
    b.add_array("A", ("NI", "NK"))
    b.add_array("B", ("NK", "NJ"))
    b.add_scalar("alpha")
    b.add_scalar("beta")
    with b.loop("j", 0, "NJ"):
        with b.loop("i", 0, "NI"):
            b.assign(("C", "i", "j"), b.read("C", "i", "j") * b.read("beta"))
    with b.loop("k", 0, "NK"):
        with b.loop("j", 0, "NJ"):
            with b.loop("i", 0, "NI"):
                b.assign(("C", "i", "j"),
                         b.read("C", "i", "j")
                         + b.read("alpha") * b.read("A", "i", "k") * b.read("B", "k", "j"))
    return b.finish()


def build_gemm_npbench() -> Program:
    """NPBench gemm (``C[:] = alpha * A @ B + beta * C``), operator by operator."""
    b = ProgramBuilder("gemm_npbench", parameters=["NI", "NJ", "NK"])
    b.add_array("C", ("NI", "NJ"))
    b.add_array("A", ("NI", "NK"))
    b.add_array("B", ("NK", "NJ"))
    b.add_array("tmp", ("NI", "NJ"), transient=True)
    b.add_scalar("alpha")
    b.add_scalar("beta")
    # A @ B: reduction initialisation inside the nest (imperfect nest).
    with b.loop("i", 0, "NI"):
        with b.loop("j", 0, "NJ"):
            b.assign(("tmp", "i", "j"), 0.0)
            with b.loop("k", 0, "NK"):
                b.assign(("tmp", "i", "j"),
                         b.read("tmp", "i", "j") + b.read("A", "i", "k") * b.read("B", "k", "j"))
    # alpha * tmp + beta * C, one element-wise operator.
    with b.loop("i", 0, "NI"):
        with b.loop("j", 0, "NJ"):
            b.assign(("C", "i", "j"),
                     b.read("alpha") * b.read("tmp", "i", "j")
                     + b.read("beta") * b.read("C", "i", "j"))
    return b.finish()


# ----------------------------------------------------------------------------
# 2mm: D = alpha * A @ B @ C + beta * D
# ----------------------------------------------------------------------------

def build_2mm_a() -> Program:
    b = ProgramBuilder("2mm_a", parameters=["NI", "NJ", "NK", "NL"])
    b.add_array("tmp", ("NI", "NJ"), transient=True)
    b.add_array("A", ("NI", "NK"))
    b.add_array("B", ("NK", "NJ"))
    b.add_array("C", ("NJ", "NL"))
    b.add_array("D", ("NI", "NL"))
    b.add_scalar("alpha")
    b.add_scalar("beta")
    with b.loop("i", 0, "NI"):
        with b.loop("j", 0, "NJ"):
            b.assign(("tmp", "i", "j"), 0.0)
            with b.loop("k", 0, "NK"):
                b.assign(("tmp", "i", "j"),
                         b.read("tmp", "i", "j")
                         + b.read("alpha") * b.read("A", "i", "k") * b.read("B", "k", "j"))
    with b.loop("i", 0, "NI"):
        with b.loop("j", 0, "NL"):
            b.assign(("D", "i", "j"), b.read("D", "i", "j") * b.read("beta"))
            with b.loop("k", 0, "NJ"):
                b.assign(("D", "i", "j"),
                         b.read("D", "i", "j") + b.read("tmp", "i", "k") * b.read("C", "k", "j"))
    return b.finish()


def build_2mm_b() -> Program:
    """2mm with fissioned initialisation and permuted contraction loops."""
    b = ProgramBuilder("2mm_b", parameters=["NI", "NJ", "NK", "NL"])
    b.add_array("tmp", ("NI", "NJ"), transient=True)
    b.add_array("A", ("NI", "NK"))
    b.add_array("B", ("NK", "NJ"))
    b.add_array("C", ("NJ", "NL"))
    b.add_array("D", ("NI", "NL"))
    b.add_scalar("alpha")
    b.add_scalar("beta")
    with b.loop("j", 0, "NJ"):
        with b.loop("i", 0, "NI"):
            b.assign(("tmp", "i", "j"), 0.0)
    with b.loop("k", 0, "NK"):
        with b.loop("j", 0, "NJ"):
            with b.loop("i", 0, "NI"):
                b.assign(("tmp", "i", "j"),
                         b.read("tmp", "i", "j")
                         + b.read("alpha") * b.read("A", "i", "k") * b.read("B", "k", "j"))
    with b.loop("j", 0, "NL"):
        with b.loop("i", 0, "NI"):
            b.assign(("D", "i", "j"), b.read("D", "i", "j") * b.read("beta"))
    with b.loop("i", 0, "NI"):
        with b.loop("k", 0, "NJ"):
            with b.loop("j", 0, "NL"):
                b.assign(("D", "i", "j"),
                         b.read("D", "i", "j") + b.read("tmp", "i", "k") * b.read("C", "k", "j"))
    return b.finish()


def build_2mm_npbench() -> Program:
    """NPBench 2mm: two matmul operators plus element-wise updates."""
    b = ProgramBuilder("2mm_npbench", parameters=["NI", "NJ", "NK", "NL"])
    b.add_array("tmp", ("NI", "NJ"), transient=True)
    b.add_array("tmp2", ("NI", "NL"), transient=True)
    b.add_array("A", ("NI", "NK"))
    b.add_array("B", ("NK", "NJ"))
    b.add_array("C", ("NJ", "NL"))
    b.add_array("D", ("NI", "NL"))
    b.add_scalar("alpha")
    b.add_scalar("beta")
    with b.loop("i", 0, "NI"):
        with b.loop("j", 0, "NJ"):
            b.assign(("tmp", "i", "j"), 0.0)
            with b.loop("k", 0, "NK"):
                b.assign(("tmp", "i", "j"),
                         b.read("tmp", "i", "j") + b.read("A", "i", "k") * b.read("B", "k", "j"))
    with b.loop("i", 0, "NI"):
        with b.loop("j", 0, "NL"):
            b.assign(("tmp2", "i", "j"), 0.0)
            with b.loop("k", 0, "NJ"):
                b.assign(("tmp2", "i", "j"),
                         b.read("tmp2", "i", "j") + b.read("tmp", "i", "k") * b.read("C", "k", "j"))
    with b.loop("i", 0, "NI"):
        with b.loop("j", 0, "NL"):
            b.assign(("D", "i", "j"),
                     b.read("alpha") * b.read("tmp2", "i", "j")
                     + b.read("beta") * b.read("D", "i", "j"))
    return b.finish()


# ----------------------------------------------------------------------------
# 3mm: G = (A @ B) @ (C @ D)
# ----------------------------------------------------------------------------

def build_3mm_a() -> Program:
    b = ProgramBuilder("3mm_a", parameters=["NI", "NJ", "NK", "NL", "NM"])
    b.add_array("A", ("NI", "NK"))
    b.add_array("B", ("NK", "NJ"))
    b.add_array("C", ("NJ", "NM"))
    b.add_array("D", ("NM", "NL"))
    b.add_array("E", ("NI", "NJ"), transient=True)
    b.add_array("F", ("NJ", "NL"), transient=True)
    b.add_array("G", ("NI", "NL"))
    with b.loop("i", 0, "NI"):
        with b.loop("j", 0, "NJ"):
            b.assign(("E", "i", "j"), 0.0)
            with b.loop("k", 0, "NK"):
                b.assign(("E", "i", "j"),
                         b.read("E", "i", "j") + b.read("A", "i", "k") * b.read("B", "k", "j"))
    with b.loop("i", 0, "NJ"):
        with b.loop("j", 0, "NL"):
            b.assign(("F", "i", "j"), 0.0)
            with b.loop("k", 0, "NM"):
                b.assign(("F", "i", "j"),
                         b.read("F", "i", "j") + b.read("C", "i", "k") * b.read("D", "k", "j"))
    with b.loop("i", 0, "NI"):
        with b.loop("j", 0, "NL"):
            b.assign(("G", "i", "j"), 0.0)
            with b.loop("k", 0, "NJ"):
                b.assign(("G", "i", "j"),
                         b.read("G", "i", "j") + b.read("E", "i", "k") * b.read("F", "k", "j"))
    return b.finish()


def build_3mm_b() -> Program:
    """3mm with separated initialisation nests and permuted contractions."""
    b = ProgramBuilder("3mm_b", parameters=["NI", "NJ", "NK", "NL", "NM"])
    b.add_array("A", ("NI", "NK"))
    b.add_array("B", ("NK", "NJ"))
    b.add_array("C", ("NJ", "NM"))
    b.add_array("D", ("NM", "NL"))
    b.add_array("E", ("NI", "NJ"), transient=True)
    b.add_array("F", ("NJ", "NL"), transient=True)
    b.add_array("G", ("NI", "NL"))
    with b.loop("j", 0, "NJ"):
        with b.loop("i", 0, "NI"):
            b.assign(("E", "i", "j"), 0.0)
    with b.loop("k", 0, "NK"):
        with b.loop("i", 0, "NI"):
            with b.loop("j", 0, "NJ"):
                b.assign(("E", "i", "j"),
                         b.read("E", "i", "j") + b.read("A", "i", "k") * b.read("B", "k", "j"))
    with b.loop("i", 0, "NJ"):
        with b.loop("j", 0, "NL"):
            b.assign(("F", "i", "j"), 0.0)
    with b.loop("i", 0, "NJ"):
        with b.loop("k", 0, "NM"):
            with b.loop("j", 0, "NL"):
                b.assign(("F", "i", "j"),
                         b.read("F", "i", "j") + b.read("C", "i", "k") * b.read("D", "k", "j"))
    with b.loop("j", 0, "NL"):
        with b.loop("i", 0, "NI"):
            b.assign(("G", "i", "j"), 0.0)
    with b.loop("k", 0, "NJ"):
        with b.loop("j", 0, "NL"):
            with b.loop("i", 0, "NI"):
                b.assign(("G", "i", "j"),
                         b.read("G", "i", "j") + b.read("E", "i", "k") * b.read("F", "k", "j"))
    return b.finish()


def build_3mm_npbench() -> Program:
    """NPBench 3mm is structurally the A variant (three matmul operators)."""
    program = build_3mm_a()
    program.name = "3mm_npbench"
    return program


# ----------------------------------------------------------------------------
# syrk: C = alpha * A @ A^T + beta * C   (lower triangle)
# ----------------------------------------------------------------------------

def build_syrk_a() -> Program:
    b = ProgramBuilder("syrk_a", parameters=["N", "M"])
    b.add_array("C", ("N", "N"))
    b.add_array("A", ("N", "M"))
    b.add_scalar("alpha")
    b.add_scalar("beta")
    with b.loop("i", 0, "N"):
        with b.loop("j", 0, b.sym("i") + 1):
            b.assign(("C", "i", "j"), b.read("C", "i", "j") * b.read("beta"))
        with b.loop("k", 0, "M"):
            with b.loop("j", 0, b.sym("i") + 1):
                b.assign(("C", "i", "j"),
                         b.read("C", "i", "j")
                         + b.read("alpha") * b.read("A", "i", "k") * b.read("A", "j", "k"))
    return b.finish()


def build_syrk_b() -> Program:
    """syrk with fissioned scaling and (j, k) interchanged accumulation."""
    b = ProgramBuilder("syrk_b", parameters=["N", "M"])
    b.add_array("C", ("N", "N"))
    b.add_array("A", ("N", "M"))
    b.add_scalar("alpha")
    b.add_scalar("beta")
    with b.loop("i", 0, "N"):
        with b.loop("j", 0, b.sym("i") + 1):
            b.assign(("C", "i", "j"), b.read("C", "i", "j") * b.read("beta"))
    with b.loop("i", 0, "N"):
        with b.loop("j", 0, b.sym("i") + 1):
            with b.loop("k", 0, "M"):
                b.assign(("C", "i", "j"),
                         b.read("C", "i", "j")
                         + b.read("alpha") * b.read("A", "i", "k") * b.read("A", "j", "k"))
    return b.finish()


def build_syrk_npbench() -> Program:
    """NPBench syrk: an interpreter-level loop over rows with sliced updates."""
    b = ProgramBuilder("syrk_npbench", parameters=["N", "M"])
    b.add_array("C", ("N", "N"))
    b.add_array("A", ("N", "M"))
    b.add_scalar("alpha")
    b.add_scalar("beta")
    with b.loop("py_i", 0, "N"):
        with b.loop("j", 0, b.sym("py_i") + 1):
            b.assign(("C", "py_i", "j"), b.read("C", "py_i", "j") * b.read("beta"))
        with b.loop("k", 0, "M"):
            with b.loop("j", 0, b.sym("py_i") + 1):
                b.assign(("C", "py_i", "j"),
                         b.read("C", "py_i", "j")
                         + b.read("alpha") * b.read("A", "py_i", "k") * b.read("A", "j", "k"))
    return b.finish()


# ----------------------------------------------------------------------------
# syr2k: C = alpha * (A @ B^T + B @ A^T) + beta * C   (lower triangle)
# ----------------------------------------------------------------------------

def build_syr2k_a() -> Program:
    b = ProgramBuilder("syr2k_a", parameters=["N", "M"])
    b.add_array("C", ("N", "N"))
    b.add_array("A", ("N", "M"))
    b.add_array("B", ("N", "M"))
    b.add_scalar("alpha")
    b.add_scalar("beta")
    with b.loop("i", 0, "N"):
        with b.loop("j", 0, b.sym("i") + 1):
            b.assign(("C", "i", "j"), b.read("C", "i", "j") * b.read("beta"))
        with b.loop("k", 0, "M"):
            with b.loop("j", 0, b.sym("i") + 1):
                b.assign(("C", "i", "j"),
                         b.read("C", "i", "j")
                         + b.read("A", "j", "k") * b.read("alpha") * b.read("B", "i", "k")
                         + b.read("B", "j", "k") * b.read("alpha") * b.read("A", "i", "k"))
    return b.finish()


def build_syr2k_b() -> Program:
    b = ProgramBuilder("syr2k_b", parameters=["N", "M"])
    b.add_array("C", ("N", "N"))
    b.add_array("A", ("N", "M"))
    b.add_array("B", ("N", "M"))
    b.add_scalar("alpha")
    b.add_scalar("beta")
    with b.loop("i", 0, "N"):
        with b.loop("j", 0, b.sym("i") + 1):
            b.assign(("C", "i", "j"), b.read("C", "i", "j") * b.read("beta"))
    with b.loop("i", 0, "N"):
        with b.loop("j", 0, b.sym("i") + 1):
            with b.loop("k", 0, "M"):
                b.assign(("C", "i", "j"),
                         b.read("C", "i", "j")
                         + b.read("A", "j", "k") * b.read("alpha") * b.read("B", "i", "k")
                         + b.read("B", "j", "k") * b.read("alpha") * b.read("A", "i", "k"))
    return b.finish()


def build_syr2k_npbench() -> Program:
    """NPBench syr2k: interpreter-level row loop with sliced updates."""
    b = ProgramBuilder("syr2k_npbench", parameters=["N", "M"])
    b.add_array("C", ("N", "N"))
    b.add_array("A", ("N", "M"))
    b.add_array("B", ("N", "M"))
    b.add_scalar("alpha")
    b.add_scalar("beta")
    with b.loop("py_i", 0, "N"):
        with b.loop("j", 0, b.sym("py_i") + 1):
            b.assign(("C", "py_i", "j"), b.read("C", "py_i", "j") * b.read("beta"))
        with b.loop("k", 0, "M"):
            with b.loop("j", 0, b.sym("py_i") + 1):
                b.assign(("C", "py_i", "j"),
                         b.read("C", "py_i", "j")
                         + b.read("A", "j", "k") * b.read("alpha") * b.read("B", "py_i", "k")
                         + b.read("B", "j", "k") * b.read("alpha") * b.read("A", "py_i", "k"))
    return b.finish()

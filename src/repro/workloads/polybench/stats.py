"""Data-mining PolyBench kernels: correlation and covariance.

Both kernels normalize a data matrix column-wise and then compute a
(symmetric, triangular) second-moment matrix.  The PolyBench reference
guards the standard deviation against zero with a conditional; our IR has no
conditionals, so the guard is dropped — the test suite feeds data with
non-degenerate columns, which keeps A and B numerically identical.
"""

from __future__ import annotations

from ..ir_helpers import ProgramBuilder
from ...ir.nodes import Program


# ----------------------------------------------------------------------------
# covariance
# ----------------------------------------------------------------------------

def build_covariance_a() -> Program:
    b = ProgramBuilder("covariance_a", parameters=["M", "N"])
    b.add_array("data", ("N", "M"))
    b.add_array("cov", ("M", "M"))
    b.add_array("mean", ("M",), transient=True)
    b.add_scalar("float_n")
    with b.loop("j", 0, "M"):
        b.assign(("mean", "j"), 0.0)
        with b.loop("i", 0, "N"):
            b.assign(("mean", "j"), b.read("mean", "j") + b.read("data", "i", "j"))
        b.assign(("mean", "j"), b.call("div", b.read("mean", "j"), b.read("float_n")))
    with b.loop("i", 0, "N"):
        with b.loop("j", 0, "M"):
            b.assign(("data", "i", "j"), b.read("data", "i", "j") - b.read("mean", "j"))
    with b.loop("i", 0, "M"):
        with b.loop("j", b.sym("i"), "M"):
            b.assign(("cov", "i", "j"), 0.0)
            with b.loop("k", 0, "N"):
                b.assign(("cov", "i", "j"),
                         b.read("cov", "i", "j") + b.read("data", "k", "i") * b.read("data", "k", "j"))
            b.assign(("cov", "i", "j"),
                     b.call("div", b.read("cov", "i", "j"), b.read("float_n") - 1.0))
            b.assign(("cov", "j", "i"), b.read("cov", "i", "j"))
    return b.finish()


def build_covariance_b() -> Program:
    """covariance with every phase fissioned and the mean loop transposed."""
    b = ProgramBuilder("covariance_b", parameters=["M", "N"])
    b.add_array("data", ("N", "M"))
    b.add_array("cov", ("M", "M"))
    b.add_array("mean", ("M",), transient=True)
    b.add_scalar("float_n")
    with b.loop("j", 0, "M"):
        b.assign(("mean", "j"), 0.0)
    with b.loop("i", 0, "N"):
        with b.loop("j", 0, "M"):
            b.assign(("mean", "j"), b.read("mean", "j") + b.read("data", "i", "j"))
    with b.loop("j", 0, "M"):
        b.assign(("mean", "j"), b.call("div", b.read("mean", "j"), b.read("float_n")))
    with b.loop("j", 0, "M"):
        with b.loop("i", 0, "N"):
            b.assign(("data", "i", "j"), b.read("data", "i", "j") - b.read("mean", "j"))
    with b.loop("i", 0, "M"):
        with b.loop("j", b.sym("i"), "M"):
            b.assign(("cov", "i", "j"), 0.0)
    with b.loop("k", 0, "N"):
        with b.loop("i", 0, "M"):
            with b.loop("j", b.sym("i"), "M"):
                b.assign(("cov", "i", "j"),
                         b.read("cov", "i", "j") + b.read("data", "k", "i") * b.read("data", "k", "j"))
    with b.loop("i", 0, "M"):
        with b.loop("j", b.sym("i"), "M"):
            b.assign(("cov", "i", "j"),
                     b.call("div", b.read("cov", "i", "j"), b.read("float_n") - 1.0))
            b.assign(("cov", "j", "i"), b.read("cov", "i", "j"))
    return b.finish()


def build_covariance_npbench() -> Program:
    program = build_covariance_b()
    program.name = "covariance_npbench"
    return program


# ----------------------------------------------------------------------------
# correlation
# ----------------------------------------------------------------------------

def build_correlation_a() -> Program:
    b = ProgramBuilder("correlation_a", parameters=["M", "N"])
    b.add_array("data", ("N", "M"))
    b.add_array("corr", ("M", "M"))
    b.add_array("mean", ("M",), transient=True)
    b.add_array("stddev", ("M",), transient=True)
    b.add_scalar("float_n")
    with b.loop("j", 0, "M"):
        b.assign(("mean", "j"), 0.0)
        with b.loop("i", 0, "N"):
            b.assign(("mean", "j"), b.read("mean", "j") + b.read("data", "i", "j"))
        b.assign(("mean", "j"), b.call("div", b.read("mean", "j"), b.read("float_n")))
    with b.loop("j", 0, "M"):
        b.assign(("stddev", "j"), 0.0)
        with b.loop("i", 0, "N"):
            b.assign(("stddev", "j"),
                     b.read("stddev", "j")
                     + (b.read("data", "i", "j") - b.read("mean", "j"))
                     * (b.read("data", "i", "j") - b.read("mean", "j")))
        b.assign(("stddev", "j"),
                 b.call("sqrt", b.call("div", b.read("stddev", "j"), b.read("float_n"))))
    with b.loop("i", 0, "N"):
        with b.loop("j", 0, "M"):
            b.assign(("data", "i", "j"),
                     b.call("div", b.read("data", "i", "j") - b.read("mean", "j"),
                            b.call("sqrt", b.read("float_n")) * b.read("stddev", "j")))
    with b.loop("i", 0, b.sym("M") - 1):
        b.assign(("corr", "i", "i"), 1.0)
        with b.loop("j", b.sym("i") + 1, "M"):
            b.assign(("corr", "i", "j"), 0.0)
            with b.loop("k", 0, "N"):
                b.assign(("corr", "i", "j"),
                         b.read("corr", "i", "j")
                         + b.read("data", "k", "i") * b.read("data", "k", "j"))
            b.assign(("corr", "j", "i"), b.read("corr", "i", "j"))
    b.assign(("corr", b.sym("M") - 1, b.sym("M") - 1), 1.0)
    return b.finish()


def build_correlation_b() -> Program:
    """correlation with fissioned phases and permuted traversal orders."""
    b = ProgramBuilder("correlation_b", parameters=["M", "N"])
    b.add_array("data", ("N", "M"))
    b.add_array("corr", ("M", "M"))
    b.add_array("mean", ("M",), transient=True)
    b.add_array("stddev", ("M",), transient=True)
    b.add_scalar("float_n")
    with b.loop("j", 0, "M"):
        b.assign(("mean", "j"), 0.0)
    with b.loop("i", 0, "N"):
        with b.loop("j", 0, "M"):
            b.assign(("mean", "j"), b.read("mean", "j") + b.read("data", "i", "j"))
    with b.loop("j", 0, "M"):
        b.assign(("mean", "j"), b.call("div", b.read("mean", "j"), b.read("float_n")))
    with b.loop("j", 0, "M"):
        b.assign(("stddev", "j"), 0.0)
    with b.loop("i", 0, "N"):
        with b.loop("j", 0, "M"):
            b.assign(("stddev", "j"),
                     b.read("stddev", "j")
                     + (b.read("data", "i", "j") - b.read("mean", "j"))
                     * (b.read("data", "i", "j") - b.read("mean", "j")))
    with b.loop("j", 0, "M"):
        b.assign(("stddev", "j"),
                 b.call("sqrt", b.call("div", b.read("stddev", "j"), b.read("float_n"))))
    with b.loop("j", 0, "M"):
        with b.loop("i", 0, "N"):
            b.assign(("data", "i", "j"),
                     b.call("div", b.read("data", "i", "j") - b.read("mean", "j"),
                            b.call("sqrt", b.read("float_n")) * b.read("stddev", "j")))
    with b.loop("i", 0, b.sym("M") - 1):
        b.assign(("corr", "i", "i"), 1.0)
    with b.loop("i", 0, b.sym("M") - 1):
        with b.loop("j", b.sym("i") + 1, "M"):
            b.assign(("corr", "i", "j"), 0.0)
    with b.loop("k", 0, "N"):
        with b.loop("i", 0, b.sym("M") - 1):
            with b.loop("j", b.sym("i") + 1, "M"):
                b.assign(("corr", "i", "j"),
                         b.read("corr", "i", "j")
                         + b.read("data", "k", "i") * b.read("data", "k", "j"))
    with b.loop("i", 0, b.sym("M") - 1):
        with b.loop("j", b.sym("i") + 1, "M"):
            b.assign(("corr", "j", "i"), b.read("corr", "i", "j"))
    b.assign(("corr", b.sym("M") - 1, b.sym("M") - 1), 1.0)
    return b.finish()


def build_correlation_npbench() -> Program:
    program = build_correlation_b()
    program.name = "correlation_npbench"
    return program

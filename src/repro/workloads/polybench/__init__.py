"""PolyBench benchmark definitions (A, B, and NPBench-style variants)."""

from .blas2 import (build_atax_a, build_atax_b, build_atax_npbench,
                    build_bicg_a, build_bicg_b, build_bicg_npbench,
                    build_gemver_a, build_gemver_b, build_gemver_npbench,
                    build_gesummv_a, build_gesummv_b, build_gesummv_npbench,
                    build_mvt_a, build_mvt_b, build_mvt_npbench)
from .blas3 import (build_2mm_a, build_2mm_b, build_2mm_npbench,
                    build_3mm_a, build_3mm_b, build_3mm_npbench,
                    build_gemm_a, build_gemm_b, build_gemm_npbench,
                    build_syr2k_a, build_syr2k_b, build_syr2k_npbench,
                    build_syrk_a, build_syrk_b, build_syrk_npbench)
from .stats import (build_correlation_a, build_correlation_b,
                    build_correlation_npbench, build_covariance_a,
                    build_covariance_b, build_covariance_npbench)
from .stencils import (build_fdtd2d_a, build_fdtd2d_b, build_fdtd2d_npbench,
                       build_heat3d_a, build_heat3d_b, build_heat3d_npbench,
                       build_jacobi2d_a, build_jacobi2d_b,
                       build_jacobi2d_npbench)

__all__ = [name for name in dir() if name.startswith("build_")]

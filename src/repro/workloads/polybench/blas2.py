"""BLAS-2-like PolyBench kernels: atax, bicg, mvt, gemver, gesummv.

See :mod:`repro.workloads.polybench.blas3` for the A/B/NPBench variant
conventions.  All B variants keep per-element floating-point accumulation
order identical to the A variants, so A and B agree bitwise under the
reference interpreter.
"""

from __future__ import annotations

from ..ir_helpers import ProgramBuilder
from ...ir.nodes import Program


# ----------------------------------------------------------------------------
# atax: y = A^T @ (A @ x)
# ----------------------------------------------------------------------------

def build_atax_a() -> Program:
    b = ProgramBuilder("atax_a", parameters=["M", "N"])
    b.add_array("A", ("M", "N"))
    b.add_array("x", ("N",))
    b.add_array("y", ("N",))
    b.add_array("tmp", ("M",), transient=True)
    with b.loop("i", 0, "N"):
        b.assign(("y", "i"), 0.0)
    with b.loop("i", 0, "M"):
        b.assign(("tmp", "i"), 0.0)
        with b.loop("j", 0, "N"):
            b.assign(("tmp", "i"), b.read("tmp", "i") + b.read("A", "i", "j") * b.read("x", "j"))
        with b.loop("j", 0, "N"):
            b.assign(("y", "j"), b.read("y", "j") + b.read("A", "i", "j") * b.read("tmp", "i"))
    return b.finish()


def build_atax_b() -> Program:
    """atax with the two matrix-vector products in separate loop nests."""
    b = ProgramBuilder("atax_b", parameters=["M", "N"])
    b.add_array("A", ("M", "N"))
    b.add_array("x", ("N",))
    b.add_array("y", ("N",))
    b.add_array("tmp", ("M",), transient=True)
    with b.loop("i", 0, "N"):
        b.assign(("y", "i"), 0.0)
    with b.loop("i", 0, "M"):
        b.assign(("tmp", "i"), 0.0)
    with b.loop("i", 0, "M"):
        with b.loop("j", 0, "N"):
            b.assign(("tmp", "i"), b.read("tmp", "i") + b.read("A", "i", "j") * b.read("x", "j"))
    with b.loop("j", 0, "N"):
        with b.loop("i", 0, "M"):
            b.assign(("y", "j"), b.read("y", "j") + b.read("A", "i", "j") * b.read("tmp", "i"))
    return b.finish()


def build_atax_npbench() -> Program:
    """NPBench atax (``A.T @ (A @ x)``): two matvec operators with temporaries."""
    program = build_atax_b()
    program.name = "atax_npbench"
    return program


# ----------------------------------------------------------------------------
# bicg: s = A^T @ r,  q = A @ p
# ----------------------------------------------------------------------------

def build_bicg_a() -> Program:
    b = ProgramBuilder("bicg_a", parameters=["M", "N"])
    b.add_array("A", ("N", "M"))
    b.add_array("s", ("M",))
    b.add_array("q", ("N",))
    b.add_array("p", ("M",))
    b.add_array("r", ("N",))
    with b.loop("i", 0, "M"):
        b.assign(("s", "i"), 0.0)
    with b.loop("i", 0, "N"):
        b.assign(("q", "i"), 0.0)
        with b.loop("j", 0, "M"):
            b.assign(("s", "j"), b.read("s", "j") + b.read("r", "i") * b.read("A", "i", "j"))
            b.assign(("q", "i"), b.read("q", "i") + b.read("A", "i", "j") * b.read("p", "j"))
    return b.finish()


def build_bicg_b() -> Program:
    """bicg with the two products fissioned into independent nests."""
    b = ProgramBuilder("bicg_b", parameters=["M", "N"])
    b.add_array("A", ("N", "M"))
    b.add_array("s", ("M",))
    b.add_array("q", ("N",))
    b.add_array("p", ("M",))
    b.add_array("r", ("N",))
    with b.loop("i", 0, "M"):
        b.assign(("s", "i"), 0.0)
    with b.loop("i", 0, "N"):
        b.assign(("q", "i"), 0.0)
    with b.loop("j", 0, "M"):
        with b.loop("i", 0, "N"):
            b.assign(("s", "j"), b.read("s", "j") + b.read("r", "i") * b.read("A", "i", "j"))
    with b.loop("i", 0, "N"):
        with b.loop("j", 0, "M"):
            b.assign(("q", "i"), b.read("q", "i") + b.read("A", "i", "j") * b.read("p", "j"))
    return b.finish()


def build_bicg_npbench() -> Program:
    program = build_bicg_b()
    program.name = "bicg_npbench"
    return program


# ----------------------------------------------------------------------------
# mvt: x1 += A @ y1,  x2 += A^T @ y2
# ----------------------------------------------------------------------------

def build_mvt_a() -> Program:
    b = ProgramBuilder("mvt_a", parameters=["N"])
    b.add_array("A", ("N", "N"))
    b.add_array("x1", ("N",))
    b.add_array("x2", ("N",))
    b.add_array("y1", ("N",))
    b.add_array("y2", ("N",))
    with b.loop("i", 0, "N"):
        with b.loop("j", 0, "N"):
            b.assign(("x1", "i"), b.read("x1", "i") + b.read("A", "i", "j") * b.read("y1", "j"))
    with b.loop("i", 0, "N"):
        with b.loop("j", 0, "N"):
            b.assign(("x2", "i"), b.read("x2", "i") + b.read("A", "j", "i") * b.read("y2", "j"))
    return b.finish()


def build_mvt_b() -> Program:
    """mvt with both products fused in one loop nest."""
    b = ProgramBuilder("mvt_b", parameters=["N"])
    b.add_array("A", ("N", "N"))
    b.add_array("x1", ("N",))
    b.add_array("x2", ("N",))
    b.add_array("y1", ("N",))
    b.add_array("y2", ("N",))
    with b.loop("i", 0, "N"):
        with b.loop("j", 0, "N"):
            b.assign(("x1", "i"), b.read("x1", "i") + b.read("A", "i", "j") * b.read("y1", "j"))
            b.assign(("x2", "i"), b.read("x2", "i") + b.read("A", "j", "i") * b.read("y2", "j"))
    return b.finish()


def build_mvt_npbench() -> Program:
    program = build_mvt_a()
    program.name = "mvt_npbench"
    return program


# ----------------------------------------------------------------------------
# gemver
# ----------------------------------------------------------------------------

def build_gemver_a() -> Program:
    b = ProgramBuilder("gemver_a", parameters=["N"])
    b.add_array("A", ("N", "N"))
    b.add_array("u1", ("N",))
    b.add_array("v1", ("N",))
    b.add_array("u2", ("N",))
    b.add_array("v2", ("N",))
    b.add_array("w", ("N",))
    b.add_array("x", ("N",))
    b.add_array("y", ("N",))
    b.add_array("z", ("N",))
    b.add_scalar("alpha")
    b.add_scalar("beta")
    with b.loop("i", 0, "N"):
        with b.loop("j", 0, "N"):
            b.assign(("A", "i", "j"),
                     b.read("A", "i", "j") + b.read("u1", "i") * b.read("v1", "j")
                     + b.read("u2", "i") * b.read("v2", "j"))
    with b.loop("i", 0, "N"):
        with b.loop("j", 0, "N"):
            b.assign(("x", "i"),
                     b.read("x", "i") + b.read("beta") * b.read("A", "j", "i") * b.read("y", "j"))
    with b.loop("i", 0, "N"):
        b.assign(("x", "i"), b.read("x", "i") + b.read("z", "i"))
    with b.loop("i", 0, "N"):
        with b.loop("j", 0, "N"):
            b.assign(("w", "i"),
                     b.read("w", "i") + b.read("alpha") * b.read("A", "i", "j") * b.read("x", "j"))
    return b.finish()


def build_gemver_b() -> Program:
    """gemver with transposed traversal of the rank-2 update and matvecs."""
    b = ProgramBuilder("gemver_b", parameters=["N"])
    b.add_array("A", ("N", "N"))
    b.add_array("u1", ("N",))
    b.add_array("v1", ("N",))
    b.add_array("u2", ("N",))
    b.add_array("v2", ("N",))
    b.add_array("w", ("N",))
    b.add_array("x", ("N",))
    b.add_array("y", ("N",))
    b.add_array("z", ("N",))
    b.add_scalar("alpha")
    b.add_scalar("beta")
    with b.loop("j", 0, "N"):
        with b.loop("i", 0, "N"):
            b.assign(("A", "i", "j"),
                     b.read("A", "i", "j") + b.read("u1", "i") * b.read("v1", "j")
                     + b.read("u2", "i") * b.read("v2", "j"))
    with b.loop("j", 0, "N"):
        with b.loop("i", 0, "N"):
            b.assign(("x", "i"),
                     b.read("x", "i") + b.read("beta") * b.read("A", "j", "i") * b.read("y", "j"))
    with b.loop("i", 0, "N"):
        b.assign(("x", "i"), b.read("x", "i") + b.read("z", "i"))
    with b.loop("j", 0, "N"):
        with b.loop("i", 0, "N"):
            b.assign(("w", "i"),
                     b.read("w", "i") + b.read("alpha") * b.read("A", "i", "j") * b.read("x", "j"))
    return b.finish()


def build_gemver_npbench() -> Program:
    program = build_gemver_a()
    program.name = "gemver_npbench"
    return program


# ----------------------------------------------------------------------------
# gesummv: y = alpha * A @ x + beta * B @ x
# ----------------------------------------------------------------------------

def build_gesummv_a() -> Program:
    b = ProgramBuilder("gesummv_a", parameters=["N"])
    b.add_array("A", ("N", "N"))
    b.add_array("B", ("N", "N"))
    b.add_array("x", ("N",))
    b.add_array("y", ("N",))
    b.add_array("tmp", ("N",), transient=True)
    b.add_scalar("alpha")
    b.add_scalar("beta")
    with b.loop("i", 0, "N"):
        b.assign(("tmp", "i"), 0.0)
        b.assign(("y", "i"), 0.0)
        with b.loop("j", 0, "N"):
            b.assign(("tmp", "i"), b.read("tmp", "i") + b.read("A", "i", "j") * b.read("x", "j"))
            b.assign(("y", "i"), b.read("y", "i") + b.read("B", "i", "j") * b.read("x", "j"))
        b.assign(("y", "i"), b.read("alpha") * b.read("tmp", "i") + b.read("beta") * b.read("y", "i"))
    return b.finish()


def build_gesummv_b() -> Program:
    """gesummv with the two matvecs and the final combination fissioned."""
    b = ProgramBuilder("gesummv_b", parameters=["N"])
    b.add_array("A", ("N", "N"))
    b.add_array("B", ("N", "N"))
    b.add_array("x", ("N",))
    b.add_array("y", ("N",))
    b.add_array("tmp", ("N",), transient=True)
    b.add_scalar("alpha")
    b.add_scalar("beta")
    with b.loop("i", 0, "N"):
        b.assign(("tmp", "i"), 0.0)
    with b.loop("i", 0, "N"):
        b.assign(("y", "i"), 0.0)
    with b.loop("i", 0, "N"):
        with b.loop("j", 0, "N"):
            b.assign(("tmp", "i"), b.read("tmp", "i") + b.read("A", "i", "j") * b.read("x", "j"))
    with b.loop("i", 0, "N"):
        with b.loop("j", 0, "N"):
            b.assign(("y", "i"), b.read("y", "i") + b.read("B", "i", "j") * b.read("x", "j"))
    with b.loop("i", 0, "N"):
        b.assign(("y", "i"), b.read("alpha") * b.read("tmp", "i") + b.read("beta") * b.read("y", "i"))
    return b.finish()


def build_gesummv_npbench() -> Program:
    program = build_gesummv_b()
    program.name = "gesummv_npbench"
    return program

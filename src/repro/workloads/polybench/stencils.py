"""Stencil PolyBench kernels: jacobi-2d, fdtd-2d, heat-3d.

The B variants traverse the spatial dimensions in a permuted (strided)
order — the variation the paper highlights for fdtd-2d, where "strided
memory accesses in the B implementation [can] neither Polly nor icc optimize
well" (Section 4.1).  The time loop is never permuted (it carries the
dependence between sweeps), so A and B remain semantically identical.
"""

from __future__ import annotations

from ..ir_helpers import ProgramBuilder
from ...ir.nodes import Program


# ----------------------------------------------------------------------------
# jacobi-2d
# ----------------------------------------------------------------------------

def _jacobi_update(b: ProgramBuilder, dst: str, src: str) -> None:
    b.assign((dst, "i", "j"),
             0.2 * (b.read(src, "i", "j")
                    + b.read(src, "i", b.sym("j") - 1)
                    + b.read(src, "i", b.sym("j") + 1)
                    + b.read(src, b.sym("i") + 1, "j")
                    + b.read(src, b.sym("i") - 1, "j")))


def build_jacobi2d_a() -> Program:
    b = ProgramBuilder("jacobi2d_a", parameters=["TSTEPS", "N"])
    b.add_array("A", ("N", "N"))
    b.add_array("B", ("N", "N"))
    with b.loop("t", 0, "TSTEPS"):
        with b.loop("i", 1, b.sym("N") - 1):
            with b.loop("j", 1, b.sym("N") - 1):
                _jacobi_update(b, "B", "A")
        with b.loop("i", 1, b.sym("N") - 1):
            with b.loop("j", 1, b.sym("N") - 1):
                _jacobi_update(b, "A", "B")
    return b.finish()


def build_jacobi2d_b() -> Program:
    """jacobi-2d traversing columns first (strided accesses)."""
    b = ProgramBuilder("jacobi2d_b", parameters=["TSTEPS", "N"])
    b.add_array("A", ("N", "N"))
    b.add_array("B", ("N", "N"))
    with b.loop("t", 0, "TSTEPS"):
        with b.loop("j", 1, b.sym("N") - 1):
            with b.loop("i", 1, b.sym("N") - 1):
                _jacobi_update(b, "B", "A")
        with b.loop("j", 1, b.sym("N") - 1):
            with b.loop("i", 1, b.sym("N") - 1):
                _jacobi_update(b, "A", "B")
    return b.finish()


def build_jacobi2d_npbench() -> Program:
    """NPBench jacobi-2d: whole-array operations per sweep (row-major order)."""
    program = build_jacobi2d_a()
    program.name = "jacobi2d_npbench"
    return program


# ----------------------------------------------------------------------------
# fdtd-2d
# ----------------------------------------------------------------------------

def build_fdtd2d_a() -> Program:
    b = ProgramBuilder("fdtd2d_a", parameters=["TMAX", "NX", "NY"])
    b.add_array("ex", ("NX", "NY"))
    b.add_array("ey", ("NX", "NY"))
    b.add_array("hz", ("NX", "NY"))
    b.add_array("fict", ("TMAX",))
    with b.loop("t", 0, "TMAX"):
        with b.loop("j", 0, "NY"):
            b.assign(("ey", 0, "j"), b.read("fict", "t"))
        with b.loop("i", 1, "NX"):
            with b.loop("j", 0, "NY"):
                b.assign(("ey", "i", "j"),
                         b.read("ey", "i", "j")
                         - 0.5 * (b.read("hz", "i", "j") - b.read("hz", b.sym("i") - 1, "j")))
        with b.loop("i", 0, "NX"):
            with b.loop("j", 1, "NY"):
                b.assign(("ex", "i", "j"),
                         b.read("ex", "i", "j")
                         - 0.5 * (b.read("hz", "i", "j") - b.read("hz", "i", b.sym("j") - 1)))
        with b.loop("i", 0, b.sym("NX") - 1):
            with b.loop("j", 0, b.sym("NY") - 1):
                b.assign(("hz", "i", "j"),
                         b.read("hz", "i", "j")
                         - 0.7 * (b.read("ex", "i", b.sym("j") + 1) - b.read("ex", "i", "j")
                                  + b.read("ey", b.sym("i") + 1, "j") - b.read("ey", "i", "j")))
    return b.finish()


def build_fdtd2d_b() -> Program:
    """fdtd-2d with the field updates traversed column-first (strided)."""
    b = ProgramBuilder("fdtd2d_b", parameters=["TMAX", "NX", "NY"])
    b.add_array("ex", ("NX", "NY"))
    b.add_array("ey", ("NX", "NY"))
    b.add_array("hz", ("NX", "NY"))
    b.add_array("fict", ("TMAX",))
    with b.loop("t", 0, "TMAX"):
        with b.loop("j", 0, "NY"):
            b.assign(("ey", 0, "j"), b.read("fict", "t"))
        with b.loop("j", 0, "NY"):
            with b.loop("i", 1, "NX"):
                b.assign(("ey", "i", "j"),
                         b.read("ey", "i", "j")
                         - 0.5 * (b.read("hz", "i", "j") - b.read("hz", b.sym("i") - 1, "j")))
        with b.loop("j", 1, "NY"):
            with b.loop("i", 0, "NX"):
                b.assign(("ex", "i", "j"),
                         b.read("ex", "i", "j")
                         - 0.5 * (b.read("hz", "i", "j") - b.read("hz", "i", b.sym("j") - 1)))
        with b.loop("j", 0, b.sym("NY") - 1):
            with b.loop("i", 0, b.sym("NX") - 1):
                b.assign(("hz", "i", "j"),
                         b.read("hz", "i", "j")
                         - 0.7 * (b.read("ex", "i", b.sym("j") + 1) - b.read("ex", "i", "j")
                                  + b.read("ey", b.sym("i") + 1, "j") - b.read("ey", "i", "j")))
    return b.finish()


def build_fdtd2d_npbench() -> Program:
    program = build_fdtd2d_a()
    program.name = "fdtd2d_npbench"
    return program


# ----------------------------------------------------------------------------
# heat-3d
# ----------------------------------------------------------------------------

def _heat_update(b: ProgramBuilder, dst: str, src: str) -> None:
    i, j, k = b.sym("i"), b.sym("j"), b.sym("k")
    b.assign((dst, "i", "j", "k"),
             0.125 * (b.read(src, i + 1, "j", "k") - 2.0 * b.read(src, "i", "j", "k")
                      + b.read(src, i - 1, "j", "k"))
             + 0.125 * (b.read(src, "i", j + 1, "k") - 2.0 * b.read(src, "i", "j", "k")
                        + b.read(src, "i", j - 1, "k"))
             + 0.125 * (b.read(src, "i", "j", k + 1) - 2.0 * b.read(src, "i", "j", "k")
                        + b.read(src, "i", "j", k - 1))
             + b.read(src, "i", "j", "k"))


def build_heat3d_a() -> Program:
    b = ProgramBuilder("heat3d_a", parameters=["TSTEPS", "N"])
    b.add_array("A", ("N", "N", "N"))
    b.add_array("B", ("N", "N", "N"))
    with b.loop("t", 0, "TSTEPS"):
        with b.loop("i", 1, b.sym("N") - 1):
            with b.loop("j", 1, b.sym("N") - 1):
                with b.loop("k", 1, b.sym("N") - 1):
                    _heat_update(b, "B", "A")
        with b.loop("i", 1, b.sym("N") - 1):
            with b.loop("j", 1, b.sym("N") - 1):
                with b.loop("k", 1, b.sym("N") - 1):
                    _heat_update(b, "A", "B")
    return b.finish()


def build_heat3d_b() -> Program:
    """heat-3d traversing the innermost dimension outermost (strided)."""
    b = ProgramBuilder("heat3d_b", parameters=["TSTEPS", "N"])
    b.add_array("A", ("N", "N", "N"))
    b.add_array("B", ("N", "N", "N"))
    with b.loop("t", 0, "TSTEPS"):
        with b.loop("k", 1, b.sym("N") - 1):
            with b.loop("j", 1, b.sym("N") - 1):
                with b.loop("i", 1, b.sym("N") - 1):
                    _heat_update(b, "B", "A")
        with b.loop("k", 1, b.sym("N") - 1):
            with b.loop("j", 1, b.sym("N") - 1):
                with b.loop("i", 1, b.sym("N") - 1):
                    _heat_update(b, "A", "B")
    return b.finish()


def build_heat3d_npbench() -> Program:
    program = build_heat3d_a()
    program.name = "heat3d_npbench"
    return program

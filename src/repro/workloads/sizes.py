"""Problem-size presets for the PolyBench benchmarks.

The paper evaluates the LARGE dataset of PolyBench 4.2.  The ``mini`` sizes
are used by the correctness tests (the interpreter is slow), ``small`` by
quick experiments, and ``large`` by the benchmark harness that regenerates
the paper's figures.
"""

from __future__ import annotations

from typing import Dict, Mapping

#: parameter bindings per benchmark and size class.
POLYBENCH_SIZES: Dict[str, Dict[str, Dict[str, int]]] = {
    "gemm": {
        "mini": {"NI": 12, "NJ": 14, "NK": 16},
        "small": {"NI": 60, "NJ": 70, "NK": 80},
        "large": {"NI": 1000, "NJ": 1100, "NK": 1200},
    },
    "2mm": {
        "mini": {"NI": 10, "NJ": 12, "NK": 14, "NL": 16},
        "small": {"NI": 40, "NJ": 50, "NK": 70, "NL": 80},
        "large": {"NI": 800, "NJ": 900, "NK": 1100, "NL": 1200},
    },
    "3mm": {
        "mini": {"NI": 10, "NJ": 12, "NK": 14, "NL": 16, "NM": 18},
        "small": {"NI": 40, "NJ": 50, "NK": 60, "NL": 70, "NM": 80},
        "large": {"NI": 800, "NJ": 900, "NK": 1000, "NL": 1100, "NM": 1200},
    },
    "atax": {
        "mini": {"M": 14, "N": 16},
        "small": {"M": 116, "N": 124},
        "large": {"M": 1900, "N": 2100},
    },
    "bicg": {
        "mini": {"M": 14, "N": 16},
        "small": {"M": 116, "N": 124},
        "large": {"M": 1900, "N": 2100},
    },
    "mvt": {
        "mini": {"N": 16},
        "small": {"N": 120},
        "large": {"N": 4000},
    },
    "gemver": {
        "mini": {"N": 16},
        "small": {"N": 120},
        "large": {"N": 4000},
    },
    "gesummv": {
        "mini": {"N": 16},
        "small": {"N": 90},
        "large": {"N": 2800},
    },
    "syrk": {
        "mini": {"M": 12, "N": 14},
        "small": {"M": 60, "N": 80},
        "large": {"M": 1000, "N": 1200},
    },
    "syr2k": {
        "mini": {"M": 12, "N": 14},
        "small": {"M": 60, "N": 80},
        "large": {"M": 1000, "N": 1200},
    },
    "correlation": {
        "mini": {"M": 12, "N": 14},
        "small": {"M": 80, "N": 100},
        "large": {"M": 1200, "N": 1400},
    },
    "covariance": {
        "mini": {"M": 12, "N": 14},
        "small": {"M": 80, "N": 100},
        "large": {"M": 1200, "N": 1400},
    },
    "jacobi-2d": {
        "mini": {"TSTEPS": 4, "N": 10},
        "small": {"TSTEPS": 20, "N": 90},
        "large": {"TSTEPS": 500, "N": 1300},
    },
    "fdtd-2d": {
        "mini": {"TMAX": 4, "NX": 10, "NY": 12},
        "small": {"TMAX": 20, "NX": 60, "NY": 80},
        "large": {"TMAX": 500, "NX": 1000, "NY": 1200},
    },
    "heat-3d": {
        "mini": {"TSTEPS": 3, "N": 8},
        "small": {"TSTEPS": 20, "N": 40},
        "large": {"TSTEPS": 500, "N": 120},
    },
    # FEM-assembly kernels (repro.workloads.fem): elements x basis x quadrature.
    "fem-mass": {
        "mini": {"NE": 6, "NB": 4, "NQ": 4},
        "small": {"NE": 64, "NB": 6, "NQ": 9},
        "large": {"NE": 4096, "NB": 10, "NQ": 16},
    },
    "fem-stiffness": {
        "mini": {"NE": 6, "NB": 4, "NQ": 4},
        "small": {"NE": 64, "NB": 6, "NQ": 9},
        "large": {"NE": 4096, "NB": 10, "NQ": 16},
    },
    "fem-rhs": {
        "mini": {"NE": 6, "NB": 4, "NQ": 4},
        "small": {"NE": 64, "NB": 6, "NQ": 9},
        "large": {"NE": 4096, "NB": 10, "NQ": 16},
    },
}

SIZE_CLASSES = ("mini", "small", "large")


def benchmark_sizes(benchmark: str, size: str = "large") -> Dict[str, int]:
    """Parameter bindings for a benchmark at a given size class."""
    if benchmark not in POLYBENCH_SIZES:
        raise KeyError(f"unknown benchmark {benchmark!r}")
    if size not in POLYBENCH_SIZES[benchmark]:
        raise KeyError(f"unknown size class {size!r} for {benchmark!r}")
    return dict(POLYBENCH_SIZES[benchmark][size])

"""Persisted fuzz corpora: seeds worth keeping, in replayable JSON form.

A corpus is an ordered set of :class:`CorpusEntry` records — each one a
full serialized program (via :mod:`repro.ir.serialization`) plus its
concrete parameter bindings and provenance (generator seed, size class,
and, for minimized reproducers, the :class:`~repro.fuzz.oracle.FailureSpec`
they still trigger).  Storing programs rather than bare seeds makes the
corpus robust to generator evolution: an entry replays identically even
after the generator's sampling decisions change.

``Corpus.replay`` re-runs every entry through an oracle;
``python -m repro.fuzz replay --corpus FILE`` is the command-line wrapper.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from .generator import GeneratedProgram
from .oracle import FailureSpec, Oracle, OracleReport

_FORMAT_VERSION = 1


@dataclass
class CorpusEntry:
    """One stored program with provenance."""

    generated: GeneratedProgram
    #: Free-form provenance, e.g. "minimized divergence" or "interesting".
    label: str = ""
    #: For minimized reproducers: the failure this entry still triggers.
    spec: Optional[FailureSpec] = None

    @property
    def name(self) -> str:
        return self.generated.name

    def to_dict(self) -> Dict[str, Any]:
        data = self.generated.to_dict()
        data["label"] = self.label
        if self.spec is not None:
            data["spec"] = self.spec.to_dict()
        return data

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "CorpusEntry":
        spec = (FailureSpec.from_dict(dict(data["spec"]))
                if data.get("spec") else None)
        return CorpusEntry(generated=GeneratedProgram.from_dict(dict(data)),
                           label=str(data.get("label", "")), spec=spec)


@dataclass
class Corpus:
    """An ordered, name-addressable collection of corpus entries."""

    entries: List[CorpusEntry] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def names(self) -> List[str]:
        return [entry.name for entry in self.entries]

    def get(self, name: str) -> CorpusEntry:
        for entry in self.entries:
            if entry.name == name:
                return entry
        raise KeyError(f"no corpus entry named {name!r}; "
                       f"available: {self.names()}")

    def add(self, generated: GeneratedProgram, label: str = "",
            spec: Optional[FailureSpec] = None) -> CorpusEntry:
        entry = CorpusEntry(generated=generated, label=label, spec=spec)
        self.entries.append(entry)
        return entry

    # -- persistence -------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {"version": _FORMAT_VERSION,
                "entries": [entry.to_dict() for entry in self.entries]}

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "Corpus":
        version = int(data.get("version", 0))
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported corpus format version {version}; "
                             f"expected {_FORMAT_VERSION}")
        return Corpus(entries=[CorpusEntry.from_dict(item)
                               for item in data.get("entries", [])])

    def save(self, path: str) -> None:
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @staticmethod
    def load(path: str) -> "Corpus":
        with open(path, "r", encoding="utf-8") as handle:
            return Corpus.from_dict(json.load(handle))

    # -- replay ------------------------------------------------------------------

    def replay(self, oracle: Optional[Oracle] = None) -> OracleReport:
        """Re-check every entry; minimized reproducers should fail again."""
        oracle = oracle or Oracle()
        report = OracleReport()
        for entry in self.entries:
            report.verdicts.append(oracle.check(entry.generated))
        return report

    def register_workloads(self) -> List[str]:
        """Expose every entry as a ``fuzz:`` workload; returns the names."""
        from ..workloads.registry import register_fuzz_program

        names = []
        for entry in self.entries:
            names.append(register_fuzz_program(entry.generated))
        return names

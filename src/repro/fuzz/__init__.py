"""Differential-testing subsystem: random loop nests, oracle, minimizer.

The paper's central claim is that a-priori normalization is
*semantics-preserving*; the fixed benchmark registry exercises only a
handful of shapes.  This package generates random well-formed loop-nest
programs (:mod:`repro.fuzz.generator`), round-trips each one through
``normalize -> schedule -> execute`` for every registered pipeline and a
set of schedulers, compares the results against the reference interpreter
(:mod:`repro.fuzz.oracle`), shrinks any divergent or crashing program to a
minimal reproducer (:mod:`repro.fuzz.minimize`), and persists seed corpora
for replay (:mod:`repro.fuzz.corpus`).  ``python -m repro.fuzz`` is the
command-line entry point (:mod:`repro.fuzz.cli`).
"""

from .corpus import Corpus, CorpusEntry
from .generator import (SIZE_CLASSES, GeneratedProgram, GeneratorConfig,
                        generate_program)
from .minimize import MinimizationResult, minimize_program
from .oracle import (Divergence, FailureSpec, Oracle, OracleConfig,
                     OracleReport, ProgramVerdict)

__all__ = [
    "SIZE_CLASSES", "GeneratedProgram", "GeneratorConfig", "generate_program",
    "Oracle", "OracleConfig", "OracleReport", "ProgramVerdict", "Divergence",
    "FailureSpec", "minimize_program", "MinimizationResult", "Corpus",
    "CorpusEntry",
]

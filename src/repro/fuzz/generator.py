"""Seeded random generator of well-formed loop-nest programs.

The generator is safe by construction: every program it emits passes
:func:`repro.ir.validation.validate_program` and executes cleanly on the
reference interpreter with uninitialized-read checking enabled.  In-bounds
indexing is guaranteed by a *cover* discipline — each loop iterator records
the set of size parameters ``P`` for which its values provably stay inside
``[0, P)``, and an index expression for a dimension of extent ``P`` is only
built from iterators covering ``P`` (or wrapped in ``% P``, which is safe
for any non-negative affine value).

The emitted shapes deliberately stress normalization:

* imperfect nesting (statements before, between, and after nested loops),
* shifted / shortened / strided / triangular / ``min``-bounded loops,
* reductions into scalars and array elements (initialized before the loop),
* transient scalar temporaries written before any read,
* multi-statement bodies mixing affine and ``%``-irregular accesses, and
* a conditional-style expression grammar (``select``/``fmin``/``fmax``/
  ``Min``/``Max``) alongside ``sqrt(abs(.))`` and ``tanh``.

Everything derives from one ``random.Random`` seeded with
``f"{size_class}:{seed}"``, so the same ``(seed, size_class)`` pair yields
an identical program on every platform and run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..ir.builder import ProgramBuilder
from ..ir.nodes import Program
from ..ir.serialization import program_from_dict, program_to_dict
from ..ir.symbols import Call, Const, Expr, Max, Min, Mod, Sym
from ..ir.validation import validate_program

#: Exactly-representable constants; keeping them dyadic keeps the oracle's
#: bit-exact comparison meaningful (no decimal rounding noise).
_CONSTANTS = (0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 2.5, 3.0, -0.5, -1.5)

_PARAM_NAMES = ("N", "M", "K", "L")


@dataclass(frozen=True)
class GeneratorConfig:
    """Size-class knobs bounding one generated program."""

    name: str
    #: Inclusive range of loops in the whole program.
    loops: Tuple[int, int]
    max_depth: int
    #: Inclusive range of computation statements.
    statements: Tuple[int, int]
    #: Inclusive range of non-transient data arrays.
    arrays: Tuple[int, int]
    max_rank: int
    params: Tuple[int, int]
    #: Inclusive range the concrete parameter bindings are drawn from.
    param_values: Tuple[int, int]
    expr_depth: int
    #: Probability of an irregular bound or ``%``-wrapped index.
    irregular: float
    #: Probability of introducing a scalar temporary in a body.
    temporaries: float
    #: Probability of emitting a reduction idiom in a body.
    reductions: float
    #: Use the expression-heavy operator grammar: mul-/add-rich, deeper
    #: expressions, and no ``select`` (its discontinuity would turn benign
    #: re-association rounding into branch flips under the tolerance oracle).
    expression_profile: bool = False
    #: Probability of reusing an already-generated subexpression verbatim
    #: (redundancy: CSE fodder).
    redundancy: float = 0.0
    #: Probability that a product pulls one factor from the enclosing scope
    #: only, excluding the innermost iterator (loop invariance: LICM fodder).
    invariance: float = 0.0
    #: Probability of emitting a polynomial sum ``c0 + c1*x + c2*x^2 ...``
    #: over a shared base (factorization fodder).
    polynomial: float = 0.0


SIZE_CLASSES: Dict[str, GeneratorConfig] = {
    "tiny": GeneratorConfig("tiny", loops=(1, 2), max_depth=2,
                            statements=(1, 3), arrays=(1, 2), max_rank=2,
                            params=(1, 2), param_values=(3, 5), expr_depth=1,
                            irregular=0.15, temporaries=0.2, reductions=0.2),
    "small": GeneratorConfig("small", loops=(2, 4), max_depth=3,
                             statements=(2, 6), arrays=(2, 3), max_rank=2,
                             params=(2, 3), param_values=(3, 6), expr_depth=2,
                             irregular=0.25, temporaries=0.35, reductions=0.3),
    "medium": GeneratorConfig("medium", loops=(3, 7), max_depth=3,
                              statements=(4, 10), arrays=(2, 4), max_rank=3,
                              params=(2, 3), param_values=(4, 7), expr_depth=3,
                              irregular=0.3, temporaries=0.4, reductions=0.35),
    "large": GeneratorConfig("large", loops=(6, 12), max_depth=4,
                             statements=(8, 18), arrays=(3, 5), max_rank=3,
                             params=(3, 4), param_values=(4, 8), expr_depth=3,
                             irregular=0.35, temporaries=0.45, reductions=0.4),
    # Deep redundant subexpressions, loop-invariant factors, polynomial
    # sums, and shared temporaries — the workload profile the rewrite
    # passes (repro.passes.rewrite) are built for.
    "expression-heavy": GeneratorConfig(
        "expression-heavy", loops=(3, 6), max_depth=3, statements=(4, 10),
        arrays=(2, 4), max_rank=3, params=(2, 3), param_values=(4, 7),
        expr_depth=4, irregular=0.15, temporaries=0.5, reductions=0.3,
        expression_profile=True, redundancy=0.35, invariance=0.4,
        polynomial=0.25),
}


@dataclass
class GeneratedProgram:
    """One generator output: the program plus its concrete size bindings."""

    program: Program
    parameters: Dict[str, int]
    seed: int
    size_class: str

    @property
    def name(self) -> str:
        return self.program.name

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "size_class": self.size_class,
            "parameters": dict(self.parameters),
            "program": program_to_dict(self.program),
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "GeneratedProgram":
        return GeneratedProgram(
            program=program_from_dict(dict(data["program"])),
            parameters={str(k): int(v)
                        for k, v in dict(data["parameters"]).items()},
            seed=int(data["seed"]),
            size_class=str(data["size_class"]),
        )


@dataclass
class _Iterator:
    """An open loop iterator and the parameters whose extent it stays under."""

    name: str
    covers: frozenset


@dataclass
class _Scope:
    """What a body being generated may legally reference."""

    iterators: List[_Iterator] = field(default_factory=list)
    #: Transient scalars guaranteed written before this point executes.
    temps: List[str] = field(default_factory=list)
    #: Reusable subexpressions valid at this point (expression-heavy
    #: redundancy).  Flows downward only: children copy the pool, so an
    #: expression built under an inner iterator never leaks outward.
    pool: List[Expr] = field(default_factory=list)

    def child(self) -> "_Scope":
        return _Scope(list(self.iterators), list(self.temps), list(self.pool))

    def outer(self) -> "_Scope":
        """The scope without its innermost iterator (and without temps,
        which may be written under it): what a loop-invariant factor may
        reference."""
        return _Scope(list(self.iterators[:-1]))


class _Sampler:
    """One generation run; all randomness flows through ``self.rng``."""

    def __init__(self, seed: int, config: GeneratorConfig):
        self.rng = random.Random(f"{config.name}:{seed}")
        self.config = config
        self.seed = seed
        self.builder = ProgramBuilder(f"fuzz_{config.name}_{seed}")
        self.params: List[str] = []
        self.bindings: Dict[str, int] = {}
        self.data_arrays: Dict[str, Tuple[str, ...]] = {}
        self.input_scalars: List[str] = []
        self._iterator_count = 0
        self._temp_count = 0
        self.loop_budget = self.rng.randint(*config.loops)
        self.stmt_budget = self.rng.randint(*config.statements)
        self.wrote_data = False

    # -- declarations ----------------------------------------------------------

    def declare(self) -> None:
        rng, config = self.rng, self.config
        for name in _PARAM_NAMES[:rng.randint(*config.params)]:
            self.params.append(name)
            self.bindings[name] = rng.randint(*config.param_values)
        for index in range(rng.randint(*config.arrays)):
            rank = rng.randint(1, config.max_rank)
            shape = tuple(rng.choice(self.params) for _ in range(rank))
            name = f"A{index}"
            self.builder.add_array(name, shape)
            self.data_arrays[name] = shape
        for index in range(rng.randint(0, 2)):
            name = f"c{index}"
            self.builder.add_scalar(name)
            self.input_scalars.append(name)

    def fresh_iterator(self) -> str:
        name = f"i{self._iterator_count}"
        self._iterator_count += 1
        return name

    def fresh_temp(self) -> str:
        name = f"t{self._temp_count}"
        self._temp_count += 1
        self.builder.add_scalar(name, transient=True)
        return name

    # -- index expressions ------------------------------------------------------

    def index_for(self, param: str, scope: _Scope) -> Expr:
        """A random index provably inside ``[0, param)``."""
        rng = self.rng
        covering = [it for it in scope.iterators if param in it.covers]
        choices = ["const"]
        if covering:
            choices += ["plain"] * 4 + ["reverse"]
        if scope.iterators and rng.random() < self.config.irregular:
            choices += ["mod"] * 2
        form = rng.choice(choices)
        if form == "plain":
            return Sym(rng.choice(covering).name)
        if form == "reverse":
            return Sym(param) - 1 - Sym(rng.choice(covering).name)
        if form == "mod":
            # Any non-negative affine combination, wrapped into range.
            first = Sym(rng.choice(scope.iterators).name)
            if len(scope.iterators) > 1 and rng.random() < 0.5:
                second = Sym(rng.choice(scope.iterators).name)
                return Mod.make(first + second, Sym(param))
            return Mod.make(first + rng.randint(0, 3), Sym(param))
        # Constants 0/1 are safe: every parameter binding is >= 2 ... except
        # the smallest size classes, so clamp to 0 when the binding is tiny.
        return Const(rng.randint(0, 1) if self.bindings[param] >= 2 else 0)

    def access(self, array: str, scope: _Scope) -> Tuple[str, Tuple[Expr, ...]]:
        shape = self.data_arrays[array]
        return array, tuple(self.index_for(param, scope) for param in shape)

    # -- value expressions -------------------------------------------------------

    def leaf(self, scope: _Scope) -> Expr:
        rng = self.rng
        kinds = ["array"] * 4 + ["const"] * 2
        if self.input_scalars:
            kinds.append("scalar")
        if scope.temps:
            kinds += ["temp"] * 2
        if scope.iterators:
            kinds.append("symbol")
        kind = rng.choice(kinds)
        if kind == "array":
            name, indices = self.access(rng.choice(sorted(self.data_arrays)),
                                        scope)
            return self.builder.read(name, *indices)
        if kind == "scalar":
            return self.builder.read(rng.choice(self.input_scalars))
        if kind == "temp":
            return self.builder.read(rng.choice(scope.temps))
        if kind == "symbol":
            names = [it.name for it in scope.iterators] + self.params
            return Sym(rng.choice(names))
        return Const(rng.choice(_CONSTANTS))

    def expression(self, scope: _Scope, depth: Optional[int] = None) -> Expr:
        rng, config = self.rng, self.config
        depth = config.expr_depth if depth is None else depth
        if (config.redundancy and scope.pool
                and rng.random() < config.redundancy):
            return rng.choice(scope.pool)
        expr = self._fresh_expression(scope, depth)
        if (config.redundancy and expr.children()
                and rng.random() < 0.5):
            scope.pool.append(expr)
        return expr

    def _fresh_expression(self, scope: _Scope, depth: int) -> Expr:
        rng, config = self.rng, self.config
        leaf_probability = 0.15 if config.expression_profile else 0.3
        if depth <= 0 or rng.random() < leaf_probability:
            return self.leaf(scope)
        if (config.polynomial and depth >= 2
                and rng.random() < config.polynomial):
            return self.polynomial_sum(scope, depth)
        if config.expression_profile:
            # Mul-/add-rich and select-free: re-association noise must stay
            # continuous for the tolerance oracle.
            op = rng.choice(["add", "add", "add", "mul", "mul", "mul", "mul",
                             "sub", "min", "max", "fmin", "fmax", "sqrt",
                             "tanh"])
        else:
            op = rng.choice(["add", "add", "mul", "mul", "sub", "min", "max",
                             "fmin", "fmax", "select", "sqrt", "tanh"])
        a = self.expression(scope, depth - 1)
        if op == "sqrt":
            return Call("sqrt", (Call("abs", (a,)),))
        if op == "tanh":
            return Call("tanh", (a,))
        if (op == "mul" and config.invariance and scope.iterators
                and rng.random() < config.invariance):
            b = self.expression(scope.outer(), depth - 1)
        else:
            b = self.expression(scope, depth - 1)
        if op == "add":
            return a + b
        if op == "sub":
            return a - b
        if op == "mul":
            return a * b
        if op == "min":
            return Min.make([a, b])
        if op == "max":
            return Max.make([a, b])
        if op in ("fmin", "fmax"):
            return Call(op, (a, b))
        return Call("select", (a, b, self.expression(scope, depth - 1)))

    def polynomial_sum(self, scope: _Scope, depth: int) -> Expr:
        """``c0 + c1*x + c2*x^2 (+ c3*x^3)`` over a shared base ``x``."""
        rng = self.rng
        base = self.expression(scope, max(1, depth - 2))
        terms: Expr = Const(rng.choice(_CONSTANTS))
        power: Expr = base
        for _ in range(rng.randint(2, 3)):
            terms = terms + Const(rng.choice(_CONSTANTS)) * power
            power = power * base
        return terms

    # -- statements and loops ----------------------------------------------------

    def emit_statement(self, scope: _Scope) -> None:
        """One plain computation; mostly targets observable data arrays."""
        rng = self.rng
        self.stmt_budget -= 1
        value = self.expression(scope)
        if rng.random() < self.config.temporaries or not self.data_arrays:
            temp = self.fresh_temp()
            self.builder.assign((temp,), value)
            scope.temps.append(temp)
            return
        name, indices = self.access(rng.choice(sorted(self.data_arrays)), scope)
        if rng.random() < 0.4:
            # Accumulating writes keep earlier effects observable instead of
            # overwriting them (less divergence masking).
            value = self.builder.read(name, *indices) + value
        self.builder.assign((name,) + indices, value)
        self.wrote_data = True

    def emit_reduction(self, scope: _Scope) -> None:
        """``init; for r: acc = acc + expr`` — acc is a temp or an element."""
        rng = self.rng
        self.stmt_budget -= 2
        self.loop_budget -= 1
        if rng.random() < 0.5 or not self.data_arrays:
            temp = self.fresh_temp()
            target: Tuple[Any, ...] = (temp,)
        else:
            name, indices = self.access(rng.choice(sorted(self.data_arrays)),
                                        scope)
            target = (name,) + indices
        self.builder.assign(target, self.leaf(scope))
        iterator, param, start, end, step, covers = self.loop_shape(scope)
        with self.builder.loop(iterator, start, end, step):
            inner = scope.child()
            inner.iterators.append(_Iterator(iterator, covers))
            self.builder.accumulate(target, self.expression(inner))
        if target[0].startswith("t"):
            scope.temps.append(target[0])
        else:
            self.wrote_data = True

    def loop_shape(self, scope: _Scope):
        """Pick a loop form; returns (iterator, param, start, end, step, covers)."""
        rng = self.rng
        param = rng.choice(self.params)
        iterator = self.fresh_iterator()
        start: Any = 0
        end: Expr = Sym(param)
        step = 1
        covers = frozenset({param})
        if rng.random() < self.config.irregular:
            triangular = [it for it in scope.iterators if param in it.covers]
            forms = ["shifted", "shortened", "strided"]
            if triangular:
                forms += ["triangular"] * 2
            others = [p for p in self.params if p != param]
            if others:
                forms.append("minbound")
            form = rng.choice(forms)
            if form == "shifted" and self.bindings[param] >= 2:
                start = 1
            elif form == "shortened" and self.bindings[param] >= 2:
                end = Sym(param) - 1
            elif form == "strided":
                step = 2
            elif form == "triangular":
                start = Sym(rng.choice(triangular).name)
            elif form == "minbound":
                other = rng.choice(others)
                end = Min.make([Sym(param), Sym(other)])
                covers = frozenset({param, other})
        return iterator, param, start, end, step, covers

    def emit_loop(self, scope: _Scope, depth: int) -> None:
        self.loop_budget -= 1
        iterator, _param, start, end, step, covers = self.loop_shape(scope)
        with self.builder.loop(iterator, start, end, step):
            inner = scope.child()
            inner.iterators.append(_Iterator(iterator, covers))
            self.emit_body(inner, depth + 1)

    def emit_body(self, scope: _Scope, depth: int) -> None:
        """Fill one loop body: statements and loops in random interleaving."""
        rng, config = self.rng, self.config
        items = rng.randint(1, 3)
        for _ in range(items):
            can_nest = self.loop_budget > 0 and depth < config.max_depth
            roll = rng.random()
            if can_nest and roll < 0.45:
                self.emit_loop(scope, depth)
            elif (roll < 0.45 + config.reductions
                    and self.stmt_budget >= 2 and self.loop_budget > 0
                    and depth < config.max_depth):
                self.emit_reduction(scope)
            else:
                self.emit_statement(scope)
            if self.stmt_budget <= 0:
                break
        if not any(True for _ in self.builder.program.iter_computations()):
            self.emit_statement(scope)

    # -- top level ---------------------------------------------------------------

    def build(self) -> GeneratedProgram:
        self.declare()
        scope = _Scope()
        while self.loop_budget > 0 or self.stmt_budget > 0:
            if self.loop_budget > 0:
                self.emit_loop(scope, depth=1)
            else:
                # Top-level straight-line statements may only touch scalars
                # and constant indices; they exercise loop-free handling.
                self.emit_statement(scope)
        if not self.wrote_data and self.data_arrays:
            self.emit_sink(scope)
        program = self.builder.finish()
        # The builder collected parameters from bounds/shapes; align order
        # with the declared list so bindings always cover them.
        for param in program.parameters:
            self.bindings.setdefault(param, self.config.param_values[0])
        return GeneratedProgram(program=program,
                                parameters={name: self.bindings[name]
                                            for name in self.params},
                                seed=self.seed, size_class=self.config.name)

    def emit_sink(self, scope: _Scope) -> None:
        """Guarantee at least one observable (non-transient) write."""
        name = sorted(self.data_arrays)[0]
        shape = self.data_arrays[name]
        iterators = []
        stack = []
        for param in shape:
            iterator = self.fresh_iterator()
            stack.append(self.builder.loop(iterator, 0, param))
            stack[-1].__enter__()
            iterators.append(iterator)
        value = self.builder.read(name, *iterators)
        for temp in scope.temps[:2]:
            value = value + self.builder.read(temp)
        if not scope.temps:
            value = value + Const(0.5)
        self.builder.assign((name,) + tuple(iterators), value)
        for manager in reversed(stack):
            manager.__exit__(None, None, None)
        self.wrote_data = True


def generate_program(seed: int, size_class: str = "small", *,
                     validate: bool = True) -> GeneratedProgram:
    """Generate one well-formed random program for ``(seed, size_class)``.

    The result is deterministic in both arguments.  With ``validate=True``
    (the default) the program is checked against
    :func:`~repro.ir.validation.validate_program` before being returned —
    a failure there is a generator bug, never a caller problem.
    """
    if size_class not in SIZE_CLASSES:
        raise KeyError(f"unknown size class {size_class!r}; "
                       f"known: {sorted(SIZE_CLASSES)}")
    generated = _Sampler(seed, SIZE_CLASSES[size_class]).build()
    if validate:
        validate_program(generated.program, strict=True)
    return generated


def generate_batch(seeds: Sequence[int], size_class: str = "small"
                   ) -> List[GeneratedProgram]:
    """Generate one program per seed (deterministic, order-preserving)."""
    return [generate_program(seed, size_class) for seed in seeds]

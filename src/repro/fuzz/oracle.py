"""Cross-pipeline differential execution oracle.

For one generated program the oracle runs, on identical inputs:

1. the untransformed program on the reference interpreter (ground truth;
   uninitialized-read checking on — a failure here is a *generator* bug and
   is reported as ``generator-error``, never as a transform divergence);
2. for every pipeline under test: the normalized program
   (``Session.normalize(pipeline=...)``), executed and compared;
3. for every (pipeline, scheduler) pair: the scheduled program
   (``Session.schedule(..., normalize=False)`` on the normalized form),
   executed and compared;
4. cache consistency: the same schedule requested again — which the
   session's content-addressed cache now serves warm — must execute to the
   same outputs as the cold result.

Comparison is bit-exact by default (``tolerance=0.0``): the repo's loop
transformations restructure iteration spaces but never reassociate the
per-element operation order, so even floating-point reductions must match
to the last bit.  Pipelines registered with ``bit_exact=False`` (the
expression-rewrite family re-associates sums of products) are compared
under ``OracleConfig.rewrite_tolerance`` via ``np.allclose`` instead;
setting ``tolerance`` explicitly overrides both modes for every pipeline.

Outcomes are counted in the session's metrics registry as
``repro_fuzz_programs_total{outcome}`` and
``repro_fuzz_checks_total{stage}``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..api import ScheduleRequest, SearchConfig, Session
from ..interp.executor import ExecutionError, run_program
from ..ir.nodes import Program
from ..passes.registry import has_pipeline, pipeline_bit_exact, pipeline_names
from ..api.registry import SCHEDULERS, RegistryError
from ..scheduler.tiramisu import MctsConfig
from .generator import GeneratedProgram, generate_program

#: Default scheduler set: the normalizing transfer-tuned scheduler, the
#: polyhedral baseline, and the MCTS baseline — three structurally different
#: transformation engines.
DEFAULT_SCHEDULERS: Tuple[str, ...] = ("daisy", "polly", "tiramisu")


@dataclass(frozen=True)
class FailureSpec:
    """The identity of one failure, for the minimizer to preserve.

    A candidate reproduces the failure when the same ``stage`` (and, for
    stages below ``normalize``, the same pipeline/scheduler) fails with the
    same ``kind`` — and, for crashes, the same exception type.
    """

    stage: str                       # "normalize" | "schedule" | "cache"
    kind: str                        # "mismatch" | "crash"
    pipeline: Optional[str] = None
    scheduler: Optional[str] = None
    error_type: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {"stage": self.stage, "kind": self.kind,
                "pipeline": self.pipeline, "scheduler": self.scheduler,
                "error_type": self.error_type}

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "FailureSpec":
        return FailureSpec(stage=str(data["stage"]), kind=str(data["kind"]),
                           pipeline=data.get("pipeline"),
                           scheduler=data.get("scheduler"),
                           error_type=str(data.get("error_type", "")))


@dataclass
class Divergence:
    """One observed semantic break: where, how, and on which arrays."""

    spec: FailureSpec
    seed: int
    size_class: str
    detail: str = ""
    #: Per-array mismatch summaries: name, max |delta|, first differing index.
    mismatches: List[Dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {"spec": self.spec.to_dict(), "seed": self.seed,
                "size_class": self.size_class, "detail": self.detail,
                "mismatches": list(self.mismatches)}

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "Divergence":
        return Divergence(spec=FailureSpec.from_dict(dict(data["spec"])),
                          seed=int(data["seed"]),
                          size_class=str(data["size_class"]),
                          detail=str(data.get("detail", "")),
                          mismatches=list(data.get("mismatches", [])))


@dataclass
class ProgramVerdict:
    """The oracle's verdict on one generated program."""

    seed: int
    size_class: str
    outcome: str                      # "pass" | "divergence" | "generator-error"
    checks: int = 0
    divergences: List[Divergence] = field(default_factory=list)
    error: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {"seed": self.seed, "size_class": self.size_class,
                "outcome": self.outcome, "checks": self.checks,
                "divergences": [d.to_dict() for d in self.divergences],
                "error": self.error}


@dataclass
class OracleReport:
    """Aggregate over one oracle run."""

    verdicts: List[ProgramVerdict] = field(default_factory=list)

    @property
    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for verdict in self.verdicts:
            out[verdict.outcome] = out.get(verdict.outcome, 0) + 1
        return out

    @property
    def failures(self) -> List[ProgramVerdict]:
        return [v for v in self.verdicts if v.outcome != "pass"]

    @property
    def checks(self) -> int:
        return sum(v.checks for v in self.verdicts)

    def summary(self) -> str:
        counts = self.counts
        return (f"{len(self.verdicts)} programs, {self.checks} checks: "
                + ", ".join(f"{key}={counts[key]}" for key in sorted(counts)))


@dataclass
class OracleConfig:
    """What to test and how strictly to compare."""

    pipelines: Optional[Sequence[str]] = None     # None -> all registered
    schedulers: Sequence[str] = DEFAULT_SCHEDULERS
    threads: int = 4
    #: 0.0 compares bit-exactly; > 0 switches to np.allclose(rtol=atol=...)
    #: for *every* pipeline, overriding the per-pipeline ``bit_exact`` flag.
    tolerance: float = 0.0
    #: Relative/absolute tolerance applied to pipelines registered with
    #: ``bit_exact=False`` (re-associating rewrites) when ``tolerance`` is 0.
    rewrite_tolerance: float = 1e-6
    exec_seed: int = 0
    check_cache_consistency: bool = True

    def resolved_pipelines(self) -> List[str]:
        names = (list(self.pipelines) if self.pipelines is not None
                 else pipeline_names())
        for name in names:
            if not has_pipeline(name):
                raise KeyError(f"unknown pipeline {name!r}; "
                               f"registered: {pipeline_names()}")
        return names

    def effective_tolerance(self, pipeline: Optional[str]) -> float:
        """The comparison tolerance in force for one pipeline's checks."""
        return _effective_tolerance(self.tolerance, self.rewrite_tolerance,
                                    pipeline)


def _effective_tolerance(tolerance: float, rewrite_tolerance: float,
                         pipeline: Optional[str]) -> float:
    if tolerance > 0.0:
        return tolerance
    if (pipeline is not None and has_pipeline(pipeline)
            and not pipeline_bit_exact(pipeline)):
        return rewrite_tolerance
    return 0.0


def _shared_inputs(program: Program, parameters: Mapping[str, int],
                   exec_seed: int) -> Dict[str, np.ndarray]:
    """Identical initial contents for every run, keyed by container name.

    Mirrors :func:`repro.interp.executor.allocate_storage`'s fill order so
    the reference run with these inputs equals a plain ``run_program``.
    """
    rng = np.random.default_rng(exec_seed)
    inputs: Dict[str, np.ndarray] = {}
    for name, arr in program.arrays.items():
        if not arr.transient:
            inputs[name] = arr.allocate(parameters, rng=rng)
    return inputs


def _outputs(program: Program) -> List[str]:
    """The observable containers: every non-transient array."""
    return [name for name, arr in program.arrays.items() if not arr.transient]


def _compare(reference: Mapping[str, np.ndarray],
             candidate: Mapping[str, np.ndarray],
             names: Sequence[str], tolerance: float) -> List[Dict[str, Any]]:
    mismatches: List[Dict[str, Any]] = []
    for name in names:
        expected = reference[name]
        actual = candidate.get(name)
        if actual is None:
            mismatches.append({"array": name, "problem": "missing"})
            continue
        if tuple(actual.shape) != tuple(expected.shape):
            mismatches.append({"array": name, "problem": "shape",
                               "expected": list(expected.shape),
                               "actual": list(actual.shape)})
            continue
        if tolerance > 0.0:
            # A tolerance comparison only checks positions where the
            # reference is finite: once the reference overflows, a
            # re-associating pipeline may legitimately saturate
            # differently (nan vs +/-inf), so those entries carry no
            # comparable value.  Bit-exact mode still flags them.
            finite = np.isfinite(expected)
            equal = np.allclose(expected[finite],
                                np.asarray(actual)[finite],
                                rtol=tolerance, atol=tolerance)
        else:
            equal = np.array_equal(expected, actual, equal_nan=True)
        if not equal:
            with np.errstate(invalid="ignore"):
                delta = np.abs(np.asarray(expected) - np.asarray(actual))
            delta = np.where(np.isnan(delta), np.inf, delta)
            if tolerance > 0.0:
                delta = np.where(np.isfinite(expected), delta, 0.0)
            flat = int(np.argmax(delta))
            index = list(np.unravel_index(flat, expected.shape)) \
                if expected.shape else []
            mismatches.append({"array": name, "problem": "values",
                               "max_abs_delta": float(np.max(delta)),
                               "first_index": index})
    return mismatches


class Oracle:
    """Differential harness over one :class:`~repro.api.Session`."""

    def __init__(self, config: Optional[OracleConfig] = None,
                 session: Optional[Session] = None):
        self.config = config or OracleConfig()
        self.pipelines = self.config.resolved_pipelines()
        self.schedulers = list(self.config.schedulers)
        for name in self.schedulers:
            if name not in SCHEDULERS:
                raise RegistryError(
                    f"unknown scheduler {name!r}; registered: "
                    f"{SCHEDULERS.names()}")
        # A small search keeps per-program scheduling cheap; results stay
        # deterministic (the session salts search RNGs by program content).
        self.session = session or Session(
            threads=self.config.threads,
            search=SearchConfig(population_size=4, epochs=1,
                                generations_per_epoch=1),
            mcts=MctsConfig(rollouts=8))
        self._metric_programs = self.session.metrics.counter(
            "repro_fuzz_programs_total",
            "Fuzzed programs by oracle outcome.", ("outcome",))
        self._metric_checks = self.session.metrics.counter(
            "repro_fuzz_checks_total",
            "Differential checks by stage.", ("stage",))

    # -- one program -------------------------------------------------------------

    def check(self, generated: GeneratedProgram) -> ProgramVerdict:
        """Round-trip one program through every pipeline x scheduler."""
        verdict = ProgramVerdict(seed=generated.seed,
                                 size_class=generated.size_class,
                                 outcome="pass")
        program, parameters = generated.program, generated.parameters
        outputs = _outputs(program)
        inputs = _shared_inputs(program, parameters, self.config.exec_seed)
        try:
            reference = run_program(program, parameters, inputs,
                                    seed=self.config.exec_seed,
                                    check_uninitialized=True)
        except Exception as error:  # noqa: BLE001 - classified, not hidden
            verdict.outcome = "generator-error"
            verdict.error = f"{type(error).__name__}: {error}"
            self._metric_programs.labels(verdict.outcome).inc()
            return verdict

        for pipeline in self.pipelines:
            divergence = self._check_pipeline(
                generated, pipeline, inputs, outputs, reference, verdict)
            if divergence is not None:
                verdict.divergences.append(divergence)
        if verdict.divergences:
            verdict.outcome = "divergence"
        self._metric_programs.labels(verdict.outcome).inc()
        return verdict

    def _check_pipeline(self, generated: GeneratedProgram, pipeline: str,
                        inputs, outputs, reference,
                        verdict: ProgramVerdict) -> Optional[Divergence]:
        """Run one pipeline (and its schedulers); first divergence wins."""
        program, parameters = generated.program, generated.parameters
        seed_info = dict(seed=generated.seed, size_class=generated.size_class)
        tolerance = self.config.effective_tolerance(pipeline)
        verdict.checks += 1
        self._metric_checks.labels("normalize").inc()
        try:
            normalized = self.session.normalize(program, pipeline=pipeline)
        except Exception as error:  # noqa: BLE001
            return Divergence(FailureSpec("normalize", "crash", pipeline,
                                          error_type=type(error).__name__),
                              detail=str(error), **seed_info)
        failure = self._execute_and_compare(
            normalized.program, parameters, inputs, outputs, reference,
            FailureSpec("normalize", "mismatch", pipeline), seed_info,
            tolerance=tolerance)
        if failure is not None:
            return failure

        for scheduler in self.schedulers:
            verdict.checks += 1
            self._metric_checks.labels("schedule").inc()
            request = ScheduleRequest(program=normalized.program,
                                      parameters=parameters,
                                      scheduler=scheduler, normalize=False,
                                      label=generated.name)
            try:
                response = self.session.schedule(request)
            except Exception as error:  # noqa: BLE001
                return Divergence(
                    FailureSpec("schedule", "crash", pipeline, scheduler,
                                error_type=type(error).__name__),
                    detail=str(error), **seed_info)
            failure = self._execute_and_compare(
                response.program, parameters, inputs, outputs, reference,
                FailureSpec("schedule", "mismatch", pipeline, scheduler),
                seed_info, tolerance=tolerance)
            if failure is not None:
                return failure

            if not self.config.check_cache_consistency:
                continue
            verdict.checks += 1
            self._metric_checks.labels("cache").inc()
            try:
                warm = self.session.schedule(request)
            except Exception as error:  # noqa: BLE001
                return Divergence(
                    FailureSpec("cache", "crash", pipeline, scheduler,
                                error_type=type(error).__name__),
                    detail=str(error), **seed_info)
            failure = self._execute_and_compare(
                warm.program, parameters, inputs, outputs, reference,
                FailureSpec("cache", "mismatch", pipeline, scheduler),
                seed_info, tolerance=tolerance,
                detail="warm cache-served schedule diverged from cold result")
            if failure is not None:
                return failure
        return None

    def _execute_and_compare(self, program: Program, parameters, inputs,
                             outputs, reference, spec: FailureSpec,
                             seed_info: Dict[str, Any],
                             tolerance: Optional[float] = None,
                             detail: str = "") -> Optional[Divergence]:
        if tolerance is None:
            tolerance = self.config.effective_tolerance(spec.pipeline)
        try:
            result = run_program(program, parameters, inputs,
                                 seed=self.config.exec_seed)
        except Exception as error:  # noqa: BLE001
            crash = FailureSpec(spec.stage, "crash", spec.pipeline,
                                spec.scheduler,
                                error_type=type(error).__name__)
            return Divergence(crash, detail=str(error), **seed_info)
        mismatches = _compare(reference, result, outputs, tolerance)
        if mismatches:
            return Divergence(spec, detail=detail, mismatches=mismatches,
                              **seed_info)
        return None

    # -- many programs -----------------------------------------------------------

    def run(self, seeds: Sequence[int], size_class: str = "small",
            progress=None) -> OracleReport:
        """Generate and check one program per seed."""
        report = OracleReport()
        for seed in seeds:
            try:
                generated = generate_program(seed, size_class)
            except Exception as error:  # noqa: BLE001 - generator bug
                verdict = ProgramVerdict(
                    seed=seed, size_class=size_class,
                    outcome="generator-error",
                    error=f"{type(error).__name__}: {error}")
                self._metric_programs.labels(verdict.outcome).inc()
                report.verdicts.append(verdict)
                continue
            verdict = self.check(generated)
            report.verdicts.append(verdict)
            if progress is not None:
                progress(verdict)
        return report


def reproduces_failure(session: Session, program: Program,
                       parameters: Mapping[str, int], spec: FailureSpec,
                       tolerance: float = 0.0, exec_seed: int = 0) -> bool:
    """Does ``program`` still fail exactly per ``spec``?

    The minimizer's predicate: the reference interpreter must still execute
    the candidate cleanly (otherwise the shrink introduced a *new* problem),
    and the failing stage must fail again with the same kind — and, for
    crashes, the same exception type.

    ``tolerance`` follows the oracle's rules: when 0 and the spec's pipeline
    is registered as not bit-exact, the default rewrite tolerance applies so
    the minimizer never "reproduces" rounding noise the oracle tolerated.
    """
    tolerance = _effective_tolerance(
        tolerance, OracleConfig.rewrite_tolerance, spec.pipeline)
    outputs = _outputs(program)
    inputs = _shared_inputs(program, parameters, exec_seed)
    try:
        reference = run_program(program, parameters, inputs, seed=exec_seed,
                                check_uninitialized=True)
    except Exception:  # noqa: BLE001 - candidate broke the reference run
        return False

    def matches(observed_kind: str, error: Optional[BaseException]) -> bool:
        if observed_kind != spec.kind:
            return False
        if spec.kind == "crash" and spec.error_type:
            return type(error).__name__ == spec.error_type
        return True

    try:
        normalized = session.normalize(program, pipeline=spec.pipeline)
    except Exception as error:  # noqa: BLE001
        return spec.stage == "normalize" and matches("crash", error)
    if spec.stage == "normalize":
        try:
            result = run_program(normalized.program, parameters, inputs,
                                 seed=exec_seed)
        except Exception as error:  # noqa: BLE001
            return matches("crash", error)
        return matches("mismatch", None) and bool(
            _compare(reference, result, outputs, tolerance))

    request = ScheduleRequest(program=normalized.program,
                              parameters=parameters,
                              scheduler=spec.scheduler, normalize=False)
    try:
        response = session.schedule(request)
        if spec.stage == "cache":
            response = session.schedule(request)
    except Exception as error:  # noqa: BLE001
        return matches("crash", error)
    try:
        result = run_program(response.program, parameters, inputs,
                             seed=exec_seed)
    except Exception as error:  # noqa: BLE001
        return matches("crash", error)
    return matches("mismatch", None) and bool(
        _compare(reference, result, outputs, tolerance))

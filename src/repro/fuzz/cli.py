"""Command-line interface: ``python -m repro.fuzz <command>``.

Commands:

* ``run`` — generate ``--seeds`` programs, check each against every
  pipeline x scheduler, auto-minimize any failure, and (optionally) write
  a JSONL report plus a corpus of minimized reproducers.  Exits non-zero
  when anything other than ``pass`` was observed.
* ``replay`` — re-run a saved corpus: plain entries must pass, minimized
  reproducers (entries carrying a failure spec) must still fail.
* ``minimize`` — re-check one ``(seed, size class)`` pair and shrink its
  first failure to a minimal reproducer.
* ``export`` — write the generated programs for a seed range into a
  corpus file (for offline inspection or benchmark replay).

The JSONL report is deterministic for a fixed invocation: it contains no
timestamps or host data, so identical seeds yield byte-identical output.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from ..ir.printer import to_pseudocode
from ..passes.registry import pipeline_names
from .corpus import Corpus
from .generator import SIZE_CLASSES, generate_program
from .minimize import MinimizationResult, minimize_program
from .oracle import (DEFAULT_SCHEDULERS, Oracle, OracleConfig, OracleReport,
                     ProgramVerdict)


def _csv(text: str) -> List[str]:
    return [item.strip() for item in text.split(",") if item.strip()]


def _add_oracle_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--size-class", default="small",
                        choices=sorted(SIZE_CLASSES),
                        help="generator size class (default: small)")
    parser.add_argument("--pipelines", type=_csv, default=None,
                        metavar="P1,P2,...",
                        help="pipelines to test (default: all of "
                             f"{','.join(pipeline_names())})")
    parser.add_argument("--schedulers", type=_csv,
                        default=list(DEFAULT_SCHEDULERS), metavar="S1,S2,...",
                        help="schedulers to test (default: "
                             f"{','.join(DEFAULT_SCHEDULERS)})")
    parser.add_argument("--tolerance", type=float, default=0.0,
                        help="0 compares bit-exactly except for pipelines "
                             "registered bit_exact=False, which use the "
                             "oracle's rewrite tolerance (default); >0 "
                             "forces np.allclose with this rtol/atol "
                             "for every pipeline")
    parser.add_argument("--threads", type=int, default=4,
                        help="machine-model thread count (default: 4)")
    parser.add_argument("--exec-seed", type=int, default=0,
                        help="RNG seed for input-array contents (default: 0)")


def _build_oracle(args: argparse.Namespace) -> Oracle:
    config = OracleConfig(pipelines=args.pipelines,
                          schedulers=args.schedulers,
                          tolerance=args.tolerance, threads=args.threads,
                          exec_seed=args.exec_seed)
    return Oracle(config)


def _emit_jsonl(path: Optional[str], report: OracleReport) -> None:
    if not path:
        return
    with open(path, "w", encoding="utf-8") as handle:
        for verdict in report.verdicts:
            handle.write(json.dumps(verdict.to_dict(), sort_keys=True) + "\n")
        handle.write(json.dumps({"summary": report.counts,
                                 "checks": report.checks},
                                sort_keys=True) + "\n")


def _minimize_verdict(oracle: Oracle, verdict: ProgramVerdict,
                      out) -> Optional[MinimizationResult]:
    """Shrink the first divergence of a failing verdict; None on pass."""
    if not verdict.divergences:
        return None
    divergence = verdict.divergences[0]
    generated = generate_program(verdict.seed, verdict.size_class)
    result = minimize_program(generated, divergence.spec,
                              session=oracle.session,
                              tolerance=oracle.config.tolerance,
                              exec_seed=oracle.config.exec_seed)
    print(f"  minimized {generated.name}: "
          f"{result.original_statements} -> {result.statements} statements "
          f"({result.tests} candidate evaluations)", file=out)
    return result


def cmd_run(args: argparse.Namespace, out=sys.stdout) -> int:
    oracle = _build_oracle(args)
    seeds = range(args.start, args.start + args.seeds)

    def progress(verdict: ProgramVerdict) -> None:
        if verdict.outcome != "pass" or args.verbose:
            print(f"  seed {verdict.seed}: {verdict.outcome}"
                  + (f" ({verdict.error})" if verdict.error else ""),
                  file=out)

    print(f"fuzzing {args.seeds} {args.size_class} programs "
          f"(seeds {seeds.start}..{seeds.stop - 1}) across "
          f"{len(oracle.pipelines)} pipelines x "
          f"{len(oracle.schedulers)} schedulers", file=out)
    report = oracle.run(seeds, args.size_class, progress=progress)
    _emit_jsonl(args.jsonl, report)

    corpus = Corpus()
    for verdict in report.failures:
        if verdict.outcome != "divergence":
            continue
        result = _minimize_verdict(oracle, verdict, out)
        if result is not None:
            shrunk = generate_program(verdict.seed, verdict.size_class)
            shrunk.program = result.program
            shrunk.parameters = dict(result.parameters)
            corpus.add(shrunk, label="minimized divergence",
                       spec=result.spec)
    if len(corpus) and args.divergence_corpus:
        corpus.save(args.divergence_corpus)
        print(f"wrote {len(corpus)} minimized reproducer(s) to "
              f"{args.divergence_corpus}", file=out)

    print(report.summary(), file=out)
    return 0 if not report.failures else 1


def cmd_replay(args: argparse.Namespace, out=sys.stdout) -> int:
    corpus = Corpus.load(args.corpus)
    oracle = _build_oracle(args)
    status = 0
    for entry in corpus:
        verdict = oracle.check(entry.generated)
        expected = "divergence" if entry.spec is not None else "pass"
        marker = "ok" if verdict.outcome == expected else "UNEXPECTED"
        if marker != "ok":
            status = 1
        print(f"  {entry.name}: {verdict.outcome} "
              f"(expected {expected}) {marker}", file=out)
    print(f"replayed {len(corpus)} corpus entries", file=out)
    return status


def cmd_minimize(args: argparse.Namespace, out=sys.stdout) -> int:
    oracle = _build_oracle(args)
    generated = generate_program(args.seed, args.size_class)
    verdict = oracle.check(generated)
    if verdict.outcome == "pass":
        print(f"{generated.name}: no failure to minimize", file=out)
        return 0
    if verdict.outcome == "generator-error":
        print(f"{generated.name}: generator error: {verdict.error}",
              file=out)
        return 2
    result = _minimize_verdict(oracle, verdict, out)
    print(to_pseudocode(result.program), file=out)
    print(f"parameters: {result.parameters}", file=out)
    print(f"failure: {result.spec.to_dict()}", file=out)
    if args.output:
        corpus = Corpus()
        generated.program = result.program
        generated.parameters = dict(result.parameters)
        corpus.add(generated, label="minimized divergence", spec=result.spec)
        corpus.save(args.output)
        print(f"wrote reproducer to {args.output}", file=out)
    return 1


def cmd_export(args: argparse.Namespace, out=sys.stdout) -> int:
    corpus = Corpus()
    for seed in range(args.start, args.start + args.seeds):
        corpus.add(generate_program(seed, args.size_class),
                   label="generated")
    corpus.save(args.corpus)
    print(f"exported {len(corpus)} {args.size_class} programs to "
          f"{args.corpus}", file=out)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Differential testing of normalization pipelines and "
                    "schedulers on random loop nests.")
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="fuzz a seed range")
    run.add_argument("--seeds", type=int, default=50,
                     help="number of programs to generate (default: 50)")
    run.add_argument("--start", type=int, default=0,
                     help="first seed (default: 0)")
    run.add_argument("--jsonl", default=None, metavar="FILE",
                     help="write one JSON verdict per line to FILE")
    run.add_argument("--divergence-corpus", default="fuzz_divergences.json",
                     metavar="FILE",
                     help="where to save minimized reproducers "
                          "(default: fuzz_divergences.json)")
    run.add_argument("--verbose", action="store_true",
                     help="print every verdict, not just failures")
    _add_oracle_arguments(run)
    run.set_defaults(func=cmd_run)

    replay = commands.add_parser("replay", help="re-run a saved corpus")
    replay.add_argument("--corpus", required=True, metavar="FILE")
    _add_oracle_arguments(replay)
    replay.set_defaults(func=cmd_replay)

    minimize = commands.add_parser(
        "minimize", help="shrink one failing seed to a minimal reproducer")
    minimize.add_argument("--seed", type=int, required=True)
    minimize.add_argument("--output", default=None, metavar="FILE",
                          help="save the reproducer corpus to FILE")
    _add_oracle_arguments(minimize)
    minimize.set_defaults(func=cmd_minimize)

    export = commands.add_parser(
        "export", help="write generated programs to a corpus file")
    export.add_argument("--seeds", type=int, default=20)
    export.add_argument("--start", type=int, default=0)
    export.add_argument("--corpus", required=True, metavar="FILE")
    _add_oracle_arguments(export)
    export.set_defaults(func=cmd_export)
    return parser


def main(argv: Optional[Sequence[str]] = None, out=sys.stdout) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args, out=out)


if __name__ == "__main__":
    sys.exit(main())

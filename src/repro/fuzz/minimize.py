"""Delta-debugging shrinker for divergent or crashing fuzz programs.

Given a failing :class:`~repro.fuzz.generator.GeneratedProgram` and the
:class:`~repro.fuzz.oracle.FailureSpec` describing *how* it fails, the
minimizer repeatedly applies structure-removing rewrites and keeps each
candidate only if it still validates, still executes cleanly on the
reference interpreter, and still fails the oracle in exactly the same way
(same stage, same pipeline/scheduler, same kind, same exception type for
crashes — see :func:`~repro.fuzz.oracle.reproduces_failure`).

Shrinking passes, iterated to a fixed point:

* **delete** — remove one statement or an entire loop (deepest first, so
  inner structure disappears before the scaffolding around it);
* **unwrap** — replace a loop by its body with the iterator substituted by
  the loop's start expression (turns ``for i: S(i)`` into ``S(start)``);
* **simplify** — replace a statement's value expression with one of the
  reads it contains, or with the constant ``1.0``;
* **shrink** — lower concrete parameter bindings toward 2 (halving, then
  decrementing), which shrinks every array and trip count at once;
* **prune** — drop containers no remaining statement touches.

The result is typically a handful of statements that can be pasted into a
regression test and replayed with ``python -m repro.fuzz replay``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..api import Session
from ..ir.nodes import Computation, LibraryCall, Loop, Program
from ..ir.serialization import program_to_dict
from ..ir.symbols import Const
from ..ir.validation import validate_program
from .generator import GeneratedProgram
from .oracle import FailureSpec, reproduces_failure

Path = Tuple[int, ...]


@dataclass
class MinimizationResult:
    """Outcome of one minimization run."""

    original: GeneratedProgram
    program: Program
    parameters: Dict[str, int]
    spec: FailureSpec
    rounds: int = 0
    #: Number of candidate programs evaluated against the oracle predicate.
    tests: int = 0
    #: Names of the rewrites that were accepted, in order.
    steps: List[str] = field(default_factory=list)

    @property
    def statements(self) -> int:
        return sum(1 for _ in self.program.iter_computations()) + len(
            self.program.library_calls())

    @property
    def original_statements(self) -> int:
        return sum(1 for _ in self.original.program.iter_computations()) + len(
            self.original.program.library_calls())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.original.seed,
            "size_class": self.original.size_class,
            "spec": self.spec.to_dict(),
            "parameters": dict(self.parameters),
            "program": program_to_dict(self.program),
            "rounds": self.rounds,
            "tests": self.tests,
            "steps": list(self.steps),
            "statements": self.statements,
            "original_statements": self.original_statements,
        }


# -- structural helpers ------------------------------------------------------------


def _paths(program: Program) -> List[Tuple[Path, Any]]:
    """All body nodes in pre-order as (path, node); path indexes body lists."""
    out: List[Tuple[Path, Any]] = []

    def walk(body: List[Any], prefix: Path) -> None:
        for index, node in enumerate(body):
            path = prefix + (index,)
            out.append((path, node))
            if isinstance(node, Loop):
                walk(node.body, path)

    walk(program.body, ())
    return out


def _owner(program: Program, path: Path) -> List[Any]:
    """The body list that directly contains the node at ``path``."""
    body = program.body
    for index in path[:-1]:
        body = body[index].body
    return body


def _substitute_node(node: Any, mapping: Mapping[str, Any]) -> Any:
    if isinstance(node, Computation):
        return node.substitute(mapping)
    if isinstance(node, Loop):
        return Loop(node.iterator, node.start.substitute(mapping),
                    node.end.substitute(mapping),
                    node.step.substitute(mapping),
                    body=[_substitute_node(child, mapping)
                          for child in node.body],
                    parallel=node.parallel, vectorized=node.vectorized,
                    unroll=node.unroll, tile_of=node.tile_of)
    return node.copy()


def _prune_containers(program: Program) -> Optional[Program]:
    """Drop arrays nothing references; None when nothing can be pruned."""
    used = set()
    for comp in program.iter_computations():
        used |= comp.accessed_arrays()
    for call in program.library_calls():
        used |= set(call.outputs) | set(call.inputs)
    keep = [arr for name, arr in program.arrays.items() if name in used]
    if len(keep) == len(program.arrays):
        return None
    return Program(program.name, keep, program.body, program.parameters)


# -- candidate edits ---------------------------------------------------------------


def _delete_candidates(program: Program):
    """Deepest-first single-node deletions."""
    paths = sorted((path for path, _ in _paths(program)),
                   key=len, reverse=True)
    for path in paths:
        clone = program.copy()
        body = _owner(clone, path)
        del body[path[-1]]
        yield f"delete@{'.'.join(map(str, path))}", clone


def _unwrap_candidates(program: Program):
    """Replace each loop by its body at ``iterator = start``."""
    for path, node in _paths(program):
        if not isinstance(node, Loop):
            continue
        clone = program.copy()
        body = _owner(clone, path)
        loop = body[path[-1]]
        mapping = {loop.iterator: loop.start}
        body[path[-1]:path[-1] + 1] = [
            _substitute_node(child, mapping) for child in loop.body]
        yield f"unwrap@{loop.iterator}", clone


def _simplify_candidates(program: Program):
    """Replace statement values with contained reads, then with 1.0."""
    for path, node in _paths(program):
        if not isinstance(node, Computation):
            continue
        replacements = [access.as_read() for access in node.reads()][:3]
        replacements.append(Const(1.0))
        for replacement in replacements:
            if replacement == node.value:
                continue
            clone = program.copy()
            body = _owner(clone, path)
            target = body[path[-1]]
            body[path[-1]] = Computation(target.target, replacement,
                                         name=target.name)
            yield f"simplify@{node.name}", clone


def _shrunk_bindings(parameters: Mapping[str, int]):
    """Per-parameter value reductions: halve first, then decrement."""
    for name in sorted(parameters):
        value = parameters[name]
        for smaller in (max(2, value // 2), value - 1):
            if 2 <= smaller < value:
                yield f"shrink@{name}={smaller}", dict(parameters,
                                                       **{name: smaller})


# -- driver ------------------------------------------------------------------------


def minimize_program(generated: GeneratedProgram, spec: FailureSpec, *,
                     session: Optional[Session] = None,
                     tolerance: float = 0.0, exec_seed: int = 0,
                     max_rounds: int = 10,
                     max_tests: int = 2000) -> MinimizationResult:
    """Shrink ``generated`` while it keeps failing exactly per ``spec``.

    ``session`` should be the session the failure was observed on (or one
    configured identically); a fresh default session is built otherwise.
    The returned program is guaranteed to still reproduce the failure.
    """
    session = session or Session()
    result = MinimizationResult(original=generated,
                                program=generated.program.copy(),
                                parameters=dict(generated.parameters),
                                spec=spec)

    def still_fails(candidate: Program,
                    bindings: Mapping[str, int]) -> bool:
        if result.tests >= max_tests:
            return False
        result.tests += 1
        try:
            validate_program(candidate, strict=True)
        except Exception:  # noqa: BLE001 - malformed shrink, reject
            return False
        return reproduces_failure(session, candidate, bindings, spec,
                                  tolerance=tolerance, exec_seed=exec_seed)

    if not still_fails(result.program, result.parameters):
        raise ValueError(
            f"program {generated.name!r} does not reproduce {spec}; "
            "nothing to minimize")
    result.tests = 1  # the baseline check above

    for _ in range(max_rounds):
        result.rounds += 1
        progress = False
        # Structural passes restart whenever an edit lands, because paths
        # into the old program are stale after any acceptance.
        for candidates in (_delete_candidates, _unwrap_candidates,
                           _simplify_candidates):
            changed = True
            while changed and result.tests < max_tests:
                changed = False
                for step, candidate in candidates(result.program):
                    if not candidate.body:
                        continue
                    if still_fails(candidate, result.parameters):
                        result.program = candidate
                        result.steps.append(step)
                        progress = changed = True
                        break
        for step, bindings in _shrunk_bindings(result.parameters):
            if still_fails(result.program, bindings):
                result.parameters = bindings
                result.steps.append(step)
                progress = True
        pruned = _prune_containers(result.program)
        if pruned is not None and still_fails(pruned, result.parameters):
            result.program = pruned
            result.steps.append("prune")
            progress = True
        if not progress or result.tests >= max_tests:
            break
    return result

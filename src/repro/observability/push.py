"""Push exporter: POST registry snapshots + alerts to an HTTP sink.

Unattended nodes can't rely on being scraped; the exporter inverts the
flow by POSTing a JSON payload (built by a caller-supplied ``payload_fn``,
typically merged registry snapshots plus firing alerts) to a configurable
sink URL on an interval, with bounded retry + exponential backoff per
push.  Failures never raise out of the exporter thread — they're counted
in ``repro_push_*`` metrics instead.
"""

import json
import threading
import urllib.error
import urllib.request
from typing import Any, Callable, Mapping, Optional

__all__ = ["PushExporter"]


class PushExporter:
    """Periodically POSTs ``payload_fn()`` as JSON to ``url``."""

    def __init__(self, url: str,
                 payload_fn: Callable[[], Mapping[str, Any]],
                 interval_s: float = 30.0,
                 timeout_s: float = 10.0,
                 max_attempts: int = 3,
                 backoff_s: float = 0.5,
                 metrics=None):
        self.url = url
        self.payload_fn = payload_fn
        self.interval_s = interval_s
        self.timeout_s = timeout_s
        self.max_attempts = max(1, max_attempts)
        self.backoff_s = backoff_s
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._attempts = self._pushes = self._last_success = None
        if metrics is not None:
            self._attempts = metrics.counter(
                "repro_push_attempts_total",
                "Individual push POST attempts by outcome.",
                labelnames=("outcome",))
            self._pushes = metrics.counter(
                "repro_push_total",
                "Completed push cycles by outcome (after retries).",
                labelnames=("outcome",))
            self._last_success = metrics.gauge(
                "repro_push_last_success_timestamp_seconds",
                "Unix time of the last successful push.")

    # -- one push cycle ---------------------------------------------------

    def push_once(self) -> bool:
        """Build the payload and POST it, retrying with backoff.

        Returns True on delivery.  Never raises.
        """
        try:
            body = json.dumps(self.payload_fn()).encode("utf-8")
        except Exception:  # noqa: BLE001 - a broken payload must not kill us
            if self._pushes is not None:
                self._pushes.labels(outcome="payload-error").inc()
            return False
        delay = self.backoff_s
        for attempt in range(1, self.max_attempts + 1):
            if self._post(body):
                if self._attempts is not None:
                    self._attempts.labels(outcome="ok").inc()
                    self._pushes.labels(outcome="ok").inc()
                    import time
                    self._last_success.set(time.time())
                return True
            if self._attempts is not None:
                self._attempts.labels(outcome="error").inc()
            if attempt < self.max_attempts:
                # Stoppable backoff: a stop() interrupts the wait.
                if self._stop.wait(delay):
                    break
                delay *= 2
        if self._pushes is not None:
            self._pushes.labels(outcome="error").inc()
        return False

    def _post(self, body: bytes) -> bool:
        request = urllib.request.Request(
            self.url, data=body, method="POST",
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout_s) as reply:
                return 200 <= reply.status < 300
        except (urllib.error.URLError, OSError, ValueError):
            return False

    # -- background loop --------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-push-exporter", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.push_once()

"""Dependency-free metrics primitives: counters, gauges, histograms.

The serving stack needs distributional telemetry — *OpenMP Loop Scheduling
Revisited* (Ciorba et al.) makes the case that validating a scheduling
policy takes latency distributions, not averages — but the repo must not
grow a client-library dependency for it.  This module is a small,
self-contained metrics core:

* :class:`MetricsRegistry` — a named collection of instruments.  Creation
  is idempotent (asking for an existing name returns the existing
  instrument, after checking that type/labels/buckets agree), so any layer
  holding the registry can declare the instruments it touches.
* :class:`Counter` / :class:`Gauge` / :class:`Histogram` — thread-safe
  instruments with optional label dimensions (``labels("5")`` /
  ``labels(priority="5")`` binds one labelled series).  Histograms use
  fixed upper-bound buckets (Prometheus ``le`` semantics) and support
  quantile estimation with one-bucket-width resolution.
* **Prometheus text rendering** — :meth:`MetricsRegistry.render` (and
  :func:`render_registry_dict` for merged snapshots) produce the
  Prometheus text exposition format served by the ``/metrics`` endpoint.
* **Mergeable snapshots** — :meth:`MetricsRegistry.to_dict` is a plain
  JSON-serializable snapshot; :func:`merge_registry_dicts` sums snapshots
  from many worker processes into one coordinator view (counters and
  histogram buckets add; gauges add too, so per-worker queue depths and
  sizes aggregate to pool totals).
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: Default latency buckets (seconds): sub-millisecond cache hits through
#: multi-second cold scheduling runs.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class MetricsError(ValueError):
    """Invalid metric declaration or use (bad name, label mismatch, ...)."""


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise MetricsError(f"invalid metric name {name!r}")
    return name


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _format_number(value: float) -> str:
    """Prometheus-style sample formatting: integral values without a dot."""
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class _Instrument:
    """Shared base: a named metric holding one series per label-value tuple."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = ()):
        self.name = _check_name(name)
        self.help = help
        self.labelnames = tuple(labelnames)
        for label in self.labelnames:
            if not _LABEL_RE.match(label):
                raise MetricsError(f"invalid label name {label!r} on {name!r}")
        self._lock = threading.RLock()
        self._series: "Dict[Tuple[str, ...], Any]" = {}

    # -- label binding ----------------------------------------------------------

    def labels(self, *values: Any, **kwargs: Any):
        """Bind one labelled series (``labels("5")`` or ``labels(priority="5")``);
        values are stringified.  Label-less instruments bind the empty tuple."""
        if values and kwargs:
            raise MetricsError("pass label values positionally or by name, "
                               "not both")
        if kwargs:
            try:
                values = tuple(kwargs[label] for label in self.labelnames)
            except KeyError as error:
                raise MetricsError(
                    f"{self.name} expects labels {self.labelnames}, "
                    f"got {sorted(kwargs)}") from error
            if len(kwargs) != len(self.labelnames):
                raise MetricsError(
                    f"{self.name} expects labels {self.labelnames}, "
                    f"got {sorted(kwargs)}")
        key = tuple(str(value) for value in values)
        if len(key) != len(self.labelnames):
            raise MetricsError(
                f"{self.name} takes {len(self.labelnames)} label value(s) "
                f"{self.labelnames}, got {len(key)}")
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._new_series()
                self._series[key] = series
            return series

    def _new_series(self):
        raise NotImplementedError

    def _default(self):
        """The series bound to no labels (shortcut for label-less metrics)."""
        return self.labels()

    def series_items(self) -> List[Tuple[Tuple[str, ...], Any]]:
        with self._lock:
            return sorted(self._series.items())

    def signature(self) -> Tuple[str, Tuple[str, ...]]:
        return (self.kind, self.labelnames)


class _CounterSeries:
    """One monotonically increasing series."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.RLock):
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricsError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Counter(_Instrument):
    """A monotonically increasing count (requests served, entries shed)."""

    kind = "counter"

    def _new_series(self) -> _CounterSeries:
        return _CounterSeries(self._lock)

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    @property
    def value(self) -> float:
        return self._default().value


class _GaugeSeries:
    """One settable series."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.RLock):
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def set_max(self, value: float) -> None:
        """Keep the running maximum (high-water marks like largest batch)."""
        with self._lock:
            self._value = max(self._value, float(value))

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge(_Instrument):
    """A value that goes up and down (queue depth, worker count)."""

    kind = "gauge"

    def _new_series(self) -> _GaugeSeries:
        return _GaugeSeries(self._lock)

    def set(self, value: float) -> None:
        self._default().set(value)

    def set_max(self, value: float) -> None:
        self._default().set_max(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default().dec(amount)

    @property
    def value(self) -> float:
        return self._default().value


class _HistogramSeries:
    """One observation distribution over fixed buckets.

    ``counts[i]`` is the number of observations in bucket *i* alone (the
    rendering layer accumulates them into Prometheus's cumulative ``le``
    form); the final slot counts overflow beyond the largest bound.
    """

    __slots__ = ("_lock", "bounds", "counts", "_sum", "exemplars")

    def __init__(self, lock: threading.RLock, bounds: Tuple[float, ...]):
        self._lock = lock
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        #: Last trace exemplar seen per bucket index: {index: {trace_id, value}}.
        self.exemplars: Dict[int, Dict[str, Any]] = {}

    def observe(self, value: float, exemplar: Optional[str] = None) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            self.counts[index] += 1
            self._sum += value
            if exemplar:
                self.exemplars[index] = {"trace_id": exemplar,
                                         "value": value}

    @property
    def count(self) -> int:
        with self._lock:
            return sum(self.counts)

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> float:
        """Estimated q-quantile: the upper bound of the bucket holding the
        rank-``ceil(q*count)`` observation — within one bucket width of the
        exact sorted-sample answer whenever the buckets cover the data.

        Boundary contract: an empty histogram returns ``nan``; ``q=0.0``
        returns the lowest bucket edge; ``q=1.0`` returns the finite upper
        edge of the highest nonempty bucket, clamping overflow beyond the
        last bound to the highest finite edge — so the extremes are always
        defined, finite values rather than whatever the bucket walk happens
        to produce (``q=1.0`` on a distribution with overflow used to come
        back ``inf``, which no dashboard can plot)."""
        if not 0.0 <= q <= 1.0:
            raise MetricsError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            total = sum(self.counts)
            if total == 0:
                return math.nan
            if q == 0.0:
                return self.bounds[0]
            if q == 1.0:
                for index in range(len(self.counts) - 1, -1, -1):
                    if self.counts[index]:
                        return self.bounds[min(index, len(self.bounds) - 1)]
            rank = max(1, math.ceil(q * total))
            seen = 0
            for index, count in enumerate(self.counts):
                seen += count
                if seen >= rank:
                    if index < len(self.bounds):
                        return self.bounds[index]
                    return math.inf
        return math.inf  # pragma: no cover - loop always reaches rank


class Histogram(_Instrument):
    """Fixed-bucket distribution (latency per priority class, batch sizes)."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = (),
                 buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
        super().__init__(name, help, labelnames)
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds:
            raise MetricsError(f"{name!r} needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise MetricsError(
                f"{name!r} bucket bounds must strictly increase: {bounds}")
        if any(math.isinf(b) or math.isnan(b) for b in bounds):
            raise MetricsError(f"{name!r} bounds must be finite "
                               "(+Inf is implicit)")
        self.buckets = bounds

    def _new_series(self) -> _HistogramSeries:
        return _HistogramSeries(self._lock, self.buckets)

    def observe(self, value: float, exemplar: Optional[str] = None) -> None:
        self._default().observe(value, exemplar=exemplar)

    @property
    def count(self) -> int:
        return self._default().count

    @property
    def sum(self) -> float:
        return self._default().sum

    def quantile(self, q: float) -> float:
        return self._default().quantile(q)

    def signature(self) -> Tuple[str, Tuple[str, ...], Tuple[float, ...]]:  # type: ignore[override]
        return (self.kind, self.labelnames, self.buckets)


class MetricsRegistry:
    """A named, thread-safe collection of instruments.

    Declaration is idempotent: any layer may ``registry.counter(name, ...)``
    and receive the one shared instrument, provided type, label names (and
    histogram buckets) agree with the first declaration.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._metrics: Dict[str, _Instrument] = {}
        self._snapshot_hooks: List[Any] = []

    def on_snapshot(self, hook) -> None:
        """Register a callable invoked at the start of every :meth:`to_dict`
        (used to refresh derived gauges like process uptime).  Exceptions
        from hooks are swallowed — a snapshot must always succeed."""
        with self._lock:
            self._snapshot_hooks.append(hook)

    # -- declaration ------------------------------------------------------------

    def _declare(self, cls, name: str, help: str,
                 labelnames: Sequence[str], **kwargs: Any):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                candidate = cls(name, help, labelnames, **kwargs)
                if existing.signature() != candidate.signature():
                    raise MetricsError(
                        f"metric {name!r} already registered as "
                        f"{existing.signature()}, re-declared as "
                        f"{candidate.signature()}")
                return existing
            instrument = cls(name, help, labelnames, **kwargs)
            if not instrument.labelnames:
                # Label-less instruments expose an explicit 0 sample from
                # declaration on (labelled series appear on first use).
                instrument._default()
            self._metrics[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        return self._declare(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        return self._declare(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS
                  ) -> Histogram:
        return self._declare(Histogram, name, help, labelnames,
                             buckets=buckets)

    # -- introspection ----------------------------------------------------------

    def get(self, name: str) -> Optional[_Instrument]:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._metrics

    # -- snapshots ---------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serializable snapshot (see :func:`merge_registry_dicts`)."""
        with self._lock:
            instruments = list(self._metrics.values())
            hooks = list(self._snapshot_hooks)
        for hook in hooks:
            try:
                hook()
            except Exception:  # noqa: BLE001 - snapshots must not fail
                pass
        snapshot: Dict[str, Any] = {}
        for instrument in instruments:
            entry: Dict[str, Any] = {
                "type": instrument.kind,
                "help": instrument.help,
                "labelnames": list(instrument.labelnames),
                "series": [],
            }
            if isinstance(instrument, Histogram):
                entry["buckets"] = list(instrument.buckets)
            for key, series in instrument.series_items():
                if isinstance(series, _HistogramSeries):
                    with series._lock:
                        sample: Dict[str, Any] = {
                            "labels": list(key),
                            "counts": list(series.counts),
                            "sum": series._sum,
                        }
                        if series.exemplars:
                            sample["exemplars"] = {
                                str(index): dict(exemplar)
                                for index, exemplar
                                in series.exemplars.items()}
                        entry["series"].append(sample)
                else:
                    entry["series"].append({"labels": list(key),
                                            "value": series.value})
            snapshot[instrument.name] = entry
        return snapshot

    def render(self) -> str:
        """This registry in the Prometheus text exposition format."""
        return render_registry_dict(self.to_dict())


def merge_registry_dicts(snapshots: Iterable[Mapping[str, Any]]
                         ) -> Dict[str, Any]:
    """Sum many :meth:`MetricsRegistry.to_dict` snapshots into one.

    Counters, gauges, and histogram buckets/sums add per label set (gauges
    add so per-worker depths and sizes aggregate into pool totals); metric
    type, label names, and histogram buckets must agree across snapshots.
    """
    merged: Dict[str, Any] = {}
    for snapshot in snapshots:
        for name, entry in snapshot.items():
            target = merged.get(name)
            if target is None:
                merged[name] = {
                    "type": entry["type"],
                    "help": entry.get("help", ""),
                    "labelnames": list(entry.get("labelnames", [])),
                    "series": [dict(series, labels=list(series["labels"]),
                                    **({"counts": list(series["counts"])}
                                       if "counts" in series else {}),
                                    **({"exemplars": {
                                        index: dict(exemplar)
                                        for index, exemplar
                                        in series["exemplars"].items()}}
                                       if "exemplars" in series else {}))
                               for series in entry.get("series", [])],
                    **({"buckets": list(entry["buckets"])}
                       if "buckets" in entry else {}),
                }
                continue
            if target["type"] != entry["type"] \
                    or target["labelnames"] != list(entry.get("labelnames", [])) \
                    or target.get("buckets") != (
                        list(entry["buckets"]) if "buckets" in entry else None):
                raise MetricsError(
                    f"cannot merge metric {name!r}: snapshots disagree on "
                    "type, labels, or buckets")
            by_labels = {tuple(series["labels"]): series
                         for series in target["series"]}
            for series in entry.get("series", []):
                key = tuple(series["labels"])
                existing = by_labels.get(key)
                if existing is None:
                    copied = dict(series, labels=list(series["labels"]))
                    if "counts" in series:
                        copied["counts"] = list(series["counts"])
                    target["series"].append(copied)
                    by_labels[key] = copied
                elif "counts" in series:
                    existing["counts"] = [a + b for a, b in
                                          zip(existing["counts"],
                                              series["counts"])]
                    existing["sum"] += series["sum"]
                    if "exemplars" in series:
                        union = dict(existing.get("exemplars", {}))
                        union.update({index: dict(exemplar) for index, exemplar
                                      in series["exemplars"].items()})
                        existing["exemplars"] = union
                else:
                    existing["value"] += series["value"]
    for entry in merged.values():
        entry["series"].sort(key=lambda series: series["labels"])
    return merged


def register_process_metrics(registry: MetricsRegistry) -> None:
    """Add build/process-identity gauges to ``registry`` (idempotent).

    ``repro_build_info{version,python,pid} 1`` identifies the origin node
    of pushed/merged snapshots; ``repro_process_start_time_seconds`` and
    ``repro_process_uptime_seconds`` (refreshed on every snapshot via an
    :meth:`MetricsRegistry.on_snapshot` hook) date them.  Labelled by pid
    so worker-merged snapshots keep one series per process.
    """
    import os
    import sys
    import time

    if getattr(registry, "_process_metrics_pid", None) == os.getpid():
        return
    registry._process_metrics_pid = os.getpid()
    try:
        import repro
        version = getattr(repro, "__version__", "unknown")
    except Exception:  # noqa: BLE001 - identity must never block startup
        version = "unknown"
    pid = str(os.getpid())
    python = "%d.%d.%d" % sys.version_info[:3]
    build = registry.gauge(
        "repro_build_info",
        "Build/runtime identity of this process; value is always 1.",
        labelnames=("version", "python", "pid"))
    build.labels(version=version, python=python, pid=pid).set(1)
    start_s = time.time()
    started = registry.gauge(
        "repro_process_start_time_seconds",
        "Unix time this process registered its metrics.",
        labelnames=("pid",))
    started.labels(pid=pid).set(start_s)
    uptime = registry.gauge(
        "repro_process_uptime_seconds",
        "Seconds since this process registered its metrics.",
        labelnames=("pid",))
    uptime_series = uptime.labels(pid=pid)
    registry.on_snapshot(lambda: uptime_series.set(time.time() - start_s))


def _render_labels(labelnames: Sequence[str], values: Sequence[str],
                   extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = [(name, value) for name, value in zip(labelnames, values)]
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    body = ",".join(f'{name}="{_escape_label_value(str(value))}"'
                    for name, value in pairs)
    return "{" + body + "}"


def render_registry_dict(snapshot: Mapping[str, Any]) -> str:
    """Render a (possibly merged) registry snapshot as Prometheus text."""
    lines: List[str] = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        labelnames = entry.get("labelnames", [])
        if entry.get("help"):
            lines.append(f"# HELP {name} {entry['help']}")
        lines.append(f"# TYPE {name} {entry['type']}")
        for series in entry.get("series", []):
            values = series["labels"]
            if entry["type"] == "histogram":
                cumulative = 0
                bounds = list(entry["buckets"]) + [float("inf")]
                for bound, count in zip(bounds, series["counts"]):
                    cumulative += count
                    labels = _render_labels(labelnames, values,
                                            ("le", _format_number(bound)))
                    lines.append(f"{name}_bucket{labels} {cumulative}")
                labels = _render_labels(labelnames, values)
                lines.append(f"{name}_sum{labels} "
                             f"{_format_number(series['sum'])}")
                lines.append(f"{name}_count{labels} {cumulative}")
            else:
                labels = _render_labels(labelnames, values)
                lines.append(f"{name}{labels} "
                             f"{_format_number(series['value'])}")
    return "\n".join(lines) + ("\n" if lines else "")

"""Declarative alert rules evaluated over metrics-registry snapshots.

Three rule kinds cover the serving stack's ops story:

``threshold``
    Compare the latest snapshot value of a metric (gauges, counters)
    against a fixed threshold: ``repro_service_queue_depth >= 200``.

``rate``
    Per-second increase of a counter over a trailing window:
    ``rate(repro_admission_shed_total[60s]) > 0.5``.

``slo-burn-rate``
    Multi-window latency-SLO burn rate in the SRE style: the error
    budget burn factor (``error_fraction / (1 - objective)``) must
    exceed the threshold over BOTH a long and a short window before the
    alert fires — the long window gives significance, the short window
    makes the alert reset quickly once the spike passes.

The evaluator keeps a bounded history of ``(timestamp, snapshot)``
samples so the windowed kinds work from plain registry snapshots, which
also makes the rules unit-testable with synthetic streams via
:meth:`AlertEvaluator.ingest`.
"""

import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "AlertEvaluator",
    "AlertMonitor",
    "AlertRule",
    "AlertState",
    "default_alert_rules",
]


@dataclass(frozen=True)
class AlertRule:
    """One declarative alert over registry snapshots."""

    name: str
    kind: str  # "threshold" | "rate" | "slo-burn-rate"
    metric: str
    labels: Mapping[str, str] = field(default_factory=dict)
    op: str = ">"
    threshold: float = 0.0
    window_s: float = 300.0
    short_window_s: float = 60.0
    objective: float = 0.95
    latency_slo_s: float = 0.5
    severity: str = "page"
    description: str = ""

    def to_dict(self) -> Dict[str, Any]:
        payload = asdict(self)
        payload["labels"] = dict(self.labels)
        return payload


@dataclass
class AlertState:
    """The evaluated state of one rule at one instant."""

    name: str
    severity: str
    kind: str
    firing: bool
    value: Optional[float]
    threshold: float
    description: str
    since_s: Optional[float] = None
    detail: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "severity": self.severity,
            "kind": self.kind,
            "firing": self.firing,
            "value": self.value,
            "threshold": self.threshold,
            "description": self.description,
            "since_s": self.since_s,
            "detail": dict(self.detail),
        }


_OPS: Dict[str, Callable[[float, float], bool]] = {
    ">": lambda v, t: v > t,
    ">=": lambda v, t: v >= t,
    "<": lambda v, t: v < t,
    "<=": lambda v, t: v <= t,
}


def _series_labels(metric: Mapping[str, Any],
                   series: Mapping[str, Any]) -> Dict[str, str]:
    return dict(zip(metric.get("labelnames", []), series.get("labels", [])))


def metric_value(snapshot: Mapping[str, Any], metric: str,
                 where: Optional[Mapping[str, str]] = None) -> Optional[float]:
    """Sum of all series values of ``metric`` matching the ``where`` labels."""
    entry = snapshot.get(metric)
    if entry is None:
        return None
    total, matched = 0.0, False
    for series in entry.get("series", []):
        labels = _series_labels(entry, series)
        if where and any(labels.get(k) != v for k, v in where.items()):
            continue
        matched = True
        if "value" in series:
            total += series["value"]
        elif "counts" in series:
            total += sum(series["counts"])
    return total if matched else None


def histogram_window(snapshot: Mapping[str, Any], metric: str,
                     where: Optional[Mapping[str, str]] = None
                     ) -> Optional[Dict[str, Any]]:
    """Summed histogram counts across matching series, plus the bounds."""
    entry = snapshot.get(metric)
    if entry is None or entry.get("type") != "histogram":
        return None
    bounds = entry.get("buckets", [])
    counts: Optional[List[float]] = None
    total_sum = 0.0
    for series in entry.get("series", []):
        labels = _series_labels(entry, series)
        if where and any(labels.get(k) != v for k, v in where.items()):
            continue
        series_counts = series.get("counts")
        if series_counts is None:
            continue
        if counts is None:
            counts = [0.0] * len(series_counts)
        for i, c in enumerate(series_counts):
            counts[i] += c
        total_sum += series.get("sum", 0.0)
    if counts is None:
        return None
    return {"bounds": list(bounds), "counts": counts, "sum": total_sum}


def _reference(samples: Sequence[Tuple[float, Mapping[str, Any]]],
               cutoff: float) -> Optional[Tuple[float, Mapping[str, Any]]]:
    """Newest sample at or before ``cutoff``; oldest as a fallback."""
    reference = None
    for ts, snapshot in samples:
        if ts <= cutoff:
            reference = (ts, snapshot)
        else:
            break
    if reference is None and len(samples) >= 2:
        reference = samples[0]
    return reference


class AlertEvaluator:
    """Evaluates rules over a bounded history of registry snapshots."""

    def __init__(self, rules: Sequence[AlertRule],
                 snapshot_fn: Optional[Callable[[], Mapping[str, Any]]] = None,
                 history_s: float = 3900.0, max_samples: int = 512,
                 metrics: Optional[Any] = None):
        self.rules = list(rules)
        self.snapshot_fn = snapshot_fn
        self.history_s = history_s
        self.max_samples = max_samples
        self._lock = threading.RLock()
        self._samples: List[Tuple[float, Mapping[str, Any]]] = []
        self._since: Dict[str, float] = {}
        self._states: List[AlertState] = []
        self._clock_skew_dropped = 0
        self._clock_skew_counter = None
        if metrics is not None:
            self._clock_skew_counter = metrics.counter(
                "repro_alert_clock_skew_total",
                "Alert snapshots dropped because their timestamp ran "
                "backwards (wall-clock step, e.g. NTP).")

    @property
    def clock_skew_dropped(self) -> int:
        """How many snapshots were dropped for running backwards in time."""
        with self._lock:
            return self._clock_skew_dropped

    # -- sampling ---------------------------------------------------------

    def ingest(self, snapshot: Mapping[str, Any],
               ts: Optional[float] = None) -> None:
        """Append a snapshot (``ts`` defaults to now).

        Timestamps must be monotonic — the windowed rule kinds subtract
        counters across samples, so a wall-clock step backwards (NTP)
        would corrupt burn-rate windows.  Non-monotonic samples are
        dropped and counted (``repro_alert_clock_skew_total`` when the
        evaluator was built with a metrics registry, and always in
        :attr:`clock_skew_dropped`)."""
        ts = time.time() if ts is None else ts
        with self._lock:
            if self._samples and ts < self._samples[-1][0]:
                self._clock_skew_dropped += 1
                if self._clock_skew_counter is not None:
                    self._clock_skew_counter.inc()
                return
            self._samples.append((ts, snapshot))
            if len(self._samples) > self.max_samples:
                del self._samples[:len(self._samples) - self.max_samples]
            horizon = ts - self.history_s
            while len(self._samples) > 2 and self._samples[0][0] < horizon:
                del self._samples[0]

    def sample(self, now: Optional[float] = None) -> None:
        """Pull one snapshot from ``snapshot_fn`` into the history."""
        if self.snapshot_fn is None:
            return
        self.ingest(self.snapshot_fn(), ts=now)

    # -- evaluation -------------------------------------------------------

    def evaluate(self, now: Optional[float] = None) -> List[AlertState]:
        with self._lock:
            samples = list(self._samples)
        if now is None:
            now = samples[-1][0] if samples else time.time()
        states = [self._evaluate_rule(rule, samples, now)
                  for rule in self.rules]
        with self._lock:
            for state in states:
                if state.firing:
                    state.since_s = self._since.setdefault(state.name, now)
                else:
                    self._since.pop(state.name, None)
            self._states = states
        return states

    def sample_and_evaluate(self,
                            now: Optional[float] = None) -> List[AlertState]:
        self.sample(now=now)
        return self.evaluate(now=now)

    def states(self) -> List[AlertState]:
        """The most recently evaluated states (no re-evaluation)."""
        with self._lock:
            return list(self._states)

    def _evaluate_rule(self, rule: AlertRule,
                       samples: Sequence[Tuple[float, Mapping[str, Any]]],
                       now: float) -> AlertState:
        value: Optional[float] = None
        detail: Dict[str, Any] = {}
        firing = False
        compare = _OPS.get(rule.op, _OPS[">"])
        if samples:
            latest_ts, latest = samples[-1]
            if rule.kind == "threshold":
                value = metric_value(latest, rule.metric, rule.labels)
                firing = value is not None and compare(value, rule.threshold)
            elif rule.kind == "rate":
                value = self._window_rate(rule, samples, now, rule.window_s)
                detail["window_s"] = rule.window_s
                firing = value is not None and compare(value, rule.threshold)
            elif rule.kind == "slo-burn-rate":
                long_burn = self._window_burn(rule, samples, now,
                                              rule.window_s)
                short_burn = self._window_burn(rule, samples, now,
                                               rule.short_window_s)
                detail.update(long_burn=long_burn, short_burn=short_burn,
                              window_s=rule.window_s,
                              short_window_s=rule.short_window_s,
                              objective=rule.objective,
                              latency_slo_s=rule.latency_slo_s)
                value = long_burn
                firing = (long_burn is not None and short_burn is not None
                          and long_burn >= rule.threshold
                          and short_burn >= rule.threshold)
        return AlertState(
            name=rule.name, severity=rule.severity, kind=rule.kind,
            firing=firing, value=value, threshold=rule.threshold,
            description=rule.description, detail=detail)

    def _window_rate(self, rule: AlertRule,
                     samples: Sequence[Tuple[float, Mapping[str, Any]]],
                     now: float, window_s: float) -> Optional[float]:
        latest_ts, latest = samples[-1]
        reference = _reference(samples, now - window_s)
        if reference is None:
            return None
        ref_ts, ref_snapshot = reference
        elapsed = latest_ts - ref_ts
        if elapsed <= 0:
            return None
        current = metric_value(latest, rule.metric, rule.labels)
        previous = metric_value(ref_snapshot, rule.metric, rule.labels)
        if current is None:
            return None
        return max(0.0, current - (previous or 0.0)) / elapsed

    def _window_burn(self, rule: AlertRule,
                     samples: Sequence[Tuple[float, Mapping[str, Any]]],
                     now: float, window_s: float) -> Optional[float]:
        """Error-budget burn factor over the trailing ``window_s``.

        A request is "good" when it landed in a latency bucket whose upper
        bound is within the SLO target.  Returns ``None`` when the window
        saw no traffic (no alert without evidence).
        """
        latest = histogram_window(samples[-1][1], rule.metric, rule.labels)
        if latest is None:
            return None
        reference = _reference(samples, now - window_s)
        ref_hist = None
        if reference is not None:
            ref_hist = histogram_window(reference[1], rule.metric,
                                        rule.labels)
        bounds = latest["bounds"]
        good_bucket_count = sum(
            1 for bound in bounds if bound <= rule.latency_slo_s)
        deltas = list(latest["counts"])
        if ref_hist is not None and len(ref_hist["counts"]) == len(deltas):
            deltas = [max(0.0, cur - prev) for cur, prev
                      in zip(deltas, ref_hist["counts"])]
        total = sum(deltas)
        if total <= 0:
            return None
        good = sum(deltas[:good_bucket_count])
        error_fraction = max(0.0, 1.0 - good / total)
        budget = max(1e-9, 1.0 - rule.objective)
        return error_fraction / budget


class AlertMonitor:
    """Daemon thread that samples + evaluates on an interval."""

    def __init__(self, evaluator: AlertEvaluator, interval_s: float = 5.0):
        self.evaluator = evaluator
        self.interval_s = interval_s
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-alert-monitor", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.evaluator.sample_and_evaluate()
            except Exception:  # noqa: BLE001 - monitoring must not die
                pass


def default_alert_rules(max_queue_depth: int = 256,
                        latency_slo_s: float = 0.25,
                        objective: float = 0.95) -> List[AlertRule]:
    """The serving stack's stock rules (ROADMAP ops story)."""
    rules = [
        AlertRule(
            name="admission-shed-rate",
            kind="rate",
            metric="repro_admission_shed_total",
            threshold=0.5,
            window_s=60.0,
            severity="page",
            description="Admission control is shedding more than 0.5 req/s "
                        "over the last minute.",
        ),
        AlertRule(
            name="latency-slo-fast-burn",
            kind="slo-burn-rate",
            metric="repro_request_latency_seconds",
            threshold=14.4,
            window_s=300.0,
            short_window_s=60.0,
            objective=objective,
            latency_slo_s=latency_slo_s,
            severity="page",
            description="Latency SLO error budget burning >= 14.4x over "
                        "5m and 1m windows.",
        ),
        AlertRule(
            name="latency-slo-slow-burn",
            kind="slo-burn-rate",
            metric="repro_request_latency_seconds",
            threshold=6.0,
            window_s=3600.0,
            short_window_s=300.0,
            objective=objective,
            latency_slo_s=latency_slo_s,
            severity="ticket",
            description="Latency SLO error budget burning >= 6x over "
                        "1h and 5m windows.",
        ),
    ]
    if max_queue_depth > 0:
        rules.insert(1, AlertRule(
            name="queue-depth-saturation",
            kind="threshold",
            metric="repro_service_queue_depth",
            op=">=",
            threshold=0.8 * max_queue_depth,
            severity="page",
            description="Service queue depth is at >= 80% of "
                        f"max_queue_depth={max_queue_depth}.",
        ))
    return rules

"""``repro.observability`` — dependency-free metrics for the serving stack.

One :class:`MetricsRegistry` per :class:`~repro.api.Session` collects typed
:class:`Counter` / :class:`Gauge` / :class:`Histogram` instruments from every
layer: the session and its normalization cache (cache traffic, per-pass wall
time), the async scheduling service (queue depth, per-priority end-to-end
latency, admission sheds), and the worker pool (per-worker registries
scatter-gathered and merged with :func:`merge_registry_dicts`).  The HTTP
layer serves it all as a Prometheus-text ``/metrics`` endpoint.
"""

from .metrics import (DEFAULT_LATENCY_BUCKETS, Counter, Gauge, Histogram,
                      MetricsError, MetricsRegistry, merge_registry_dicts,
                      render_registry_dict)

__all__ = [
    "MetricsRegistry", "Counter", "Gauge", "Histogram", "MetricsError",
    "DEFAULT_LATENCY_BUCKETS", "merge_registry_dicts", "render_registry_dict",
]

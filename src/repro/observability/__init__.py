"""``repro.observability`` — dependency-free metrics, tracing, and alerts.

One :class:`MetricsRegistry` per :class:`~repro.api.Session` collects typed
:class:`Counter` / :class:`Gauge` / :class:`Histogram` instruments from every
layer: the session and its normalization cache (cache traffic, per-pass wall
time), the async scheduling service (queue depth, per-priority end-to-end
latency, admission sheds), and the worker pool (per-worker registries
scatter-gathered and merged with :func:`merge_registry_dicts`).  The HTTP
layer serves it all as a Prometheus-text ``/metrics`` endpoint.

On top of the aggregates, :mod:`repro.observability.tracing` records
per-request span trees (deterministic trace ids, contextvar propagation,
cross-process rejoin), :mod:`repro.observability.alerts` evaluates
declarative rules — threshold, rate, and SRE-style multi-window SLO
burn — over registry snapshots, and :mod:`repro.observability.push`
POSTs snapshots + firing alerts to an HTTP sink for unattended nodes.
"""

from .alerts import (AlertEvaluator, AlertMonitor, AlertRule, AlertState,
                     default_alert_rules)
from .metrics import (DEFAULT_LATENCY_BUCKETS, Counter, Gauge, Histogram,
                      MetricsError, MetricsRegistry, merge_registry_dicts,
                      register_process_metrics, render_registry_dict)
from .push import PushExporter
from .tracing import (Span, TraceRecord, Tracer, chrome_trace_document,
                      current_trace_id, span, traces_to_jsonl)

__all__ = [
    "MetricsRegistry", "Counter", "Gauge", "Histogram", "MetricsError",
    "DEFAULT_LATENCY_BUCKETS", "merge_registry_dicts", "render_registry_dict",
    "register_process_metrics",
    "Tracer", "Span", "TraceRecord", "span", "current_trace_id",
    "chrome_trace_document", "traces_to_jsonl",
    "AlertRule", "AlertState", "AlertEvaluator", "AlertMonitor",
    "default_alert_rules",
    "PushExporter",
]

"""Dependency-free request tracing with deterministic, propagatable IDs.

The tracer records *spans* — named, timed segments of work — grouped into
*traces* keyed by a ``trace_id`` deterministically derived from the request
id.  Within one process the active span propagates through a
:class:`contextvars.ContextVar`, so deeply nested code (passes, cache
lookups, scheduler search) can attach child spans via the module-level
:func:`span` context manager without any plumbing.  Across process
boundaries the context travels explicitly: the coordinator serializes
``{"trace_id", "span_id"}`` into the request, the worker re-activates it
with :meth:`Tracer.activate`, and its finished spans are exported with
:meth:`Tracer.export_fragment` and re-absorbed coordinator-side with
:meth:`Tracer.absorb` so the full span tree lands in one place.

Finished traces live in a bounded in-memory ring buffer
(:meth:`Tracer.traces` / :meth:`Tracer.get`) and export as JSONL
(:func:`traces_to_jsonl`) or the Chrome trace-event format
(:func:`chrome_trace_document`) that ``chrome://tracing`` and Perfetto
load directly.
"""

import contextlib
import contextvars
import hashlib
import os
import threading
import time
import uuid
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "Span",
    "TraceRecord",
    "Tracer",
    "chrome_trace_document",
    "current_trace_id",
    "span",
    "traces_to_jsonl",
]

#: Active tracing scope for the current logical context: ``(tracer, ref)``
#: where ``ref`` tracks the innermost open span so nested ``span()`` blocks
#: parent correctly even though ContextVar values are immutable snapshots.
_ACTIVE = contextvars.ContextVar("repro_trace_active", default=None)


def _hash_id(material: str) -> str:
    """A short, stable hex id derived from ``material``."""
    return hashlib.blake2s(material.encode("utf-8"), digest_size=8).hexdigest()


@dataclass
class Span:
    """One named, timed segment of work inside a trace."""

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    start_s: float
    end_s: float = 0.0
    attributes: Dict[str, Any] = field(default_factory=dict)
    status: str = "ok"
    process: str = ""
    thread: int = 0

    def context(self) -> Dict[str, str]:
        """The wire form used to propagate this span across boundaries."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @property
    def duration_s(self) -> float:
        return max(0.0, self.end_s - self.start_s)

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def set_attributes(self, **attributes: Any) -> None:
        self.attributes.update(attributes)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_s": self.duration_s,
            "attributes": dict(self.attributes),
            "status": self.status,
            "process": self.process,
            "thread": self.thread,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Span":
        return cls(
            trace_id=data["trace_id"],
            span_id=data["span_id"],
            parent_id=data.get("parent_id"),
            name=data["name"],
            start_s=data["start_s"],
            end_s=data.get("end_s", 0.0),
            attributes=dict(data.get("attributes", {})),
            status=data.get("status", "ok"),
            process=data.get("process", ""),
            thread=data.get("thread", 0),
        )


class _NullSpan:
    """No-op span handed out when tracing is inactive or disabled."""

    __slots__ = ()

    trace_id = ""
    span_id = ""
    parent_id = None
    name = ""
    status = "ok"
    attributes: Dict[str, Any] = {}

    def context(self) -> Dict[str, str]:
        return {}

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def set_attributes(self, **attributes: Any) -> None:
        pass


NULL_SPAN = _NullSpan()


class _SpanRef:
    """Mutable holder for the innermost open span of an activation."""

    __slots__ = ("span",)

    def __init__(self, span: Optional[Span] = None):
        self.span = span


@dataclass
class TraceRecord:
    """A finished trace: the root span's identity plus every span."""

    trace_id: str
    name: str
    start_s: float
    end_s: float
    status: str
    attributes: Dict[str, Any]
    spans: List[Span]

    @property
    def duration_s(self) -> float:
        return max(0.0, self.end_s - self.start_s)

    def summary(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "status": self.status,
            "span_count": len(self.spans),
            "processes": sorted({s.process for s in self.spans if s.process}),
            "attributes": dict(self.attributes),
        }

    def to_dict(self) -> Dict[str, Any]:
        payload = self.summary()
        payload["end_s"] = self.end_s
        payload["spans"] = [s.to_dict() for s in self.spans]
        payload["tree"] = self.tree()
        return payload

    def tree(self) -> List[Dict[str, Any]]:
        """Nested span tree; spans with unknown parents become roots."""
        nodes = {}
        for s in self.spans:
            node = s.to_dict()
            node["children"] = []
            nodes[s.span_id] = node
        roots = []
        for s in self.spans:
            node = nodes[s.span_id]
            parent = nodes.get(s.parent_id) if s.parent_id else None
            if parent is None:
                roots.append(node)
            else:
                parent["children"].append(node)
        return roots


class Tracer:
    """Span factory + bounded ring buffer of finished traces.

    Thread-safe; one instance per process.  Workers run their own tracer
    and ship finished span fragments back to the coordinator in-band.
    """

    def __init__(self, capacity: int = 256, process: Optional[str] = None,
                 enabled: bool = True, max_open: int = 1024,
                 sample_rate: float = 1.0):
        if capacity < 1:
            raise ValueError("tracer capacity must be >= 1")
        self.capacity = capacity
        self.enabled = enabled
        self.process = process if process is not None else f"pid-{os.getpid()}"
        self.max_open = max_open
        #: Fraction of *fast-path* requests whose trace root is recorded
        #: (``1.0`` records every request, the default; full slow-path
        #: traces ignore this).  Sampling is deterministic per trace id, so
        #: every layer of a stack makes the same decision for one request.
        self.sample_rate = sample_rate
        self._tick = 0
        self._lock = threading.RLock()
        self._open: "OrderedDict[str, List[Span]]" = OrderedDict()
        self._seq: Dict[str, int] = {}
        self._finished: "OrderedDict[str, TraceRecord]" = OrderedDict()

    # -- identity ---------------------------------------------------------

    @staticmethod
    def trace_id_for(request_id: str) -> str:
        """Deterministic trace id for a request id (stable across layers)."""
        return _hash_id(f"trace:{request_id}")

    def sampled(self, trace_id: str) -> bool:
        """Whether a fast-path request with ``trace_id`` records its trace.

        Deterministic in the trace id (no RNG, no shared state), so
        coordinator and workers agree without coordination.  With the
        default ``sample_rate`` of 1.0 every request is recorded.
        """
        if not self.enabled:
            return False
        rate = self.sample_rate
        if rate >= 1.0:
            return True
        if rate <= 0.0:
            return False
        return int(trace_id[:8] or "0", 16) % 10000 < rate * 10000

    def tick(self) -> bool:
        """Like :meth:`sampled`, for call sites that have no trace id yet.

        A stride sampler: one call in every ``round(1 / sample_rate)``
        returns True.  The fast lane asks *before* minting a request id or
        hashing a trace id, so a sampled-out request pays one counter
        increment — nothing else.  Unlocked: the service calls this from
        its single event-loop thread, and a rare lost increment under
        concurrent use only nudges the effective rate.
        """
        if not self.enabled:
            return False
        rate = self.sample_rate
        if rate >= 1.0:
            return True
        if rate <= 0.0:
            return False
        self._tick = (self._tick + 1) % max(1, round(1.0 / rate))
        return self._tick == 0

    def _next_span_id(self, trace_id: str, parent_id: Optional[str],
                      name: str) -> str:
        with self._lock:
            seq = self._seq.get(trace_id, 0)
            self._seq[trace_id] = seq + 1
        return _hash_id(
            f"span:{trace_id}:{parent_id}:{name}:{self.process}:{seq}")

    # -- span lifecycle ---------------------------------------------------

    def begin(self, name: str, trace_id: str,
              parent_id: Optional[str] = None,
              attrs: Optional[Mapping[str, Any]] = None,
              start_s: Optional[float] = None) -> Span:
        """Open a span; pair with :meth:`finish`."""
        return Span(
            trace_id=trace_id,
            span_id=self._next_span_id(trace_id, parent_id, name),
            parent_id=parent_id,
            name=name,
            start_s=time.time() if start_s is None else start_s,
            attributes=dict(attrs) if attrs else {},
            process=self.process,
            thread=threading.get_ident(),
        )

    def finish(self, span: Span, status: Optional[str] = None,
               end_s: Optional[float] = None) -> Span:
        span.end_s = time.time() if end_s is None else end_s
        if status is not None:
            span.status = status
        self._record(span)
        return span

    def record(self, trace_id: str, parent_id: Optional[str], name: str,
               start_s: float, end_s: float,
               attrs: Optional[Mapping[str, Any]] = None,
               status: str = "ok") -> Span:
        """Record an already-timed span (e.g. queue wait) in one call."""
        span = self.begin(name, trace_id, parent_id, attrs, start_s=start_s)
        return self.finish(span, status=status, end_s=end_s)

    def _record(self, span: Span) -> None:
        with self._lock:
            record = self._finished.get(span.trace_id)
            if record is not None:
                # Late span for an already-finalized trace (e.g. absorbed
                # worker fragments that raced the root close): append.
                record.spans.append(span)
                record.spans.sort(key=lambda s: (s.start_s, s.span_id))
                return
            bucket = self._open.setdefault(span.trace_id, [])
            bucket.append(span)
            if span.parent_id is None:
                self._finalize(span)
            while len(self._open) > self.max_open:
                stale, _ = self._open.popitem(last=False)
                self._seq.pop(stale, None)

    def _finalize(self, root: Span) -> None:
        spans = self._open.pop(root.trace_id, [])
        self._seq.pop(root.trace_id, None)
        spans.sort(key=lambda s: (s.start_s, s.span_id))
        record = TraceRecord(
            trace_id=root.trace_id,
            name=root.name,
            start_s=root.start_s,
            end_s=root.end_s,
            status=root.status,
            attributes=dict(root.attributes),
            spans=spans,
        )
        self._finished[root.trace_id] = record
        self._finished.move_to_end(root.trace_id)
        while len(self._finished) > self.capacity:
            self._finished.popitem(last=False)

    # -- cross-boundary plumbing -----------------------------------------

    def export_fragment(self, trace_id: str) -> List[Dict[str, Any]]:
        """Drain this process's finished spans for ``trace_id`` (worker side).

        Spans recorded under a trace whose root lives in another process
        never finalize locally; this pops them for in-band shipping.
        """
        with self._lock:
            spans = self._open.pop(trace_id, [])
            self._seq.pop(trace_id, None)
            record = self._finished.pop(trace_id, None)
        if record is not None:
            spans = list(record.spans) + spans
        return [s.to_dict() for s in spans]

    def absorb(self, span_dicts: Iterable[Mapping[str, Any]]) -> None:
        """Merge spans exported by another process (coordinator side)."""
        for data in span_dicts:
            try:
                span = Span.from_dict(data)
            except (KeyError, TypeError):
                continue
            with self._lock:
                record = self._finished.get(span.trace_id)
                if record is not None:
                    record.spans.append(span)
                    record.spans.sort(key=lambda s: (s.start_s, s.span_id))
                else:
                    self._open.setdefault(span.trace_id, []).append(span)

    @contextlib.contextmanager
    def activate(self, context: Mapping[str, str]):
        """Re-activate a propagated trace context in this process.

        Does not open a span itself; nested :func:`span` calls parent
        under ``context["span_id"]``.
        """
        trace_id = context.get("trace_id") if context else None
        if not trace_id or not self.enabled:
            yield NULL_SPAN
            return
        anchor = Span(
            trace_id=trace_id,
            span_id=context.get("span_id", ""),
            parent_id=None,
            name="",
            start_s=0.0,
            process=self.process,
        )
        token = _ACTIVE.set((self, _SpanRef(anchor)))
        try:
            yield anchor
        finally:
            _ACTIVE.reset(token)

    @contextlib.contextmanager
    def trace(self, name: str, trace_id: Optional[str] = None,
              request_id: Optional[str] = None, **attrs: Any):
        """Open a root span and make it the active context."""
        if not self.enabled:
            yield NULL_SPAN
            return
        if trace_id is None:
            material = request_id if request_id is not None else uuid.uuid4().hex
            trace_id = self.trace_id_for(material)
        root = self.begin(name, trace_id, attrs=attrs)
        token = _ACTIVE.set((self, _SpanRef(root)))
        status = "ok"
        try:
            yield root
        except BaseException:
            status = "error"
            raise
        finally:
            _ACTIVE.reset(token)
            self.finish(root, status=root.status if status == "ok" else status)

    # -- ring-buffer access ----------------------------------------------

    @property
    def stored(self) -> int:
        with self._lock:
            return len(self._finished)

    def traces(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """Newest-first summaries of finished traces."""
        with self._lock:
            records = list(self._finished.values())
        records.reverse()
        if limit is not None:
            records = records[:max(0, int(limit))]
        return [r.summary() for r in records]

    def get(self, trace_id: str) -> Optional[TraceRecord]:
        with self._lock:
            return self._finished.get(trace_id)


class _SpanScope:
    """Context manager behind the module-level :func:`span` helper."""

    __slots__ = ("_name", "_attributes", "_tracer", "_ref", "_parent", "span")

    def __init__(self, name: str, attributes: Dict[str, Any]):
        self._name = name
        self._attributes = attributes
        self._tracer = None
        self._ref = None
        self._parent = None
        self.span = NULL_SPAN

    def __enter__(self):
        active = _ACTIVE.get()
        if active is None:
            return NULL_SPAN
        tracer, ref = active
        if not tracer.enabled or ref.span is None:
            return NULL_SPAN
        self._tracer, self._ref, self._parent = tracer, ref, ref.span
        self.span = tracer.begin(
            self._name, self._parent.trace_id,
            parent_id=self._parent.span_id or None,
            attrs=self._attributes)
        ref.span = self.span
        return self.span

    def __exit__(self, exc_type, exc, tb):
        if self._tracer is None:
            return False
        self._ref.span = self._parent
        status = "ok"
        if exc_type is not None:
            status = "error"
            self.span.attributes.setdefault("error", repr(exc))
        self._tracer.finish(self.span, status=status)
        return False


def span(name: str, **attributes: Any) -> _SpanScope:
    """Open a child span under the active trace (no-op when none)."""
    return _SpanScope(name, attributes)


def current_trace_id() -> Optional[str]:
    """The trace id of the active context, if any."""
    active = _ACTIVE.get()
    if active is None:
        return None
    ref = active[1]
    if ref.span is None or not ref.span.trace_id:
        return None
    return ref.span.trace_id


# -- exporters ------------------------------------------------------------

def _iter_span_dicts(traces) -> Iterable[Dict[str, Any]]:
    for trace in traces:
        if isinstance(trace, TraceRecord):
            for s in trace.spans:
                yield s.to_dict()
        else:
            for s in trace.get("spans", []):
                yield dict(s)


def chrome_trace_document(traces) -> Dict[str, Any]:
    """Chrome trace-event JSON (``chrome://tracing`` / Perfetto loadable).

    ``traces`` is an iterable of :class:`TraceRecord` or trace dicts (as
    returned by ``GET /v1/traces/<id>``).
    """
    events: List[Dict[str, Any]] = []
    pids: Dict[str, int] = {}
    for data in _iter_span_dicts(traces):
        process = data.get("process") or "process"
        if process not in pids:
            pids[process] = len(pids) + 1
            events.append({
                "name": "process_name", "ph": "M", "pid": pids[process],
                "tid": 0, "args": {"name": process},
            })
        args = dict(data.get("attributes", {}))
        args["trace_id"] = data.get("trace_id", "")
        args["status"] = data.get("status", "ok")
        events.append({
            "name": data.get("name", "span"),
            "cat": "repro",
            "ph": "X",
            "pid": pids[process],
            "tid": data.get("thread", 0) % 2 ** 31,
            "ts": data.get("start_s", 0.0) * 1e6,
            "dur": max(data.get("end_s", 0.0) - data.get("start_s", 0.0),
                       0.0) * 1e6,
            "args": args,
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def traces_to_jsonl(traces) -> str:
    """One JSON span per line, for grep-friendly archival."""
    import json

    lines = [json.dumps(data, sort_keys=True)
             for data in _iter_span_dicts(traces)]
    return "\n".join(lines) + ("\n" if lines else "")

"""Memoized per-nest analyses shared across pipeline runs.

Normalization and scheduling repeatedly answer the same questions about loop
nests: which statements of a body depend on each other (fission legality),
which permutations of a band are legal, and what each order costs in strides.
Computing those answers dominates pipeline wall time, yet normalized-
equivalent workloads keep asking them about *identical* nests — the scaling
loop of every GEMM variant, the repeated kernels of a batch, the second run
of an idempotence check.

:class:`AnalysisManager` memoizes analysis results keyed by the *content
fingerprint* of the analyzed node (plus any extra key material, e.g. array
shapes and parameter bindings for stride costs).  Content keying makes
invalidation automatic: a pass that changes a nest produces a new
fingerprint, so stale entries are simply never looked up again — entries are
only recomputed when a pass reported a change to the nest they describe.
A bounded LRU keeps the memory footprint flat under sustained traffic.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, Optional, Tuple

from ..ir.nodes import Node, Program
from ..ir.serialization import node_to_dict, program_to_dict


def node_fingerprint(node: Node) -> str:
    """Stable content hash of one IR subtree (loop nest, computation, ...)."""
    text = json.dumps(node_to_dict(node), sort_keys=True)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def program_fingerprint(program: Program) -> str:
    """Stable content hash of a whole program (used for change detection)."""
    text = json.dumps(program_to_dict(program), sort_keys=True)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _stable_extra(extra: Any) -> str:
    return json.dumps(extra, sort_keys=True, default=repr)


class AnalysisManager:
    """A bounded, thread-safe memo of per-node analysis results.

    Results are keyed by ``(kind, content key)``; the content key is derived
    from the analyzed node's fingerprint plus caller-supplied extra key
    material.  The manager never copies values — analyses must therefore
    return immutable data (tuples, frozen dataclasses, numbers), never IR
    node references.
    """

    def __init__(self, max_entries: int = 4096):
        self.max_entries = max_entries
        self._entries: "OrderedDict[Tuple[str, str], Any]" = OrderedDict()
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0

    # -- core --------------------------------------------------------------------

    def get(self, kind: str, key: str, compute: Callable[[], Any]) -> Any:
        """Return the memoized result for ``(kind, key)``, computing on miss."""
        full_key = (kind, key)
        with self._lock:
            if full_key in self._entries:
                self._hits += 1
                self._entries.move_to_end(full_key)
                return self._entries[full_key]
            self._misses += 1
        # Compute outside the lock: analyses can be slow, and two threads
        # racing on the same key at worst duplicate one computation.
        value = compute()
        with self._lock:
            self._entries[full_key] = value
            self._entries.move_to_end(full_key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
        return value

    def cached_node(self, kind: str, node: Node, compute: Callable[[], Any],
                    extra: Optional[Any] = None) -> Any:
        """Memoize ``compute()`` keyed by ``node``'s content (plus ``extra``)."""
        key = node_fingerprint(node)
        if extra is not None:
            key = f"{key}|{_stable_extra(extra)}"
        return self.get(kind, key, compute)

    # -- introspection -----------------------------------------------------------

    @property
    def hits(self) -> int:
        with self._lock:
            return self._hits

    @property
    def misses(self) -> int:
        with self._lock:
            return self._misses

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {"hits": self._hits, "misses": self._misses,
                    "entries": len(self._entries)}

    def clear(self) -> None:
        """Drop all memoized results (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

"""The shipped passes and registry-named pipelines.

The a-priori normalization stages (Section 3.2, Figure 5) are wrapped here as
:class:`~repro.passes.base.Pass` subclasses, and the paper's pipeline plus
its Section 4.2 ablations are registered by name:

* ``"a-priori"``            — the full Figure 5 order: loop normal form,
  scalar expansion, maximal fission (fixed point), stride minimization,
  canonical iterator renaming, validation.
* ``"no-fission"``          — drops maximal fission (and scalar expansion,
  which only exists to enable fission).
* ``"no-stride"``           — drops stride minimization.
* ``"no-scalar-expansion"`` — drops only scalar expansion.
* ``"identity"``            — no rewriting at all (the "Opt"-only ablation
  and the internal pipeline of session-managed schedulers, whose input is
  already normalized).

Each stage pass deposits its classic stage report in ``context.scratch`` so
:func:`repro.normalization.pipeline.normalize` can keep assembling the
backward-compatible :class:`~repro.normalization.pipeline.NormalizationReport`.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..ir.nodes import Program
from ..ir.validation import validate_program
from ..normalization.fission import (MAX_FIXED_POINT_ITERATIONS, FissionReport,
                                     fission_sweep)
from ..normalization.loop_normal_form import (canonicalize_iterator_names,
                                              normalize_program_bounds)
from ..normalization.scalar_expansion import expand_scalars
from ..normalization.stride_minimization import minimize_strides
from .base import ApplyOutcome, Pass, PassContext
from .pipeline import FixedPoint, Pipeline
from .registry import register_pipeline


class LoopNormalFormPass(Pass):
    """Rewrite every loop to start at 0 with step 1 (classical preconditioning)."""

    name = "loop-normal-form"
    detects_change = False  # the underlying rewrite does not self-report

    def apply(self, program: Program, context: PassContext) -> ApplyOutcome:
        normalize_program_bounds(program)
        return None


class ScalarExpansionPass(Pass):
    """Promote per-iteration transient scalars to arrays (enables fission)."""

    name = "scalar-expansion"

    def apply(self, program: Program, context: PassContext) -> ApplyOutcome:
        report = expand_scalars(program)
        context.scratch["scalar_expansion"] = report
        return report.count > 0, {"scalars_expanded": report.count}


class FissionSweepPass(Pass):
    """One bottom-up maximal-fission sweep; grouped in a fixed point."""

    name = "maximal-fission"

    def apply(self, program: Program, context: PassContext) -> ApplyOutcome:
        report = context.scratch.setdefault("fission", FissionReport())
        # Counters are per-sweep deltas (the report accumulates across the
        # fixed point, and summing per-application counters must not
        # double-count); ``atomic_nests`` is a gauge, reported by the final
        # no-change sweep only.
        split_before = report.loops_split
        changed = fission_sweep(program, report, context.analysis)
        counters = {"loops_split": report.loops_split - split_before}
        if not changed:
            counters["atomic_nests"] = report.atomic_nests
        return changed, counters


class StrideMinimizationPass(Pass):
    """Per nest, pick the legal loop order minimizing the stride cost."""

    name = "stride-minimization"

    def apply(self, program: Program, context: PassContext) -> ApplyOutcome:
        report = minimize_strides(program, context.parameters, context.analysis)
        context.scratch["strides"] = report
        return report.nests_permuted > 0, {
            "nests_considered": report.nests_considered,
            "nests_permuted": report.nests_permuted,
            "permutations_evaluated": report.permutations_evaluated,
        }


class CanonicalizeIteratorsPass(Pass):
    """Rename iterators to ``i0, i1, ...`` so equivalent nests compare equal."""

    name = "canonicalize-iterators"
    detects_change = False

    def apply(self, program: Program, context: PassContext) -> ApplyOutcome:
        canonicalize_iterator_names(program)
        context.scratch["canonical_iterators"] = True
        return None


class ValidatePass(Pass):
    """Structural validation; never rewrites, only reports errors."""

    name = "validate"

    def apply(self, program: Program, context: PassContext) -> ApplyOutcome:
        errors = tuple(validate_program(program, strict=False))
        context.scratch["validation_errors"] = errors
        return False, {"validation_errors": len(errors)}


# ---------------------------------------------------------------------------
# Pipeline construction
# ---------------------------------------------------------------------------

#: Flag combinations of the registered pipeline names, mirroring the fields
#: of :class:`~repro.normalization.pipeline.NormalizationOptions`.
NAMED_PIPELINE_FLAGS: Dict[str, Dict[str, bool]] = {
    "a-priori": {},
    "no-fission": {"apply_fission": False, "apply_scalar_expansion": False},
    "no-stride": {"apply_stride_minimization": False},
    "no-scalar-expansion": {"apply_scalar_expansion": False},
    "identity": {"normalize_bounds": False, "apply_scalar_expansion": False,
                 "apply_fission": False, "apply_stride_minimization": False,
                 "canonicalize_iterators": False, "validate": False},
}

_FLAG_DEFAULTS: Dict[str, bool] = {
    "normalize_bounds": True,
    "apply_scalar_expansion": True,
    "apply_fission": True,
    "apply_stride_minimization": True,
    "canonicalize_iterators": True,
    "validate": True,
}


def _resolve_name(flags: Dict[str, bool]) -> str:
    for name, overrides in NAMED_PIPELINE_FLAGS.items():
        named = dict(_FLAG_DEFAULTS, **overrides)
        if named == flags:
            return name
    return "custom"


def build_normalization_pipeline(name: Optional[str] = None,
                                 **overrides: bool) -> Pipeline:
    """Build a normalization pipeline from a registered name or from flags.

    With ``name`` given, the flags of that registered pipeline are used; with
    flag overrides only, the stages are assembled accordingly and the
    pipeline is named after the matching registered combination (or
    ``"custom"``).
    """
    if name is not None:
        if name not in NAMED_PIPELINE_FLAGS:
            from .registry import get_pipeline
            return get_pipeline(name)  # third-party registrations
        overrides = dict(NAMED_PIPELINE_FLAGS[name])
    flags = dict(_FLAG_DEFAULTS)
    flags.update(overrides)

    stages = []
    if flags["normalize_bounds"]:
        stages.append(LoopNormalFormPass())
    if flags["apply_scalar_expansion"]:
        stages.append(ScalarExpansionPass())
    if flags["apply_fission"]:
        stages.append(FixedPoint([FissionSweepPass()],
                                 name="maximal-fission",
                                 max_iterations=MAX_FIXED_POINT_ITERATIONS))
    if flags["apply_stride_minimization"]:
        stages.append(StrideMinimizationPass())
    if flags["canonicalize_iterators"]:
        stages.append(CanonicalizeIteratorsPass())
    if flags["validate"]:
        stages.append(ValidatePass())
    return Pipeline(name or _resolve_name(flags), stages)


def _register_named_pipelines() -> None:
    for pipeline_name in NAMED_PIPELINE_FLAGS:
        def factory(pipeline_name: str = pipeline_name) -> Pipeline:
            return build_normalization_pipeline(pipeline_name)

        register_pipeline(pipeline_name)(factory)


_register_named_pipelines()

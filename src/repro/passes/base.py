"""The ``Pass`` protocol: one uniform, instrumented unit of program rewriting.

Every rewrite in the repo — a-priori normalization stages and scheduling
transformations alike — runs through this protocol: a pass mutates a program
in place and its :meth:`Pass.run` wrapper measures what happened, producing a
:class:`PassResult` with a changed-flag, named counters, the IR-size delta,
and wall time.  Pipelines (:mod:`repro.passes.pipeline`) compose passes,
:class:`PassStats` aggregates their results across many runs for reporting,
and the :class:`~repro.passes.analysis.AnalysisManager` in the
:class:`PassContext` lets passes share memoized analyses.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Mapping, Optional, Tuple, Union

from ..ir.nodes import Program
from ..observability.tracing import span as _trace_span
from .analysis import AnalysisManager, program_fingerprint


def program_ir_size(program: Program) -> int:
    """Node count of a program (loops, computations, library calls)."""

    def count(node) -> int:
        total = 1
        for child in getattr(node, "body", ()):
            total += count(child)
        return total

    return sum(count(node) for node in program.body)


@dataclass
class PassResult:
    """What one pass application did to one program."""

    pass_name: str
    changed: bool = False
    wall_time_s: float = 0.0
    counters: Dict[str, float] = field(default_factory=dict)
    ir_size_before: int = 0
    ir_size_after: int = 0
    error: Optional[str] = None

    @property
    def ir_size_delta(self) -> int:
        return self.ir_size_after - self.ir_size_before

    def to_dict(self) -> Dict[str, Any]:
        return {
            "pass_name": self.pass_name,
            "changed": self.changed,
            "wall_time_s": self.wall_time_s,
            "counters": dict(self.counters),
            "ir_size_before": self.ir_size_before,
            "ir_size_after": self.ir_size_after,
            "error": self.error,
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "PassResult":
        return PassResult(
            pass_name=str(data.get("pass_name", "")),
            changed=bool(data.get("changed", False)),
            wall_time_s=float(data.get("wall_time_s", 0.0)),
            counters={str(k): v for k, v in dict(data.get("counters") or {}).items()},
            ir_size_before=int(data.get("ir_size_before", 0)),
            ir_size_after=int(data.get("ir_size_after", 0)),
            error=data.get("error"),
        )


@dataclass
class PassContext:
    """Shared state threaded through one pipeline run.

    ``parameters`` are the symbolic-size bindings (used e.g. by stride
    minimization), ``analysis`` memoizes per-nest analyses across passes *and*
    across runs when callers share one manager, and ``scratch`` lets passes
    deposit stage-specific reports for the caller to assemble.
    """

    parameters: Optional[Mapping[str, int]] = None
    analysis: AnalysisManager = field(default_factory=AnalysisManager)
    scratch: Dict[str, Any] = field(default_factory=dict)


#: What ``Pass.apply`` may return: nothing (change detected by fingerprint),
#: a changed-flag, or ``(changed-flag-or-None, counters)``.
ApplyOutcome = Union[None, bool, Tuple[Optional[bool], Dict[str, float]]]


class Pass:
    """Base class of all passes.

    Subclasses implement :meth:`apply`, which mutates the program in place
    and reports what it did; :meth:`run` wraps the application with timing,
    IR-size accounting, and — for passes that cannot cheaply self-report a
    changed-flag (``detects_change = False``) — content-fingerprint change
    detection.
    """

    #: Name used in results, registries, and reports; set by subclasses.
    name: str = "pass"

    #: When False, ``run`` compares program fingerprints before and after
    #: ``apply`` to derive the changed-flag.
    detects_change: bool = True

    def apply(self, program: Program, context: PassContext) -> ApplyOutcome:
        raise NotImplementedError

    def _invoke(self, program: Program, context: PassContext) -> ApplyOutcome:
        """Indirection so adapters (e.g. transformations with a legacy
        single-argument ``apply``) can hook the invocation."""
        return self.apply(program, context)

    def run(self, program: Program,
            context: Optional[PassContext] = None) -> PassResult:
        """Apply the pass and measure it; returns the :class:`PassResult`."""
        context = context or PassContext()
        with _trace_span("pass:" + self.name) as span:
            size_before = program_ir_size(program)
            fingerprint_before = (None if self.detects_change
                                  else program_fingerprint(program))
            started = time.perf_counter()
            outcome = self._invoke(program, context)
            wall_time = time.perf_counter() - started

            changed: Optional[bool]
            counters: Dict[str, float]
            if isinstance(outcome, tuple):
                changed, counters = outcome
                counters = dict(counters or {})
            elif isinstance(outcome, bool):
                changed, counters = outcome, {}
            else:
                changed, counters = None, {}
            if changed is None:
                # A pass that declared detects_change but reported nothing is
                # treated conservatively as having changed the program.
                changed = (True if fingerprint_before is None
                           else program_fingerprint(program) != fingerprint_before)
            result = PassResult(pass_name=self.name, changed=bool(changed),
                                wall_time_s=wall_time, counters=counters,
                                ir_size_before=size_before,
                                ir_size_after=program_ir_size(program))
            span.set_attributes(changed=result.changed,
                                wall_time_s=result.wall_time_s,
                                ir_delta=result.ir_size_after - size_before)
            return result


class FunctionPass(Pass):
    """Adapter wrapping a plain ``Program -> bool`` callable as a pass."""

    def __init__(self, fn: Callable[[Program], Any], name: Optional[str] = None):
        self._fn = fn
        self.name = name or getattr(fn, "__name__", "function-pass")

    def apply(self, program: Program, context: PassContext) -> ApplyOutcome:
        return bool(self._fn(program))


def aggregate_timings(results: Iterable[PassResult]) -> Dict[str, float]:
    """Total wall time per pass name (fixed-point iterations summed)."""
    timings: Dict[str, float] = {}
    for result in results:
        timings[result.pass_name] = (timings.get(result.pass_name, 0.0)
                                     + result.wall_time_s)
    return timings


class PassStats:
    """Thread-safe aggregation of :class:`PassResult` streams.

    One accumulator typically lives on the normalization cache and collects
    the results of every pipeline run, powering the per-pass counters on
    ``Session.report()`` and the serving ``/v1/report`` endpoint.  Besides
    the built-in run/time/size statistics, each pass's named counters
    (``hoisted``, ``cse_hits``, ``flops_saved``, ...) are summed under a
    nested ``"counters"`` mapping, so rewrite-pass work is visible
    end-to-end in the reports.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._stats: Dict[str, Dict[str, Any]] = {}

    def add(self, results: Iterable[PassResult]) -> None:
        with self._lock:
            for result in results:
                entry = self._stats.setdefault(result.pass_name, {
                    "runs": 0, "changed": 0, "wall_time_s": 0.0,
                    "ir_size_delta": 0})
                entry["runs"] += 1
                entry["changed"] += 1 if result.changed else 0
                entry["wall_time_s"] += result.wall_time_s
                entry["ir_size_delta"] += result.ir_size_delta
                if result.counters:
                    counters = entry.setdefault("counters", {})
                    for name, amount in result.counters.items():
                        counters[name] = counters.get(name, 0) + amount

    def to_dict(self) -> Dict[str, Dict[str, Any]]:
        with self._lock:
            out: Dict[str, Dict[str, Any]] = {}
            for name, entry in self._stats.items():
                copied = dict(entry)
                if "counters" in copied:
                    copied["counters"] = dict(copied["counters"])
                out[name] = copied
            return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._stats)

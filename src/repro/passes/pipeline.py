"""Pipelines: ordered, instrumented compositions of passes.

A :class:`Pipeline` is a named sequence of stages, where each stage is either
a single :class:`~repro.passes.base.Pass` or a :class:`FixedPoint` group that
repeats its member passes until none reports a change.  Running a pipeline
produces a :class:`PipelineResult` carrying one
:class:`~repro.passes.base.PassResult` per pass application, so consumers get
per-pass wall time, change counters, and IR-size deltas for free.

``Pipeline.identity()`` is a stable string naming the pipeline *structure*
(name plus the ordered pass names, with fixed-point groups marked).  The
normalization cache folds it into its content-addressed keys, which is what
guarantees that e.g. ``"no-fission"`` results are never served from a
full-pipeline cache entry.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

from ..ir.nodes import Program
from .base import Pass, PassContext, PassResult, aggregate_timings

#: Safety bound for fixed-point groups (mirrors the historical bound of
#: ``maximal_loop_fission``; well-formed passes converge far earlier).
DEFAULT_MAX_ITERATIONS = 16


class FixedPoint:
    """A group of passes repeated until none reports a change."""

    def __init__(self, passes: Sequence[Pass], name: str = "fixed-point",
                 max_iterations: int = DEFAULT_MAX_ITERATIONS):
        if not passes:
            raise ValueError("a fixed-point group needs at least one pass")
        self.passes: List[Pass] = list(passes)
        self.name = name
        self.max_iterations = max_iterations

    def pass_names(self) -> List[str]:
        return [p.name for p in self.passes]

    def identity(self) -> str:
        return f"fp({'+'.join(self.pass_names())})"

    def run(self, program: Program, context: PassContext
            ) -> "tuple[List[PassResult], int]":
        """Iterate to a fixed point; returns (per-application results, iterations)."""
        results: List[PassResult] = []
        for iteration in range(1, self.max_iterations + 1):
            changed = False
            for stage_pass in self.passes:
                result = stage_pass.run(program, context)
                results.append(result)
                changed = result.changed or changed
            if not changed:
                return results, iteration
        return results, self.max_iterations


#: What a pipeline is made of.
Stage = Union[Pass, FixedPoint]


@dataclass
class PipelineResult:
    """Everything one pipeline run did: per-pass results plus totals."""

    pipeline: str
    passes: List[PassResult] = field(default_factory=list)
    wall_time_s: float = 0.0
    fixed_point_iterations: Dict[str, int] = field(default_factory=dict)

    @property
    def changed(self) -> bool:
        return any(result.changed for result in self.passes)

    def counters(self) -> Dict[str, float]:
        """All counters of all passes, summed by name."""
        merged: Dict[str, float] = {}
        for result in self.passes:
            for key, value in result.counters.items():
                merged[key] = merged.get(key, 0) + value
        return merged

    def timings(self) -> Dict[str, float]:
        """Total wall time per pass name (fixed-point iterations summed)."""
        return aggregate_timings(self.passes)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "pipeline": self.pipeline,
            "passes": [result.to_dict() for result in self.passes],
            "wall_time_s": self.wall_time_s,
            "fixed_point_iterations": dict(self.fixed_point_iterations),
        }


class Pipeline:
    """A named, ordered sequence of passes and fixed-point groups."""

    def __init__(self, name: str, stages: Sequence[Stage] = ()):
        self.name = name
        self.stages: List[Stage] = list(stages)

    def add(self, stage: Stage) -> "Pipeline":
        self.stages.append(stage)
        return self

    def pass_names(self) -> List[str]:
        names: List[str] = []
        for stage in self.stages:
            if isinstance(stage, FixedPoint):
                names.extend(stage.pass_names())
            else:
                names.append(stage.name)
        return names

    def identity(self) -> str:
        """Stable structural identity: cache-key material for pipeline runs."""
        parts = [stage.identity() if isinstance(stage, FixedPoint) else stage.name
                 for stage in self.stages]
        return f"{self.name}[{','.join(parts)}]"

    def describe(self) -> str:
        return self.identity()

    def run(self, program: Program,
            context: Optional[PassContext] = None) -> PipelineResult:
        """Run every stage in order, mutating ``program`` in place."""
        context = context or PassContext()
        result = PipelineResult(pipeline=self.name)
        started = time.perf_counter()
        for stage in self.stages:
            if isinstance(stage, FixedPoint):
                stage_results, iterations = stage.run(program, context)
                result.passes.extend(stage_results)
                result.fixed_point_iterations[stage.name] = iterations
            else:
                result.passes.append(stage.run(program, context))
        result.wall_time_s = time.perf_counter() - started
        return result

    def __len__(self) -> int:
        return len(self.stages)

    def __repr__(self) -> str:
        return f"Pipeline({self.identity()!r})"

"""``repro.passes`` — the unified, instrumented pass framework.

One abstraction covers every program rewrite in the repo: a-priori
normalization stages, scheduling transformations, and recipe application all
run as :class:`Pass` objects composed into :class:`Pipeline` objects, with
per-pass wall time, change counters, and IR-size deltas collected on every
run.  Named pipelines (``"a-priori"`` and its ablations, the expression-
rewrite family of :mod:`repro.passes.rewrite`) live in a process-wide
registry, and an :class:`AnalysisManager` memoizes per-nest analyses so
repeated normalization of equivalent nests gets measurably faster.
"""

from .analysis import AnalysisManager, node_fingerprint, program_fingerprint
from .base import (FunctionPass, Pass, PassContext, PassResult, PassStats,
                   program_ir_size)
from .pipeline import (DEFAULT_MAX_ITERATIONS, FixedPoint, Pipeline,
                       PipelineResult)
from .registry import (PipelineRegistryError, get_pipeline, has_pipeline,
                       pipeline_bit_exact, pipeline_names, register_pipeline,
                       unregister_pipeline)
from .library import (CanonicalizeIteratorsPass, FissionSweepPass,
                      LoopNormalFormPass, NAMED_PIPELINE_FLAGS,
                      ScalarExpansionPass, StrideMinimizationPass,
                      ValidatePass, build_normalization_pipeline)
from .rewrite import (CommonSubexpressionEliminationPass,
                      ConstantPreEvaluationPass, ExpansionPass,
                      FactorizationPass, LoopInvariantCodeMotionPass)

__all__ = [
    # protocol + instrumentation
    "Pass", "FunctionPass", "PassContext", "PassResult", "PassStats",
    "program_ir_size",
    # composition
    "Pipeline", "PipelineResult", "FixedPoint", "DEFAULT_MAX_ITERATIONS",
    # registry
    "register_pipeline", "get_pipeline", "has_pipeline", "pipeline_names",
    "pipeline_bit_exact", "unregister_pipeline", "PipelineRegistryError",
    # memoized analyses
    "AnalysisManager", "node_fingerprint", "program_fingerprint",
    # shipped passes / builders
    "LoopNormalFormPass", "ScalarExpansionPass", "FissionSweepPass",
    "StrideMinimizationPass", "CanonicalizeIteratorsPass", "ValidatePass",
    "build_normalization_pipeline", "NAMED_PIPELINE_FLAGS",
    # expression-rewrite family
    "ConstantPreEvaluationPass", "FactorizationPass", "ExpansionPass",
    "LoopInvariantCodeMotionPass", "CommonSubexpressionEliminationPass",
]

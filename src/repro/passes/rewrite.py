"""Expression-level rewrite passes: the COFFEE/PyOP2 optimizer playbook.

Loop-level normalization (``repro.passes.library``) reorders *iterations*;
this module rewrites the *expressions* inside them.  The pass family ports
the classic FEM assembly-kernel optimizations to the pass framework:

* :class:`ConstantPreEvaluationPass` — fold constant subexpressions and
  intrinsic calls on constant arguments at normalization time.
* :class:`FactorizationPass` — re-associate sums of products around their
  most frequent factor (``x*a + x*b`` → ``x*(a + b)``).
* :class:`LoopInvariantCodeMotionPass` — hoist subexpressions to the
  shallowest loop level where they are invariant, materializing transient
  scalar temporaries.
* :class:`CommonSubexpressionEliminationPass` — evaluate repeated
  subexpressions once per body, with a write-kill rule for soundness.
* :class:`ExpansionPass` — distribute products over sums, exposing
  per-term hoisting opportunities (the dual of factorization).

Each pass is an instrumented :class:`~repro.passes.base.Pass` reporting
``hoisted`` / ``cse_hits`` / ``flops_saved`` style counters, and the family
is composed into registry-named pipelines (``"rewrite"``,
``"a-priori+rewrite"``, ``"rewrite-licm-only"``, ...) that key the
normalization cache and are selectable everywhere pipeline names are
accepted.  Pipelines that re-associate floating-point math are registered
``bit_exact=False`` so the differential oracle compares them under a
relative tolerance.

Soundness notes: all rewriting is restricted to right-hand-side *value*
positions — index expressions and loop bounds are never touched, and
``Read`` nodes are leaves (their indices are address computation).  LICM
refuses to speculate partial intrinsics (``log``/``div``/``pow``), since a
zero-trip loop must not start raising domain errors.  Invariance facts come
from :mod:`repro.analysis.flops`; per-subtree write sets are memoized
through the shared :class:`~repro.passes.analysis.AnalysisManager`.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..analysis.flops import expr_flops, expr_reads, written_arrays
from ..interp.executor import INTRINSICS
from ..ir.arrays import Array
from ..ir.nodes import ArrayAccess, Computation, LibraryCall, Loop, Node, Program
from ..ir.symbols import (Add, Call, Const, Expr, FloorDiv, Max, Min, Mod,
                          Mul, Read)
from .base import ApplyOutcome, Pass, PassContext
from .library import (CanonicalizeIteratorsPass, FissionSweepPass,
                      LoopNormalFormPass, ScalarExpansionPass,
                      StrideMinimizationPass, ValidatePass)
from .pipeline import FixedPoint, Pipeline
from .registry import register_pipeline

__all__ = [
    "ConstantPreEvaluationPass", "FactorizationPass",
    "LoopInvariantCodeMotionPass", "CommonSubexpressionEliminationPass",
    "ExpansionPass",
]

#: Compound expression nodes: anything that performs at least one operation.
_COMPOUND = (Add, Mul, FloorDiv, Mod, Min, Max, Call)

#: Partial intrinsics whose domain errors must not be introduced by
#: speculative (hoisted) evaluation.
_UNSAFE_SPECULATION = frozenset({"log", "div", "pow"})


# ---------------------------------------------------------------------------
# Expression helpers (value positions only — Read is a leaf)
# ---------------------------------------------------------------------------


def _rebuild(expr: Expr, children: Sequence[Expr]) -> Expr:
    """Rebuild a compound expression with new children (via the folding
    ``make`` constructors, so constants re-fold)."""
    if isinstance(expr, Add):
        return Add.make(children)
    if isinstance(expr, Mul):
        return Mul.make(children)
    if isinstance(expr, FloorDiv):
        return FloorDiv.make(children[0], children[1])
    if isinstance(expr, Mod):
        return Mod.make(children[0], children[1])
    if isinstance(expr, Min):
        return Min.make(children)
    if isinstance(expr, Max):
        return Max.make(children)
    if isinstance(expr, Call):
        return Call(expr.func, tuple(children))
    raise TypeError(f"cannot rebuild {type(expr).__name__}")


def _map_value(expr: Expr, fn: Callable[[Expr], Expr]) -> Expr:
    """Bottom-up rewrite of a value expression; never descends into Read
    indices."""
    if isinstance(expr, Read) or not expr.children():
        return fn(expr)
    children = [_map_value(child, fn) for child in expr.children()]
    return fn(_rebuild(expr, children))


def _count_occurrences(expr: Expr, target: Expr) -> int:
    if expr == target:
        return 1
    if isinstance(expr, Read):
        return 0
    return sum(_count_occurrences(child, target) for child in expr.children())


def _replace_occurrences(expr: Expr, target: Expr, replacement: Expr
                         ) -> Tuple[Expr, int]:
    """Replace every occurrence of ``target`` in value positions."""
    if expr == target:
        return replacement, 1
    if isinstance(expr, Read) or not expr.children():
        return expr, 0
    total = 0
    children = []
    for child in expr.children():
        new_child, count = _replace_occurrences(child, target, replacement)
        total += count
        children.append(new_child)
    if total == 0:
        return expr, 0
    return _rebuild(expr, children), total


def _replace_in_subtree(node: Node, target: Expr, replacement: Expr) -> int:
    """Replace ``target`` in every RHS of the subtree; returns occurrences."""
    total = 0
    for comp in node.iter_computations():
        new_value, count = _replace_occurrences(comp.value, target, replacement)
        if count:
            comp.value = new_value
            total += count
    return total


def _contains_unsafe_call(expr: Expr) -> bool:
    if isinstance(expr, Call) and expr.func in _UNSAFE_SPECULATION:
        return True
    if isinstance(expr, Read):
        return False
    return any(_contains_unsafe_call(child) for child in expr.children())


def _fresh_name(program: Program, base: str) -> str:
    index = 0
    while f"{base}{index}" in program.arrays:
        index += 1
    return f"{base}{index}"


def _index_of(body: Sequence[Node], node: Node) -> int:
    for position, candidate in enumerate(body):
        if candidate is node:
            return position
    raise ValueError("node is not a direct child of the body")


# ---------------------------------------------------------------------------
# Constant pre-evaluation
# ---------------------------------------------------------------------------


class ConstantPreEvaluationPass(Pass):
    """Fold constant arithmetic and intrinsic calls on constant arguments.

    Rebuilding through the ``make`` constructors folds constant
    ``Add``/``Mul``/``Min``/``Max``/``FloorDiv``/``Mod`` subtrees; on top of
    that, intrinsic calls whose arguments are all constants are evaluated
    with the *interpreter's own* intrinsic table, so folding is bit-exact
    with runtime evaluation.  Non-finite results are left unfolded (they
    would not survive JSON serialization in the caches).
    """

    name = "pre-evaluate"

    def apply(self, program: Program, context: PassContext) -> ApplyOutcome:
        counters = {"exprs_folded": 0.0, "flops_saved": 0.0}
        changed = False

        def fold(expr: Expr) -> Expr:
            if not (isinstance(expr, Call)
                    and all(isinstance(arg, Const) for arg in expr.args)):
                return expr
            function = INTRINSICS.get(expr.func)
            if function is None:
                return expr
            try:
                value = function(*[arg.value for arg in expr.args])
            except (ArithmeticError, ValueError, OverflowError):
                return expr
            if isinstance(value, float) and not math.isfinite(value):
                return expr
            counters["exprs_folded"] += 1
            return Const(value)

        for comp in program.iter_computations():
            new_value = _map_value(comp.value, fold)
            if new_value != comp.value:
                counters["flops_saved"] += max(
                    0, expr_flops(comp.value) - expr_flops(new_value))
                comp.value = new_value
                changed = True
        return changed, counters


# ---------------------------------------------------------------------------
# Factorization (re-association of sums of products)
# ---------------------------------------------------------------------------


class FactorizationPass(Pass):
    """Factor sums of products around their most frequent non-constant
    factor: ``x*a + x*b + c`` becomes ``x*(a + b) + c``.

    Factoring re-associates floating-point arithmetic, so pipelines using
    this pass must be registered ``bit_exact=False``.
    """

    name = "factorize"

    def apply(self, program: Program, context: PassContext) -> ApplyOutcome:
        counters = {"factored": 0.0, "flops_saved": 0.0}
        changed = False

        def factor(expr: Expr) -> Expr:
            if isinstance(expr, Add):
                return _factor_add(expr, counters)
            return expr

        for comp in program.iter_computations():
            new_value = _map_value(comp.value, factor)
            if new_value != comp.value:
                comp.value = new_value
                changed = True
        return changed, counters


def _factor_add(add: Add, counters: Dict[str, float]) -> Expr:
    terms: List[Expr] = list(add.terms)
    while True:
        factor_lists = [list(term.factors) if isinstance(term, Mul) else [term]
                        for term in terms]
        counts: Dict[Expr, int] = {}
        for factors in factor_lists:
            seen: List[Expr] = []
            for factor in factors:
                if isinstance(factor, Const) or factor in seen:
                    continue
                seen.append(factor)
                counts[factor] = counts.get(factor, 0) + 1
        candidates = [f for f, n in counts.items() if n >= 2]
        if not candidates:
            break
        best = max(candidates,
                   key=lambda f: (counts[f], expr_flops(f), str(f)))
        with_indices = [i for i, factors in enumerate(factor_lists)
                        if best in factors]
        rests: List[Expr] = []
        for i in with_indices:
            remaining = list(factor_lists[i])
            remaining.remove(best)
            rests.append(Mul.make(remaining) if remaining else Const(1))
        inner = Add.make(rests)
        if isinstance(inner, Add):
            inner = _factor_add(inner, counters)
        combined = Mul.make([best, inner])
        counters["factored"] += 1
        counters["flops_saved"] += len(with_indices) - 1
        rebuilt: List[Expr] = []
        placed = False
        for i, term in enumerate(terms):
            if i in with_indices:
                if not placed:
                    rebuilt.append(combined)
                    placed = True
                continue
            rebuilt.append(term)
        terms = rebuilt
        if len(terms) == 1:
            break
    if len(terms) == 1:
        return terms[0]
    return Add.make(terms)


# ---------------------------------------------------------------------------
# Expansion (distribution of products over sums)
# ---------------------------------------------------------------------------


class ExpansionPass(Pass):
    """Distribute products over sums: ``x*(a + b)`` becomes ``x*a + x*b``.

    The dual of factorization — it *increases* the operation count but
    flattens expressions into pure sums of products, each term of which can
    then be hoisted or eliminated independently.  Expansion is capped so a
    product of many sums cannot blow up the IR.
    """

    name = "expand"

    #: Do not expand a product into more than this many terms.
    max_terms = 64

    def apply(self, program: Program, context: PassContext) -> ApplyOutcome:
        counters = {"expanded": 0.0, "terms_created": 0.0}
        changed = False

        def expand(expr: Expr) -> Expr:
            if not isinstance(expr, Mul):
                return expr
            term_lists = [list(factor.terms) if isinstance(factor, Add)
                          else [factor] for factor in expr.factors]
            total = 1
            for options in term_lists:
                total *= len(options)
            if total == 1 or total > self.max_terms:
                return expr
            combos: List[List[Expr]] = [[]]
            for options in term_lists:
                combos = [combo + [option]
                          for combo in combos for option in options]
            counters["expanded"] += 1
            counters["terms_created"] += total
            return Add.make([Mul.make(combo) for combo in combos])

        for comp in program.iter_computations():
            new_value = _map_value(comp.value, expand)
            if new_value != comp.value:
                comp.value = new_value
                changed = True
        return changed, counters


# ---------------------------------------------------------------------------
# Loop-invariant code motion
# ---------------------------------------------------------------------------


class LoopInvariantCodeMotionPass(Pass):
    """Hoist loop-invariant subexpressions to the shallowest valid level.

    For every statement, maximal compound subexpressions of the RHS are
    hoisted to the outermost enclosing loop level where (a) no loop at or
    below that level binds an iterator the expression uses and (b) no array
    the expression reads is written anywhere in that level's subtree.  The
    expression is materialized into a fresh transient scalar immediately
    before the hoisted-from loop, and *every* occurrence in that loop's
    subtree is replaced by the temporary.  Hoisted definitions are then
    recursively considered for further hoisting, so one run reaches the
    fixed point (the pass is idempotent).

    Evaluating an identical expression once instead of per iteration is
    bit-exact, so LICM-only pipelines stay ``bit_exact=True``.
    """

    name = "licm"

    def apply(self, program: Program, context: PassContext) -> ApplyOutcome:
        counters = {"hoisted": 0.0, "hoisted_uses": 0.0, "flops_saved": 0.0}
        changed = False

        def written(node: Node) -> frozenset:
            return context.analysis.cached_node(
                "written-arrays", node, lambda: written_arrays(node))

        def boundary_for(expr: Expr, chain: List[Loop]) -> Optional[int]:
            if _contains_unsafe_call(expr):
                return None
            symbols = expr.free_symbols()
            innermost_used = 0
            for level, loop in enumerate(chain):
                if loop.iterator in symbols:
                    innermost_used = level + 1
            if innermost_used >= len(chain):
                return None
            reads = expr_reads(expr)
            for level in range(innermost_used, len(chain)):
                if not (reads & written(chain[level])):
                    return level
            return None

        def find_candidate(expr: Expr, chain: List[Loop]
                           ) -> Optional[Tuple[Expr, int]]:
            """First maximal hoistable subexpression, in traversal order."""
            if isinstance(expr, _COMPOUND):
                level = boundary_for(expr, chain)
                if level is not None:
                    return expr, level
            if isinstance(expr, Read):
                return None
            for child in expr.children():
                found = find_candidate(child, chain)
                if found is not None:
                    return found
            return None

        def hoist_from(comp: Computation, chain: List[Loop]) -> None:
            nonlocal changed
            while chain:
                found = find_candidate(comp.value, chain)
                if found is None:
                    return
                expr, level = found
                target_loop = chain[level]
                parent_body = chain[level - 1].body if level else program.body
                temp = _fresh_name(program, "__licm")
                program.add_array(Array(temp, (), "float64", transient=True))
                uses = _replace_in_subtree(target_loop, expr, Read(temp, ()))
                definition = Computation(ArrayAccess(temp, ()), expr)
                parent_body.insert(_index_of(parent_body, target_loop),
                                   definition)
                changed = True
                counters["hoisted"] += 1
                counters["hoisted_uses"] += uses
                # Static flops removed from the loop body per iteration (the
                # hoisted definition runs once per iteration of the *outer*
                # level instead); dynamic savings scale with the trip count.
                counters["flops_saved"] += expr_flops(expr) * uses
                # The materialized definition may itself be invariant in the
                # remaining outer loops — hoist it the rest of the way now.
                hoist_from(definition, chain[:level])

        def process_body(body: Sequence[Node], chain: List[Loop]) -> None:
            for node in list(body):
                if isinstance(node, Loop):
                    process_body(node.body, chain + [node])
                elif isinstance(node, Computation) and chain:
                    hoist_from(node, chain)

        process_body(program.body, [])
        return changed, counters


# ---------------------------------------------------------------------------
# Common-subexpression elimination
# ---------------------------------------------------------------------------


class CommonSubexpressionEliminationPass(Pass):
    """Evaluate repeated compound subexpressions once per body.

    Within each statement list, occurrences of an expression form a group
    that is *killed* when a statement (or a nested loop / library call)
    writes an array the expression reads; occurrences in the killing
    statement itself still belong to the group, because a statement's RHS
    is evaluated before its write.  Groups of two or more occurrences are
    materialized into a transient scalar defined immediately before the
    group's first statement, largest expression first, until no group
    remains.  Replacing equal-valued evaluations is bit-exact.
    """

    name = "cse"

    def apply(self, program: Program, context: PassContext) -> ApplyOutcome:
        counters = {"cse_hits": 0.0, "cse_temps": 0.0, "flops_saved": 0.0}
        changed = False

        def written(node: Node) -> frozenset:
            return context.analysis.cached_node(
                "written-arrays", node, lambda: written_arrays(node))

        def collect(expr: Expr, into: Dict[Expr, int]) -> None:
            if isinstance(expr, Read):
                return
            if isinstance(expr, _COMPOUND):
                into[expr] = into.get(expr, 0) + 1
            for child in expr.children():
                collect(child, into)

        def find_best(body: Sequence[Node]
                      ) -> Optional[Tuple[Expr, List[int]]]:
            live: Dict[Expr, List[int]] = {}
            groups: List[Tuple[Expr, List[int]]] = []

            def kill(killed_arrays: frozenset) -> None:
                for expr in list(live):
                    if expr_reads(expr) & killed_arrays:
                        groups.append((expr, live.pop(expr)))

            for position, node in enumerate(body):
                if isinstance(node, Computation):
                    per_stmt: Dict[Expr, int] = {}
                    collect(node.value, per_stmt)
                    for expr, count in per_stmt.items():
                        live.setdefault(expr, []).extend([position] * count)
                    kill(frozenset({node.target.array}))
                else:
                    kill(written(node))
            groups.extend(live.items())
            eligible = [(expr, positions) for expr, positions in groups
                        if len(positions) >= 2]
            if not eligible:
                return None
            return max(eligible,
                       key=lambda g: (expr_flops(g[0]), len(g[1]), str(g[0])))

        def process_body(body) -> None:
            nonlocal changed
            while True:
                best = find_best(body)
                if best is None:
                    break
                expr, positions = best
                temp = _fresh_name(program, "__cse")
                program.add_array(Array(temp, (), "float64", transient=True))
                replacement = Read(temp, ())
                hits = 0
                for position in sorted(set(positions)):
                    statement = body[position]
                    new_value, count = _replace_occurrences(
                        statement.value, expr, replacement)
                    statement.value = new_value
                    hits += count
                body.insert(min(positions),
                            Computation(ArrayAccess(temp, ()), expr))
                changed = True
                counters["cse_temps"] += 1
                counters["cse_hits"] += hits
                counters["flops_saved"] += expr_flops(expr) * (hits - 1)
            for node in body:
                if isinstance(node, Loop):
                    process_body(node.body)

        process_body(program.body)
        return changed, counters


# ---------------------------------------------------------------------------
# Pipeline registrations
# ---------------------------------------------------------------------------


def _rewrite_stages() -> List[Pass]:
    # Factorize before LICM/CSE: factoring exposes invariant factors
    # (``x[i]*b + x[i]*c`` → ``x[i]*(b+c)`` with hoistable ``b+c``), and
    # running it first keeps the composition idempotent — a second run finds
    # nothing new to factor or hoist.
    return [ConstantPreEvaluationPass(), FactorizationPass(),
            LoopInvariantCodeMotionPass(),
            CommonSubexpressionEliminationPass()]


@register_pipeline("rewrite", bit_exact=False)
def _rewrite_pipeline() -> Pipeline:
    """The full expression-rewrite family (factorization re-associates)."""
    return Pipeline("rewrite", _rewrite_stages() + [ValidatePass()])


@register_pipeline("rewrite-licm-only", bit_exact=True)
def _rewrite_licm_only() -> Pipeline:
    """Hoisting alone: evaluates identical expressions once — bit-exact."""
    return Pipeline("rewrite-licm-only",
                    [LoopInvariantCodeMotionPass(), ValidatePass()])


@register_pipeline("rewrite-cse-only", bit_exact=True)
def _rewrite_cse_only() -> Pipeline:
    """CSE alone: evaluates identical expressions once — bit-exact."""
    return Pipeline("rewrite-cse-only",
                    [CommonSubexpressionEliminationPass(), ValidatePass()])


@register_pipeline("rewrite-expand", bit_exact=False)
def _rewrite_expand() -> Pipeline:
    """Expansion-based variant: distribute, then hoist/eliminate per term."""
    return Pipeline("rewrite-expand",
                    [ConstantPreEvaluationPass(), ExpansionPass(),
                     LoopInvariantCodeMotionPass(),
                     CommonSubexpressionEliminationPass(), ValidatePass()])


@register_pipeline("a-priori+rewrite", bit_exact=False)
def _a_priori_rewrite() -> Pipeline:
    """Loop-level normalization and expression rewriting, to a fixed point.

    The families feed each other — LICM temporaries become scalar-expansion
    candidates, fission separates conflicting writes and unlocks further
    hoisting — so the stages iterate as one fixed-point group; convergence
    of the group is what makes the combined pipeline idempotent.
    """
    return Pipeline("a-priori+rewrite", [
        FixedPoint([LoopNormalFormPass(), ScalarExpansionPass(),
                    FissionSweepPass(), ConstantPreEvaluationPass(),
                    FactorizationPass(), LoopInvariantCodeMotionPass(),
                    CommonSubexpressionEliminationPass(),
                    StrideMinimizationPass(), CanonicalizeIteratorsPass()],
                   name="a-priori+rewrite-fp", max_iterations=10),
        ValidatePass(),
    ])

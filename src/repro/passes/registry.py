"""The named-pipeline registry: ``@register_pipeline`` / ``get_pipeline``.

Pipelines are registered as zero-argument factories and instantiated fresh
per lookup (pipelines are cheap to build, and fresh instances keep pass state
out of the sharing equation).  The shipped names — ``"a-priori"`` and its
ablations — are registered by :mod:`repro.passes.library`, the expression-
rewrite family by :mod:`repro.passes.rewrite`; consumers select pipelines by
name through ``Session``, ``ScheduleRequest``, the experiment harnesses, and
the serving CLI instead of assembling option-flag soup.

Each registration also declares whether the pipeline is **bit-exact**:
whether its transformations preserve floating-point results to the last ulp.
Loop-level normalization only reorders iterations of independent statements,
so it is bit-exact; pipelines that reassociate or distribute arithmetic
(``"rewrite"``, ``"a-priori+rewrite"``) are registered with
``bit_exact=False`` and are compared by the differential oracle under a
relative tolerance instead of ``array_equal``.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional

from .pipeline import Pipeline

PipelineFactory = Callable[[], Pipeline]


class PipelineRegistryError(KeyError):
    """Raised on unknown pipeline lookups or conflicting registrations."""


_PIPELINES: Dict[str, PipelineFactory] = {}
_BIT_EXACT: Dict[str, bool] = {}
_LOCK = threading.RLock()


def register_pipeline(name: str, *, overwrite: bool = False,
                      bit_exact: bool = True
                      ) -> Callable[[PipelineFactory], PipelineFactory]:
    """Decorator registering a zero-argument pipeline factory under ``name``.

    ``bit_exact=False`` declares that the pipeline may reassociate or
    distribute floating-point arithmetic, so differential checks must
    compare its results under a tolerance rather than bit-for-bit.
    """

    def decorator(factory: PipelineFactory) -> PipelineFactory:
        with _LOCK:
            if name in _PIPELINES and not overwrite:
                raise PipelineRegistryError(
                    f"pipeline {name!r} is already registered; "
                    f"pass overwrite=True to replace it")
            _PIPELINES[name] = factory
            _BIT_EXACT[name] = bit_exact
        return factory

    return decorator


def get_pipeline(name: str) -> Pipeline:
    """Instantiate the pipeline registered under ``name``."""
    with _LOCK:
        factory = _PIPELINES.get(name)
    if factory is None:
        raise PipelineRegistryError(
            f"unknown pipeline {name!r}; registered: {pipeline_names()}")
    return factory()


def has_pipeline(name: Optional[str]) -> bool:
    with _LOCK:
        return name in _PIPELINES


def pipeline_names() -> List[str]:
    with _LOCK:
        return sorted(_PIPELINES)


def pipeline_bit_exact(name: str) -> bool:
    """Whether the pipeline registered under ``name`` preserves results bitwise."""
    with _LOCK:
        if name not in _PIPELINES:
            raise PipelineRegistryError(
                f"unknown pipeline {name!r}; registered: {pipeline_names()}")
        return _BIT_EXACT.get(name, True)


def unregister_pipeline(name: str) -> None:
    with _LOCK:
        if name not in _PIPELINES:
            raise PipelineRegistryError(f"unknown pipeline {name!r}")
        del _PIPELINES[name]
        _BIT_EXACT.pop(name, None)

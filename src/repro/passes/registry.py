"""The named-pipeline registry: ``@register_pipeline`` / ``get_pipeline``.

Pipelines are registered as zero-argument factories and instantiated fresh
per lookup (pipelines are cheap to build, and fresh instances keep pass state
out of the sharing equation).  The shipped names — ``"a-priori"`` and its
ablations — are registered by :mod:`repro.passes.library`; consumers select
pipelines by name through ``Session``, ``ScheduleRequest``, the experiment
harnesses, and the serving CLI instead of assembling option-flag soup.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional

from .pipeline import Pipeline

PipelineFactory = Callable[[], Pipeline]


class PipelineRegistryError(KeyError):
    """Raised on unknown pipeline lookups or conflicting registrations."""


_PIPELINES: Dict[str, PipelineFactory] = {}
_LOCK = threading.RLock()


def register_pipeline(name: str, *, overwrite: bool = False
                      ) -> Callable[[PipelineFactory], PipelineFactory]:
    """Decorator registering a zero-argument pipeline factory under ``name``."""

    def decorator(factory: PipelineFactory) -> PipelineFactory:
        with _LOCK:
            if name in _PIPELINES and not overwrite:
                raise PipelineRegistryError(
                    f"pipeline {name!r} is already registered; "
                    f"pass overwrite=True to replace it")
            _PIPELINES[name] = factory
        return factory

    return decorator


def get_pipeline(name: str) -> Pipeline:
    """Instantiate the pipeline registered under ``name``."""
    with _LOCK:
        factory = _PIPELINES.get(name)
    if factory is None:
        raise PipelineRegistryError(
            f"unknown pipeline {name!r}; registered: {pipeline_names()}")
    return factory()


def has_pipeline(name: Optional[str]) -> bool:
    with _LOCK:
        return name in _PIPELINES


def pipeline_names() -> List[str]:
    with _LOCK:
        return sorted(_PIPELINES)


def unregister_pipeline(name: str) -> None:
    with _LOCK:
        if name not in _PIPELINES:
            raise PipelineRegistryError(f"unknown pipeline {name!r}")
        del _PIPELINES[name]

"""The a-priori normalization pipeline, built on the unified pass framework.

Since PR 3 normalization is not a hard-coded if-chain: :func:`normalize`
resolves a :class:`NormalizationOptions` to a named
:class:`~repro.passes.pipeline.Pipeline` of :class:`~repro.passes.base.Pass`
stages (``repro.passes``) and runs it on a copy of the input.  The paper's
Figure 5 order is the registered ``"a-priori"`` pipeline:

1. loop normal form (zero-based, unit-step loops),
2. scalar expansion of per-iteration temporaries,
3. **maximal loop fission** as a fixed-point group,
4. **stride minimization** per resulting atomic loop nest,
5. canonical iterator renaming (so equivalent nests compare equal),
6. structural validation.

The Section 4.2 ablations are the sibling registrations ``"no-fission"``,
``"no-stride"``, ``"no-scalar-expansion"``, and ``"identity"``; consumers
select pipelines by name (``NormalizationOptions.named("no-fission")``)
instead of flag combinations.  Every run returns a
:class:`NormalizationReport` that carries, besides the classic stage
reports, one instrumented :class:`~repro.passes.base.PassResult` per pass —
wall time, change flag, counters, IR-size delta — which the Session/serving
layers aggregate into their reports.  Passing a shared
:class:`~repro.passes.analysis.AnalysisManager` memoizes per-nest analyses
(dependence edges, minimal permutations) across runs.

The pipeline never mutates its input; it returns a normalized copy together
with the report of what each stage did.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from ..ir.nodes import Program
from ..passes.analysis import AnalysisManager
from ..passes.base import (FunctionPass, PassContext, PassResult,
                           aggregate_timings)
from ..passes.pipeline import FixedPoint, Pipeline, PipelineResult
from ..passes.library import build_normalization_pipeline
from .fission import FissionReport
from .scalar_expansion import ScalarExpansionReport
from .stride_minimization import StrideMinimizationReport


@dataclass
class NormalizationReport:
    """What the normalization pipeline did to one program.

    The classic per-stage summaries (``fission``, ``strides``,
    ``scalar_expansion``) are kept for compatibility; ``passes`` carries the
    instrumented per-pass results of the pipeline run (one entry per pass
    application, fixed-point iterations included) and ``pipeline`` names the
    pipeline that produced them.
    """

    fission: FissionReport = field(default_factory=FissionReport)
    strides: StrideMinimizationReport = field(default_factory=StrideMinimizationReport)
    scalar_expansion: ScalarExpansionReport = field(default_factory=ScalarExpansionReport)
    canonical_iterators: bool = False
    validation_errors: Tuple[str, ...] = ()
    pipeline: str = ""
    passes: List[PassResult] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        """Whether any pass changed the program.

        With instrumented pass results available this is exact (bound
        normalization and scalar expansion included — the historical
        if-chain ignored both); reports deserialized from old cache entries
        fall back to the stage counters.
        """
        if self.passes:
            return any(result.changed for result in self.passes)
        return (self.fission.loops_split > 0
                or self.strides.nests_permuted > 0
                or self.scalar_expansion.count > 0)

    def pass_timings(self) -> Dict[str, float]:
        """Total wall time per pass name for this run."""
        return aggregate_timings(self.passes)

    def summary(self) -> str:
        return (f"fission: split {self.fission.loops_split} loops into "
                f"{self.fission.atomic_nests} atomic nests; "
                f"strides: permuted {self.strides.nests_permuted}/"
                f"{self.strides.nests_considered} nests "
                f"(cost {self.strides.total_cost_before:.1f} -> "
                f"{self.strides.total_cost_after:.1f})")

    def to_dict(self) -> Dict[str, object]:
        return {
            "fission": dataclasses.asdict(self.fission),
            "strides": dataclasses.asdict(self.strides),
            "scalar_expansion": {
                "expanded": [list(pair) for pair in self.scalar_expansion.expanded]},
            "canonical_iterators": self.canonical_iterators,
            "validation_errors": list(self.validation_errors),
            "pipeline": self.pipeline,
            "passes": [result.to_dict() for result in self.passes],
        }

    @staticmethod
    def from_dict(data: Mapping[str, object]) -> "NormalizationReport":
        expansion = data.get("scalar_expansion") or {}
        return NormalizationReport(
            fission=FissionReport(**dict(data.get("fission") or {})),
            strides=StrideMinimizationReport(**dict(data.get("strides") or {})),
            scalar_expansion=ScalarExpansionReport(
                expanded=[tuple(pair) for pair in expansion.get("expanded", [])]),
            canonical_iterators=bool(data.get("canonical_iterators", False)),
            validation_errors=tuple(data.get("validation_errors", ())),
            pipeline=str(data.get("pipeline", "")),
            passes=[PassResult.from_dict(entry)
                    for entry in data.get("passes", ())],
        )


@dataclass
class NormalizationOptions:
    """Configuration of the normalization pipeline.

    This is a thin constructor over pipeline specs: ``pipeline`` selects a
    registered pipeline by name (``"a-priori"``, ``"no-fission"``,
    ``"no-stride"``, ``"no-scalar-expansion"``, ``"identity"``, or any
    third-party registration) and wins over the individual stage flags,
    which remain for finer-grained custom pipelines.  :meth:`to_pipeline`
    resolves either form to the actual :class:`~repro.passes.pipeline.Pipeline`.
    """

    normalize_bounds: bool = True
    apply_scalar_expansion: bool = True
    apply_fission: bool = True
    apply_stride_minimization: bool = True
    canonicalize_iterators: bool = True
    parameters: Optional[Mapping[str, int]] = None
    validate: bool = True
    pipeline: Optional[str] = None

    @classmethod
    def named(cls, pipeline: str,
              parameters: Optional[Mapping[str, int]] = None
              ) -> "NormalizationOptions":
        """Options selecting a registered pipeline by name."""
        return cls(pipeline=pipeline, parameters=parameters)

    def to_pipeline(self) -> Pipeline:
        """Resolve these options to the pipeline they describe."""
        if self.pipeline is not None:
            return build_normalization_pipeline(self.pipeline)
        return build_normalization_pipeline(
            normalize_bounds=self.normalize_bounds,
            apply_scalar_expansion=self.apply_scalar_expansion,
            apply_fission=self.apply_fission,
            apply_stride_minimization=self.apply_stride_minimization,
            canonicalize_iterators=self.canonicalize_iterators,
            validate=self.validate,
        )


def _assemble_report(outcome: PipelineResult,
                     context: PassContext) -> NormalizationReport:
    return NormalizationReport(
        fission=context.scratch.get("fission", FissionReport()),
        strides=context.scratch.get("strides", StrideMinimizationReport()),
        scalar_expansion=context.scratch.get("scalar_expansion",
                                             ScalarExpansionReport()),
        canonical_iterators=bool(context.scratch.get("canonical_iterators", False)),
        validation_errors=tuple(context.scratch.get("validation_errors", ())),
        pipeline=outcome.pipeline,
        passes=list(outcome.passes),
    )


def normalize(program: Program,
              options: Optional[NormalizationOptions] = None,
              analysis: Optional[AnalysisManager] = None, *,
              pipeline: Optional[Pipeline] = None
              ) -> Tuple[Program, NormalizationReport]:
    """Run the configured normalization pipeline on a copy of ``program``.

    ``analysis`` optionally shares a memo of per-nest analyses across runs
    (the normalization cache passes its own, long-lived manager here), and
    ``pipeline`` accepts an already-resolved pipeline so callers that
    resolved ``options`` for other purposes (e.g. cache keying) do not
    build it twice.
    """
    options = options or NormalizationOptions()
    if pipeline is None:
        pipeline = options.to_pipeline()
    normalized = program.copy()
    # ``is not None``, not ``or``: an empty AnalysisManager is falsy through
    # ``__len__`` and must still be used (sharing it is the whole point).
    context = PassContext(parameters=options.parameters,
                          analysis=analysis if analysis is not None
                          else AnalysisManager())
    outcome = pipeline.run(normalized, context)
    return normalized, _assemble_report(outcome, context)


def normalize_program(program: Program, **kwargs) -> Program:
    """Convenience wrapper returning only the normalized program."""
    normalized, _ = normalize(program, NormalizationOptions(**kwargs) if kwargs else None)
    return normalized


class PassManager:
    """Deprecated shim over the pass framework's fixed-point groups.

    Passes are callables ``Program -> bool`` returning whether they changed
    the program.  Use :class:`repro.passes.Pipeline` with a
    :class:`repro.passes.FixedPoint` group instead; this wrapper remains so
    pre-PR-3 callers keep working.
    """

    def __init__(self, passes: Optional[List[Callable[[Program], bool]]] = None,
                 max_iterations: int = 16):
        warnings.warn(
            "repro.normalization.PassManager is deprecated; build a "
            "repro.passes.Pipeline with a FixedPoint group instead",
            DeprecationWarning, stacklevel=2)
        self.passes: List[Callable[[Program], bool]] = list(passes or [])
        self.max_iterations = max_iterations

    def add(self, pass_fn: Callable[[Program], bool]) -> "PassManager":
        self.passes.append(pass_fn)
        return self

    def run(self, program: Program) -> int:
        """Run the pipeline to a fixed point; returns the iteration count."""
        if not self.passes:
            return 1
        group = FixedPoint([FunctionPass(fn) for fn in self.passes],
                           name="pass-manager",
                           max_iterations=self.max_iterations)
        _results, iterations = group.run(program, PassContext())
        return iterations

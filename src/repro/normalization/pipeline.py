"""The a-priori normalization pipeline (Section 3.2, Figure 5).

``normalize`` runs, in order:

1. loop normal form (zero-based, unit-step loops),
2. **maximal loop fission** to a fixed point,
3. **stride minimization** per resulting atomic loop nest,
4. canonical iterator renaming (so equivalent nests compare equal).

The pipeline never mutates its input; it returns a normalized copy together
with a report of what each stage did.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from ..ir.nodes import Program
from ..ir.validation import validate_program
from .fission import FissionReport, maximal_loop_fission
from .loop_normal_form import canonicalize_iterator_names, normalize_program_bounds
from .scalar_expansion import ScalarExpansionReport, expand_scalars
from .stride_minimization import StrideMinimizationReport, minimize_strides


@dataclass
class NormalizationReport:
    """What the normalization pipeline did to one program."""

    fission: FissionReport = field(default_factory=FissionReport)
    strides: StrideMinimizationReport = field(default_factory=StrideMinimizationReport)
    scalar_expansion: ScalarExpansionReport = field(default_factory=ScalarExpansionReport)
    canonical_iterators: bool = False
    validation_errors: Tuple[str, ...] = ()

    @property
    def changed(self) -> bool:
        return (self.fission.loops_split > 0
                or self.strides.nests_permuted > 0)

    def summary(self) -> str:
        return (f"fission: split {self.fission.loops_split} loops into "
                f"{self.fission.atomic_nests} atomic nests; "
                f"strides: permuted {self.strides.nests_permuted}/"
                f"{self.strides.nests_considered} nests "
                f"(cost {self.strides.total_cost_before:.1f} -> "
                f"{self.strides.total_cost_after:.1f})")

    def to_dict(self) -> Dict[str, object]:
        return {
            "fission": dataclasses.asdict(self.fission),
            "strides": dataclasses.asdict(self.strides),
            "scalar_expansion": {
                "expanded": [list(pair) for pair in self.scalar_expansion.expanded]},
            "canonical_iterators": self.canonical_iterators,
            "validation_errors": list(self.validation_errors),
        }

    @staticmethod
    def from_dict(data: Mapping[str, object]) -> "NormalizationReport":
        expansion = data.get("scalar_expansion") or {}
        return NormalizationReport(
            fission=FissionReport(**dict(data.get("fission") or {})),
            strides=StrideMinimizationReport(**dict(data.get("strides") or {})),
            scalar_expansion=ScalarExpansionReport(
                expanded=[tuple(pair) for pair in expansion.get("expanded", [])]),
            canonical_iterators=bool(data.get("canonical_iterators", False)),
            validation_errors=tuple(data.get("validation_errors", ())),
        )


@dataclass
class NormalizationOptions:
    """Configuration of the normalization pipeline.

    The ablation study (Section 4.2) turns normalization on and off; the
    options also allow disabling individual criteria for finer-grained
    ablations.
    """

    normalize_bounds: bool = True
    apply_scalar_expansion: bool = True
    apply_fission: bool = True
    apply_stride_minimization: bool = True
    canonicalize_iterators: bool = True
    parameters: Optional[Mapping[str, int]] = None
    validate: bool = True


def normalize(program: Program,
              options: Optional[NormalizationOptions] = None
              ) -> Tuple[Program, NormalizationReport]:
    """Run the full a-priori normalization pipeline on a copy of ``program``."""
    options = options or NormalizationOptions()
    normalized = program.copy()
    report = NormalizationReport()

    if options.normalize_bounds:
        normalize_program_bounds(normalized)
    if options.apply_scalar_expansion:
        report.scalar_expansion = expand_scalars(normalized)
    if options.apply_fission:
        report.fission = maximal_loop_fission(normalized)
    if options.apply_stride_minimization:
        report.strides = minimize_strides(normalized, options.parameters)
    if options.canonicalize_iterators:
        canonicalize_iterator_names(normalized)
        report.canonical_iterators = True
    if options.validate:
        report.validation_errors = tuple(validate_program(normalized, strict=False))

    return normalized, report


def normalize_program(program: Program, **kwargs) -> Program:
    """Convenience wrapper returning only the normalized program."""
    normalized, _ = normalize(program, NormalizationOptions(**kwargs) if kwargs else None)
    return normalized


class PassManager:
    """A tiny fixed-point pass manager for custom normalization pipelines.

    Passes are callables ``Program -> bool`` returning whether they changed
    the program.  The manager repeats the pipeline until no pass reports a
    change (or the iteration limit is reached).
    """

    def __init__(self, passes: Optional[List[Callable[[Program], bool]]] = None,
                 max_iterations: int = 16):
        self.passes: List[Callable[[Program], bool]] = list(passes or [])
        self.max_iterations = max_iterations

    def add(self, pass_fn: Callable[[Program], bool]) -> "PassManager":
        self.passes.append(pass_fn)
        return self

    def run(self, program: Program) -> int:
        """Run the pipeline to a fixed point; returns the iteration count."""
        for iteration in range(1, self.max_iterations + 1):
            changed = False
            for pass_fn in self.passes:
                changed = bool(pass_fn(program)) or changed
            if not changed:
                return iteration
        return self.max_iterations

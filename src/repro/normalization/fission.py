"""Maximal loop fission (Section 2.1).

The first normalization criterion splits every loop body into as many
separate loop nests as data dependences allow.  The result is a sequence of
*atomic* loop nests whose bodies cannot be separated further.

Legality follows classical loop distribution: the children of a loop body
are partitioned into the strongly connected components (SCCs) of their
dependence graph (including loop-carried dependences in both directions);
each SCC becomes its own loop, and the loops are emitted in a topological
order of the SCC condensation.  Statements in different SCCs have no
dependence cycle, so executing one group's loop to completion before the
next preserves all dependences.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import networkx as nx

from ..ir.nodes import Computation, LibraryCall, Loop, Node, Program
from ..analysis.dependence import body_dependence_pairs

if TYPE_CHECKING:  # deferred to avoid a cycle with repro.passes.library
    from ..passes.analysis import AnalysisManager

#: Safety bound for the fixed-point iteration; fission strictly reduces the
#: number of children per loop so this is never reached in practice.
MAX_FIXED_POINT_ITERATIONS = 64


@dataclass
class FissionReport:
    """Summary of what maximal fission did to a program."""

    loops_split: int = 0
    nests_created: int = 0
    iterations: int = 0
    atomic_nests: int = 0

    def merge(self, other: "FissionReport") -> None:
        self.loops_split += other.loops_split
        self.nests_created += other.nests_created


def _dependence_edges(loop: Loop,
                      analysis: "Optional[AnalysisManager]" = None
                      ) -> Tuple[Tuple[int, int], ...]:
    """Child-index dependence edges of ``loop``'s body (memoizable).

    Only the index pairs matter for fission legality, and they depend solely
    on the loop's content — so they memoize cleanly by content fingerprint.
    """

    def compute() -> Tuple[Tuple[int, int], ...]:
        return tuple((src, dst) for src, dst, _dep in body_dependence_pairs(loop)
                     if src != dst)

    if analysis is None:
        return compute()
    return analysis.cached_node("fission-edges", loop, compute)


def _dependence_graph(loop: Loop,
                      analysis: "Optional[AnalysisManager]" = None) -> nx.DiGraph:
    """Dependence graph over the direct children of ``loop``."""
    graph = nx.DiGraph()
    graph.add_nodes_from(range(len(loop.body)))
    graph.add_edges_from(_dependence_edges(loop, analysis))
    return graph


def _partition_children(loop: Loop,
                        analysis: "Optional[AnalysisManager]" = None
                        ) -> List[List[int]]:
    """Partition child indices into SCC groups in topological order.

    Children that end up in the same group must stay in the same loop.  Ties
    in the topological order are broken by original program order so that the
    transformation is deterministic and order-preserving when possible.
    """
    graph = _dependence_graph(loop, analysis)
    condensation = nx.condensation(graph)
    order = list(nx.lexicographical_topological_sort(
        condensation, key=lambda scc: min(condensation.nodes[scc]["members"])))
    groups: List[List[int]] = []
    for scc in order:
        members = sorted(condensation.nodes[scc]["members"])
        groups.append(members)
    return groups


def fission_loop(loop: Loop,
                 analysis: "Optional[AnalysisManager]" = None
                 ) -> Tuple[List[Loop], bool]:
    """Split one loop into one loop per dependence-SCC of its body.

    Returns ``(loops, changed)``.  When no split is possible the original
    loop is returned unchanged.
    """
    if len(loop.body) < 2:
        return [loop], False

    groups = _partition_children(loop, analysis)
    if len(groups) <= 1:
        return [loop], False

    new_loops: List[Loop] = []
    for group in groups:
        body = [loop.body[index] for index in group]
        new_loops.append(Loop(
            iterator=loop.iterator,
            start=loop.start,
            end=loop.end,
            step=loop.step,
            body=body,
            parallel=loop.parallel,
            vectorized=loop.vectorized,
            unroll=loop.unroll,
            tile_of=loop.tile_of,
        ))
    return new_loops, True


def _fission_node(node: Node, report: FissionReport,
                  analysis: "Optional[AnalysisManager]" = None) -> List[Node]:
    """Recursively fission a subtree, bottom-up."""
    if not isinstance(node, Loop):
        return [node]

    new_body: List[Node] = []
    for child in node.body:
        new_body.extend(_fission_node(child, report, analysis))
    node.body = new_body

    loops, changed = fission_loop(node, analysis)
    if changed:
        report.loops_split += 1
        report.nests_created += len(loops) - 1
    return list(loops)


def fission_sweep(program: Program, report: FissionReport,
                  analysis: "Optional[AnalysisManager]" = None) -> bool:
    """One bottom-up fission sweep over the program, in place.

    Returns whether any loop was split.  The pass framework drives sweeps to
    a fixed point through its ``FixedPoint`` groups; ``maximal_loop_fission``
    keeps the self-contained fixed point for direct callers.
    """
    before_split = report.loops_split
    new_top: List[Node] = []
    for node in program.body:
        new_top.extend(_fission_node(node, report, analysis))
    program.body = new_top
    report.iterations += 1
    report.atomic_nests = sum(1 for node in program.body if isinstance(node, Loop))
    return report.loops_split > before_split


def maximal_loop_fission(program: Program,
                         analysis: "Optional[AnalysisManager]" = None
                         ) -> FissionReport:
    """Apply maximal loop fission to a program, in place.

    The pass runs to a fixed point: fission is re-applied until no loop body
    can be split further (Section 3.2, "fixed-point pipeline").
    """
    report = FissionReport()
    for _iteration in range(MAX_FIXED_POINT_ITERATIONS):
        if not fission_sweep(program, report, analysis):
            break
    return report


def is_maximally_fissioned(program: Program) -> bool:
    """True if no loop in the program can be split further."""
    for loop in program.iter_loops():
        _, changed = fission_loop(loop.copy())
        if changed:
            return False
    return True

"""Scalar expansion.

Large applications such as CLOUDSC compute many intermediate scalars inside
their innermost loops (Figure 10a): each iteration writes a scalar and uses
it a few instructions later.  Those scalars serialize the loop body — no
fission (and no parallelization) is possible while every statement shares
them.  Scalar expansion promotes such per-iteration temporaries to transient
arrays indexed by the loop iterator, after which maximal loop fission can
split the body into individual computations (Figure 10b stores them in the
local arrays ``ZQP_0``/``ZCOND_0``).

A scalar is expanded over a loop only when it is *private* to an iteration:

* every access to the scalar in the whole program is inside that loop,
* within the loop body (in program order) the first access is a write, and
* the scalar is transient (not part of the program's observable state).

These conditions make the transformation trivially semantics-preserving.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..ir.arrays import Array
from ..ir.nodes import ArrayAccess, Computation, LibraryCall, Loop, Node, Program
from ..ir.symbols import Expr, Read, Sym


@dataclass
class ScalarExpansionReport:
    """Summary of the scalar-expansion pass."""

    expanded: List[Tuple[str, str]] = None  # (scalar, loop iterator)

    def __post_init__(self) -> None:
        if self.expanded is None:
            self.expanded = []

    @property
    def count(self) -> int:
        return len(self.expanded)


def _scalar_accesses_in(node: Node, scalars: Set[str]) -> List[Tuple[str, bool]]:
    """All accesses to the given scalars in a subtree: (name, is_write), in order."""
    out: List[Tuple[str, bool]] = []

    def visit_expr(expr: Expr) -> None:
        if isinstance(expr, Read) and expr.array in scalars and not expr.indices:
            out.append((expr.array, False))
        for child in expr.children():
            visit_expr(child)

    def recurse(current: Node) -> None:
        if isinstance(current, Loop):
            for child in current.body:
                recurse(child)
        elif isinstance(current, Computation):
            visit_expr(current.value)
            if current.target.array in scalars and not current.target.indices:
                out.append((current.target.array, True))
        elif isinstance(current, LibraryCall):
            for name in list(current.inputs):
                if name in scalars:
                    out.append((name, False))
            for name in list(current.outputs):
                if name in scalars:
                    out.append((name, True))

    recurse(node)
    return out


def _rewrite_scalar(node: Node, scalar: str, iterator: str, new_name: str) -> None:
    """Replace scalar accesses with accesses to ``new_name[iterator]`` in place."""

    def rewrite_expr(expr: Expr) -> Expr:
        if isinstance(expr, Read) and expr.array == scalar and not expr.indices:
            return Read(new_name, (Sym(iterator),))
        children = expr.children()
        if not children:
            return expr
        return _rebuild(expr, [rewrite_expr(child) for child in children])

    def recurse(current: Node) -> None:
        if isinstance(current, Loop):
            for child in current.body:
                recurse(child)
        elif isinstance(current, Computation):
            current.value = rewrite_expr(current.value)
            if current.target.array == scalar and not current.target.indices:
                current.target = ArrayAccess(new_name, (Sym(iterator),))

    recurse(node)


def _rebuild(expr: Expr, children: List[Expr]) -> Expr:
    """Rebuild an expression node with new children."""
    from ..ir.symbols import Add, Call, FloorDiv, Max, Min, Mod, Mul, Read as ReadExpr

    if isinstance(expr, Add):
        return Add.make(children)
    if isinstance(expr, Mul):
        return Mul.make(children)
    if isinstance(expr, FloorDiv):
        return FloorDiv.make(children[0], children[1])
    if isinstance(expr, Mod):
        return Mod.make(children[0], children[1])
    if isinstance(expr, Min):
        return Min.make(children)
    if isinstance(expr, Max):
        return Max.make(children)
    if isinstance(expr, ReadExpr):
        return ReadExpr(expr.array, children)
    if isinstance(expr, Call):
        return Call(expr.func, children)
    return expr


def contract_arrays(program: Program) -> int:
    """Array contraction: the inverse of scalar expansion.

    After producer/consumer fusion, many expanded temporaries are written and
    read within a single loop iteration again; demoting them back to scalars
    removes their memory traffic (Figure 10b keeps only the temporaries that
    actually cross loop boundaries as local arrays).  Returns the number of
    arrays contracted.

    A transient rank-1 array qualifies when all of its accesses are inside a
    single loop, every subscript is exactly that loop's iterator, and the
    first access per iteration is a write.
    """
    contracted = 0
    candidates = [name for name, arr in program.arrays.items()
                  if arr.transient and arr.rank == 1]
    if not candidates:
        return 0

    # Locate, for each candidate, the loops that contain accesses to it.
    for name in candidates:
        containing: List[Loop] = []
        access_count = 0
        simple = True

        def inspect(loop: Loop) -> None:
            nonlocal access_count, simple
            local: List[Tuple[str, bool]] = []

            def visit_expr(expr: Expr) -> None:
                nonlocal simple
                if isinstance(expr, Read) and expr.array == name:
                    local.append((name, False))
                    if list(expr.indices) != [Sym(loop.iterator)]:
                        simple = False
                for child in expr.children():
                    visit_expr(child)

            def recurse(node: Node) -> None:
                nonlocal simple
                if isinstance(node, Loop):
                    for child in node.body:
                        recurse(child)
                elif isinstance(node, Computation):
                    visit_expr(node.value)
                    if node.target.array == name:
                        local.append((name, True))
                        if list(node.target.indices) != [Sym(loop.iterator)]:
                            simple = False

            for child in loop.body:
                recurse(child)
            if local:
                containing.append(loop)
                access_count += len(local)
                if not local[0][1]:
                    simple = False

        # Only the *innermost* loops directly enclosing accesses matter; walk
        # all loops and keep those whose immediate body (recursively, but not
        # through another loop that also qualifies) touches the array.
        direct_parents: List[Loop] = []
        for top in program.body:
            if not isinstance(top, Loop):
                continue
            for loop in top.iter_loops():
                touches = False
                for child in loop.body:
                    if isinstance(child, Computation):
                        if (child.target.array == name
                                or any(acc.array == name for acc in child.reads())):
                            touches = True
                if touches:
                    direct_parents.append(loop)
        if len(direct_parents) != 1:
            continue
        loop = direct_parents[0]
        inspect(loop)
        if not simple or access_count == 0:
            continue
        # Every access program-wide must be inside this loop.
        total = 0
        for node in program.body:
            total += len(_scalar_like_accesses(node, name))
        if total != access_count:
            continue

        scalar_name = name
        array_decl = program.arrays[name]
        del program.arrays[name]
        program.arrays[scalar_name] = Array(name=scalar_name, shape=(),
                                            dtype=array_decl.dtype, transient=True)
        _rewrite_array_to_scalar(loop, name)
        contracted += 1
    return contracted


def _scalar_like_accesses(node: Node, name: str) -> List[Tuple[str, bool]]:
    out: List[Tuple[str, bool]] = []

    def visit_expr(expr: Expr) -> None:
        if isinstance(expr, Read) and expr.array == name:
            out.append((name, False))
        for child in expr.children():
            visit_expr(child)

    def recurse(current: Node) -> None:
        if isinstance(current, Loop):
            for child in current.body:
                recurse(child)
        elif isinstance(current, Computation):
            visit_expr(current.value)
            if current.target.array == name:
                out.append((name, True))

    recurse(node)
    return out


def _rewrite_array_to_scalar(node: Node, name: str) -> None:
    def rewrite_expr(expr: Expr) -> Expr:
        if isinstance(expr, Read) and expr.array == name:
            return Read(name, ())
        children = expr.children()
        if not children:
            return expr
        return _rebuild(expr, [rewrite_expr(child) for child in children])

    def recurse(current: Node) -> None:
        if isinstance(current, Loop):
            for child in current.body:
                recurse(child)
        elif isinstance(current, Computation):
            current.value = rewrite_expr(current.value)
            if current.target.array == name:
                current.target = ArrayAccess(name, ())

    recurse(node)


def expand_scalars(program: Program) -> ScalarExpansionReport:
    """Apply scalar expansion to every eligible (scalar, loop) pair, in place."""
    report = ScalarExpansionReport()

    transient_scalars = {name for name, arr in program.arrays.items()
                         if arr.transient and arr.is_scalar}
    if not transient_scalars:
        return report

    # Count accesses per scalar per loop and per top-level region so that we
    # can check the "private to one loop" condition.
    global_counts: Dict[str, int] = {name: 0 for name in transient_scalars}
    for node in program.body:
        for name, _ in _scalar_accesses_in(node, transient_scalars):
            global_counts[name] += 1

    def eligible_in_loop(loop: Loop, scalar: str) -> bool:
        # The expansion array's extent is the loop's upper bound, which must
        # therefore not depend on other loop iterators.
        iterators = {other.iterator for top_node in program.body
                     if isinstance(top_node, Loop)
                     for other in top_node.iter_loops()}
        if loop.end.free_symbols() & iterators:
            return False
        accesses = _scalar_accesses_in(loop, {scalar})
        if not accesses:
            return False
        if len(accesses) != global_counts[scalar]:
            return False
        # First access in program order must be a write.
        return accesses[0][1]

    def innermost_candidates(loop: Loop) -> List[Loop]:
        # Post-order so that scalars are expanded over the innermost loop that
        # fully contains their uses.
        result = []
        for child in loop.body:
            if isinstance(child, Loop):
                result.extend(innermost_candidates(child))
        result.append(loop)
        return result

    handled: Set[str] = set()
    for top in list(program.body):
        if not isinstance(top, Loop):
            continue
        for loop in innermost_candidates(top):
            for scalar in sorted(transient_scalars - handled):
                if not eligible_in_loop(loop, scalar):
                    continue
                new_name = f"{scalar}__x{loop.iterator}"
                suffix = 0
                while new_name in program.arrays:
                    suffix += 1
                    new_name = f"{scalar}__x{loop.iterator}{suffix}"
                program.add_array(Array(name=new_name, shape=(loop.end,),
                                        dtype=program.arrays[scalar].dtype,
                                        transient=True))
                _rewrite_scalar(loop, scalar, loop.iterator, new_name)
                handled.add(scalar)
                report.expanded.append((scalar, loop.iterator))
    return report

"""Stride minimization (Section 2.2).

After maximal fission every loop nest is atomic.  The second normalization
criterion replaces each nest with the legal permutation of its loops that
minimizes the ``stride(loop)`` cost function — by exhaustive enumeration for
practically-relevant depths, and by sorting groups of iterators as an
approximation for deep nests.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations as iter_permutations
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple

from ..ir.arrays import Array
from ..ir.nodes import Loop, Node, Program
from ..analysis.dependence import band_bounds_respect_order, permutation_is_legal
from ..analysis.strides import nest_stride_cost

if TYPE_CHECKING:  # deferred to avoid a cycle with repro.passes.library
    from ..passes.analysis import AnalysisManager

#: Nests whose perfectly nested band is at most this deep are permuted by
#: exhaustive enumeration; deeper nests use the grouped-sort approximation.
EXHAUSTIVE_DEPTH_LIMIT = 6


@dataclass
class StrideMinimizationReport:
    """Summary of the stride-minimization pass."""

    nests_considered: int = 0
    nests_permuted: int = 0
    permutations_evaluated: int = 0
    total_cost_before: float = 0.0
    total_cost_after: float = 0.0


def _band_bounds_legal(band: Sequence[Loop], order: Sequence[str]) -> bool:
    """Structural legality: a loop's bounds may only reference iterators that
    are *outside* it after permutation (triangular domains constrain order).

    Delegates to the canonical check in :mod:`repro.analysis.dependence`;
    kept as a local name because it predates that helper.
    """
    return band_bounds_respect_order(band, order)


def apply_permutation(nest: Loop, order: Sequence[str]) -> Loop:
    """Rebuild the nest's perfectly nested band in the given loop order.

    The innermost body (everything below the band) is preserved.  The caller
    is responsible for legality; :func:`find_minimal_permutation` only offers
    legal orders.
    """
    band = nest.perfectly_nested_band()
    by_iterator: Dict[str, Loop] = {loop.iterator: loop for loop in band}
    if sorted(order) != sorted(by_iterator):
        raise ValueError(f"order {list(order)} does not match band "
                         f"{[l.iterator for l in band]}")
    innermost_body = band[-1].body

    current_body: List[Node] = innermost_body
    rebuilt: Optional[Loop] = None
    for iterator in reversed(list(order)):
        template = by_iterator[iterator]
        rebuilt = Loop(
            iterator=template.iterator,
            start=template.start,
            end=template.end,
            step=template.step,
            body=current_body,
            parallel=template.parallel,
            vectorized=template.vectorized,
            unroll=template.unroll,
            tile_of=template.tile_of,
        )
        current_body = [rebuilt]
    assert rebuilt is not None
    return rebuilt


def candidate_orders(nest: Loop) -> List[Tuple[str, ...]]:
    """All structurally and semantically legal loop orders of the nest band."""
    band = nest.perfectly_nested_band()
    iterators = [loop.iterator for loop in band]
    legal: List[Tuple[str, ...]] = []
    for order in iter_permutations(iterators):
        if not _band_bounds_legal(band, order):
            continue
        if not permutation_is_legal(nest, order):
            continue
        legal.append(order)
    return legal


def _grouped_sort_order(nest: Loop, arrays: Mapping[str, Array],
                        parameters: Optional[Mapping[str, int]]) -> Tuple[str, ...]:
    """Approximate order for deep nests: sort iterators by the stride cost
    they would incur if placed innermost (smallest innermost)."""
    band = nest.perfectly_nested_band()
    iterators = [loop.iterator for loop in band]

    def innermost_cost(iterator: str) -> float:
        order = [it for it in iterators if it != iterator] + [iterator]
        return nest_stride_cost(nest, arrays, parameters, order)

    ranked = sorted(iterators, key=innermost_cost, reverse=True)
    return tuple(ranked)


def find_minimal_permutation(nest: Loop, arrays: Mapping[str, Array],
                             parameters: Optional[Mapping[str, int]] = None
                             ) -> Tuple[Tuple[str, ...], float, int]:
    """Find the legal loop order with minimal stride cost.

    Returns ``(order, cost, evaluated)`` where ``evaluated`` is the number of
    permutations whose cost was computed.  The current order is always a
    candidate, so the result never increases the cost.
    """
    band = nest.perfectly_nested_band()
    iterators = tuple(loop.iterator for loop in band)
    current_cost = nest_stride_cost(nest, arrays, parameters, iterators)
    if len(band) <= 1:
        return iterators, current_cost, 1

    if len(band) > EXHAUSTIVE_DEPTH_LIMIT:
        candidate = _grouped_sort_order(nest, arrays, parameters)
        evaluated = len(band) + 1
        if (_band_bounds_legal(band, candidate)
                and permutation_is_legal(nest, candidate)):
            cost = nest_stride_cost(nest, arrays, parameters, candidate)
            if cost < current_cost:
                return candidate, cost, evaluated
        return iterators, current_cost, evaluated

    best_order = iterators
    best_cost = current_cost
    evaluated = 0
    for order in candidate_orders(nest):
        cost = nest_stride_cost(nest, arrays, parameters, order)
        evaluated += 1
        if cost < best_cost - 1e-12:
            best_cost = cost
            best_order = order
        elif abs(cost - best_cost) <= 1e-12 and order < best_order:
            # Deterministic tie-break: lexicographically smallest order.
            best_order = order
    return best_order, best_cost, max(evaluated, 1)


def _nest_key_material(arrays: Mapping[str, Array],
                       parameters: Optional[Mapping[str, int]]) -> Dict[str, object]:
    """Extra key material for memoized per-nest permutation results.

    Stride costs depend on array shapes/dtypes and the parameter bindings,
    so both join the nest content fingerprint in the memo key.
    """
    return {
        "arrays": sorted((name, tuple(str(dim) for dim in array.shape),
                          str(array.dtype))
                         for name, array in arrays.items()),
        "parameters": sorted((parameters or {}).items()),
    }


def minimize_strides(program: Program,
                     parameters: Optional[Mapping[str, int]] = None,
                     analysis: "Optional[AnalysisManager]" = None
                     ) -> StrideMinimizationReport:
    """Apply stride minimization to every top-level loop nest, in place.

    With an :class:`~repro.passes.analysis.AnalysisManager`, the minimal
    permutation of each nest — the expensive part: legality checks and cost
    evaluation over every candidate order — is memoized by nest content, so
    repeated normalization of equivalent nests skips the search entirely.
    """
    report = StrideMinimizationReport()
    extra = _nest_key_material(program.arrays, parameters) \
        if analysis is not None else None
    new_body: List[Node] = []
    for node in program.body:
        if not isinstance(node, Loop):
            new_body.append(node)
            continue
        report.nests_considered += 1
        computed = []

        def compute(nest: Loop = node) -> Tuple[Tuple[str, ...], float, int, float]:
            computed.append(True)
            before = nest_stride_cost(nest, program.arrays, parameters)
            order, cost, evaluated = find_minimal_permutation(
                nest, program.arrays, parameters)
            return tuple(order), cost, evaluated, before

        if analysis is not None:
            order, cost, evaluated, before = analysis.cached_node(
                "minimal-permutation", node, compute, extra=extra)
        else:
            order, cost, evaluated, before = compute()

        report.total_cost_before += before
        # A memo hit skipped the permutation search: it must not re-count
        # the cached run's evaluations as work done by this run.
        report.permutations_evaluated += evaluated if computed else 0
        current = tuple(loop.iterator for loop in node.perfectly_nested_band())
        if tuple(order) != current:
            node = apply_permutation(node, order)
            report.nests_permuted += 1
        report.total_cost_after += cost
        new_body.append(node)
    program.body = new_body
    return report

"""A-priori loop nest normalization — the paper's primary contribution.

The two normalization criteria of Section 2:

* :func:`maximal_loop_fission` — split loop bodies into atomic nests,
* :func:`minimize_strides` — per nest, pick the legal loop order with the
  minimal stride cost,

plus loop normal form and canonical iterator renaming, combined in
:func:`normalize` (the pipeline of Figure 5).  The stages run as
instrumented :mod:`repro.passes` pipelines selected by registered name
(``"a-priori"`` and its ablations — see ``docs/pipelines.md``);
:class:`NormalizationOptions` is a thin constructor over those pipeline
specs, and :class:`PassManager` survives only as a deprecation shim over
:class:`repro.passes.FixedPoint`.
"""

from .fission import (FissionReport, fission_loop, fission_sweep,
                      is_maximally_fissioned, maximal_loop_fission)
from .loop_normal_form import (CANONICAL_ITERATOR_NAMES,
                               canonicalize_iterator_names,
                               normalize_loop_bounds, normalize_program_bounds)
from .pipeline import (NormalizationOptions, NormalizationReport, PassManager,
                       normalize, normalize_program)
from .scalar_expansion import (ScalarExpansionReport, contract_arrays,
                               expand_scalars)
from .stride_minimization import (EXHAUSTIVE_DEPTH_LIMIT,
                                  StrideMinimizationReport, apply_permutation,
                                  candidate_orders, find_minimal_permutation,
                                  minimize_strides)

__all__ = [
    "FissionReport", "fission_loop", "fission_sweep", "is_maximally_fissioned",
    "maximal_loop_fission",
    "CANONICAL_ITERATOR_NAMES", "canonicalize_iterator_names",
    "normalize_loop_bounds", "normalize_program_bounds",
    "NormalizationOptions", "NormalizationReport", "PassManager",
    "normalize", "normalize_program",
    "EXHAUSTIVE_DEPTH_LIMIT", "StrideMinimizationReport", "apply_permutation",
    "candidate_orders", "find_minimal_permutation", "minimize_strides",
    "ScalarExpansionReport", "expand_scalars",
]

"""Loop normal form: zero-based, unit-step loops with canonical iterator names.

This is the classical pre-conditioning step applied before the paper's two
normalization criteria: every counted loop is rewritten so that its iterator
runs from 0 with step 1, and iterator names are canonicalized per nest so
that structurally identical nests compare equal.  Both rewrites are exact
(the body is re-indexed through substitution), so semantics are preserved by
construction.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir.nodes import Computation, LibraryCall, Loop, Node, Program
from ..ir.symbols import Const, Expr, FloorDiv, Sym

#: Canonical iterator names used by :func:`canonicalize_iterator_names`.
CANONICAL_ITERATOR_NAMES = [
    "i0", "i1", "i2", "i3", "i4", "i5", "i6", "i7", "i8", "i9",
    "i10", "i11", "i12", "i13", "i14", "i15",
]


def normalize_loop_bounds(node: Node) -> Node:
    """Rewrite all loops in a subtree to start at 0 with step 1 (in place).

    For a loop ``for (i = start; i < end; i += step)`` the rewritten loop is
    ``for (i = 0; i < ceil((end - start) / step); i++)`` and every use of
    ``i`` in the body becomes ``start + step * i``.  Loops whose step is not
    a positive constant are left untouched (they cannot be lifted by the
    symbolic representation anyway).
    """
    if isinstance(node, Loop):
        for child in node.body:
            normalize_loop_bounds(child)
        _normalize_single_loop(node)
    return node


def _normalize_single_loop(loop: Loop) -> None:
    start, step = loop.start, loop.step
    if isinstance(step, Const) and step.value <= 0:
        return
    if start == Const(0) and step == Const(1):
        return
    if not isinstance(step, Const):
        return

    iterator = loop.iterator
    replacement: Expr = Sym(iterator)
    if step.value != 1:
        replacement = replacement * step.value
    replacement = replacement + start
    mapping = {iterator: replacement}

    def rewrite(node: Node) -> None:
        if isinstance(node, Loop):
            node.start = node.start.substitute(mapping)
            node.end = node.end.substitute(mapping)
            node.step = node.step.substitute(mapping)
            for child in node.body:
                rewrite(child)
        elif isinstance(node, Computation):
            node.target = node.target.substitute(mapping)
            node.value = node.value.substitute(mapping)

    for child in loop.body:
        rewrite(child)

    span = loop.end - loop.start
    if step.value == 1:
        new_end = span
    else:
        # ceil(span / step) == floor((span + step - 1) / step)
        new_end = FloorDiv.make(span + (step.value - 1), step)
    loop.start = Const(0)
    loop.end = new_end
    loop.step = Const(1)


def normalize_program_bounds(program: Program) -> Program:
    """Apply :func:`normalize_loop_bounds` to every top-level node (in place)."""
    for node in program.body:
        normalize_loop_bounds(node)
    return program


def canonicalize_iterator_names(program: Program,
                                names: Optional[List[str]] = None) -> Program:
    """Rename loop iterators to a canonical sequence per top-level nest.

    Within each top-level loop nest, iterators are renamed to ``i0, i1, ...``
    in pre-order.  Renaming is capture-free because loop iterators are only
    visible within their own nest.
    """
    names = names or CANONICAL_ITERATOR_NAMES

    for top in program.body:
        if not isinstance(top, Loop):
            continue
        loops = list(top.iter_loops())
        if len(loops) > len(names):
            raise ValueError(
                f"loop nest deeper than {len(names)} levels cannot be canonicalized")
        mapping: Dict[str, str] = {}
        for index, loop in enumerate(loops):
            mapping[loop.iterator] = names[index]
        _rename_iterators(top, mapping)
    return program


def _rename_iterators(node: Node, mapping: Dict[str, str]) -> None:
    substitution = {old: Sym(new) for old, new in mapping.items()}
    if isinstance(node, Loop):
        if node.iterator in mapping:
            node.iterator = mapping[node.iterator]
        node.start = node.start.substitute(substitution)
        node.end = node.end.substitute(substitution)
        node.step = node.step.substitute(substitution)
        for child in node.body:
            _rename_iterators(child, mapping)
    elif isinstance(node, Computation):
        node.target = node.target.substitute(substitution)
        node.value = node.value.substitute(substitution)
    elif isinstance(node, LibraryCall):
        node.flop_expr = node.flop_expr.substitute(substitution)

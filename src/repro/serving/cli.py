"""``python -m repro.serving`` — serve, warm caches, and manage shards.

Subcommands:

* ``serve``      — boot the JSON-over-HTTP scheduling service;
  ``--workers N`` serves through a multi-process
  :class:`~repro.serving.workers.WorkerPool` sharing one SQLite cache,
  ``--max-queue-depth`` / ``--max-client-inflight`` configure admission
  control (load shedding with HTTP 429), ``--policy`` selects the
  queue-scheduling policy (strict-priority / weighted-fair / edf / aging),
  ``--adaptive`` / ``--latency-slo`` close the loop from live latency onto
  the batching and admission knobs, ``--metrics`` / ``--no-metrics``
  toggle the Prometheus-text ``/metrics`` endpoint, ``--access-log``
  writes structured JSON access logs, ``--no-trace`` disables request
  tracing (``/v1/traces``), and ``--push-url`` / ``--push-interval``
  push merged metric snapshots + firing alerts to an HTTP sink for
  unattended nodes.
* ``trace-dump``  — fetch finished traces from a running server and emit
  them as Chrome trace-event JSON (loadable in Perfetto /
  ``chrome://tracing``) or as JSONL, to ``--output`` or stdout.
* ``warm-cache`` — populate a persistent SQLite cache with the registry
  workloads so a later ``serve`` starts hot — including the response-level
  fast lane, so warmed requests are answered zero-parse straight from the
  cache bytes; ``--pipeline`` selects the
  registry-named normalization pipeline, ``--report-json`` dumps the
  session report (with per-pass timings), and ``--metrics-json`` dumps the
  metrics-registry snapshot for CI artifacts.
* ``db-shard``   — convert/rebalance tuning databases between the unsharded
  JSON format, the sharded JSON format, and the sharded SQLite format, or
  print shard statistics.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..api.session import Session
from ..api.types import ScheduleRequest
from ..scheduler.database import TuningDatabase
from ..scheduler.sharding import (DEFAULT_NUM_SHARDS, ShardedTuningDatabase)
from ..workloads.registry import benchmark_names
from .http import ServingServer
from .policy import policy_names
from .service import ServiceConfig
from .workers import WorkerConfig, WorkerPool


def _session_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scheduler", default="daisy",
                        help="default scheduler of the session (default: daisy)")
    parser.add_argument("--threads", type=int, default=4,
                        help="threads the scheduled code is optimized for")
    parser.add_argument("--size", default="large",
                        help="workload-registry size class (default: large)")
    parser.add_argument("--pipeline", default=None,
                        help="registry-named normalization pipeline "
                             "(a-priori, no-fission, no-stride, "
                             "no-scalar-expansion, identity; "
                             "default: a-priori)")
    parser.add_argument("--cache-path", default=None,
                        help="SQLite file backing the normalization cache "
                             "(default: in-memory)")
    parser.add_argument("--db-path", default=None,
                        help="tuning database to load: .json (sharded or "
                             "unsharded) or .sqlite")
    parser.add_argument("--shards", type=int, default=0,
                        help="shard the tuning database N ways (0: unsharded)")


def _load_database(path: Optional[str], shards: int):
    if path is None:
        return ShardedTuningDatabase(shards) if shards > 0 else None
    if path.endswith((".sqlite", ".sqlite3", ".db")):
        return ShardedTuningDatabase.load_sqlite(path, shards or None)
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    data = json.loads(text)
    if isinstance(data, dict):  # sharded JSON layout
        database = ShardedTuningDatabase.from_json(text)
        return database.rebalance(shards) if shards else database
    database = TuningDatabase.from_json(text)
    if shards:
        return ShardedTuningDatabase.from_database(database, shards)
    return database


def _build_session(args: argparse.Namespace, database=None) -> Session:
    if database is None:
        database = _load_database(args.db_path, args.shards)
    return Session(threads=args.threads, scheduler=args.scheduler,
                   size=args.size, cache_path=args.cache_path,
                   pipeline=args.pipeline, database=database)


def _format_pass_timings(report) -> str:
    """Per-pass timing/change lines of a SessionReport (or its dict)."""
    passes = (report.get("normalization_passes") if isinstance(report, dict)
              else report.normalization_passes)
    if not passes:
        return "  (no normalization pipeline runs)"
    lines = []
    for name, entry in sorted(passes.items(),
                              key=lambda item: -item[1].get("wall_time_s", 0.0)):
        lines.append(f"  {name}: {entry.get('runs', 0):.0f} runs, "
                     f"{entry.get('changed', 0):.0f} changed, "
                     f"{entry.get('wall_time_s', 0.0) * 1e3:.2f} ms")
    return "\n".join(lines)


def _cmd_serve(args: argparse.Namespace) -> int:
    config = ServiceConfig(max_batch_size=args.max_batch,
                           batch_window_s=args.batch_window,
                           max_queue_depth=args.max_queue_depth,
                           max_client_inflight=args.max_client_inflight,
                           policy=args.policy,
                           aging_interval_s=args.aging_interval,
                           adaptive=args.adaptive,
                           latency_slo_s=args.latency_slo)
    pool = None
    session = None
    try:
        if args.workers > 0:
            worker_config = WorkerConfig(
                scheduler=args.scheduler, threads=args.threads, size=args.size,
                pipeline=args.pipeline, cache_path=args.cache_path)
            pool = WorkerPool(args.workers, worker_config,
                              database=_load_database(
                                  args.db_path, args.shards or args.workers))
            pool.start()
            # The coordinator session does coalescing bookkeeping and
            # reporting; all scheduling happens in the pool.  It shares the
            # pool's sharded database view and (via WAL) the same cache file.
            session = _build_session(args, database=pool.database)
        else:
            session = _build_session(args)
        access_log = None
        if args.access_log:
            access_log = (sys.stdout if args.access_log == "-"
                          else args.access_log)
        if not args.trace:
            session.tracer.enabled = False
        server = ServingServer(session, host=args.host, port=args.port,
                               config=config, pool=pool,
                               expose_metrics=args.metrics,
                               access_log=access_log,
                               expose_traces=args.trace,
                               alert_interval_s=args.alert_interval,
                               push_url=args.push_url,
                               push_interval_s=args.push_interval)
        server.start()
        print(f"serving on {server.address} "
              f"(scheduler={args.scheduler}, threads={args.threads}, "
              f"policy={args.policy}"
              f"{', adaptive' if args.adaptive else ''}, "
              f"workers={args.workers or 'in-process'}, "
              f"cache={'sqlite:' + args.cache_path if args.cache_path else 'memory'}, "
              f"database={len(session.database)} entries, "
              f"queue-depth={args.max_queue_depth}, "
              f"metrics={'on' if args.metrics else 'off'}, "
              f"tracing={'on' if args.trace else 'off'}, "
              f"push={args.push_url or 'off'})", flush=True)
        server.serve_forever()
    finally:
        # Reached on a clean shutdown *and* on boot failures (port in use,
        # bad session config): flush buffered cache recency, close the
        # backend connection, and stop the worker processes.
        if pool is not None:
            pool.close()
        if session is not None:
            session.close()
    return 0


def _cmd_warm_cache(args: argparse.Namespace) -> int:
    session = _build_session(args)
    names = args.workloads or sorted(benchmark_names())
    requests: List[ScheduleRequest] = []
    for name in names:
        for variant in args.variants:
            requests.append(ScheduleRequest(program=f"{name}:{variant}"))
    responses = session.schedule_batch(requests)
    hits = sum(1 for response in responses if response.from_cache)
    # Second pass feeds the response-level fast lane: each repeat is now
    # fully cache-served, so ``schedule_encoded`` stores its final encoded
    # bytes — a later ``serve`` run on this cache file answers these
    # requests zero-parse, straight from SQLite to the socket.
    warmed_fast = 0
    for request in requests:
        session.schedule_encoded(request)
        if session.probe_response(request) is not None:
            warmed_fast += 1
    report = session.report()
    print(f"warmed {len(responses)} schedules ({hits} already cached) "
          f"into {args.cache_path} "
          f"(pipeline={args.pipeline or 'a-priori'}, "
          f"fast lane ready for {warmed_fast} requests)")
    print(report.summary())
    print("per-pass timings:")
    print(_format_pass_timings(report))
    if args.report_json:
        with open(args.report_json, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
        print(f"wrote report to {args.report_json}")
    if args.metrics_json:
        # The full instrument snapshot (counters, gauges, histogram
        # buckets) — mergeable with other snapshots and renderable via
        # repro.observability.render_registry_dict.
        with open(args.metrics_json, "w", encoding="utf-8") as handle:
            json.dump(session.metrics.to_dict(), handle, indent=2,
                      sort_keys=True)
        print(f"wrote metrics snapshot to {args.metrics_json}")
    session.close()
    return 0


def _cmd_trace_dump(args: argparse.Namespace) -> int:
    from ..observability import chrome_trace_document, traces_to_jsonl
    from .client import ServingClient, ServingError

    client = ServingClient(args.url)
    try:
        listing = client.traces(limit=args.limit)
        records = [client.trace(entry["trace_id"])
                   for entry in listing.get("traces", [])]
    except ServingError as error:
        print(f"trace-dump: {error}", file=sys.stderr)
        return 1
    if args.format == "chrome":
        text = json.dumps(chrome_trace_document(records), indent=2,
                          sort_keys=True)
    else:
        text = traces_to_jsonl(records)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text if text.endswith("\n") else text + "\n")
        print(f"wrote {len(records)} trace(s) to {args.output} "
              f"({args.format})")
    else:
        print(text)
    return 0


def _save_database(database: ShardedTuningDatabase, path: str) -> None:
    if path.endswith((".sqlite", ".sqlite3", ".db")):
        database.save_sqlite(path)
    else:
        database.save(path)


def _cmd_db_shard(args: argparse.Namespace) -> int:
    database = _load_database(args.input, args.shards)
    if isinstance(database, TuningDatabase):
        database = ShardedTuningDatabase.from_database(
            database, args.shards or DEFAULT_NUM_SHARDS)
    sizes = database.shard_sizes()
    print(f"{args.input}: {len(database)} entries across "
          f"{database.num_shards} shards {sizes}")
    if args.stats:
        labels: dict = {}
        for entry in database.entries:
            labels[entry.label] = labels.get(entry.label, 0) + 1
        for label, count in sorted(labels.items()):
            print(f"  {label or '<unlabeled>'}: {count}")
    if args.output:
        _save_database(database, args.output)
        print(f"wrote {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving",
        description="Async scheduling service over the repro.api Session")
    commands = parser.add_subparsers(dest="command", required=True)

    serve = commands.add_parser("serve", help="boot the HTTP scheduling service")
    _session_arguments(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8422)
    serve.add_argument("--max-batch", type=int, default=16,
                       help="largest micro-batch per schedule_batch call")
    serve.add_argument("--batch-window", type=float, default=0.01,
                       help="seconds the batcher waits for stragglers")
    serve.add_argument("--workers", type=int, default=0,
                       help="serve through N worker processes sharing the "
                            "cache (0: schedule in-process)")
    serve.add_argument("--max-queue-depth", type=int, default=256,
                       help="shed load (HTTP 429) beyond this many queued "
                            "requests (0: unbounded)")
    serve.add_argument("--policy", default="strict-priority",
                       choices=policy_names(),
                       help="queue-scheduling policy "
                            "(default: strict-priority)")
    serve.add_argument("--aging-interval", type=float, default=0.5,
                       help="aging policy: seconds of queue wait worth one "
                            "priority class of boost (default: 0.5)")
    serve.add_argument("--adaptive", action="store_true", default=False,
                       help="tune batch window/size and admission depth "
                            "from live latency against --latency-slo")
    serve.add_argument("--latency-slo", type=float, default=0.25,
                       help="target p95 end-to-end latency in seconds "
                            "(adaptive batching and alert rules; "
                            "default: 0.25)")
    serve.add_argument("--max-client-inflight", type=int, default=0,
                       help="per-client in-flight request limit "
                            "(0: unlimited)")
    serve.add_argument("--metrics", action="store_true", default=True,
                       help="expose the Prometheus-text /metrics endpoint "
                            "(on by default; see --no-metrics)")
    serve.add_argument("--no-metrics", dest="metrics", action="store_false",
                       help="disable the /metrics endpoint")
    serve.add_argument("--access-log", default=None, metavar="PATH",
                       help="write a JSON-lines access log of schedule "
                            "traffic to PATH ('-' for stdout)")
    serve.add_argument("--no-trace", dest="trace", action="store_false",
                       default=True,
                       help="disable request tracing and the /v1/traces "
                            "endpoints (tracing is on by default)")
    serve.add_argument("--alert-interval", type=float, default=5.0,
                       help="seconds between background alert-rule "
                            "evaluations (default: 5)")
    serve.add_argument("--push-url", default=None, metavar="URL",
                       help="POST merged metric snapshots + firing alerts "
                            "to this HTTP sink (off by default)")
    serve.add_argument("--push-interval", type=float, default=30.0,
                       help="seconds between push-exporter deliveries "
                            "(default: 30)")
    serve.set_defaults(func=_cmd_serve)

    warm = commands.add_parser(
        "warm-cache", help="pre-schedule workloads into a persistent cache")
    _session_arguments(warm)
    warm.add_argument("--workloads", nargs="*", default=None,
                      help="registry names (default: every benchmark)")
    warm.add_argument("--variants", nargs="*", default=["a"],
                      help="variants to warm per workload (default: a)")
    warm.add_argument("--report-json", default=None,
                      help="dump the full session report (including per-pass "
                           "timings) to this JSON file")
    warm.add_argument("--metrics-json", default=None,
                      help="dump the session's metrics-registry snapshot "
                           "(cache/pass instruments) to this JSON file")
    warm.set_defaults(func=_cmd_warm_cache)

    dump = commands.add_parser(
        "trace-dump", help="export finished traces from a running server")
    dump.add_argument("--url", required=True,
                      help="base URL of the serving endpoint "
                           "(e.g. http://127.0.0.1:8422)")
    dump.add_argument("--format", choices=("chrome", "jsonl"),
                      default="chrome",
                      help="chrome: one trace-event JSON document "
                           "(Perfetto / chrome://tracing); jsonl: one "
                           "trace per line (default: chrome)")
    dump.add_argument("--limit", type=int, default=None,
                      help="dump at most N newest traces (default: all "
                           "buffered)")
    dump.add_argument("--output", default=None, metavar="PATH",
                      help="write here instead of stdout")
    dump.set_defaults(func=_cmd_trace_dump)

    shard = commands.add_parser(
        "db-shard", help="shard/rebalance/inspect a tuning database")
    shard.add_argument("--input", required=True,
                       help=".json (sharded or unsharded) or .sqlite database")
    shard.add_argument("--output", default=None,
                       help="write the sharded database here "
                            "(.json or .sqlite; default: inspect only)")
    shard.add_argument("--shards", type=int, default=0,
                       help="target shard count (default: keep / 4 for "
                            "unsharded inputs)")
    shard.add_argument("--stats", action="store_true",
                       help="print per-label entry counts")
    shard.set_defaults(func=_cmd_db_shard)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "warm-cache" and not args.cache_path:
        print("warm-cache requires --cache-path (a persistent backend to warm)",
              file=sys.stderr)
        return 2
    return args.func(args)

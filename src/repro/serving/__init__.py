"""``repro.serving`` — async scheduling service over the Session facade.

The subsystem layers onto :mod:`repro.api` without changing it:

* :class:`SchedulingService` / :class:`ServiceRunner` — asyncio request
  queue, micro-batching over ``Session.schedule_batch``, and coalescing of
  identical in-flight requests by content hash.
* :class:`ServingServer` / :class:`ServingClient` — a stdlib JSON-over-HTTP
  endpoint plus its client, speaking the existing
  ``ScheduleRequest`` / ``ScheduleResponse`` round-trips.
* persistence is provided by the pluggable cache backends
  (:class:`repro.api.SQLiteCacheBackend`) and the sharded tuning database
  (:class:`repro.api.ShardedTuningDatabase`); the ``python -m repro.serving``
  CLI wires them together (``serve`` / ``warm-cache`` / ``db-shard``).
"""

from .client import ServingClient, ServingError
from .http import ServingServer
from .service import (SchedulingService, ServiceConfig, ServiceRunner,
                      ServiceStats, request_fingerprint)

__all__ = [
    "SchedulingService", "ServiceConfig", "ServiceRunner", "ServiceStats",
    "request_fingerprint",
    "ServingServer", "ServingClient", "ServingError",
]

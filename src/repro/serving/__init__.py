"""``repro.serving`` — async scheduling service over the Session facade.

The subsystem layers onto :mod:`repro.api` without changing it:

* :class:`SchedulingService` / :class:`ServiceRunner` — asyncio request
  queue ordered by a pluggable :class:`QueuePolicy` (``strict-priority``
  by default — ``ScheduleRequest.priority``, 0 most urgent — plus
  ``weighted-fair``, ``edf``, and ``aging``; register more with
  :func:`register_policy`), admission control (:class:`AdmissionController`
  sheds load with a typed :class:`AdmissionError`), micro-batching over
  ``Session.schedule_batch``, coalescing of identical in-flight requests
  by content hash, and an optional :class:`AdaptiveBatcher` closing the
  loop from live latency histograms onto the batching/admission knobs.
* :class:`WorkerPool` / :class:`WorkerConfig` — a multi-process worker pool
  where every worker holds its own Session over one shared SQLite cache
  file and one tuning-database shard; the service scatters its
  micro-batches over the pool when one is attached (``serve --workers N``).
* :class:`ServingServer` / :class:`ServingClient` — a stdlib JSON-over-HTTP
  endpoint plus its client, speaking the existing
  ``ScheduleRequest`` / ``ScheduleResponse`` round-trips (load shedding
  surfaces as ``429`` with a ``Retry-After`` hint), a Prometheus-text
  ``/metrics`` scrape backed by :mod:`repro.observability`, end-to-end
  request traces (``/v1/traces``, exportable via the ``trace-dump`` CLI),
  SLO alert rules (``/alerts``), an optional push exporter for unattended
  nodes (``--push-url``), and an optional structured JSON access log
  (:class:`JsonAccessLog`).
* persistence is provided by the pluggable cache backends
  (:class:`repro.api.SQLiteCacheBackend`) and the sharded tuning database
  (:class:`repro.api.ShardedTuningDatabase`); the ``python -m repro.serving``
  CLI wires them together (``serve`` / ``warm-cache`` / ``db-shard``).
"""

from .client import ServingClient, ServingError
from .http import JsonAccessLog, ServingServer
from .policy import (AdaptiveBatcher, PolicyError, QueuePolicy, create_policy,
                     policy_names, register_policy)
from .service import (AdmissionController, AdmissionError, AdmissionStats,
                      RequestTiming, SchedulingService, ServiceConfig,
                      ServiceRunner, ServiceStats, request_fingerprint)
from .workers import (PoolStats, WorkerConfig, WorkerError, WorkerPool,
                      merge_worker_reports)

__all__ = [
    "SchedulingService", "ServiceConfig", "ServiceRunner", "ServiceStats",
    "AdmissionController", "AdmissionError", "AdmissionStats",
    "RequestTiming", "request_fingerprint",
    "QueuePolicy", "PolicyError", "register_policy", "policy_names",
    "create_policy", "AdaptiveBatcher",
    "WorkerPool", "WorkerConfig", "WorkerError", "PoolStats",
    "merge_worker_reports",
    "ServingServer", "ServingClient", "ServingError", "JsonAccessLog",
]

"""Stdlib HTTP client for the serving endpoint.

Speaks the same :class:`~repro.api.ScheduleRequest` /
:class:`~repro.api.ScheduleResponse` JSON round-trips as the server; the
demo, the smoke test, and the benchmark all drive traffic through it.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from dataclasses import replace
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from ..api.types import ProgramLike, ScheduleRequest, ScheduleResponse


class ServingError(RuntimeError):
    """A non-2xx response from the serving endpoint."""

    def __init__(self, status: int, payload: Dict[str, Any]):
        super().__init__(f"HTTP {status}: {payload.get('error', payload)}")
        self.status = status
        self.payload = payload


class ServingClient:
    """A thin blocking client: ``schedule`` / ``report`` / ``health``."""

    def __init__(self, base_url: str, timeout: float = 60.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- raw transport -----------------------------------------------------------

    def request(self, method: str, path: str,
                body: Optional[Dict[str, Any]] = None
                ) -> Tuple[int, Dict[str, Any]]:
        """One HTTP exchange; returns ``(status, decoded JSON payload)``."""
        data = json.dumps(body).encode("utf-8") if body is not None else None
        request = urllib.request.Request(
            self.base_url + path, data=data, method=method,
            headers={"Content-Type": "application/json"} if data else {})
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as reply:
                return reply.status, json.loads(reply.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            try:
                payload = json.loads(error.read().decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                payload = {"error": str(error)}
            return error.code, payload

    def _checked(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        status, payload = self.request(method, path, body)
        if status != 200:
            raise ServingError(status, payload)
        return payload

    # -- the API -----------------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self._checked("GET", "/healthz")

    def report(self) -> Dict[str, Any]:
        return self._checked("GET", "/v1/report")

    def alerts(self) -> Dict[str, Any]:
        """``GET /alerts``: every rule's evaluated state + firing subset."""
        return self._checked("GET", "/alerts")

    def traces(self, limit: Optional[int] = None) -> Dict[str, Any]:
        """``GET /v1/traces``: newest-first trace summaries."""
        path = "/v1/traces" + (f"?limit={int(limit)}" if limit is not None
                               else "")
        return self._checked("GET", path)

    def trace(self, trace_id: str) -> Dict[str, Any]:
        """``GET /v1/traces/<id>``: one trace's full span tree."""
        return self._checked("GET", f"/v1/traces/{trace_id}")

    def metrics(self, include_workers: bool = False) -> str:
        """Scrape ``GET /metrics``: the Prometheus text exposition body.

        ``include_workers`` merges every worker process's registry into the
        scrape when the server runs a pool (slower — it rendezvouses with
        all workers).
        """
        path = "/metrics" + ("?workers=1" if include_workers else "")
        request = urllib.request.Request(self.base_url + path, method="GET")
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as reply:
                return reply.read().decode("utf-8")
        except urllib.error.HTTPError as error:
            try:
                payload = json.loads(error.read().decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                payload = {"error": str(error)}
            raise ServingError(error.code, payload) from error

    def schedule(self, program: Union[ScheduleRequest, ProgramLike],
                 parameters: Optional[Mapping[str, int]] = None,
                 scheduler: Optional[str] = None,
                 threads: Optional[int] = None,
                 priority: Optional[int] = None,
                 client: Optional[str] = None) -> ScheduleResponse:
        """Schedule one program through the service.

        ``priority`` (0 most urgent .. 9) and ``client`` (an opaque identity
        the server's admission control may rate-limit on) are serving-layer
        hints; a saturated server answers 429, raised here as a
        :class:`ServingError` with ``status == 429``.  When a ready
        :class:`ScheduleRequest` is passed, explicit ``priority=`` /
        ``client=`` arguments override its fields (on a copy).
        """
        if isinstance(program, ScheduleRequest):
            overrides = {}
            if priority is not None:
                overrides["priority"] = priority
            if client is not None:
                overrides["client"] = client
            request = replace(program, **overrides) if overrides else program
        else:
            request = ScheduleRequest(program=program, parameters=parameters,
                                      scheduler=scheduler, threads=threads,
                                      client=client)
            if priority is not None:
                request.priority = priority
        payload = self._checked("POST", "/v1/schedule", request.to_dict())
        return ScheduleResponse.from_dict(payload)
